/**
 * @file
 * Figure 17: operation-level latency breakdown of a SparseConv block
 * (1st downsampling block of MinkowskiUNet on SemanticKITTI).
 *
 * Left: kernel mapping — the mergesort-based algorithm loses to the
 * hash table on CPU (measured wall clock of the two reference
 * implementations) but wins ~1.4x after circuit specialization
 * (hardware-model cycles at equal parallelism).
 *
 * Right: convolution — Fetch-on-Demand saves DRAM traffic but
 * fragments the GPU's MatMul into matrix-vector products; on PointAcc
 * the systolic array absorbs it and the whole layer costs about as
 * much as the Gather-MatMul-Scatter flow's MatMul alone.
 */

#include <algorithm>
#include <chrono>

#include <functional>

#include "bench_util.hpp"
#include "mapping/kernel_map.hpp"
#include "mapping/quantize.hpp"
#include "memory/flows.hpp"
#include "mpu/alt_engines.hpp"
#include "mpu/mpu.hpp"
#include "mxu/systolic.hpp"
#include "sim/accel_config.hpp"

using namespace pointacc;

namespace {

std::size_t benchmarkSink = 0;

double
wallMs(const std::function<void()> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start)
        .count();
}

} // namespace

int
main()
{
    bench::banner("bench_fig17_kernel_flow",
                  "Fig. 17 (kernel mapping: mergesort vs hash; conv: "
                  "Fetch-on-Demand vs Gather-MatMul-Scatter)");

    const auto cloud =
        generate(DatasetKind::SemanticKITTI, 20211018,
                 bench::datasetScale(DatasetKind::SemanticKITTI));
    const auto output = quantizeDownsample(cloud, 2);
    KernelMapConfig kcfg;
    kcfg.kernelSize = 2;
    kcfg.outStride = 2;

    // ---- Left: kernel mapping ------------------------------------ //
    std::printf("\n[kernel mapping] input %zu -> output %zu points, "
                "k=2 (8 offsets)\n", cloud.size(), output.size());

    MapSet sink;
    const double cpuHashMs =
        wallMs([&] { sink = hashKernelMap(cloud, output, kcfg); });
    const double cpuSortMs =
        wallMs([&] { sink = sortKernelMap(cloud, output, kcfg); });
    // The paper's software mergesort baseline re-sorts the merged
    // stream per offset instead of exploiting pre-sorted inputs; that
    // is what loses to the hash table on CPU/GPU (Fig. 17 left).
    const double cpuResortMs = wallMs([&] {
        const auto offsets = kernelOffsets(kcfg.kernelSize,
                                           kcfg.inStride);
        std::size_t found = 0;
        std::vector<std::pair<std::uint64_t, std::int32_t>> merged;
        for (const auto &delta : offsets) {
            merged.clear();
            merged.reserve(cloud.size() + output.size());
            for (std::size_t i = 0; i < cloud.size(); ++i) {
                merged.emplace_back(
                    packCoord(cloud.coord(static_cast<PointIndex>(i)) -
                              delta),
                    static_cast<std::int32_t>(i));
            }
            for (std::size_t q = 0; q < output.size(); ++q) {
                merged.emplace_back(
                    packCoord(output.coord(static_cast<PointIndex>(q))),
                    ~static_cast<std::int32_t>(q));
            }
            std::sort(merged.begin(), merged.end());
            for (std::size_t i = 0; i + 1 < merged.size(); ++i) {
                if (merged[i].first == merged[i + 1].first &&
                    (merged[i].second < 0) !=
                        (merged[i + 1].second < 0)) {
                    ++found;
                }
            }
        }
        benchmarkSink += found;
    });

    const auto accel = pointAccConfig();
    MappingUnit mpu(accel.mpu);
    const auto hwSort = mpu.kernelMap(cloud, output, kcfg);
    HashKernelMapper hashUnit(accel.mpu.mergerWidth);
    HashEngineStats hashStats;
    hashUnit.map(cloud, output, kcfg, hashStats);

    const double hwSortMs =
        static_cast<double>(hwSort.stats.cycles) / 1e6;
    const double hwHashMs = static_cast<double>(hashStats.cycles) / 1e6;

    std::printf("%-34s %12s\n", "implementation", "latency ms");
    std::printf("%-34s %12.2f\n", "CPU, hash-based (measured)",
                cpuHashMs);
    std::printf("%-34s %12.2f\n",
                "CPU, mergesort (pre-sorted walk)", cpuSortMs);
    std::printf("%-34s %12.2f\n", "CPU, mergesort (full re-sort)",
                cpuResortMs);
    std::printf("%-34s %12.3f\n", "PointAcc MPU, hash unit (model)",
                hwHashMs);
    std::printf("%-34s %12.3f\n", "PointAcc MPU, mergesort (model)",
                hwSortMs);
    std::printf("mergesort vs hash on specialized hardware: %.2fx "
                "speedup, %.1fx smaller area\n",
                hwHashMs / hwSortMs,
                hashUnit.areaUnits(65536) /
                    mergeSorterAreaUnits(accel.mpu.mergerWidth));

    // ---- Right: convolution flows --------------------------------- //
    const auto maps = sortKernelMap(cloud, output, kcfg);
    SparseLayerShape shape;
    shape.numInputs = static_cast<std::uint32_t>(cloud.size());
    shape.numOutputs = static_cast<std::uint32_t>(output.size());
    shape.inChannels = 32;
    shape.outChannels = 64;

    const auto gs = gatherMatMulScatterTraffic(maps, shape);
    const auto fod =
        fetchOnDemandTraffic(maps, shape, accel.cacheConfig(16));

    MatrixUnit mxu(accel.mxu);
    const auto mm = mxu.sparseConv(maps, shape.inChannels,
                                   shape.outChannels);

    std::printf("\n[convolution] %zu maps, c=32->64\n", maps.size());
    std::printf("%-34s %14s %14s\n", "flow", "DRAM MB", "PointAcc ms");
    std::printf("%-34s %14.2f %14.3f\n", "Gather-MatMul-Scatter",
                static_cast<double>(gs.totalBytes()) / 1e6,
                (static_cast<double>(mm.cycles) +
                 static_cast<double>(gs.totalBytes()) /
                     accel.dram.bandwidthGBps) /
                    1e6);
    std::printf("%-34s %14.2f %14.3f\n", "Fetch-on-Demand (cached)",
                static_cast<double>(fod.traffic.totalBytes()) / 1e6,
                (static_cast<double>(mm.cycles) +
                 std::max(0.0,
                          static_cast<double>(fod.traffic.totalBytes()) /
                                  accel.dram.bandwidthGBps -
                              static_cast<double>(mm.cycles))) /
                    1e6);
    std::printf("\nExpected shape: mergesort slower than hash in "
                "software but ~1.4x faster\nand ~14x smaller in "
                "hardware; Fetch-on-Demand cuts DRAM by >= 3x.\n");
    return 0;
}
