/**
 * @file
 * Figure 5: dataset density, #MACs per point and feature bytes per
 * point — point clouds are ultra sparse and point cloud networks have
 * large per-point compute and memory footprints compared to 2-D CNNs.
 */

#include "bench_util.hpp"
#include "nn/executor.hpp"
#include "nn/zoo.hpp"

using namespace pointacc;

int
main()
{
    bench::banner("bench_fig5_characterization",
                  "Fig. 5 (dataset density / MACs per point / feature "
                  "size per point)");

    std::printf("\n[Fig. 5 left] dataset occupancy density\n");
    std::printf("%-16s %12s %14s\n", "dataset", "#points", "density");
    std::printf("%-16s %12s %14s\n", "ImageNet (ref)", "50176", "1.0");
    for (const auto &spec : allDatasetSpecs()) {
        const auto cloud = generate(spec.kind, 1);
        std::printf("%-16s %12zu %14.3e\n", spec.name.c_str(),
                    cloud.size(), cloud.density());
    }

    std::printf("\n[Fig. 5 middle+right] per-point compute & memory\n");
    std::printf("%-16s %14s %18s %12s\n", "network", "MACs/point",
                "feature B/point", "params (M)");
    for (const auto &ref : cnnReferences()) {
        std::printf("%-16s %14.0f %18.1f %12.1f   (2-D CNN, per pixel)\n",
                    ref.name.c_str(), ref.gmacs * 1e9 / ref.pixels,
                    ref.featureKB * 1024.0, ref.mparams);
    }
    for (const auto &net : allBenchmarks()) {
        const auto cloud = bench::benchCloud(net);
        const auto c = characterize(net, cloud);
        std::printf("%-16s %14llu %18.1f %12.2f\n", net.notation.c_str(),
                    static_cast<unsigned long long>(c.macsPerPoint),
                    c.featureBytesPerPoint,
                    static_cast<double>(c.params) / 1e6);
    }
    std::printf("\nExpected shape: point cloud datasets 1e2-1e6x sparser "
                "than images;\nfeature footprint per point up to ~100x a "
                "CNN's per-pixel footprint.\n");
    return 0;
}
