/**
 * @file
 * Figure 14: speedup and energy savings of PointAcc.Edge over Jetson
 * Xavier NX, Jetson Nano and Raspberry Pi 4B on all 8 benchmarks.
 *
 * Paper reference points (geomean): 2.5x / 9.8x / 141x speedup and
 * 7.8x / 16x / 127x energy savings respectively.
 */

#include "baselines/platform.hpp"
#include "bench_util.hpp"
#include "nn/zoo.hpp"
#include "sim/accelerator.hpp"

using namespace pointacc;

int
main()
{
    bench::banner("bench_fig14_edge",
                  "Fig. 14 (speedup + energy vs Jetson NX / Nano / "
                  "Raspberry Pi 4B)");

    Accelerator accel(pointAccEdgeConfig());
    const std::vector<const PlatformSpec *> platforms = {
        &jetsonXavierNX(), &jetsonNano(), &raspberryPi4()};

    std::printf("%-15s", "network");
    for (const auto *p : platforms)
        std::printf(" | %-9.9s  su    es", p->name.c_str());
    std::printf("\n");

    std::vector<std::vector<double>> speedups(platforms.size());
    std::vector<std::vector<double>> energies(platforms.size());

    for (const auto &net : allBenchmarks()) {
        const auto cloud = bench::benchCloud(net);
        const auto ours = accel.run(net, cloud);
        const auto w = summarizeWorkload(net, cloud);

        std::printf("%-15s", net.notation.c_str());
        for (std::size_t i = 0; i < platforms.size(); ++i) {
            const auto r =
                estimatePlatform(*platforms[i], net.notation, w);
            const double su = r.totalMs() / ours.latencyMs();
            const double es = r.energyMJ / ours.energyMJ();
            speedups[i].push_back(su);
            energies[i].push_back(es);
            std::printf(" | %9.1f %9.1f", su, es);
        }
        std::printf("\n");
    }

    std::printf("%-15s", "geomean");
    for (std::size_t i = 0; i < platforms.size(); ++i)
        std::printf(" | %9.1f %9.1f", geomean(speedups[i]),
                    geomean(energies[i]));
    std::printf("\n\nPaper geomeans: NX 2.5x/7.8x, Nano 9.8x/16x, "
                "RPi4 141x/127x.\n");
    return 0;
}
