/**
 * @file
 * Figure 16: hardware/network co-design. Mesorasi cannot run networks
 * with per-neighbor weights; PointAcc.Edge running the co-designed
 * Mini-MinkowskiUNet beats Mesorasi running PointNet++SSG on the same
 * S3DIS segmentation task in both latency and accuracy.
 *
 * Paper reference: >100x lower latency and +9.1 mIoU.
 */

#include "baselines/mesorasi.hpp"
#include "bench_util.hpp"
#include "nn/zoo.hpp"
#include "sim/accelerator.hpp"

using namespace pointacc;

int
main()
{
    bench::banner("bench_fig16_codesign",
                  "Fig. 16 (co-design: Mini-MinkowskiUNet vs Mesorasi "
                  "PointNet++SSG on S3DIS)");

    const auto cloud =
        generate(DatasetKind::S3DIS, 20211018,
                 bench::datasetScale(DatasetKind::S3DIS));
    Accelerator edge(pointAccEdgeConfig());

    const auto pnpp = pointNetPPSemSeg();
    const auto mini = miniMinkowskiUNet();

    const auto mesoSw = runMesorasiSW(jetsonNano(), pnpp, cloud);
    const auto mesoHw = runMesorasi(pnpp, cloud);
    const auto oursPnpp = edge.run(pnpp, cloud);
    const auto oursMini = edge.run(mini, cloud);

    std::printf("%-34s %12s %10s\n", "configuration", "latency ms",
                "mIoU %");
    std::printf("%-34s %12.2f %10.1f\n", "Mesorasi-SW PointNet++SSG",
                mesoSw.totalMs(), pnpp.paperAccuracy);
    std::printf("%-34s %12.2f %10.1f\n", "Mesorasi-HW PointNet++SSG",
                mesoHw.totalMs(), pnpp.paperAccuracy);
    std::printf("%-34s %12.2f %10.1f\n", "PointAcc.Edge PointNet++SSG",
                oursPnpp.latencyMs(), pnpp.paperAccuracy);
    std::printf("%-34s %12.2f %10.1f\n",
                "PointAcc.Edge Mini-MinkowskiUNet", oursMini.latencyMs(),
                mini.paperAccuracy);
    std::printf("\nCo-design gain vs Mesorasi-HW: %.1fx speedup, %+.1f "
                "mIoU\n", mesoHw.totalMs() / oursMini.latencyMs(),
                mini.paperAccuracy - pnpp.paperAccuracy);
    std::printf("(Mesorasi cannot execute Mini-MinkowskiUNet: "
                "per-neighbor weights unsupported.)\n");
    std::printf("Paper reference: >100x speedup, +9.1 mIoU.\n");
    return 0;
}
