/**
 * @file
 * Table 3: evaluated ASIC platforms (Mesorasi, PointAcc,
 * PointAcc.Edge).
 */

#include "baselines/mesorasi.hpp"
#include "bench_util.hpp"
#include "sim/accel_config.hpp"

using namespace pointacc;

int
main()
{
    bench::banner("bench_tab3_configs", "Table 3 (ASIC configurations)");
    const auto full = pointAccConfig();
    const auto edge = pointAccEdgeConfig();
    const MesorasiConfig mesorasi;

    std::printf("%-18s %14s %14s %14s\n", "", "Mesorasi", "PointAcc",
                "PointAcc.Edge");
    std::printf("%-18s %14s %14s %14s\n", "cores", "16x16=256",
                "64x64=4096", "16x16=256");
    std::printf("%-18s %14s %14u %14u\n", "SRAM (KB)", "1624",
                full.totalSramKB(), edge.totalSramKB());
    std::printf("%-18s %14s %14.1f %14.1f\n", "area (mm^2)", "-",
                full.areaMm2, edge.areaMm2);
    std::printf("%-18s %14.1f %14.1f %14.1f\n", "freq (GHz)",
                mesorasi.freqGHz, full.freqGHz, edge.freqGHz);
    std::printf("%-18s %14s %14s %14s\n", "DRAM", "LPDDR3-1600",
                full.dram.name.c_str(), edge.dram.name.c_str());
    std::printf("%-18s %14.1f %14.1f %14.1f\n", "bandwidth (GB/s)",
                mesorasi.dramBwGBps, full.dram.bandwidthGBps,
                edge.dram.bandwidthGBps);
    std::printf("%-18s %14s %14s %14s\n", "peak perf", "512 GOPS",
                "8 TOPS", "512 GOPS");
    return 0;
}
