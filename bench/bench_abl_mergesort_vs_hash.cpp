/**
 * @file
 * Ablation (Section 4.1.1 claim): the mergesort-based kernel-mapping
 * engine is ~1.4x faster and up to ~14x smaller than a hash-table
 * engine at the same parallelism. Google-benchmark micro-kernels run
 * both hardware models and the summary prints modeled cycles and area.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "mapping/quantize.hpp"
#include "mpu/alt_engines.hpp"
#include "mpu/mpu.hpp"

using namespace pointacc;

namespace {

PointCloud
ablationCloud()
{
    static PointCloud cloud =
        generate(DatasetKind::SemanticKITTI, 7, 0.1);
    return cloud;
}

void
BM_MergesortKernelMap(benchmark::State &state)
{
    const auto cloud = ablationCloud();
    MappingUnit mpu(MpuConfig{64, 64, 13});
    KernelMapConfig kcfg;
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        auto r = mpu.kernelMap(cloud, cloud, kcfg);
        cycles = r.stats.cycles;
        benchmark::DoNotOptimize(r.maps.size());
    }
    state.counters["model_cycles"] =
        static_cast<double>(cycles);
    state.counters["area_units"] = mergeSorterAreaUnits(64);
}

void
BM_HashKernelMap(benchmark::State &state)
{
    const auto cloud = ablationCloud();
    HashKernelMapper hashUnit(64);
    KernelMapConfig kcfg;
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        HashEngineStats stats;
        auto maps = hashUnit.map(cloud, cloud, kcfg, stats);
        cycles = stats.cycles;
        benchmark::DoNotOptimize(maps.size());
    }
    state.counters["model_cycles"] = static_cast<double>(cycles);
    state.counters["area_units"] = hashUnit.areaUnits(65536);
}

} // namespace

BENCHMARK(BM_MergesortKernelMap)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HashKernelMap)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    bench::banner("bench_abl_mergesort_vs_hash",
                  "Section 4.1.1 ablation (mergesort vs hash kernel "
                  "mapping, equal parallelism)");

    const auto cloud = ablationCloud();
    MappingUnit mpu(MpuConfig{64, 64, 13});
    KernelMapConfig kcfg;
    const auto sortRes = mpu.kernelMap(cloud, cloud, kcfg);
    HashKernelMapper hashUnit(64);
    HashEngineStats hashStats;
    hashUnit.map(cloud, cloud, kcfg, hashStats);

    std::printf("%zu points, 27 offsets, 64 lanes\n", cloud.size());
    std::printf("mergesort engine: %llu cycles, area %.0f units\n",
                static_cast<unsigned long long>(sortRes.stats.cycles),
                mergeSorterAreaUnits(64));
    std::printf("hash engine:      %llu cycles (%llu bank conflicts), "
                "area %.0f units\n",
                static_cast<unsigned long long>(hashStats.cycles),
                static_cast<unsigned long long>(hashStats.bankConflicts),
                hashUnit.areaUnits(65536));
    std::printf("-> %.2fx speedup, %.1fx area saving (paper: 1.4x, up "
                "to 14x)\n\n",
                static_cast<double>(hashStats.cycles) /
                    static_cast<double>(sortRes.stats.cycles),
                hashUnit.areaUnits(65536) / mergeSorterAreaUnits(64));

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
