/**
 * @file
 * Figure 6: latency breakdown (data movement / mapping / matmul) of
 * PointNet++(s) on S3DIS and MinkowskiUNet on SemanticKITTI across
 * CPU, GPU, mobile GPU and CPU+TPU.
 */

#include "baselines/platform.hpp"
#include "bench_util.hpp"
#include "nn/zoo.hpp"

using namespace pointacc;

namespace {

void
breakdownTable(const Network &net)
{
    const auto cloud = bench::benchCloud(net);
    const auto w = summarizeWorkload(net, cloud);
    std::printf("\n%s on %s (%zu points)\n", net.name.c_str(),
                toString(net.dataset).c_str(), cloud.size());
    std::printf("%-18s %10s %10s %10s %10s\n", "platform", "data-mv %",
                "mapping %", "matmul %", "total ms");
    const std::vector<const PlatformSpec *> platforms = {
        &xeonGold6130(), &rtx2080Ti(), &mobileGpu(), &tpuV3()};
    for (const auto *p : platforms) {
        const auto r = estimatePlatform(*p, net.notation, w);
        const double t = r.totalMs();
        std::printf("%-18s %9.1f%% %9.1f%% %9.1f%% %10.2f\n",
                    p->name.c_str(), 100.0 * r.dataMovementMs / t,
                    100.0 * r.mappingMs / t, 100.0 * r.matmulMs / t, t);
    }
}

} // namespace

int
main()
{
    bench::banner("bench_fig6_breakdown",
                  "Fig. 6 (latency breakdown on CPU/GPU/mGPU/CPU+TPU)");
    breakdownTable(pointNetPPSemSeg());
    breakdownTable(minkowskiUNetOutdoor());
    std::printf("\nExpected shape: PointNet++-based nets spend > 50%% on "
                "mapping ops on\ngeneral-purpose hardware; CPU+TPU is "
                "dominated (60-90%%) by data movement.\n");
    return 0;
}
