/**
 * @file
 * Figure 15: PointAcc.Edge vs Mesorasi (SW on Jetson Nano, SW on
 * Raspberry Pi 4B, and the Mesorasi HW design) on the four
 * PointNet++-based benchmarks.
 *
 * Paper reference points (geomean speedups): 14x over Mesorasi-SW on
 * Nano, 128x over Mesorasi-SW on RPi4, 4.3x over Mesorasi-HW; energy
 * savings 15x / 110x / 11x.
 */

#include "baselines/mesorasi.hpp"
#include "bench_util.hpp"
#include "nn/zoo.hpp"
#include "sim/accelerator.hpp"

using namespace pointacc;

int
main()
{
    bench::banner("bench_fig15_mesorasi",
                  "Fig. 15 (PointAcc.Edge vs Mesorasi SW/HW)");

    Accelerator edge(pointAccEdgeConfig());
    const std::vector<Network> nets = {pointNetPPClass(),
                                       pointNetPPPartSeg(), fPointNetPP(),
                                       pointNetPPSemSeg()};

    std::printf("%-15s | %-17s | %-17s | %-17s\n", "network",
                "vs SW(Nano) su/es", "vs SW(RPi4) su/es",
                "vs Mesorasi-HW su/es");
    std::vector<double> suNano, suRpi, suHw, esNano, esRpi, esHw;

    for (const auto &net : nets) {
        const auto cloud = bench::benchCloud(net);
        const auto ours = edge.run(net, cloud);
        const auto swNano = runMesorasiSW(jetsonNano(), net, cloud);
        const auto swRpi = runMesorasiSW(raspberryPi4(), net, cloud);
        const auto hw = runMesorasi(net, cloud);

        const double sn = swNano.totalMs() / ours.latencyMs();
        const double sr = swRpi.totalMs() / ours.latencyMs();
        const double sh = hw.totalMs() / ours.latencyMs();
        const double en = swNano.energyMJ / ours.energyMJ();
        const double er = swRpi.energyMJ / ours.energyMJ();
        const double eh = hw.energyMJ / ours.energyMJ();
        suNano.push_back(sn);
        suRpi.push_back(sr);
        suHw.push_back(sh);
        esNano.push_back(en);
        esRpi.push_back(er);
        esHw.push_back(eh);
        std::printf("%-15s | %7.1f / %7.1f | %7.1f / %7.1f | "
                    "%7.1f / %7.1f\n",
                    net.notation.c_str(), sn, en, sr, er, sh, eh);
    }
    std::printf("%-15s | %7.1f / %7.1f | %7.1f / %7.1f | "
                "%7.1f / %7.1f\n",
                "geomean", geomean(suNano), geomean(esNano),
                geomean(suRpi), geomean(esRpi), geomean(suHw),
                geomean(esHw));
    std::printf("\nPaper geomeans: 14x/15x (SW Nano), 128x/110x (SW "
                "RPi4), 4.3x/11x (HW).\n");
    return 0;
}
