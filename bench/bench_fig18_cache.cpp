/**
 * @file
 * Figure 18: cache miss rate of the fetch-on-demand flow vs software-
 * controlled block size, for kernel size k in {2, 3} and channels c in
 * {64, 128}. Miss rate must fall monotonically with block size, kernel
 * size and channel count.
 */

#include "bench_util.hpp"
#include "mapping/kernel_map.hpp"
#include "memory/flows.hpp"
#include "sim/accel_config.hpp"

using namespace pointacc;

int
main()
{
    bench::banner("bench_fig18_cache",
                  "Fig. 18 (cache miss rate vs block size, k, c)");

    const auto cloud =
        generate(DatasetKind::SemanticKITTI, 20211018, 0.15);
    const auto accel = pointAccConfig();

    struct Config
    {
        int k;
        std::uint32_t c;
        MapSet maps;
    };
    std::vector<Config> configs;
    for (int k : {2, 3}) {
        KernelMapConfig kcfg;
        kcfg.kernelSize = k;
        for (std::uint32_t c : {64u, 128u}) {
            Config cfgRow;
            cfgRow.k = k;
            cfgRow.c = c;
            cfgRow.maps = sortKernelMap(cloud, cloud, kcfg);
            configs.push_back(std::move(cfgRow));
        }
    }

    std::printf("%zu points; input buffer %u KB\n\n", cloud.size(),
                accel.inputBufferKB);
    std::printf("%-10s", "block");
    for (const auto &cf : configs)
        std::printf("  k=%d,c=%-4u", cf.k, cf.c);
    std::printf("\n");

    for (std::uint32_t block : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        std::printf("%-10u", block);
        for (const auto &cf : configs) {
            SparseLayerShape shape;
            shape.numInputs = static_cast<std::uint32_t>(cloud.size());
            shape.numOutputs = static_cast<std::uint32_t>(cloud.size());
            shape.inChannels = cf.c;
            shape.outChannels = cf.c;
            const auto fod = fetchOnDemandTraffic(
                cf.maps, shape, accel.cacheConfig(block));
            std::printf("  %8.2f%%", 100.0 * fod.cache.missRate());
        }
        std::printf("\n");
    }
    std::printf("\nExpected shape: miss rate decreases with block size "
                "and saturates;\nlarger k and c lower the curve.\n");
    return 0;
}
