/**
 * @file
 * Simulator-performance benchmark: wall-clock throughput of the
 * discrete-event serving core itself.
 *
 * Every other bench measures what the *simulated* fleet does; this one
 * measures how fast the simulator simulates — the number that decides
 * whether a million-request sweep at fleet 16/32 is routine or
 * unaffordable. The O(log n) core (heap event queue, policy-indexed
 * admission queue, streaming workload generator) replaced the seed
 * loop's linear rescans; this bench keeps both engines honest:
 *
 *  - a fleet x trace-length matrix runs the production engine and
 *    reports simulated-requests-per-second and events-per-second
 *    (service costs come from a fixed synthetic phase table, so the
 *    measurement is pure event-loop work, no accelerator profiling);
 *  - the preserved seed engine (runtime/reference) runs the anchor
 *    row's configuration at a shorter trace (the seed loop's per-event
 *    cost is bounded by queue depth, not trace length, so its rps is
 *    length-independent; running it at 10^6 would only burn minutes
 *    measuring the same number) and both engines' reports on that
 *    shared trace are compared byte-for-byte;
 *  - gates (exit nonzero): the anchor row — 10^6 requests, fleet 16 —
 *    must clear a stored requests-per-second floor, beat the seed
 *    engine by >= 10x, and match it byte-identically on the
 *    cross-check trace.
 *
 * `--threads N` (default 1 = serial, 0 = one per hardware thread)
 * runs the matrix rows and the sharded tier on a work-stealing
 * ProbeExecutor. Beyond the matrix, the parallel path adds a *sharded*
 * tier: fleet 256 as 16 disjoint sub-fleets of 16, each serving an
 * independent 1/16 slice of a 10^7-request offered load in its own
 * event loop, merged deterministically in shard order
 * (mergeShardReports). The shard count is fixed — never derived from
 * the thread count — so the merged report is byte-identical whatever
 * --threads says; a small sharded row is re-run serially and
 * byte-compared to prove it. On a 4+-core runner with --threads >= 4
 * the tier must clear its own stored floor (>= 3x the single-thread
 * anchor floor); on smaller machines the floor is reported but not
 * gated, because there is no parallel speedup to measure.
 *
 * Results go to BENCH_simperf.json. `--quick` runs the anchor row and
 * one small row (CI's Release-stage configuration); `--smoke` runs a
 * single 10^5-request row with no floor gate (CI's sanitized stage,
 * where wall-clock floors would measure ASan, not the simulator).
 * docs/PERFORMANCE.md explains how to read the output and when to
 * move the floor.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/json.hpp"
#include "runtime/executor.hpp"
#include "runtime/reference.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/serving_stats.hpp"
#include "runtime/workload.hpp"
#include "sim/accel_config.hpp"

using namespace pointacc;

namespace {

/**
 * Conservative absolute floor for the anchor row (10^6 requests,
 * fleet 16, Release). Measured ~2.5M req/s on the development
 * container; the floor sits far below that so machine variance never
 * trips it while an accidental return to linear scans (~50-100x
 * slower there) always does. Update procedure: docs/PERFORMANCE.md.
 */
constexpr double kFloorRequestsPerSec = 250'000.0;

/** Anchor-row shape: the gated configuration. */
constexpr std::size_t kAnchorFleet = 16;
constexpr std::uint64_t kAnchorRequests = 1'000'000;

/** Requests in the seed-baseline measurement (see file header). */
constexpr std::uint64_t kBaselineRequests = 100'000;

/** Sharded-tier shape: 16 sub-fleets of 16 (fleet 256 total) over a
 *  10^7-request offered load. The shard count is a constant, not a
 *  function of --threads: output must not depend on parallelism. */
constexpr std::size_t kShardCount = 16;
constexpr std::size_t kShardFleet = 16;
constexpr std::uint64_t kShardTierRequests = 10'000'000;

/** Requests in the sharded determinism cross-check row (run twice —
 *  parallel and serial — and byte-compared). */
constexpr std::uint64_t kShardCheckRequests = 100'000;

/**
 * Multi-thread floor: the sharded tier on a 4+-core runner with
 * --threads >= 4 must sustain >= 3x the single-thread anchor floor.
 * Like kFloorRequestsPerSec it is deliberately conservative —
 * variance never trips it, losing the parallelism (or the O(log n)
 * core) does. Gated only when both the flag and the hardware provide
 * >= 4 threads; update procedure: docs/PERFORMANCE.md.
 */
constexpr double kShardFloorRequestsPerSec = 750'000.0;

/**
 * Fixed phase table: deterministic costs spanning map-bound,
 * backend-bound and mixed shapes, so the event loop sees realistic
 * phase interleavings without touching the accelerator simulator.
 */
class TableServiceModel : public ServiceModel
{
  public:
    ServiceProfile
    profile(const AcceleratorConfig &, std::uint32_t network_id,
            std::uint32_t bucket) const override
    {
        static constexpr struct
        {
            std::uint64_t map, backend, weight;
        } kTable[3][2] = {
            // small bucket          large bucket
            {{4'000, 16'000, 3'000}, {9'000, 36'000, 6'000}},   // net 0
            {{12'000, 20'000, 5'000}, {26'000, 44'000, 10'000}}, // net 1
            {{40'000, 60'000, 9'000}, {90'000, 130'000, 18'000}},// net 2
        };
        const auto &row = kTable[network_id % 3][bucket % 2];
        ServiceProfile p;
        p.mappingCycles = row.map;
        p.computeCycles = row.backend;
        p.totalCycles = row.map + row.backend;
        p.weightLoadCycles = row.weight;
        p.mapBytes = 8 * row.map;
        return p;
    }
};

struct Row
{
    std::size_t fleetSize = 0;
    /** Shards the row was split into (0 = unsharded event loop). */
    std::size_t shards = 0;
    std::uint64_t targetRequests = 0;
    std::uint64_t generated = 0;
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t loopEvents = 0;
    double wallMs = 0.0;
    double requestsPerSec = 0.0;
    double eventsPerSec = 0.0;
};

SchedulerConfig
benchConfig(std::size_t fleet_size)
{
    SchedulerConfig scfg;
    scfg.policy = QueuePolicy::Fifo;
    scfg.occupancy = OccupancyModel::Pipelined;
    scfg.batcher.enabled = true;
    scfg.batcher.maxBatchSize = 8;
    // Constant per-instance backlog (bench_serving runs 256 at fleet
    // 1-4): a fleet-16 admission queue holds 4096 requests. Queue
    // depth is precisely where the seed's O(depth) selection scans
    // made big-fleet sweeps unaffordable.
    scfg.queueDepth = 256 * fleet_size;
    return scfg;
}

WorkloadSpec
benchSpec(std::size_t fleet_size, std::uint64_t target_requests)
{
    // The mix averages ~46k cycles/request; 2.5x per-instance capacity
    // pins the admission queue at its depth limit — the sustained-
    // overload regime where per-pop selection cost is what separates
    // the engines (an idle queue makes even a linear scan cheap) and
    // the regime capacity sweeps at fleet 16/32 actually probe.
    WorkloadSpec spec;
    spec.seed = 20260730;
    spec.mix = {
        {0, 0, 4.0, 0},
        {1, 1, 2.0, 0},
        {2, 1, 1.0, 0},
    };
    const double meanCycles =
        (4.0 * 20'000 + 2.0 * 70'000 + 1.0 * 220'000) / 7.0;
    const double perInstanceCapacity = 1e6 / meanCycles;
    spec.requestsPerMCycle = 2.5 * perInstanceCapacity *
                             static_cast<double>(fleet_size);
    spec.horizonCycles = static_cast<std::uint64_t>(
        static_cast<double>(target_requests) * 1e6 /
        spec.requestsPerMCycle);
    spec.arrivals = ArrivalProcess::Poisson;
    return spec;
}

double
wallMsSince(std::chrono::steady_clock::time_point t0)
{
    const auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double, std::milli>(dt).count();
}

Row
runRow(const TableServiceModel &model, std::size_t fleet_size,
       std::uint64_t target_requests)
{
    const std::vector<AcceleratorConfig> fleet(fleet_size,
                                               pointAccConfig());
    FleetScheduler sched(fleet, model, {1.0, 2.0}, benchConfig(fleet_size));
    WorkloadGenerator gen(benchSpec(fleet_size, target_requests));

    const auto t0 = std::chrono::steady_clock::now();
    WorkloadStream stream = gen.stream();
    const ServingReport report = sched.run(stream);
    const double ms = wallMsSince(t0);

    Row row;
    row.fleetSize = fleet_size;
    row.targetRequests = target_requests;
    row.generated = report.generated;
    row.completed = report.completed;
    row.dropped = report.dropped;
    row.loopEvents = report.loopEvents;
    row.wallMs = ms;
    row.requestsPerSec =
        static_cast<double>(report.generated) / (ms / 1e3);
    row.eventsPerSec =
        static_cast<double>(report.loopEvents) / (ms / 1e3);
    return row;
}

/**
 * The sharded tier: split `total_requests` across kShardCount
 * independent sub-fleet event loops (each fleet kShardFleet, its own
 * workload slice at 1/kShardCount of the offered rate, seed mixed
 * with the shard index), run them as executor tasks, and merge in
 * shard order. The merged report — returned through `merged_out` for
 * the determinism cross-check — depends only on the shard constants,
 * never on how many threads executed them.
 */
Row
runShardedRow(const TableServiceModel &model, ProbeExecutor &pool,
              std::uint64_t total_requests, ServingReport *merged_out)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::function<ServingReport()>> tasks;
    tasks.reserve(kShardCount);
    for (std::size_t shard = 0; shard < kShardCount; ++shard) {
        tasks.push_back([&model, shard, total_requests] {
            WorkloadSpec spec =
                benchSpec(kShardFleet, total_requests / kShardCount);
            spec.seed += 7919 * static_cast<decltype(spec.seed)>(shard);
            const std::vector<AcceleratorConfig> fleet(kShardFleet,
                                                       pointAccConfig());
            FleetScheduler sched(fleet, model, {1.0, 2.0},
                                 benchConfig(kShardFleet));
            WorkloadGenerator gen(spec);
            WorkloadStream stream = gen.stream();
            return sched.run(stream);
        });
    }
    const std::vector<ServingReport> shards = pool.map(std::move(tasks));
    const ServingReport merged = mergeShardReports(shards);
    const double ms = wallMsSince(t0);

    Row row;
    row.fleetSize = kShardCount * kShardFleet;
    row.shards = kShardCount;
    row.targetRequests = total_requests;
    row.generated = merged.generated;
    row.completed = merged.completed;
    row.dropped = merged.dropped;
    row.loopEvents = merged.loopEvents;
    row.wallMs = ms;
    row.requestsPerSec = static_cast<double>(merged.generated) / (ms / 1e3);
    row.eventsPerSec = static_cast<double>(merged.loopEvents) / (ms / 1e3);
    if (merged_out != nullptr)
        *merged_out = merged;
    return row;
}

void
printRow(const Row &r)
{
    std::printf("%5zu %10llu %10llu %8.1f%% %12.0f %12.0f %9.1f\n",
                r.fleetSize,
                static_cast<unsigned long long>(r.generated),
                static_cast<unsigned long long>(r.loopEvents),
                100.0 * static_cast<double>(r.dropped) /
                    static_cast<double>(r.generated),
                r.requestsPerSec, r.eventsPerSec, r.wallMs);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath = "BENCH_simperf.json";
    bool quick = false;
    bool smoke = false;
    std::size_t threadsArg = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--no-json") == 0)
            jsonPath.clear();
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threadsArg = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        else {
            std::fprintf(stderr,
                         "error: unknown argument '%s' (expected "
                         "--json <path>, --no-json, --quick, --smoke, "
                         "--threads <n>)\n",
                         argv[i]);
            return 2;
        }
    }

    bench::banner("Simulator performance: the discrete-event core itself",
                  "runtime/ subsystem (beyond the paper)");

    const TableServiceModel model;
    const std::size_t poolThreads =
        ProbeExecutor::resolveThreads(threadsArg);
    ProbeExecutor pool(poolThreads);
    std::printf("threads: %zu (%s)\n", poolThreads,
                poolThreads == 0 ? "serial, inline"
                                 : "work-stealing pool");

    std::vector<std::pair<std::size_t, std::uint64_t>> matrix;
    if (smoke) {
        matrix = {{4, 100'000}};
    } else if (quick) {
        matrix = {{4, 100'000}, {kAnchorFleet, kAnchorRequests}};
    } else {
        for (const std::uint64_t n :
             {std::uint64_t{10'000}, std::uint64_t{100'000},
              std::uint64_t{1'000'000}})
            for (const std::size_t f : {1u, 4u, 16u, 32u})
                matrix.emplace_back(f, n);
    }

    std::printf("%5s %10s %10s %9s %12s %12s %9s\n", "fleet", "requests",
                "events", "drop", "req/s", "events/s", "wall ms");
    bench::rule(78);

    // Each matrix row is one executor task; map() hands the rows back
    // in declaration order however the workers interleaved, so the
    // table and BENCH_simperf.json keep their serial layout. (Rows
    // time themselves, so concurrent rows share cores — the anchor
    // floor is conservative enough to absorb that.)
    std::vector<std::function<Row()>> rowTasks;
    rowTasks.reserve(matrix.size());
    for (const auto &[fleetSize, requests] : matrix)
        rowTasks.push_back([&model, fleetSize = fleetSize,
                            requests = requests] {
            return runRow(model, fleetSize, requests);
        });
    std::vector<Row> rows = pool.map(std::move(rowTasks));
    // Sharded-tier rows are appended below; reserving now keeps the
    // `anchor` pointer into `rows` stable across those push_backs.
    rows.reserve(rows.size() + 2);
    const Row *anchor = nullptr;
    for (const Row &row : rows) {
        printRow(row);
        if (row.shards == 0 && row.fleetSize == kAnchorFleet &&
            row.targetRequests == kAnchorRequests)
            anchor = &row;
    }
    bench::rule(78);

    bool ok = true;
    double seedRps = 0.0;
    double speedup = 0.0;
    bool crossChecked = false;

    if (anchor != nullptr && !smoke) {
        // Seed baseline on the anchor configuration: the preserved
        // reference engine over a shorter trace of the same shape
        // (its per-event cost is depth-bound, not length-bound), plus
        // a byte-identity cross-check of both engines on that trace.
        const WorkloadSpec spec =
            benchSpec(kAnchorFleet, kBaselineRequests);
        const std::vector<AcceleratorConfig> fleet(kAnchorFleet,
                                                   pointAccConfig());
        const std::vector<Request> trace =
            WorkloadGenerator(spec).generate();

        const auto t0 = std::chrono::steady_clock::now();
        const ServingReport seedReport = runServingReference(
            fleet, model, {1.0, 2.0}, benchConfig(kAnchorFleet), trace);
        const double seedMs = wallMsSince(t0);
        seedRps = static_cast<double>(seedReport.generated) /
                  (seedMs / 1e3);
        speedup = anchor->requestsPerSec / seedRps;

        const ServingReport newReport =
            FleetScheduler(fleet, model, {1.0, 2.0},
                           benchConfig(kAnchorFleet))
                .run(trace);
        std::ostringstream seedJson, newJson;
        writeServingJson(seedJson, seedReport);
        writeServingJson(newJson, newReport);
        crossChecked = seedJson.str() == newJson.str();

        const bool aboveFloor =
            anchor->requestsPerSec >= kFloorRequestsPerSec;
        const bool fastEnough = speedup >= 10.0;
        ok = aboveFloor && fastEnough && crossChecked;

        std::printf("anchor row (fleet %zu, %llu requests): %.0f req/s "
                    "(floor %.0f): %s\n",
                    kAnchorFleet,
                    static_cast<unsigned long long>(kAnchorRequests),
                    anchor->requestsPerSec, kFloorRequestsPerSec,
                    aboveFloor ? "OK" : "VIOLATED");
        std::printf("seed engine baseline: %.0f req/s (%llu-request "
                    "trace, %.1f ms) -> speedup %.1fx (>= 10x): %s\n",
                    seedRps,
                    static_cast<unsigned long long>(kBaselineRequests),
                    seedMs, speedup, fastEnough ? "OK" : "VIOLATED");
        std::printf("engines byte-identical on the shared trace: %s\n",
                    crossChecked ? "OK" : "VIOLATED");
    } else if (!smoke) {
        std::printf("anchor row not in the selected matrix; floor gate "
                    "skipped\n");
    }

    // ------------------------------------------------------------ //
    // Sharded tier: fleet 256 via 16 per-shard event loops.        //
    // ------------------------------------------------------------ //

    bool shardedDeterministic = true;
    bool shardFloorGated = false;
    double shardRps = 0.0;
    if (!smoke) {
        std::printf("\nsharded tier: fleet %zu as %zu x %zu shards, "
                    "%llu requests\n",
                    kShardCount * kShardFleet, kShardCount, kShardFleet,
                    static_cast<unsigned long long>(kShardTierRequests));
        bench::rule(78);
        const Row shardRow =
            runShardedRow(model, pool, kShardTierRequests, nullptr);
        printRow(shardRow);
        rows.push_back(shardRow);
        shardRps = shardRow.requestsPerSec;

        // Determinism gate: the same (small) sharded row through the
        // pool and through an inline serial executor must merge to a
        // byte-identical report — thread count must never leak into
        // output. Always enforced: it needs threads, not cores.
        ServingReport pooled, serial;
        const Row checkRow = runShardedRow(model, pool,
                                           kShardCheckRequests, &pooled);
        rows.push_back(checkRow);
        ProbeExecutor inlinePool(0);
        runShardedRow(model, inlinePool, kShardCheckRequests, &serial);
        std::ostringstream pooledJson, serialJson;
        writeServingJson(pooledJson, pooled);
        writeServingJson(serialJson, serial);
        shardedDeterministic = pooledJson.str() == serialJson.str();
        ok = ok && shardedDeterministic;
        std::printf("sharded merge byte-identical, parallel vs serial "
                    "(%llu requests): %s\n",
                    static_cast<unsigned long long>(kShardCheckRequests),
                    shardedDeterministic ? "OK" : "VIOLATED");

        // The multi-thread floor measures parallel speedup, so it
        // gates only when the flag and the hardware both provide >= 4
        // threads (the "4+-core runner" the floor was stored on).
        const std::size_t hwThreads = std::max(
            1u, std::thread::hardware_concurrency());
        shardFloorGated = poolThreads >= 4 && hwThreads >= 4;
        const bool aboveShardFloor =
            shardRps >= kShardFloorRequestsPerSec;
        if (shardFloorGated)
            ok = ok && aboveShardFloor;
        std::printf("sharded tier: %.0f req/s (multi-thread floor %.0f, "
                    "3x anchor floor): %s%s\n",
                    shardRps, kShardFloorRequestsPerSec,
                    aboveShardFloor ? "OK" : "VIOLATED",
                    shardFloorGated
                        ? ""
                        : " [not gated: needs --threads >= 4 on a "
                          "4+-core runner]");
    }

    if (!jsonPath.empty()) {
        std::ofstream jf(jsonPath);
        JsonWriter w(jf);
        w.beginObject();
        w.field("bench", "simperf");
        w.field("threads", static_cast<std::uint64_t>(poolThreads));
        w.field("floor_requests_per_sec", kFloorRequestsPerSec);
        w.field("seed_requests_per_sec", seedRps);
        w.field("speedup_vs_seed", speedup);
        w.field("engines_byte_identical", crossChecked);
        w.field("shard_floor_requests_per_sec", kShardFloorRequestsPerSec);
        w.field("shard_floor_gated", shardFloorGated);
        w.field("sharded_requests_per_sec", shardRps);
        w.field("sharded_merge_deterministic", shardedDeterministic);
        w.key("rows").beginArray();
        for (const auto &r : rows) {
            w.beginObject();
            w.field("fleet_size",
                    static_cast<std::uint64_t>(r.fleetSize));
            w.field("shards", static_cast<std::uint64_t>(r.shards));
            w.field("target_requests", r.targetRequests);
            w.field("generated", r.generated);
            w.field("completed", r.completed);
            w.field("dropped", r.dropped);
            w.field("loop_events", r.loopEvents);
            w.field("wall_ms", r.wallMs);
            w.field("requests_per_sec", r.requestsPerSec);
            w.field("events_per_sec", r.eventsPerSec);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        jf << '\n';
        jf.flush();
        if (jf.good())
            std::printf("wrote %s\n", jsonPath.c_str());
        else
            std::fprintf(stderr, "error: could not write %s\n",
                         jsonPath.c_str());
    }
    return ok ? 0 : 1;
}
