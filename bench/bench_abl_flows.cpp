/**
 * @file
 * Ablation (Section 4.2.3 claim): the Fetch-on-Demand flow saves the
 * DRAM access for input features by at least 3x versus
 * Gather-MatMul-Scatter, across layer shapes and datasets.
 */

#include "bench_util.hpp"
#include "mapping/kernel_map.hpp"
#include "memory/flows.hpp"
#include "sim/accel_config.hpp"

using namespace pointacc;

int
main()
{
    bench::banner("bench_abl_flows",
                  "Section 4.2.3 ablation (input-feature DRAM: "
                  "Gather-MatMul-Scatter vs Fetch-on-Demand)");

    const auto accel = pointAccConfig();
    std::printf("%-16s %-10s %14s %14s %10s\n", "dataset", "channels",
                "G-M-S MB", "F-o-D MB", "saving");

    std::vector<double> savings;
    for (const auto kind : {DatasetKind::ShapeNet, DatasetKind::S3DIS,
                            DatasetKind::SemanticKITTI}) {
        const auto cloud = generate(kind, 20211018,
                                    bench::datasetScale(kind) * 0.5);
        KernelMapConfig kcfg;
        const auto maps = sortKernelMap(cloud, cloud, kcfg);
        for (std::uint32_t c : {32u, 64u, 128u}) {
            SparseLayerShape shape;
            shape.numInputs = static_cast<std::uint32_t>(cloud.size());
            shape.numOutputs = static_cast<std::uint32_t>(cloud.size());
            shape.inChannels = c;
            shape.outChannels = c;
            const auto gs = gatherMatMulScatterTraffic(maps, shape);
            const auto fod =
                fetchOnDemandTraffic(maps, shape, accel.cacheConfig(16));
            const double gsInput =
                static_cast<double>(gs.inputReadBytes +
                                    gs.scratchWriteBytes / 2 +
                                    gs.scratchReadBytes / 2);
            const double fodInput =
                static_cast<double>(fod.traffic.inputReadBytes);
            const double saving = gsInput / fodInput;
            savings.push_back(saving);
            std::printf("%-16s %-10u %14.2f %14.2f %9.1fx\n",
                        toString(kind).c_str(), c, gsInput / 1e6,
                        fodInput / 1e6, saving);
        }
    }
    std::printf("geomean input-feature DRAM saving: %.1fx (paper: "
                ">= 3x)\n", geomean(savings));
    return 0;
}
