/**
 * @file
 * Figure 21: overall performance breakdown of PointAcc running
 * MinkowskiUNet on SemanticKITTI — (a) latency breakdown vs CPU+TPU
 * and GPU, (b) PointAcc energy split across compute / SRAM / DRAM.
 *
 * Paper reference: on PointAcc, MatMul dominates latency (mapping and
 * data movement mostly hidden); energy is ~74% compute, ~6% SRAM,
 * ~20% DRAM.
 */

#include "baselines/platform.hpp"
#include "bench_util.hpp"
#include "nn/zoo.hpp"
#include "sim/accelerator.hpp"

using namespace pointacc;

int
main()
{
    bench::banner("bench_fig21_overall",
                  "Fig. 21 (PointAcc latency + energy breakdown on "
                  "MinkNet(o))");

    const auto net = minkowskiUNetOutdoor();
    const auto cloud = bench::benchCloud(net);
    const auto w = summarizeWorkload(net, cloud);

    std::printf("\n[latency breakdown] %s, %zu points\n",
                net.notation.c_str(), cloud.size());
    std::printf("%-16s %10s %10s %10s %10s\n", "platform", "total ms",
                "data-mv", "matmul", "mapping");

    const auto tpu = estimatePlatform(tpuV3(), net.notation, w);
    std::printf("%-16s %10.2f %10.2f %10.2f %10.2f\n", "CPU+TPU",
                tpu.totalMs(), tpu.dataMovementMs, tpu.matmulMs,
                tpu.mappingMs);
    const auto gpu = estimatePlatform(rtx2080Ti(), net.notation, w);
    std::printf("%-16s %10.2f %10.2f %10.2f %10.2f\n", "GPU",
                gpu.totalMs(), gpu.dataMovementMs, gpu.matmulMs,
                gpu.mappingMs);

    Accelerator accel(pointAccConfig());
    const auto ours = accel.run(net, cloud);
    std::printf("%-16s %10.2f %10.2f %10.2f %10.2f\n", "PointAcc",
                ours.latencyMs(),
                static_cast<double>(ours.exposedDramCycles) / 1e6,
                static_cast<double>(ours.computeCycles) / 1e6,
                static_cast<double>(ours.mappingCycles) / 1e6);

    std::printf("\n[energy breakdown] PointAcc total %.3f mJ\n",
                ours.energyMJ());
    const double total = ours.energy.totalPJ();
    std::printf("  compute: %5.1f%%\n",
                100.0 * ours.energy.computePJ / total);
    std::printf("  SRAM:    %5.1f%%\n",
                100.0 * ours.energy.sramPJ / total);
    std::printf("  DRAM:    %5.1f%%\n",
                100.0 * ours.energy.dramPJ / total);
    std::printf("\nPaper reference: MatMul-dominated latency; energy "
                "~74%% compute / 6%% SRAM / 20%% DRAM.\n");
    return 0;
}
