/**
 * @file
 * Figure 20: DRAM access reduction of fusion-mode memory management
 * (temporal layer fusion) vs running layer by layer, on the
 * PointNet/PointNet++ family.
 *
 * Paper reference: 64% (PointNet), 41% (PointNet++(c)), 33%
 * (PointNet++(ps)), 39% (PointNet++(s)). PointNet fuses the most
 * because it has no downsampling layers breaking its MLP chains.
 */

#include "bench_util.hpp"
#include "nn/zoo.hpp"
#include "sim/accelerator.hpp"

using namespace pointacc;

int
main()
{
    bench::banner("bench_fig20_fusion",
                  "Fig. 20 (DRAM reduction from temporal layer fusion)");

    Accelerator accel(pointAccConfig());
    const std::vector<Network> nets = {pointNet(), pointNetPPClass(),
                                       pointNetPPPartSeg(),
                                       pointNetPPSemSeg()};

    std::printf("%-15s %12s %12s %10s %12s\n", "network", "unfused MB",
                "fused MB", "reduction", "act-only");
    for (const auto &net : nets) {
        const auto cloud = bench::benchCloud(net);
        RunOptions with, without;
        without.useFusion = false;
        const auto rWith = accel.run(net, cloud, with);
        const auto rWithout = accel.run(net, cloud, without);
        const double fused = static_cast<double>(rWith.dramReadBytes +
                                                 rWith.dramWriteBytes);
        const double unfused =
            static_cast<double>(rWithout.dramReadBytes +
                                rWithout.dramWriteBytes);
        // Weight traffic is identical in both modes; subtracting it
        // isolates the activation reduction Fig. 20 reports.
        const double weights = static_cast<double>(
            summarizeWorkload(net, cloud).weightBytes);
        const double actReduction =
            1.0 - (fused - weights) / (unfused - weights);
        std::printf("%-15s %12.2f %12.2f %9.0f%% %11.0f%%\n",
                    net.notation.c_str(), unfused / 1e6, fused / 1e6,
                    100.0 * (1.0 - fused / unfused),
                    100.0 * actReduction);
    }
    std::printf("\nPaper reference: 64%% / 41%% / 33%% / 39%% "
                "(activation traffic only;\nthis table also counts "
                "weight traffic, which dilutes the percentages).\n");
    return 0;
}
