/**
 * @file
 * Ablation (Section 4.1.4 claim): the MPU's truncated-mergesort TopK
 * is ~1.18x faster than SpAtten's quick-selection top-k engine at the
 * same parallelism.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/rng.hpp"
#include "mpu/alt_engines.hpp"
#include "mpu/mpu.hpp"

using namespace pointacc;

namespace {

ElementVec
randomDistances(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    ElementVec v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        v.push_back(distanceElement(
            static_cast<std::int64_t>(rng.range(1 << 20)),
            static_cast<std::int32_t>(i)));
    }
    return v;
}

void
BM_MpuTopK(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto k = static_cast<std::size_t>(state.range(1));
    const auto data = randomDistances(n, n);
    MappingUnit mpu(MpuConfig{64, 64, 13});
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        MpuStats stats;
        auto out = mpu.topK(data, k, stats);
        cycles = stats.cycles;
        benchmark::DoNotOptimize(out.size());
    }
    state.counters["model_cycles"] = static_cast<double>(cycles);
}

void
BM_QuickSelectTopK(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto k = static_cast<std::size_t>(state.range(1));
    const auto data = randomDistances(n, n);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        QuickSelectStats stats;
        auto out = quickSelectTopK(data, k, 64, stats);
        cycles = stats.cycles;
        benchmark::DoNotOptimize(out.size());
    }
    state.counters["model_cycles"] = static_cast<double>(cycles);
}

} // namespace

BENCHMARK(BM_MpuTopK)
    ->Args({8192, 16})
    ->Args({8192, 32})
    ->Args({8192, 64})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_QuickSelectTopK)
    ->Args({8192, 16})
    ->Args({8192, 32})
    ->Args({8192, 64})
    ->Unit(benchmark::kMicrosecond);

int
main(int argc, char **argv)
{
    bench::banner("bench_abl_topk",
                  "Section 4.1.4 ablation (MPU TopK vs quick-selection "
                  "engine, equal parallelism)");

    std::vector<double> ratios;
    std::printf("%-10s %-6s %16s %16s %8s\n", "n", "k", "MPU cycles",
                "quick-sel cycles", "speedup");
    for (std::size_t k : {16u, 32u, 64u}) {
        const auto data = randomDistances(8192, k);
        MappingUnit mpu(MpuConfig{64, 64, 13});
        MpuStats mpuStats;
        mpu.topK(data, k, mpuStats);
        QuickSelectStats qsStats;
        quickSelectTopK(data, k, 64, qsStats);
        const double ratio = static_cast<double>(qsStats.cycles) /
                             static_cast<double>(mpuStats.cycles);
        ratios.push_back(ratio);
        std::printf("%-10d %-6zu %16llu %16llu %7.2fx\n", 8192, k,
                    static_cast<unsigned long long>(mpuStats.cycles),
                    static_cast<unsigned long long>(qsStats.cycles),
                    ratio);
    }
    std::printf("average speedup: %.2fx (paper: 1.18x)\n\n",
                geomean(ratios));

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
