/**
 * @file
 * Figure 13: speedup and energy savings of PointAcc over server-class
 * platforms (RTX 2080Ti, CPU+TPU-v3, Xeon Gold 6130) on all 8
 * benchmarks, with geometric means.
 *
 * Paper reference points (geomean): 3.7x / 53x / 90x speedup and
 * 22x / 210x / 176x energy savings respectively.
 */

#include "baselines/platform.hpp"
#include "bench_util.hpp"
#include "nn/zoo.hpp"
#include "sim/accelerator.hpp"

using namespace pointacc;

int
main()
{
    bench::banner("bench_fig13_server",
                  "Fig. 13 (speedup + energy vs RTX 2080Ti / CPU+TPU / "
                  "Xeon 6130)");

    Accelerator accel(pointAccConfig());
    const std::vector<const PlatformSpec *> platforms = {
        &rtx2080Ti(), &tpuV3(), &xeonGold6130()};

    std::printf("%-15s", "network");
    for (const auto *p : platforms)
        std::printf(" | %-9.9s  su    es", p->name.c_str());
    std::printf("\n");

    std::vector<std::vector<double>> speedups(platforms.size());
    std::vector<std::vector<double>> energies(platforms.size());

    for (const auto &net : allBenchmarks()) {
        const auto cloud = bench::benchCloud(net);
        const auto ours = accel.run(net, cloud);
        const auto w = summarizeWorkload(net, cloud);

        std::printf("%-15s", net.notation.c_str());
        for (std::size_t i = 0; i < platforms.size(); ++i) {
            const auto r =
                estimatePlatform(*platforms[i], net.notation, w);
            const double su = r.totalMs() / ours.latencyMs();
            const double es = r.energyMJ / ours.energyMJ();
            speedups[i].push_back(su);
            energies[i].push_back(es);
            std::printf(" | %9.1f %9.0f", su, es);
        }
        std::printf("\n");
    }

    std::printf("%-15s", "geomean");
    for (std::size_t i = 0; i < platforms.size(); ++i)
        std::printf(" | %9.1f %9.0f", geomean(speedups[i]),
                    geomean(energies[i]));
    std::printf("\n\nPaper geomeans: GPU 3.7x/22x, CPU+TPU 53x/210x, "
                "CPU 90x/176x.\n");
    return 0;
}
