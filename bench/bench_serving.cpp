/**
 * @file
 * Serving-runtime benchmark: throughput and tail latency of PointAcc
 * fleets under open-loop load.
 *
 * Not a paper figure — this drives the runtime/ subsystem that grows
 * the reproduction toward a serving system. Seven sweeps:
 *
 *  1. fleet scaling: 1 / 2 / 4 PointAcc instances at a fixed offered
 *     load (p99 must not increase with fleet size);
 *  2. queue policy: FIFO vs SJF at rising load on one instance;
 *  3. batching: on vs off for a batch-friendly (single-network) mix;
 *  4. occupancy: monolithic whole-run busy intervals vs the two-stage
 *     pipeline (Mapping Unit front-end overlapping the Matrix Unit +
 *     memory back-end of the previous dispatch) at fleet sizes 1 and
 *     2 — the pipeline must win throughput or p99 at equal fleet
 *     size (throughput is checked first: it is the robust signal,
 *     the fleet-2 p99 margin sits near a tie);
 *  5. wait-for-K batching: dispatch-immediately vs holding the queue
 *     head (bounded by a timeout) to accumulate same-network batches;
 *  6. kernel-map cache: repeated-frame stream traffic (mapReuseProb
 *     0 / 0.5 / 0.9) served with the content-addressed map cache on
 *     vs off at fleet sizes 1 and 2 — at reuse >= 0.5 caching must
 *     strictly improve p99 or throughput;
 *  7. capacity planning (`--sweep plan`, opt-in — it runs its own
 *     exhaustive cross-check grid, so `all` excludes it): the
 *     CapacityPlanner's pick on a quick grid must equal the
 *     exhaustive-search optimum while spending strictly fewer probes,
 *     within a fixed probe budget. `--smoke` shrinks this sweep to a
 *     2-probe exhaustive micro-grid for the sanitized CI pass.
 *  8. heterogeneous capacity planning (`--sweep hetero`, opt-in like
 *     plan): a two-kind composition lattice — a 2 GHz server-class
 *     PointAcc and a 1 GHz PointAcc.Edge (Table 3's split, with the
 *     server clock raised so the wall-clock event axis genuinely
 *     converts two frequencies) — searched under the watts objective
 *     with a binding watt budget. Gates: the lattice pick equals the
 *     exhaustive oracle's while spending strictly fewer probes, the
 *     budget excludes real lattice points, the parallel plan is
 *     byte-identical to serial, and a uniform-1 GHz mixed
 *     server+edge fleet served by the production scheduler is
 *     byte-identical to the frozen cycle-domain reference engine
 *     (the time-domain migration's identity check on a fleet the
 *     homogeneous differential suite cannot build). `--smoke`
 *     shrinks the lattice to 3 compositions of structural checks for
 *     the sanitized passes.
 *  9. traffic programs (`--sweep traffic`, opt-in like plan): a
 *     flash-crowd program (runtime/traffic) is sized by the
 *     CapacityPlanner, then replayed against (a) that static fleet
 *     and (b) the reactive autoscaler (runtime/autoscaler) starting
 *     from a one-instance floor. Gates: the planner's fleet holds its
 *     p99 SLO through the crowd, the autoscaler scales up at least
 *     once and converges (no scale action in the final 10% of the
 *     horizon), and its powered-instance-cycle total undercuts static
 *     provisioning — quantifying exactly what static sizing buys.
 *     `--smoke` shrinks it to structural checks for the sanitized
 *     pass.
 * 10. fault injection (`--sweep faults`, opt-in like plan): five
 *     scenarios on a two-instance fleet — fault-free baseline, a
 *     scheduled mid-horizon crash with bounded-backoff retries, a
 *     straggler window, a stochastic MTBF/MTTR process and hedged
 *     re-dispatch — plus three gates: (a) an enabled-but-empty fault
 *     program leaves the 1 GHz production engine byte-identical to
 *     the frozen cycle-domain reference; (b) the availability-mode
 *     planner (PlanSearchSpace::faults) pays for spare capacity, and
 *     that spare rides out a crash the nominal fleet provably fails;
 *     (c) every faulted row keeps the extended conservation identity
 *     admitted = completed + failed + leftover and goodput <=
 *     throughput. `--smoke` keeps the rows and identity gate but
 *     relaxes (b) to structural checks (short horizons make the
 *     nominal fleet's SLO miss a coin flip).
 * 11. run-ahead + cost-aware dispatch (`--sweep runahead`, opt-in
 *     like plan): two grids. (a) The dispatch trio — pure-eager
 *     (target K 1), pure-hold (wait-for-K with the blind timer) and
 *     the cost-aware hold-vs-dispatch — on Poisson single-network
 *     traffic at the amortized capacity knee, gated on cost-aware
 *     winning throughput or p99 against BOTH baselines. (b) A
 *     run-ahead depth ladder (k = 1/2/4, batching off, unbounded
 *     queue) where deepening the mapped-output buffer must never
 *     lose throughput or p99 (each map can only start earlier).
 *     Plus the byte-identity gate: depth 1 with cost-aware off is
 *     byte-identical to the frozen reference engine. `--smoke`
 *     keeps rows and identity but relaxes the perf gates to
 *     structural checks.
 *
 * Results print as a table and are dumped to BENCH_serving.json for
 * the machine-readable perf trajectory (a `plan` object is appended
 * when the plan sweep ran, a `traffic` object when the traffic sweep
 * ran, a `hetero_plan` object when the hetero sweep ran, a `faults`
 * object when the faults sweep ran).
 * `--sweep <name>` (fleet, policy, batching, pipeline,
 * wait-for-k, cache, plan, hetero, traffic, faults, runahead, all)
 * restricts the run — CI uses
 * `--sweep cache --quick` for the sanitized pass — and `--quick`
 * shrinks the arrival horizon. The exit code reflects only the
 * acceptance gates of the sweeps that actually ran.
 *
 * `--threads N` (default 1 = serial, 0 = one per hardware thread)
 * runs each sweep's scenario matrix on a work-stealing ProbeExecutor
 * and hands the planner the same thread budget for speculative
 * probes. Rows come back in declaration order whatever the execution
 * interleaving, and every scenario is a pure function of its (spec,
 * config) inputs, so BENCH_serving.json is byte-identical to a serial
 * run; for the planner that identity is gated here — the parallel
 * plan is re-run serially and the two writePlanJson outputs must
 * match byte for byte.
 *
 * State hygiene: every sweep derives its WorkloadSpec from one const
 * `base` and owns its mutations locally; the only object shared
 * across rows is the SimServiceModel, whose memoized profiles are
 * pure values (gated by acceptance check 0). Row JSON is therefore
 * independent of which sweeps ran and in what order —
 * tests/test_runtime_properties.cpp pins that property.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/json.hpp"
#include "nn/zoo.hpp"
#include "runtime/executor.hpp"
#include "runtime/planner.hpp"
#include "runtime/reference.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/serving_stats.hpp"
#include "runtime/traffic.hpp"
#include "runtime/workload.hpp"
#include "sim/accel_config.hpp"

using namespace pointacc;

namespace {

struct Row
{
    std::string sweep;
    std::string process;
    double offeredPerMCycle = 0.0;
    std::size_t fleetSize = 0;
    std::string policy;
    bool batching = false;
    std::string occupancy;
    std::uint32_t targetK = 1;
    std::uint64_t maxWaitCycles = 0;
    bool mapCacheOn = false;
    double mapReuseProb = 0.0;
    ServingReport report;
};

Row
runScenario(const std::string &sweep, const SimServiceModel &model,
            std::size_t fleet_size, const WorkloadSpec &wspec,
            const SchedulerConfig &scfg)
{
    std::vector<AcceleratorConfig> fleet(fleet_size, pointAccConfig());
    FleetScheduler sched(fleet, model, model.catalog().bucketScales, scfg);

    WorkloadGenerator gen(wspec);
    Row row;
    row.sweep = sweep;
    row.process = toString(wspec.arrivals);
    row.offeredPerMCycle = wspec.requestsPerMCycle;
    row.fleetSize = fleet_size;
    row.policy = toString(scfg.policy);
    row.batching = scfg.batcher.enabled;
    row.occupancy = toString(scfg.occupancy);
    row.targetK = scfg.batcher.targetK;
    row.maxWaitCycles = scfg.batcher.maxWaitCycles;
    row.mapCacheOn = scfg.mapCache.enabled;
    for (const auto &cls : wspec.mix)
        row.mapReuseProb =
            row.mapReuseProb > cls.mapReuseProb ? row.mapReuseProb
                                                : cls.mapReuseProb;
    row.report = sched.run(gen.generate());
    return row;
}

SchedulerConfig
makeConfig(QueuePolicy policy, bool batching,
           OccupancyModel occupancy = OccupancyModel::Pipelined,
           std::uint32_t target_k = 1, std::uint64_t max_wait = 0)
{
    SchedulerConfig scfg;
    scfg.policy = policy;
    scfg.occupancy = occupancy;
    scfg.batcher.enabled = batching;
    scfg.batcher.targetK = target_k;
    scfg.batcher.maxWaitCycles = max_wait;
    scfg.queueDepth = 256;
    return scfg;
}

void
printHeader()
{
    std::printf("%-9s %-8s %7s %5s %6s %5s %4s | %9s %8s %8s %8s %6s "
                "%6s %5s %5s\n",
                "sweep", "process", "offered", "fleet", "policy", "batch",
                "occ", "thru r/s", "p50 ms", "p95 ms", "p99 ms", "util",
                "drop%", "B", "hit%");
    bench::rule(122);
}

void
printRow(const Row &r)
{
    double utilSum = 0.0;
    for (const auto &acc : r.report.accelerators)
        utilSum += acc.utilization(r.report.horizonCycles);
    const double util =
        r.report.accelerators.empty()
            ? 0.0
            : utilSum / static_cast<double>(r.report.accelerators.size());
    char batch[8];
    if (!r.batching)
        std::snprintf(batch, sizeof batch, "off");
    else if (r.targetK > 1)
        std::snprintf(batch, sizeof batch, "K=%u", r.targetK);
    else
        std::snprintf(batch, sizeof batch, "on");
    char hit[8];
    if (r.mapCacheOn)
        std::snprintf(hit, sizeof hit, "%5.1f",
                      100.0 * r.report.mapCache.hitRate());
    else
        std::snprintf(hit, sizeof hit, "    -");
    std::printf(
        "%-9s %-8s %7.2f %5zu %6s %5s %4s | %9.0f %8.3f %8.3f %8.3f "
        "%6.2f %6.2f %5.1f %5s\n",
        r.sweep.c_str(), r.process.c_str(), r.offeredPerMCycle, r.fleetSize,
        r.policy.c_str(), batch,
        r.occupancy == "pipelined" ? "pipe" : "mono",
        r.report.throughputRps(), r.report.p50Ms(), r.report.p95Ms(),
        r.report.p99Ms(), util, 100.0 * r.report.dropRate(),
        r.report.batchSize.mean(), hit);
}

/** Headline numbers of the traffic sweep's static-vs-autoscaler
 *  comparison, serialized as the `traffic` envelope object. */
struct TrafficComparison
{
    std::string program;
    std::uint64_t sloP99Cycles = 0;
    std::size_t staticFleetSize = 0;
    std::uint64_t staticInstanceCycles = 0;
    std::uint64_t autoscalerInstanceCycles = 0;
    std::int64_t instanceCyclesSaved = 0;
    std::uint64_t scaleUps = 0;
    std::uint64_t scaleDowns = 0;
    bool staticMeetsSlo = false;
    bool converged = false;
};

/** Headline numbers of the faults sweep's availability-plan gate,
 *  serialized as the `faults` envelope object. */
struct FaultsComparison
{
    std::uint64_t sloP99Cycles = 0;
    std::size_t nominalFleetSize = 0;
    std::size_t availabilityFleetSize = 0;
    double nominalP99UnderFaultMs = 0.0;
    double availabilityP99UnderFaultMs = 0.0;
    bool bothFeasible = false;
    bool nominalFailsUnderFault = false;
    bool availabilityHoldsUnderFault = false;
};

void
writeRows(std::ostream &os, const std::vector<Row> &rows,
          const PlanReport *plan, const PlanReport *hetero_plan,
          const TrafficComparison *traffic,
          const FaultsComparison *faults)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("bench", "serving");
    w.key("rows").beginArray();
    for (const auto &r : rows) {
        w.beginObject();
        w.field("sweep", r.sweep);
        w.field("process", r.process);
        w.field("offered_per_mcycle", r.offeredPerMCycle);
        w.field("fleet_size", static_cast<std::uint64_t>(r.fleetSize));
        w.field("policy", r.policy);
        w.field("batching", r.batching);
        w.field("occupancy", r.occupancy);
        w.field("target_k", r.targetK);
        w.field("max_wait_cycles", r.maxWaitCycles);
        w.field("map_cache", r.mapCacheOn);
        w.field("map_reuse_prob", r.mapReuseProb);
        w.field("throughput_rps", r.report.throughputRps());
        w.field("latency_ms_p50", r.report.p50Ms());
        w.field("latency_ms_p95", r.report.p95Ms());
        w.field("latency_ms_p99", r.report.p99Ms());
        w.field("drop_rate", r.report.dropRate());
        w.field("completed", r.report.completed);
        w.field("failed", r.report.failed);
        w.field("goodput_rps", r.report.goodputRps());
        w.field("deadline_misses", r.report.deadlineMisses);
        w.field("batch_size_mean", r.report.batchSize.mean());
        w.field("batch_holds", r.report.batchHolds);
        w.field("map_cache_hits", r.report.mapCache.hits);
        w.field("map_cache_misses", r.report.mapCache.misses);
        w.field("map_cache_evictions", r.report.mapCache.evictions);
        w.field("map_cache_bytes_saved", r.report.mapCache.bytesSaved);
        w.field("map_cache_hit_rate", r.report.mapCache.hitRate());
        if (r.report.runAheadDepth != 1) {
            w.field("run_ahead_depth", r.report.runAheadDepth);
            w.field("run_ahead_staged", r.report.runAheadStaged);
            w.field("run_ahead_peak_staged", r.report.runAheadPeakStaged);
        }
        if (r.report.costAware) {
            w.field("cost_aware_holds", r.report.costHolds);
            w.field("cost_aware_dispatches", r.report.costDispatches);
        }
        if (r.report.faults.enabled) {
            w.field("fault_crashes", r.report.faults.crashes);
            w.field("fault_recoveries", r.report.faults.recoveries);
            w.field("fault_failovers", r.report.faults.failovers);
            w.field("retry_attempts", r.report.faults.retryAttempts);
            w.field("retry_hedges", r.report.faults.hedges);
        }
        w.endObject();
    }
    w.endArray();
    if (plan != nullptr) {
        w.key("plan");
        writePlanObject(w, *plan);
    }
    if (hetero_plan != nullptr) {
        w.key("hetero_plan");
        writePlanObject(w, *hetero_plan);
    }
    if (traffic != nullptr) {
        w.key("traffic").beginObject();
        w.field("program", traffic->program);
        w.field("slo_p99_cycles", traffic->sloP99Cycles);
        w.field("static_fleet_size",
                static_cast<std::uint64_t>(traffic->staticFleetSize));
        w.field("static_instance_cycles", traffic->staticInstanceCycles);
        w.field("autoscaler_instance_cycles",
                traffic->autoscalerInstanceCycles);
        w.field("instance_cycles_saved", traffic->instanceCyclesSaved);
        w.field("scale_ups", traffic->scaleUps);
        w.field("scale_downs", traffic->scaleDowns);
        w.field("static_meets_slo", traffic->staticMeetsSlo);
        w.field("converged", traffic->converged);
        w.endObject();
    }
    if (faults != nullptr) {
        w.key("faults").beginObject();
        w.field("slo_p99_cycles", faults->sloP99Cycles);
        w.field("nominal_fleet_size",
                static_cast<std::uint64_t>(faults->nominalFleetSize));
        w.field("availability_fleet_size",
                static_cast<std::uint64_t>(faults->availabilityFleetSize));
        w.field("nominal_p99_under_fault_ms",
                faults->nominalP99UnderFaultMs);
        w.field("availability_p99_under_fault_ms",
                faults->availabilityP99UnderFaultMs);
        w.field("both_feasible", faults->bothFeasible);
        w.field("nominal_fails_under_fault",
                faults->nominalFailsUnderFault);
        w.field("availability_holds_under_fault",
                faults->availabilityHoldsUnderFault);
        w.endObject();
    }
    w.endObject();
    os << '\n';
}

/** Same configuration, field for field? (The plan gate's equality.) */
bool
samePlanChoice(const PlanProbe &a, const PlanProbe &b)
{
    return a.fleetSize == b.fleetSize &&
           a.composition == b.composition && a.policy == b.policy &&
           a.batching == b.batching && a.targetK == b.targetK &&
           a.maxWaitCycles == b.maxWaitCycles &&
           a.mapCacheOn == b.mapCacheOn;
}

void
printPlanProbe(const PlanProbe &p)
{
    // p99 is on the wall-clock event axis: ns -> ms is frequency-free.
    std::printf("plan      %-8s %7s %5zu %6s %5s %4s | %9.0f %8s %8s "
                "%8.3f %6s %6.2f %5s %5s\n",
                "-", "-", p.fleetSize, toString(p.policy).c_str(),
                p.batching ? "on" : "off", p.mapCacheOn ? "$on" : "$off",
                p.throughputRps, "-", "-", p.p99Cycles / 1e6,
                p.meetsSlo ? "MEET" : "miss", 100.0 * p.dropRate, "-",
                "-");
}

void
printHeteroProbe(const PlanProbe &p)
{
    char comp[16];
    if (p.composition.size() == 2)
        std::snprintf(comp, sizeof comp, "%zu+%zue", p.composition[0],
                      p.composition[1]);
    else
        std::snprintf(comp, sizeof comp, "%zu", p.fleetSize);
    std::printf("hetero    %-8s %7.1fW %5s %6s %5s %4s | %9.0f %8s %8s "
                "%8.3f %6s %6.2f %5s %5s\n",
                "-", p.cost, comp, toString(p.policy).c_str(),
                p.batching ? "on" : "off", p.mapCacheOn ? "$on" : "$off",
                p.throughputRps, "-", "-", p.p99Cycles / 1e6,
                p.meetsSlo ? "MEET" : "miss", 100.0 * p.dropRate, "-",
                "-");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath = "BENCH_serving.json";
    std::string sweepSel = "all";
    bool quick = false;
    bool smoke = false;
    std::size_t threadsArg = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--no-json") == 0)
            jsonPath.clear();
        else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc)
            sweepSel = argv[++i];
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threadsArg = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
    }
    // An unknown sweep name would select nothing, skip every
    // acceptance gate and exit 0 — reject it so a typoed CI
    // invocation cannot silently pass.
    static const char *const kSweeps[] = {"all",      "fleet",
                                          "policy",   "batching",
                                          "pipeline", "wait-for-k",
                                          "cache",    "plan",
                                          "hetero",   "traffic",
                                          "faults",   "runahead"};
    bool knownSweep = false;
    for (const char *const s : kSweeps)
        knownSweep = knownSweep || sweepSel == s;
    if (!knownSweep) {
        std::fprintf(stderr,
                     "error: unknown --sweep '%s' (expected fleet, "
                     "policy, batching, pipeline, wait-for-k, cache, "
                     "plan, hetero, traffic, faults, runahead or all)\n",
                     sweepSel.c_str());
        return 2;
    }
    if (smoke && sweepSel != "plan" && sweepSel != "hetero" &&
        sweepSel != "traffic" && sweepSel != "faults" &&
        sweepSel != "runahead") {
        std::fprintf(stderr,
                     "error: --smoke applies to --sweep plan, --sweep "
                     "hetero, --sweep traffic, --sweep faults or "
                     "--sweep runahead only\n");
        return 2;
    }
    const auto selected = [&](const char *name) {
        return sweepSel == "all" || sweepSel == name;
    };
    // The plan sweep runs a planner *and* its exhaustive cross-check
    // grid (dozens of extra serving runs), so it is opt-in rather
    // than part of `all`; CI invokes it explicitly. The traffic sweep
    // is opt-in for the same reason (it runs its own planner search).
    const bool planSelected = sweepSel == "plan";
    const bool heteroSelected = sweepSel == "hetero";
    const bool trafficSelected = sweepSel == "traffic";
    const bool faultsSelected = sweepSel == "faults";
    const bool runaheadSelected = sweepSel == "runahead";

    bench::banner("Serving runtime: fleets of PointAcc under open load",
                  "runtime/ subsystem (beyond the paper)");

    // Catalog: an object-classification network, a hierarchical
    // PointNet++ and a scene-segmentation MinkowskiUNet, each at two
    // cloud-size buckets. Profiling = 6 simulator runs, memoized.
    ServingCatalog catalog;
    catalog.networks = {pointNet(), pointNetPPClass(),
                        minkowskiUNetIndoor()};
    catalog.bucketScales = {0.05, 0.1};
    SimServiceModel model(catalog);

    // Scenario executor: every sweep row is a pure function of its
    // (spec, config) inputs, so rows run as tasks and merge back in
    // declaration order — the table and the JSON cannot tell serial
    // from parallel apart. The model's profiling memo is internally
    // synchronized (first profiler wins, everyone reads one value).
    const std::size_t poolThreads =
        ProbeExecutor::resolveThreads(threadsArg);
    ProbeExecutor pool(poolThreads);
    std::printf("threads: %zu (%s)\n", poolThreads,
                poolThreads == 0 ? "serial, inline"
                                 : "work-stealing pool");

    // Price the mix against one PointAcc to express offered load in
    // fractions of single-instance capacity.
    const auto cfgServer = pointAccConfig();
    WorkloadSpec base;
    base.mix = {
        {0, 0, 4.0, 0}, // PointNet, small clouds, bulk of traffic
        {1, 1, 2.0, 0}, // PointNet++, larger objects
        {2, 1, 1.0, 0}, // MinkowskiUNet scenes, the heavy tail
    };
    double meanCycles = 0.0;
    double mapShare = 0.0;
    double totalWeight = 0.0;
    for (const auto &cls : base.mix) {
        const auto p =
            model.profile(cfgServer, cls.networkId, cls.sizeBucket);
        meanCycles +=
            cls.weight * static_cast<double>(p.totalCycles);
        mapShare +=
            cls.weight * static_cast<double>(p.phases().mapCycles);
        totalWeight += cls.weight;
    }
    meanCycles /= totalWeight;
    mapShare /= totalWeight;
    const double capacityPerMCycle = 1e6 / meanCycles; // one instance
    std::printf("mix mean service: %.0f cycles (%.0f%% mapping phase) "
                "-> 1-instance capacity %.2f req/Mcycle\n\n",
                meanCycles, 100.0 * mapShare / meanCycles,
                capacityPerMCycle);

    std::vector<Row> rows;
    printHeader();

    // `base` is frozen from here on: every sweep copies it and owns
    // its mutations locally, so no sweep's spec depends on which
    // sweeps ran before it (row-order independence — see the header).
    base.seed = 2026;
    base.horizonCycles = quick ? 100'000'000 : 400'000'000;
    base.arrivals = ArrivalProcess::Poisson;
    const WorkloadSpec &frozenBase = base;

    // Sweep 1: fleet scaling at a load that saturates one instance.
    std::vector<Row> fleetRows;
    if (selected("fleet")) {
        WorkloadSpec spec = frozenBase;
        spec.requestsPerMCycle = 1.5 * capacityPerMCycle;
        std::vector<std::function<Row()>> tasks;
        for (const std::size_t fleetSize : {1u, 2u, 4u})
            tasks.push_back([&model, spec, fleetSize] {
                return runScenario("fleet", model, fleetSize, spec,
                                   makeConfig(QueuePolicy::Fifo, false));
            });
        fleetRows = pool.map(std::move(tasks));
        for (const Row &row : fleetRows) {
            rows.push_back(row);
            printRow(row);
        }
        bench::rule(122);
    }

    // Sweep 2: FIFO vs SJF, one instance, rising load.
    if (selected("policy")) {
        std::vector<std::function<Row()>> tasks;
        for (const double frac : {0.6, 0.9, 1.2}) {
            WorkloadSpec spec = frozenBase;
            spec.requestsPerMCycle = frac * capacityPerMCycle;
            for (const QueuePolicy pol :
                 {QueuePolicy::Fifo, QueuePolicy::Sjf})
                tasks.push_back([&model, spec, pol] {
                    return runScenario("policy", model, 1, spec,
                                       makeConfig(pol, false));
                });
        }
        for (Row &row : pool.map(std::move(tasks))) {
            printRow(row);
            rows.push_back(std::move(row));
        }
        bench::rule(122);
    }

    // Bursty single-network traffic for the batching-centric sweeps
    // (bursts of same-class requests are what batching can coalesce).
    WorkloadSpec burstSpec = frozenBase;
    burstSpec.arrivals = ArrivalProcess::Bursty;
    burstSpec.meanBurstSize = 6;
    burstSpec.mix = {{0, 0, 1.0, 0}}; // all PointNet small
    const double pnCycles = static_cast<double>(
        model.profile(cfgServer, 0, 0).totalCycles);
    burstSpec.requestsPerMCycle = 0.9 * 1e6 / pnCycles;

    // Sweep 3: batching on/off under bursty single-network traffic.
    if (selected("batching")) {
        std::vector<std::function<Row()>> tasks;
        for (const bool batching : {false, true})
            tasks.push_back([&model, &burstSpec, batching] {
                return runScenario(
                    "batching", model, 1, burstSpec,
                    makeConfig(QueuePolicy::Fifo, batching));
            });
        for (Row &row : pool.map(std::move(tasks))) {
            printRow(row);
            rows.push_back(std::move(row));
        }
        bench::rule(122);
    }

    // Sweep 4: monolithic vs pipelined occupancy on the default mix.
    // The two-stage pipeline overlaps the mapping phase of dispatch
    // i+1 with the back-end of dispatch i, raising effective capacity
    // without adding hardware; at equal fleet size it must deliver
    // more throughput or a better tail. Offered load scales with
    // fleet size (1.5x capacity per instance) so both sizes run
    // saturated, where capacity is what sets the tail.
    std::vector<std::pair<Row, Row>> pipelinePairs; // (mono, pipe)
    if (selected("pipeline")) {
        std::vector<std::function<Row()>> tasks;
        for (const std::size_t fleetSize : {1u, 2u}) {
            WorkloadSpec spec = frozenBase;
            spec.requestsPerMCycle =
                1.5 * capacityPerMCycle * static_cast<double>(fleetSize);
            for (const OccupancyModel occ :
                 {OccupancyModel::Monolithic, OccupancyModel::Pipelined})
                tasks.push_back([&model, spec, fleetSize, occ] {
                    return runScenario(
                        "pipeline", model, fleetSize, spec,
                        makeConfig(QueuePolicy::Fifo, false, occ));
                });
        }
        std::vector<Row> pipeRows = pool.map(std::move(tasks));
        for (std::size_t i = 0; i + 1 < pipeRows.size(); i += 2) {
            Row &mono = pipeRows[i];
            Row &pipe = pipeRows[i + 1];
            printRow(mono);
            printRow(pipe);
            rows.push_back(mono);
            rows.push_back(pipe);
            pipelinePairs.emplace_back(std::move(mono), std::move(pipe));
        }
        bench::rule(122);
    }

    // Sweep 5: wait-for-K batching under bursty single-network load.
    // Holding the head briefly (bounded by the timer) accumulates
    // bigger same-network batches, amortizing more weight reloads.
    if (selected("wait-for-k")) {
        const std::uint64_t maxWait =
            static_cast<std::uint64_t>(2.0 * pnCycles);
        std::vector<std::function<Row()>> tasks;
        for (const std::uint32_t k : {1u, 4u, 8u})
            tasks.push_back([&model, &burstSpec, maxWait, k] {
                return runScenario(
                    "wait-for-k", model, 1, burstSpec,
                    makeConfig(QueuePolicy::Fifo, true,
                               OccupancyModel::Pipelined, k,
                               k > 1 ? maxWait : 0));
            });
        for (Row &row : pool.map(std::move(tasks))) {
            printRow(row);
            rows.push_back(std::move(row));
        }
        bench::rule(122);
    }

    // Sweep 6: cross-request kernel-map cache on repeated-frame
    // streams. Each mix class becomes its own LiDAR-style stream;
    // mapReuseProb sets how often a frame repeats (the achievable hit
    // rate). Batching stays off so the comparison isolates the cache
    // (hit/miss batch purity is covered by the runtime tests). A hit
    // collapses the Mapping Unit front-end phase to a modelled cache
    // read, so at reuse >= 0.5 the cache must strictly improve p99 or
    // throughput over the identical cache-off run.
    std::vector<std::pair<Row, Row>> cachePairs; // (off, on)
    if (selected("cache")) {
        WorkloadSpec streamSpec = frozenBase;
        streamSpec.arrivals = ArrivalProcess::Poisson;
        for (std::size_t i = 0; i < streamSpec.mix.size(); ++i)
            streamSpec.mix[i].streamId = static_cast<std::uint32_t>(i);
        SchedulerConfig cacheOn = makeConfig(QueuePolicy::Fifo, false);
        cacheOn.mapCache.enabled = true;
        cacheOn.mapCache.capacityEntries = 4096;
        cacheOn.mapCache.eviction = MapCacheEviction::Lru;
        // Streaming the stored maps back from DRAM is far from free,
        // but far cheaper than re-sorting: model it as a small fixed
        // read per request.
        cacheOn.mapCache.hitReadCycles = 2'000;
        std::vector<std::function<Row()>> tasks;
        for (const std::size_t fleetSize : {1u, 2u}) {
            streamSpec.requestsPerMCycle =
                1.5 * capacityPerMCycle * static_cast<double>(fleetSize);
            for (const double reuse : {0.0, 0.5, 0.9}) {
                for (auto &cls : streamSpec.mix)
                    cls.mapReuseProb = reuse;
                tasks.push_back([&model, streamSpec, fleetSize] {
                    return runScenario(
                        "map-cache", model, fleetSize, streamSpec,
                        makeConfig(QueuePolicy::Fifo, false));
                });
                tasks.push_back([&model, streamSpec, fleetSize,
                                 &cacheOn] {
                    return runScenario("map-cache", model, fleetSize,
                                       streamSpec, cacheOn);
                });
            }
        }
        std::vector<Row> cacheRows = pool.map(std::move(tasks));
        for (std::size_t i = 0; i + 1 < cacheRows.size(); i += 2) {
            Row &off = cacheRows[i];
            Row &on = cacheRows[i + 1];
            printRow(off);
            printRow(on);
            rows.push_back(off);
            rows.push_back(on);
            cachePairs.emplace_back(std::move(off), std::move(on));
        }
        bench::rule(122);
    }

    // Sweep 7 (`--sweep plan`, opt-in): SLO-driven capacity planning.
    // The planner searches fleet 1..10 x {FIFO, SJF} x {cache off, on}
    // for the cheapest fleet meeting a p99 SLO calibrated off a
    // mid-grid probe; the exhaustive grid is then run as the oracle.
    // `--smoke` instead runs a 2-probe exhaustive micro-grid, sized
    // for the sanitized CI pass.
    PlanReport planReport;
    PlanReport exhaustiveReport;
    bool planRan = false;
    bool smokeRan = false;
    bool planDifferentialRan = false;
    bool planParallelIdentical = true;
    if (planSelected) {
        PlannerConfig plannerCfg;
        plannerCfg.threads = threadsArg;
        CapacityPlanner planner(pointAccConfig(), model,
                                model.catalog().bucketScales,
                                plannerCfg);
        if (smoke) {
            WorkloadSpec spec = frozenBase;
            spec.horizonCycles = 5'000'000;
            spec.requestsPerMCycle = 1.2 * capacityPerMCycle;
            PlanSearchSpace space;
            space.minFleetSize = 1;
            space.maxFleetSize = 2;
            space.base = makeConfig(QueuePolicy::Fifo, false);
            SloSpec slo;
            slo.minThroughputRps = 1.0;
            exhaustiveReport = planner.planExhaustive(spec, slo, space);
            planReport = exhaustiveReport;
            smokeRan = true;
        } else {
            WorkloadSpec planSpec = frozenBase;
            planSpec.horizonCycles = quick ? 40'000'000 : 120'000'000;
            planSpec.requestsPerMCycle = 2.5 * capacityPerMCycle;
            // Each mix class is a repeated-frame stream so the
            // map-cache axis changes real outcomes.
            for (std::size_t i = 0; i < planSpec.mix.size(); ++i) {
                planSpec.mix[i].streamId = static_cast<std::uint32_t>(i);
                planSpec.mix[i].mapReuseProb = 0.5;
            }

            PlanSearchSpace space;
            space.minFleetSize = 1;
            space.maxFleetSize = 10;
            space.policies = {QueuePolicy::Fifo, QueuePolicy::Sjf};
            space.batchers = {BatcherAxisPoint{}};
            space.mapCacheOptions = {false, true};
            space.base = makeConfig(QueuePolicy::Fifo, false);
            space.base.mapCache.capacityEntries = 4096;
            space.base.mapCache.eviction = MapCacheEviction::Lru;
            space.base.mapCache.hitReadCycles = 2'000;

            // SLO calibrated off a mid-grid probe (FIFO, cache off,
            // fleet 4): feasible inside the range, not trivially at
            // fleet 1, whatever the horizon setting.
            const auto trace = WorkloadGenerator(planSpec).generate();
            const auto calib = planner.probe(4, space.base, trace);
            SloSpec slo;
            slo.maxP99Cycles =
                static_cast<std::uint64_t>(calib.p99Cycles()) + 1;

            planReport = planner.plan(planSpec, slo, space);
            exhaustiveReport =
                planner.planExhaustive(planSpec, slo, space);
            planRan = true;

            // Differential gate: when probes ran in parallel, the
            // report must still be byte-identical to a serial plan —
            // speculation may spend extra simulations, never change
            // the probe log, the pick or a single serialized byte.
            if (poolThreads > 0) {
                CapacityPlanner serialPlanner(
                    pointAccConfig(), model,
                    model.catalog().bucketScales);
                const PlanReport serialReport =
                    serialPlanner.plan(planSpec, slo, space);
                std::ostringstream parallelJson, serialJson;
                writePlanJson(parallelJson, planReport);
                writePlanJson(serialJson, serialReport);
                planParallelIdentical =
                    parallelJson.str() == serialJson.str();
                planDifferentialRan = true;
            }

            std::printf("capacity plan: SLO p99 <= %llu cycles over "
                        "fleet %zu..%zu x {fifo,sjf} x {cache off,on} "
                        "(%llu grid points)\n",
                        static_cast<unsigned long long>(
                            slo.maxP99Cycles),
                        space.minFleetSize, space.maxFleetSize,
                        static_cast<unsigned long long>(
                            space.gridSize()));
            for (const auto &p : planReport.probes)
                printPlanProbe(p);
        }
        bench::rule(122);
    }

    // Sweep 8 (`--sweep hetero`, opt-in): heterogeneous cost-aware
    // capacity planning on the wall-clock event axis. The lattice
    // mixes a 2 GHz server-class PointAcc (distinct name: the service
    // model memoizes per accelerator class) with the 1 GHz edge part,
    // under the watts objective and a binding watt budget; the
    // planner's ray search must agree with the exhaustive lattice
    // oracle while spending strictly fewer probes. A separate
    // differential gate pins the time-domain migration itself: a
    // uniform-1 GHz mixed server+edge fleet — which the homogeneous
    // property suite can never build — served by the production
    // scheduler must be byte-identical to the frozen cycle-domain
    // reference engine, because ns == cycles at 1 GHz.
    PlanReport heteroPlan;
    PlanReport heteroExhaustive;
    bool heteroRan = false;
    bool heteroSmokeRan = false;
    bool heteroDifferentialRan = false;
    bool heteroParallelIdentical = true;
    bool heteroNsIdentical = false;
    std::uint64_t heteroUnboundedComps = 0;
    std::uint64_t heteroBoundedComps = 0;
    if (heteroSelected) {
        AcceleratorConfig server = pointAccConfig();
        server.name = "PointAcc@2GHz";
        server.freqGHz = 2.0;
        const AcceleratorConfig edge = pointAccEdgeConfig();

        PlannerConfig plannerCfg;
        plannerCfg.threads = threadsArg;
        CapacityPlanner planner(server, model,
                                model.catalog().bucketScales,
                                plannerCfg);

        PlanSearchSpace space;
        space.base = makeConfig(QueuePolicy::Fifo, false);
        space.objective = PlanObjective::Watts;
        InstanceKindSpec serverKind;
        serverKind.config = server;
        serverKind.minCount = 0;
        serverKind.maxCount = smoke ? 1 : 10;
        InstanceKindSpec edgeKind;
        edgeKind.config = edge;
        edgeKind.minCount = 0;
        edgeKind.maxCount = smoke ? 1 : 2;
        space.kinds = {serverKind, edgeKind};

        WorkloadSpec spec = frozenBase;
        spec.horizonCycles = smoke     ? 5'000'000
                             : (quick ? 40'000'000 : 120'000'000);
        spec.requestsPerMCycle =
            (smoke ? 1.2 : 2.5) * capacityPerMCycle;
        const auto trace = WorkloadGenerator(spec).generate();

        // SLO calibrated off a mid-lattice composition: feasible, but
        // not trivially so at the lattice floor.
        const std::vector<std::size_t> calibComp =
            smoke ? std::vector<std::size_t>{1, 1}
                  : std::vector<std::size_t>{4, 1};
        const auto calib =
            planner.probeComposition(space, calibComp, space.base, trace);
        SloSpec slo;
        slo.maxP99Cycles =
            static_cast<std::uint64_t>(calib.p99Cycles()) + 1;

        // Watt budget: on the full lattice it must exclude real
        // compositions (binding) while keeping headroom above the
        // calibration point; the smoke lattice is too small to cut.
        heteroUnboundedComps = space.compositionCount();
        if (!smoke) {
            space.maxCostBudget = 7.0 * nominalWatts(server) +
                                  2.0 * nominalWatts(edge);
            heteroBoundedComps = space.compositionCount();
        } else {
            heteroBoundedComps = heteroUnboundedComps;
        }

        if (smoke) {
            heteroPlan = planner.planExhaustive(spec, slo, space);
            heteroExhaustive = heteroPlan;
            heteroSmokeRan = true;
        } else {
            heteroPlan = planner.plan(spec, slo, space);
            heteroExhaustive = planner.planExhaustive(spec, slo, space);
            heteroRan = true;
            if (poolThreads > 0) {
                CapacityPlanner serialPlanner(
                    server, model, model.catalog().bucketScales);
                const PlanReport serialReport =
                    serialPlanner.plan(spec, slo, space);
                std::ostringstream parallelJson, serialJson;
                writePlanJson(parallelJson, heteroPlan);
                writePlanJson(serialJson, serialReport);
                heteroParallelIdentical =
                    parallelJson.str() == serialJson.str();
                heteroDifferentialRan = true;
            }
            std::printf("hetero plan: SLO p99 <= %.3f ms over server "
                        "0..%zu x edge 0..%zu under %.1f W budget "
                        "(%llu of %llu compositions in budget)\n",
                        static_cast<double>(slo.maxP99Cycles) / 1e6,
                        serverKind.maxCount, edgeKind.maxCount,
                        space.maxCostBudget,
                        static_cast<unsigned long long>(
                            heteroBoundedComps),
                        static_cast<unsigned long long>(
                            heteroUnboundedComps));
            for (const auto &p : heteroPlan.probes)
                printHeteroProbe(p);
        }

        // Time-domain identity gate: at a uniform 1 GHz the ns event
        // axis coincides with the cycle axis, so the production
        // scheduler serving a *mixed* server+edge fleet must emit the
        // exact bytes of the frozen reference engine.
        {
            const std::vector<AcceleratorConfig> mixedFleet{
                pointAccConfig(), pointAccEdgeConfig()};
            WorkloadSpec nsSpec = frozenBase;
            nsSpec.horizonCycles = smoke ? 5'000'000 : 20'000'000;
            nsSpec.requestsPerMCycle = 1.5 * capacityPerMCycle;
            const auto nsTrace = WorkloadGenerator(nsSpec).generate();
            const SchedulerConfig nsCfg =
                makeConfig(QueuePolicy::Fifo, false);
            FleetScheduler sched(mixedFleet, model,
                                 model.catalog().bucketScales, nsCfg);
            const ServingReport prod = sched.run(nsTrace);
            const ServingReport ref = runServingReference(
                mixedFleet, model, model.catalog().bucketScales, nsCfg,
                nsTrace);
            std::ostringstream prodJson, refJson;
            writeServingJson(prodJson, prod);
            writeServingJson(refJson, ref);
            heteroNsIdentical = prodJson.str() == refJson.str();
        }
        bench::rule(122);
    }

    // Sweep 9 (`--sweep traffic`, opt-in): the closed loop. A flash
    // crowd (6x the base rate over 20% of the horizon) is sized by
    // the CapacityPlanner, then the same program runs against (a) the
    // planner's static fleet and (b) the reactive autoscaler starting
    // from one instance — static capacity vs reactive cost, on one
    // trace.
    TrafficComparison trafficCmp;
    SloSpec trafficSlo;
    ServingReport trafficStaticRep;
    ServingReport trafficAutoRep;
    std::uint64_t trafficHorizon = 0;
    bool trafficRan = false;
    if (trafficSelected) {
        WorkloadSpec tbase = frozenBase;
        tbase.horizonCycles = smoke     ? 6'000'000
                              : (quick ? 60'000'000 : 200'000'000);
        tbase.requestsPerMCycle = 0.6 * capacityPerMCycle;
        trafficHorizon = tbase.horizonCycles;
        const TrafficProgram program =
            flashCrowdProgram(tbase, 6.0, 0.3, 0.2);

        PlannerConfig plannerCfg;
        plannerCfg.threads = threadsArg;
        CapacityPlanner planner(pointAccConfig(), model,
                                model.catalog().bucketScales,
                                plannerCfg);
        PlanSearchSpace space;
        space.minFleetSize = 1;
        space.maxFleetSize = 8;
        space.base = makeConfig(QueuePolicy::Fifo, false);

        // SLO calibrated off the most provisioned point with 25%
        // slack: feasible inside the range, but the crowd makes it
        // unreachable for an undersized fleet.
        TrafficTelemetry telem;
        const auto trace = materialize(program, &telem);
        const auto calib =
            planner.probe(space.maxFleetSize, space.base, trace);
        trafficSlo.maxP99Cycles =
            static_cast<std::uint64_t>(1.25 * calib.p99Cycles()) + 1;

        const PlanReport sized =
            planner.plan(program, trafficSlo, space);
        const std::size_t staticN =
            sized.feasible ? sized.chosen.fleetSize : space.maxFleetSize;

        std::printf("traffic: %s %.2f -> %.2f req/Mcycle over %llu "
                    "Mcycles, SLO p99 <= %.3f ms, planner fleet %zu "
                    "(%s)\n",
                    program.name.c_str(), telem.basePerMCycle,
                    telem.peakPerMCycle,
                    static_cast<unsigned long long>(
                        tbase.horizonCycles / 1'000'000),
                    static_cast<double>(trafficSlo.maxP99Cycles) /
                        (pointAccConfig().freqGHz * 1e6),
                    staticN, sized.feasible ? "feasible" : "infeasible");

        // (a) The static fleet the planner sized, over the program's
        // materialized trace.
        const SchedulerConfig staticCfg =
            schedulerConfigFor(space, sized.chosen);
        {
            std::vector<AcceleratorConfig> fleet(staticN,
                                                 pointAccConfig());
            FleetScheduler sched(fleet, model,
                                 model.catalog().bucketScales,
                                 staticCfg);
            trafficStaticRep = sched.run(trace);
            trafficStaticRep.traffic = telem;
        }

        // (b) The autoscaler over the same pool, starting from one
        // instance, driven through the *streaming* entry point. The
        // queue-depth thresholds do the steady-state work; the p99
        // trigger (2x the SLO) catches a crowd the queue bound alone
        // would admit slowly. Spin-up and cooldown are two evaluation
        // periods each — the reactive lag the comparison prices.
        SchedulerConfig autoCfg = staticCfg;
        autoCfg.autoscaler.enabled = true;
        autoCfg.autoscaler.minInstances = 1;
        autoCfg.autoscaler.maxInstances =
            static_cast<std::uint32_t>(staticN);
        autoCfg.autoscaler.initialInstances = 1;
        autoCfg.autoscaler.evalIntervalCycles =
            tbase.horizonCycles / 100;
        autoCfg.autoscaler.queueHighDepth = smoke ? 4 : 16;
        autoCfg.autoscaler.queueLowDepth = 2;
        autoCfg.autoscaler.p99HighCycles = 2 * trafficSlo.maxP99Cycles;
        autoCfg.autoscaler.spinUpCycles =
            2 * autoCfg.autoscaler.evalIntervalCycles;
        autoCfg.autoscaler.cooldownCycles =
            2 * autoCfg.autoscaler.evalIntervalCycles;
        {
            std::vector<AcceleratorConfig> pool(staticN,
                                                pointAccConfig());
            FleetScheduler sched(pool, model,
                                 model.catalog().bucketScales, autoCfg);
            TrafficStream stream(program);
            trafficAutoRep = sched.run(stream);
            trafficAutoRep.traffic = stream.telemetry();
        }

        const auto rowOf = [&](const ServingReport &rep,
                               std::size_t fleetSize) {
            Row row;
            row.sweep = "traffic";
            row.process = toString(tbase.arrivals);
            row.offeredPerMCycle = tbase.requestsPerMCycle;
            row.fleetSize = fleetSize;
            row.policy = toString(staticCfg.policy);
            row.batching = staticCfg.batcher.enabled;
            row.occupancy = toString(staticCfg.occupancy);
            row.report = rep;
            return row;
        };
        rows.push_back(rowOf(trafficStaticRep, staticN));
        printRow(rows.back());
        rows.push_back(rowOf(trafficAutoRep, staticN));
        printRow(rows.back());

        // Headline comparison: instance-cycles the autoscaler left
        // unpowered vs keeping the static fleet up for its whole run.
        const std::uint64_t staticCost =
            static_cast<std::uint64_t>(staticN) *
            trafficAutoRep.horizonCycles;
        trafficCmp.program = program.name;
        trafficCmp.sloP99Cycles = trafficSlo.maxP99Cycles;
        trafficCmp.staticFleetSize = staticN;
        trafficCmp.staticInstanceCycles = staticCost;
        trafficCmp.autoscalerInstanceCycles =
            trafficAutoRep.autoscaler.instanceCycles;
        trafficCmp.instanceCyclesSaved =
            static_cast<std::int64_t>(staticCost) -
            static_cast<std::int64_t>(
                trafficAutoRep.autoscaler.instanceCycles);
        trafficCmp.scaleUps = trafficAutoRep.autoscaler.scaleUps;
        trafficCmp.scaleDowns = trafficAutoRep.autoscaler.scaleDowns;
        trafficCmp.staticMeetsSlo =
            meetsSlo(trafficStaticRep, trafficSlo);
        trafficCmp.converged = true;
        for (const auto &s :
             trafficAutoRep.autoscaler.timeline.samples)
            if (s.cycle >= trafficHorizon - trafficHorizon / 10 &&
                s.action != 0)
                trafficCmp.converged = false;
        trafficRan = true;
        bench::rule(122);
    }

    // Sweep 10 (`--sweep faults`, opt-in): fault injection and
    // failure-aware serving. Five scenarios on a two-instance fleet
    // at 1.25x fleet capacity — the persistent backlog keeps both
    // instances busy, so a mid-horizon crash always catches work in
    // flight — then the three gates described in the header:
    // reference byte-identity with an enabled-but-empty program, the
    // availability-mode capacity plan, and extended conservation per
    // row.
    FaultsComparison faultsCmp;
    std::vector<Row> faultRows;
    bool faultsIdentical = false;
    bool faultsRan = false;
    if (faultsSelected) {
        WorkloadSpec fbase = frozenBase;
        fbase.horizonCycles = smoke     ? 5'000'000
                              : (quick ? 30'000'000 : 100'000'000);
        fbase.requestsPerMCycle = 2.5 * capacityPerMCycle;
        const std::uint64_t H = fbase.horizonCycles;

        RetryPolicy retry;
        retry.enabled = true;
        retry.maxRetries = 3;
        retry.backoffBaseNs = 1'000;

        const auto scenario = [&](const char *name,
                                  const FaultProgram &program,
                                  const RetryPolicy &rp) {
            SchedulerConfig scfg = makeConfig(QueuePolicy::Fifo, false);
            scfg.faults = program;
            scfg.retry = rp;
            faultRows.push_back(runScenario(name, model, 2, fbase, scfg));
            rows.push_back(faultRows.back());
            printRow(rows.back());
        };

        // At a uniform 1 GHz the arrival horizon in cycles is the
        // fault horizon in ns.
        FaultProgram crash;
        crash.enabled = true;
        crash.horizonNs = 2 * H;
        crash.crashes.push_back(CrashWindow{0, H / 2, H / 4});

        FaultProgram straggle;
        straggle.enabled = true;
        straggle.horizonNs = 2 * H;
        straggle.stragglers.push_back(
            StragglerWindow{0, 3 * H / 10, 3 * H / 10, 2.5});

        FaultProgram mtbf;
        mtbf.enabled = true;
        mtbf.horizonNs = H;
        mtbf.mtbfNs = H / 3;
        mtbf.mttrNs = H / 30;
        mtbf.seed = 11;

        RetryPolicy hedged = retry;
        hedged.hedgeDelayNs =
            static_cast<std::uint64_t>(8.0 * meanCycles);

        scenario("flt-none", FaultProgram{}, RetryPolicy{});
        scenario("flt-crash", crash, retry);
        scenario("flt-strag", straggle, RetryPolicy{});
        scenario("flt-mtbf", mtbf, retry);
        scenario("flt-hedge", crash, hedged);

        // Gate (a): an *enabled* fault program that materializes no
        // events must leave the fault-aware production engine
        // byte-identical to the frozen cycle-domain reference (which
        // predates faults entirely) — the fault machinery is pay-for-
        // what-you-use on the hot path.
        {
            const std::vector<AcceleratorConfig> pair{pointAccConfig(),
                                                      pointAccConfig()};
            WorkloadSpec nsSpec = frozenBase;
            nsSpec.horizonCycles = smoke ? 5'000'000 : 20'000'000;
            nsSpec.requestsPerMCycle = 1.5 * capacityPerMCycle;
            const auto nsTrace = WorkloadGenerator(nsSpec).generate();
            const SchedulerConfig plainCfg =
                makeConfig(QueuePolicy::Fifo, false);
            SchedulerConfig emptyCfg = plainCfg;
            emptyCfg.faults.enabled = true; // no windows, no rates
            FleetScheduler sched(pair, model,
                                 model.catalog().bucketScales, emptyCfg);
            const ServingReport prod = sched.run(nsTrace);
            const ServingReport ref = runServingReference(
                pair, model, model.catalog().bucketScales, plainCfg,
                nsTrace);
            std::ostringstream prodJson, refJson;
            writeServingJson(prodJson, prod);
            writeServingJson(refJson, ref);
            faultsIdentical = prodJson.str() == refJson.str();
        }

        // Gate (b): availability-aware capacity planning. At 2.2x
        // single-instance load the smallest un-saturated fleet is 3;
        // the SLO is calibrated off that fleet fault-free with 50%
        // slack, so the nominal plan picks it. Replanning with a
        // mid-horizon crash of one instance in the search space must
        // pay for a spare — and the spare must be what lets the fleet
        // hold the SLO through the crash the nominal fleet fails.
        {
            WorkloadSpec pspec = frozenBase;
            pspec.horizonCycles = smoke     ? 5'000'000
                                  : (quick ? 30'000'000 : 80'000'000);
            pspec.requestsPerMCycle = 2.2 * capacityPerMCycle;
            const std::uint64_t PH = pspec.horizonCycles;

            FaultProgram outage;
            outage.enabled = true;
            outage.horizonNs = 2 * PH;
            outage.crashes.push_back(CrashWindow{0, 3 * PH / 10, PH / 2});

            PlannerConfig plannerCfg;
            plannerCfg.threads = threadsArg;
            CapacityPlanner planner(pointAccConfig(), model,
                                    model.catalog().bucketScales,
                                    plannerCfg);
            PlanSearchSpace space;
            space.minFleetSize = 1;
            space.maxFleetSize = 6;
            space.base = makeConfig(QueuePolicy::Fifo, false);

            const auto trace = WorkloadGenerator(pspec).generate();
            const auto calib = planner.probe(3, space.base, trace);
            SloSpec slo;
            slo.maxP99Cycles =
                static_cast<std::uint64_t>(1.5 * calib.p99Cycles()) + 1;

            const PlanReport nominal = planner.plan(pspec, slo, space);

            PlanSearchSpace availSpace = space;
            availSpace.faults = outage;
            availSpace.retry = retry;
            const PlanReport avail = planner.plan(pspec, slo, availSpace);

            // Re-probe both chosen fleets under the outage, on the
            // same trace: the premium must be what holds the SLO.
            const std::size_t nominalN =
                nominal.feasible ? nominal.chosen.fleetSize : 3;
            const std::size_t availN = avail.feasible
                                           ? avail.chosen.fleetSize
                                           : space.maxFleetSize;
            const SchedulerConfig faultedCfg =
                schedulerConfigFor(availSpace, avail.chosen);
            const auto nominalUnderFault =
                planner.probe(nominalN, faultedCfg, trace);
            const auto availUnderFault =
                planner.probe(availN, faultedCfg, trace);

            faultsCmp.sloP99Cycles = slo.maxP99Cycles;
            faultsCmp.nominalFleetSize = nominalN;
            faultsCmp.availabilityFleetSize = availN;
            faultsCmp.nominalP99UnderFaultMs = nominalUnderFault.p99Ms();
            faultsCmp.availabilityP99UnderFaultMs =
                availUnderFault.p99Ms();
            faultsCmp.bothFeasible = nominal.feasible && avail.feasible;
            faultsCmp.nominalFailsUnderFault =
                !meetsSlo(nominalUnderFault, slo);
            faultsCmp.availabilityHoldsUnderFault =
                meetsSlo(availUnderFault, slo);

            std::printf(
                "faults plan: SLO p99 <= %.3f ms at %.2f req/Mcycle; "
                "nominal fleet %zu (p99 %.3f ms under crash), "
                "availability fleet %zu (p99 %.3f ms under crash)\n",
                static_cast<double>(slo.maxP99Cycles) /
                    (pointAccConfig().freqGHz * 1e6),
                pspec.requestsPerMCycle, nominalN,
                faultsCmp.nominalP99UnderFaultMs, availN,
                faultsCmp.availabilityP99UnderFaultMs);
        }
        faultsRan = true;
        bench::rule(122);
    }

    // Sweep 11 (opt-in): run-ahead depth + cost-aware hold-vs-dispatch.
    // Two grids. The dispatch trio prices hold-vs-dispatch on Poisson
    // single-network traffic just past the amortized capacity knee —
    // bursty traffic would deliver batch partners simultaneously and
    // make the hold decision vacuous, and a mixed-network stream would
    // dilute the weight-reload amortization the hold buys. The depth
    // ladder isolates the mapped-output buffer: batching off, one
    // instance, FIFO, a queue deep enough that nothing drops, so the
    // only effect of a deeper buffer is that maps start earlier.
    std::vector<Row> raTrioRows;  // [0]=eager, [1]=hold, [2]=cost-aware
    std::vector<Row> raDepthRows; // k = 1, 2, 4
    bool runaheadIdentical = false;
    bool runaheadRan = false;
    if (runaheadSelected) {
        const std::uint64_t H =
            smoke ? 5'000'000 : (quick ? 30'000'000 : 100'000'000);

        // Dispatch trio: all-PointNet++-small Poisson arrivals at 1.0x
        // one instance's solo capacity. That network has the fattest
        // weight-reload share of the catalog (~21% of solo service),
        // so a caught batch partner pays best; at the capacity knee
        // the backend alternates between committed backlog (where
        // eager dispatch forfeits amortization a free hold would have
        // caught) and idle spells (where the blind timer queues waits
        // for nothing) — the regime where pricing the decision beats
        // both fixed policies.
        const double ppCycles = static_cast<double>(
            model.profile(cfgServer, 1, 0).totalCycles);
        WorkloadSpec trioSpec = frozenBase;
        trioSpec.horizonCycles = H;
        trioSpec.mix = {{1, 0, 1.0, 0}};
        trioSpec.requestsPerMCycle = 1e6 / ppCycles;

        const std::uint64_t holdWait =
            static_cast<std::uint64_t>(2.0 * ppCycles);
        SchedulerConfig eagerCfg = makeConfig(
            QueuePolicy::Fifo, true, OccupancyModel::Pipelined, 1, 0);
        SchedulerConfig holdCfg =
            makeConfig(QueuePolicy::Fifo, true, OccupancyModel::Pipelined,
                       2, holdWait);
        SchedulerConfig costCfg = holdCfg;
        costCfg.batcher.costAware = true;

        // Depth ladder: the two-batch stall scenario at fleet 1 under
        // the standard mix. queueDepth is raised so no request drops;
        // with an identical admitted set, a deeper mapped-output
        // buffer can only start maps earlier.
        WorkloadSpec depthSpec = frozenBase;
        depthSpec.horizonCycles = H;
        depthSpec.requestsPerMCycle = 1.5 * capacityPerMCycle;
        SchedulerConfig depthBase = makeConfig(QueuePolicy::Fifo, false);
        depthBase.queueDepth = std::size_t{1} << 20;

        std::vector<std::function<Row()>> tasks;
        tasks.push_back([&model, trioSpec, eagerCfg] {
            return runScenario("ra-eager", model, 1, trioSpec, eagerCfg);
        });
        tasks.push_back([&model, trioSpec, holdCfg] {
            return runScenario("ra-hold", model, 1, trioSpec, holdCfg);
        });
        tasks.push_back([&model, trioSpec, costCfg] {
            return runScenario("ra-cost", model, 1, trioSpec, costCfg);
        });
        for (const std::uint32_t depth : {1u, 2u, 4u})
            tasks.push_back([&model, depthSpec, depthBase, depth] {
                SchedulerConfig scfg = depthBase;
                scfg.runAheadDepth = depth;
                char name[8];
                std::snprintf(name, sizeof name, "ra-k%u", depth);
                return runScenario(name, model, 1, depthSpec, scfg);
            });
        std::vector<Row> raRows = pool.map(std::move(tasks));
        raTrioRows.assign(raRows.begin(), raRows.begin() + 3);
        raDepthRows.assign(raRows.begin() + 3, raRows.end());
        for (const Row &row : raRows) {
            rows.push_back(row);
            printRow(row);
        }

        // Gate (a): the run-ahead buffer at depth 1 with cost-aware
        // dispatch off is the seed engine — byte-identical serving
        // JSON against the frozen reference on a shared trace.
        {
            const std::vector<AcceleratorConfig> pair{pointAccConfig(),
                                                      pointAccConfig()};
            WorkloadSpec idSpec = frozenBase;
            idSpec.horizonCycles = smoke ? 5'000'000 : 20'000'000;
            idSpec.requestsPerMCycle = 1.5 * capacityPerMCycle;
            const auto idTrace = WorkloadGenerator(idSpec).generate();
            SchedulerConfig inertCfg =
                makeConfig(QueuePolicy::Fifo, true,
                           OccupancyModel::Pipelined, 4, holdWait);
            inertCfg.runAheadDepth = 1;
            inertCfg.batcher.costAware = false;
            FleetScheduler sched(pair, model,
                                 model.catalog().bucketScales, inertCfg);
            const ServingReport prod = sched.run(idTrace);
            const ServingReport ref = runServingReference(
                pair, model, model.catalog().bucketScales, inertCfg,
                idTrace);
            std::ostringstream prodJson, refJson;
            writeServingJson(prodJson, prod);
            writeServingJson(refJson, ref);
            runaheadIdentical = prodJson.str() == refJson.str();
        }
        runaheadRan = true;
        bench::rule(122);
    }

    bool ok = true;

    // Acceptance check 0: profiling is memoized across sweep rows —
    // each (accelerator class, network, bucket) triple runs the real
    // simulator at most once per process, however many rows consumed
    // it. One accelerator class here, so the distinct-triple ceiling
    // is networks x buckets.
    {
        // The hetero sweep introduces two more accelerator classes
        // (the renamed 2 GHz server and the edge part); every other
        // path profiles only the stock server class.
        const std::uint64_t classes = heteroSelected ? 3 : 1;
        const std::uint64_t maxTriples =
            classes *
            static_cast<std::uint64_t>(catalog.networks.size()) *
            static_cast<std::uint64_t>(catalog.bucketScales.size());
        const bool memoized = model.profiledRuns() <= maxTriples;
        ok = ok && memoized;
        std::printf("profiling memoization: %llu simulator runs for "
                    "<= %llu distinct triples across %zu rows: %s\n",
                    static_cast<unsigned long long>(model.profiledRuns()),
                    static_cast<unsigned long long>(maxTriples),
                    rows.size(), memoized ? "OK" : "VIOLATED");
    }

    // Acceptance check 1: p99 must not increase with fleet size.
    if (selected("fleet")) {
        const double p99_1 = fleetRows[0].report.p99Ms();
        const double p99_2 = fleetRows[1].report.p99Ms();
        const double p99_4 = fleetRows[2].report.p99Ms();
        const bool monotone = p99_1 >= p99_2 && p99_2 >= p99_4;
        ok = ok && monotone;
        std::printf(
            "fleet-scaling p99: 1x %.3f >= 2x %.3f >= 4x %.3f ms: %s\n",
            p99_1, p99_2, p99_4, monotone ? "OK" : "VIOLATED");
    }

    // Acceptance check 2: at equal fleet size, the pipelined model
    // must beat monolithic occupancy. Throughput is checked first —
    // it is the robust signal for the capacity the overlap adds; the
    // p99 comparison at fleet 2 sits within hundredths of a ms of a
    // tie, so it only decides when throughput does not.
    for (const auto &[mono, pipe] : pipelinePairs) {
        const double pm = mono.report.p99Ms();
        const double pp = pipe.report.p99Ms();
        const double tm = mono.report.throughputRps();
        const double tp = pipe.report.throughputRps();
        const bool wins = tp > tm || pp < pm;
        ok = ok && wins;
        std::printf("pipeline vs monolithic (fleet %zu): thru %.0f vs "
                    "%.0f r/s, p99 %.3f vs %.3f ms: %s\n",
                    mono.fleetSize, tp, tm, pp, pm,
                    wins ? "OK" : "VIOLATED");
    }

    // Acceptance check 3: at reuse >= 0.5, the kernel-map cache must
    // strictly improve p99 or throughput over the identical cache-off
    // run (same trace, same fleet).
    for (const auto &[off, on] : cachePairs) {
        if (on.mapReuseProb < 0.5)
            continue;
        const double po = off.report.p99Ms();
        const double pc = on.report.p99Ms();
        const double to = off.report.throughputRps();
        const double tc = on.report.throughputRps();
        const bool wins = pc < po || tc > to;
        ok = ok && wins;
        std::printf("map-cache vs off (fleet %zu, reuse %.1f): "
                    "p99 %.3f vs %.3f ms, thru %.0f vs %.0f r/s, "
                    "hit-rate %.0f%%: %s\n",
                    on.fleetSize, on.mapReuseProb, pc, po, tc, to,
                    100.0 * on.report.mapCache.hitRate(),
                    wins ? "OK" : "VIOLATED");
    }

    // Acceptance check 4 (plan sweep): the planner's pick must equal
    // the exhaustive-search optimum while spending strictly fewer
    // probes, and must stay inside a fixed probe budget (3/4 of the
    // grid — galloping + bisection should beat that comfortably; the
    // budget catches a silent degradation to near-exhaustive search).
    if (planRan) {
        const bool bothFeasible =
            planReport.feasible && exhaustiveReport.feasible;
        const bool samePick =
            bothFeasible &&
            samePlanChoice(planReport.chosen, exhaustiveReport.chosen);
        ok = ok && samePick;
        std::printf("plan vs exhaustive: fleet %zu %s batch=%s "
                    "cache=%s vs fleet %zu %s batch=%s cache=%s: %s\n",
                    planReport.chosen.fleetSize,
                    toString(planReport.chosen.policy).c_str(),
                    planReport.chosen.batching ? "on" : "off",
                    planReport.chosen.mapCacheOn ? "on" : "off",
                    exhaustiveReport.chosen.fleetSize,
                    toString(exhaustiveReport.chosen.policy).c_str(),
                    exhaustiveReport.chosen.batching ? "on" : "off",
                    exhaustiveReport.chosen.mapCacheOn ? "on" : "off",
                    samePick ? "OK" : "VIOLATED");
        const bool fewer =
            planReport.probesSpent < exhaustiveReport.probesSpent;
        const std::uint64_t budget =
            3 * planReport.exhaustiveProbes / 4;
        const bool inBudget = planReport.probesSpent <= budget;
        ok = ok && fewer && inBudget;
        std::printf("plan probe spend: %llu of %llu grid points "
                    "(budget %llu, monotone fleet axis: %s): %s\n",
                    static_cast<unsigned long long>(
                        planReport.probesSpent),
                    static_cast<unsigned long long>(
                        planReport.exhaustiveProbes),
                    static_cast<unsigned long long>(budget),
                    planReport.monotoneFleetAxis ? "yes" : "no",
                    fewer && inBudget ? "OK" : "VIOLATED");
        if (planDifferentialRan) {
            ok = ok && planParallelIdentical;
            std::printf("parallel plan byte-identical to serial "
                        "(%zu-thread speculation): %s\n",
                        poolThreads,
                        planParallelIdentical ? "OK" : "VIOLATED");
        }
    }
    if (smokeRan) {
        // The sanitized smoke just has to complete a real plan and
        // keep its accounting straight: a 1-combo, 2-size exhaustive
        // grid is exactly 2 probes.
        const bool sized = planReport.probesSpent == 2 &&
                           planReport.exhaustiveProbes == 2;
        ok = ok && sized;
        std::printf("plan smoke: %llu probes over a 2-point grid, "
                    "feasible=%s: %s\n",
                    static_cast<unsigned long long>(
                        planReport.probesSpent),
                    planReport.feasible ? "yes" : "no",
                    sized ? "OK" : "VIOLATED");
    }

    // Acceptance check 5 (hetero sweep): the mixed-fleet pick must
    // equal the exhaustive lattice oracle's under the watt-budget
    // objective while spending strictly fewer probes; the budget must
    // be binding (it cut real lattice points); the parallel plan must
    // serialize byte-identically to serial; and the uniform-1 GHz
    // mixed fleet must reproduce the frozen reference engine byte for
    // byte.
    if (heteroRan) {
        const bool bothFeasible =
            heteroPlan.feasible && heteroExhaustive.feasible;
        const bool samePick =
            bothFeasible &&
            samePlanChoice(heteroPlan.chosen, heteroExhaustive.chosen);
        ok = ok && samePick;
        const auto compText = [](const PlanProbe &p) {
            std::string s;
            for (std::size_t k = 0; k < p.composition.size(); ++k)
                s += (k ? "+" : "") + std::to_string(p.composition[k]);
            return s.empty() ? std::string("-") : s;
        };
        std::printf("hetero vs exhaustive: composition %s (%.1f W) vs "
                    "%s (%.1f W): %s\n",
                    compText(heteroPlan.chosen).c_str(),
                    heteroPlan.chosen.cost,
                    compText(heteroExhaustive.chosen).c_str(),
                    heteroExhaustive.chosen.cost,
                    samePick ? "OK" : "VIOLATED");
        const bool fewer =
            heteroPlan.probesSpent < heteroExhaustive.probesSpent;
        const bool budgetBinding =
            heteroBoundedComps < heteroUnboundedComps;
        ok = ok && fewer && budgetBinding;
        std::printf("hetero probe spend: %llu of %llu lattice points "
                    "(budget cut %llu -> %llu compositions, monotone "
                    "rays: %s): %s\n",
                    static_cast<unsigned long long>(
                        heteroPlan.probesSpent),
                    static_cast<unsigned long long>(
                        heteroExhaustive.probesSpent),
                    static_cast<unsigned long long>(
                        heteroUnboundedComps),
                    static_cast<unsigned long long>(heteroBoundedComps),
                    heteroPlan.monotoneFleetAxis ? "yes" : "no",
                    fewer && budgetBinding ? "OK" : "VIOLATED");
        if (heteroDifferentialRan) {
            ok = ok && heteroParallelIdentical;
            std::printf("parallel hetero plan byte-identical to serial "
                        "(%zu-thread speculation): %s\n",
                        poolThreads,
                        heteroParallelIdentical ? "OK" : "VIOLATED");
        }
    }
    if (heteroSmokeRan) {
        // The sanitized smoke keeps the structural half: a real
        // exhaustive lattice plan over 3 compositions ({1,0}, {0,1},
        // {1,1} — the empty fleet is excluded by construction), every
        // probe carrying a 2-kind composition and a positive cost.
        bool shaped = heteroPlan.probesSpent == 3 &&
                      heteroPlan.exhaustiveProbes == 3;
        for (const auto &p : heteroPlan.probes)
            shaped = shaped && p.composition.size() == 2 &&
                     p.cost > 0.0 &&
                     p.fleetSize ==
                         p.composition[0] + p.composition[1];
        ok = ok && shaped;
        std::printf("hetero smoke: %llu probes over a 3-composition "
                    "lattice, feasible=%s: %s\n",
                    static_cast<unsigned long long>(
                        heteroPlan.probesSpent),
                    heteroPlan.feasible ? "yes" : "no",
                    shaped ? "OK" : "VIOLATED");
    }
    if (heteroRan || heteroSmokeRan) {
        ok = ok && heteroNsIdentical;
        std::printf("uniform-1GHz mixed fleet vs frozen cycle-domain "
                    "reference (byte-identical serving JSON): %s\n",
                    heteroNsIdentical ? "OK" : "VIOLATED");
    }

    // Acceptance check 6 (traffic sweep): the closed-loop gate. Full
    // and quick runs demand the real outcome — the planner's fleet
    // rides out the crowd inside its SLO, the autoscaler reacts (>= 1
    // scale-up), settles (no scale action in the final 10% of the
    // horizon) and undercuts static provisioning on instance-cycles.
    // The smoke run keeps the structural half: a real plan, honest
    // conservation and scaling accounting, savings never negative.
    if (trafficRan) {
        const auto &as = trafficAutoRep.autoscaler;
        const bool conserved =
            trafficStaticRep.generated ==
                trafficStaticRep.admitted + trafficStaticRep.dropped &&
            trafficStaticRep.admitted ==
                trafficStaticRep.completed +
                    trafficStaticRep.leftoverQueued &&
            trafficAutoRep.generated ==
                trafficAutoRep.admitted + trafficAutoRep.dropped &&
            trafficAutoRep.admitted ==
                trafficAutoRep.completed +
                    trafficAutoRep.leftoverQueued &&
            trafficStaticRep.leftoverQueued == 0 &&
            trafficAutoRep.leftoverQueued == 0;
        const bool accounted =
            as.evals == as.timeline.samples.size() &&
            as.instanceCycles <=
                trafficCmp.staticInstanceCycles &&
            as.peakProvisioned <= trafficCmp.staticFleetSize;
        if (smoke) {
            const bool pass = conserved && accounted && as.evals > 0 &&
                              trafficCmp.instanceCyclesSaved >= 0;
            ok = ok && pass;
            std::printf("traffic smoke: conservation %s, %llu evals, "
                        "%llu/%llu instance-cycles: %s\n",
                        conserved ? "holds" : "broken",
                        static_cast<unsigned long long>(as.evals),
                        static_cast<unsigned long long>(
                            as.instanceCycles),
                        static_cast<unsigned long long>(
                            trafficCmp.staticInstanceCycles),
                        pass ? "OK" : "VIOLATED");
        } else {
            const bool sloHolds = trafficCmp.staticMeetsSlo;
            ok = ok && sloHolds;
            std::printf("traffic static fleet %zu through the crowd: "
                        "p99 %.3f ms vs SLO %.3f ms: %s\n",
                        trafficCmp.staticFleetSize,
                        trafficStaticRep.p99Ms(),
                        static_cast<double>(trafficCmp.sloP99Cycles) /
                            (pointAccConfig().freqGHz * 1e6),
                        sloHolds ? "OK" : "VIOLATED");
            const bool reacted =
                as.scaleUps >= 1 && trafficCmp.converged;
            ok = ok && reacted && conserved && accounted;
            std::printf("traffic autoscaler: %llu up / %llu down, "
                        "peak %u of %zu, converged %s, conservation "
                        "%s: %s\n",
                        static_cast<unsigned long long>(as.scaleUps),
                        static_cast<unsigned long long>(as.scaleDowns),
                        as.peakProvisioned, trafficCmp.staticFleetSize,
                        trafficCmp.converged ? "yes" : "no",
                        conserved ? "holds" : "broken",
                        reacted && conserved && accounted
                            ? "OK"
                            : "VIOLATED");
            const bool saves = trafficCmp.instanceCyclesSaved > 0;
            ok = ok && saves;
            std::printf("traffic instance-cycles: autoscaler %llu vs "
                        "static %llu (saved %lld, %.0f%%): %s\n",
                        static_cast<unsigned long long>(
                            as.instanceCycles),
                        static_cast<unsigned long long>(
                            trafficCmp.staticInstanceCycles),
                        static_cast<long long>(
                            trafficCmp.instanceCyclesSaved),
                        100.0 *
                            static_cast<double>(
                                trafficCmp.instanceCyclesSaved) /
                            static_cast<double>(
                                trafficCmp.staticInstanceCycles),
                        saves ? "OK" : "VIOLATED");
        }
    }

    // Acceptance check 7 (faults sweep): the robustness gates. (c)
    // first — extended conservation and the goodput bound on every
    // row, faulted or not; then observability (the scheduled crash
    // caught work in flight and retried it, the stochastic process
    // crashed at least once, hedging issued at least one hedge); then
    // (a) reference byte-identity; then (b) the availability plan —
    // strict in full/quick runs, structural under --smoke.
    if (faultsRan) {
        bool conserved = true;
        bool goodputBounded = true;
        for (const auto &r : faultRows) {
            const auto &rep = r.report;
            conserved = conserved &&
                        rep.generated == rep.admitted + rep.dropped &&
                        rep.admitted == rep.completed + rep.failed +
                                            rep.leftoverQueued;
            goodputBounded = goodputBounded &&
                             rep.goodputRps() <= rep.throughputRps();
        }
        ok = ok && conserved && goodputBounded;
        std::printf("faults conservation (admitted = completed + "
                    "failed + leftover) and goodput <= throughput on "
                    "%zu rows: %s\n",
                    faultRows.size(),
                    conserved && goodputBounded ? "OK" : "VIOLATED");

        const auto &crashRep = faultRows[1].report;  // flt-crash
        const auto &stragRep = faultRows[2].report;  // flt-strag
        const auto &mtbfRep = faultRows[3].report;   // flt-mtbf
        const auto &hedgeRep = faultRows[4].report;  // flt-hedge
        const bool observed =
            crashRep.faults.crashes >= 1 &&
            crashRep.faults.inflightFailed >= 1 &&
            crashRep.faults.retryAttempts >= 1 &&
            stragRep.faults.stragglerWindows >= 1 &&
            mtbfRep.faults.crashes >= 1 && hedgeRep.faults.hedges >= 1;
        ok = ok && observed;
        std::printf(
            "faults observability: crash row %llu crashes / %llu "
            "in-flight kills / %llu retries, straggler row %llu "
            "windows, mtbf row %llu crashes, hedge row %llu hedges: "
            "%s\n",
            static_cast<unsigned long long>(crashRep.faults.crashes),
            static_cast<unsigned long long>(
                crashRep.faults.inflightFailed),
            static_cast<unsigned long long>(
                crashRep.faults.retryAttempts),
            static_cast<unsigned long long>(
                stragRep.faults.stragglerWindows),
            static_cast<unsigned long long>(mtbfRep.faults.crashes),
            static_cast<unsigned long long>(hedgeRep.faults.hedges),
            observed ? "OK" : "VIOLATED");

        ok = ok && faultsIdentical;
        std::printf("faults empty-program byte-identity vs reference "
                    "engine: %s\n",
                    faultsIdentical ? "OK" : "VIOLATED");

        if (smoke) {
            const bool structural =
                faultsCmp.bothFeasible &&
                faultsCmp.availabilityFleetSize >=
                    faultsCmp.nominalFleetSize &&
                faultsCmp.availabilityHoldsUnderFault;
            ok = ok && structural;
            std::printf("faults plan smoke: nominal %zu -> "
                        "availability %zu, availability holds under "
                        "crash %s: %s\n",
                        faultsCmp.nominalFleetSize,
                        faultsCmp.availabilityFleetSize,
                        faultsCmp.availabilityHoldsUnderFault ? "yes"
                                                              : "no",
                        structural ? "OK" : "VIOLATED");
        } else {
            const bool premium =
                faultsCmp.bothFeasible &&
                faultsCmp.availabilityFleetSize >
                    faultsCmp.nominalFleetSize;
            const bool decisive = faultsCmp.nominalFailsUnderFault &&
                                  faultsCmp.availabilityHoldsUnderFault;
            ok = ok && premium && decisive;
            std::printf(
                "faults availability plan: nominal %zu (p99 %.3f ms "
                "under crash, %s) vs availability %zu (p99 %.3f ms, "
                "%s) against SLO %.3f ms: %s\n",
                faultsCmp.nominalFleetSize,
                faultsCmp.nominalP99UnderFaultMs,
                faultsCmp.nominalFailsUnderFault ? "misses" : "meets",
                faultsCmp.availabilityFleetSize,
                faultsCmp.availabilityP99UnderFaultMs,
                faultsCmp.availabilityHoldsUnderFault ? "meets"
                                                      : "misses",
                static_cast<double>(faultsCmp.sloP99Cycles) /
                    (pointAccConfig().freqGHz * 1e6),
                premium && decisive ? "OK" : "VIOLATED");
        }
    }

    // Acceptance check 8 (runahead sweep): (a) inert-defaults
    // byte-identity against the frozen reference engine; (b) the
    // cost-aware policy must dominate *both* blind endpoints of the
    // hold spectrum (win throughput or p99 vs pure-eager, and again
    // vs pure-hold); (c) the depth ladder must be monotone — with an
    // unbounded queue a deeper mapped-output buffer only starts maps
    // earlier, so throughput must not drop and p99 must not rise.
    // --smoke keeps (a) and (c) (the monotonicity argument is
    // horizon-independent) and relaxes (b) to structural echoes.
    if (runaheadRan) {
        ok = ok && runaheadIdentical;
        std::printf("runahead depth-1/cost-off byte-identity vs "
                    "reference engine: %s\n",
                    runaheadIdentical ? "OK" : "VIOLATED");

        const Row &eager = raTrioRows[0];
        const Row &hold = raTrioRows[1];
        const Row &cost = raTrioRows[2];
        const bool priced = cost.report.costAware &&
                            cost.report.costHolds +
                                    cost.report.costDispatches >
                                0;
        ok = ok && priced;
        std::printf("runahead cost model engaged: %llu holds / %llu "
                    "dispatches priced: %s\n",
                    static_cast<unsigned long long>(
                        cost.report.costHolds),
                    static_cast<unsigned long long>(
                        cost.report.costDispatches),
                    priced ? "OK" : "VIOLATED");
        if (!smoke) {
            const bool beatsEager =
                cost.report.throughputRps() >
                    eager.report.throughputRps() ||
                cost.report.p99Ms() < eager.report.p99Ms();
            const bool beatsHold =
                cost.report.throughputRps() >
                    hold.report.throughputRps() ||
                cost.report.p99Ms() < hold.report.p99Ms();
            ok = ok && beatsEager && beatsHold;
            std::printf(
                "runahead hold-vs-dispatch: cost-aware %.0f r/s / "
                "p99 %.3f ms vs eager %.0f / %.3f (%s) and vs hold "
                "%.0f / %.3f (%s): %s\n",
                cost.report.throughputRps(), cost.report.p99Ms(),
                eager.report.throughputRps(), eager.report.p99Ms(),
                beatsEager ? "wins" : "loses",
                hold.report.throughputRps(), hold.report.p99Ms(),
                beatsHold ? "wins" : "loses",
                beatsEager && beatsHold ? "OK" : "VIOLATED");
        }

        bool depthsEcho = true;
        for (std::size_t i = 0; i < raDepthRows.size(); ++i) {
            const std::uint32_t want = i == 0 ? 1 : (i == 1 ? 2 : 4);
            depthsEcho = depthsEcho &&
                         raDepthRows[i].report.runAheadDepth == want &&
                         raDepthRows[i].report.dropRate() == 0.0;
        }
        bool depthMonotone = true;
        for (std::size_t i = 1; i < raDepthRows.size(); ++i) {
            const auto &shallow = raDepthRows[i - 1].report;
            const auto &deep = raDepthRows[i].report;
            depthMonotone = depthMonotone &&
                            deep.throughputRps() >=
                                shallow.throughputRps() &&
                            deep.p99Ms() <= shallow.p99Ms();
        }
        ok = ok && depthsEcho && depthMonotone;
        std::printf("runahead depth ladder k=1/2/4: thru %.0f/%.0f/%.0f "
                    "r/s non-decreasing, p99 %.3f/%.3f/%.3f ms "
                    "non-increasing, no drops: %s\n",
                    raDepthRows[0].report.throughputRps(),
                    raDepthRows[1].report.throughputRps(),
                    raDepthRows[2].report.throughputRps(),
                    raDepthRows[0].report.p99Ms(),
                    raDepthRows[1].report.p99Ms(),
                    raDepthRows[2].report.p99Ms(),
                    depthsEcho && depthMonotone ? "OK" : "VIOLATED");
    }

    if (!jsonPath.empty()) {
        std::ofstream jf(jsonPath);
        writeRows(jf, rows,
                  planRan || smokeRan ? &planReport : nullptr,
                  heteroRan || heteroSmokeRan ? &heteroPlan : nullptr,
                  trafficRan ? &trafficCmp : nullptr,
                  faultsRan ? &faultsCmp : nullptr);
        jf.flush();
        if (jf.good())
            std::printf("wrote %s\n", jsonPath.c_str());
        else
            std::fprintf(stderr, "error: could not write %s\n",
                         jsonPath.c_str());
    }
    return ok ? 0 : 1;
}
