/**
 * @file
 * Serving-runtime benchmark: throughput and tail latency of PointAcc
 * fleets under open-loop load.
 *
 * Not a paper figure — this drives the runtime/ subsystem that grows
 * the reproduction toward a serving system. Three sweeps:
 *
 *  1. fleet scaling: 1 / 2 / 4 PointAcc instances at a fixed offered
 *     load (p99 must not increase with fleet size);
 *  2. queue policy: FIFO vs SJF at rising load on one instance;
 *  3. batching: on vs off for a batch-friendly (single-network) mix.
 *
 * Results print as a table and are dumped to BENCH_serving.json for
 * the machine-readable perf trajectory.
 */

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/json.hpp"
#include "nn/zoo.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/serving_stats.hpp"
#include "runtime/workload.hpp"
#include "sim/accel_config.hpp"

using namespace pointacc;

namespace {

struct Row
{
    std::string sweep;
    std::string process;
    double offeredPerMCycle = 0.0;
    std::size_t fleetSize = 0;
    std::string policy;
    bool batching = false;
    ServingReport report;
};

Row
runScenario(const std::string &sweep, const SimServiceModel &model,
            std::size_t fleet_size, const WorkloadSpec &wspec,
            QueuePolicy policy, bool batching)
{
    SchedulerConfig scfg;
    scfg.policy = policy;
    scfg.batcher.enabled = batching;
    scfg.queueDepth = 256;

    std::vector<AcceleratorConfig> fleet(fleet_size, pointAccConfig());
    FleetScheduler sched(fleet, model, model.catalog().bucketScales, scfg);

    WorkloadGenerator gen(wspec);
    Row row;
    row.sweep = sweep;
    row.process = toString(wspec.arrivals);
    row.offeredPerMCycle = wspec.requestsPerMCycle;
    row.fleetSize = fleet_size;
    row.policy = toString(policy);
    row.batching = batching;
    row.report = sched.run(gen.generate());
    return row;
}

void
printHeader()
{
    std::printf("%-10s %-8s %7s %5s %6s %6s | %9s %8s %8s %8s %6s %6s\n",
                "sweep", "process", "offered", "fleet", "policy", "batch",
                "thru r/s", "p50 ms", "p95 ms", "p99 ms", "util", "drop%");
    bench::rule(108);
}

void
printRow(const Row &r)
{
    double utilSum = 0.0;
    for (const auto &acc : r.report.accelerators)
        utilSum += acc.utilization(r.report.horizonCycles);
    const double util =
        r.report.accelerators.empty()
            ? 0.0
            : utilSum / static_cast<double>(r.report.accelerators.size());
    std::printf(
        "%-10s %-8s %7.2f %5zu %6s %6s | %9.0f %8.3f %8.3f %8.3f %6.2f %6.2f\n",
        r.sweep.c_str(), r.process.c_str(), r.offeredPerMCycle, r.fleetSize,
        r.policy.c_str(), r.batching ? "on" : "off",
        r.report.throughputRps(), r.report.p50Ms(), r.report.p95Ms(),
        r.report.p99Ms(), util, 100.0 * r.report.dropRate());
}

void
writeRows(std::ostream &os, const std::vector<Row> &rows)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("bench", "serving");
    w.key("rows").beginArray();
    for (const auto &r : rows) {
        w.beginObject();
        w.field("sweep", r.sweep);
        w.field("process", r.process);
        w.field("offered_per_mcycle", r.offeredPerMCycle);
        w.field("fleet_size", static_cast<std::uint64_t>(r.fleetSize));
        w.field("policy", r.policy);
        w.field("batching", r.batching);
        w.field("throughput_rps", r.report.throughputRps());
        w.field("latency_ms_p50", r.report.p50Ms());
        w.field("latency_ms_p95", r.report.p95Ms());
        w.field("latency_ms_p99", r.report.p99Ms());
        w.field("drop_rate", r.report.dropRate());
        w.field("completed", r.report.completed);
        w.field("deadline_misses", r.report.deadlineMisses);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath = "BENCH_serving.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--no-json") == 0)
            jsonPath.clear();
    }

    bench::banner("Serving runtime: fleets of PointAcc under open load",
                  "runtime/ subsystem (beyond the paper)");

    // Catalog: an object-classification network, a hierarchical
    // PointNet++ and a scene-segmentation MinkowskiUNet, each at two
    // cloud-size buckets. Profiling = 6 simulator runs, memoized.
    ServingCatalog catalog;
    catalog.networks = {pointNet(), pointNetPPClass(),
                        minkowskiUNetIndoor()};
    catalog.bucketScales = {0.05, 0.1};
    SimServiceModel model(catalog);

    // Price the mix against one PointAcc to express offered load in
    // fractions of single-instance capacity.
    const auto cfgServer = pointAccConfig();
    WorkloadSpec base;
    base.mix = {
        {0, 0, 4.0, 0}, // PointNet, small clouds, bulk of traffic
        {1, 1, 2.0, 0}, // PointNet++, larger objects
        {2, 1, 1.0, 0}, // MinkowskiUNet scenes, the heavy tail
    };
    double meanCycles = 0.0;
    double totalWeight = 0.0;
    for (const auto &cls : base.mix) {
        meanCycles += cls.weight *
                      static_cast<double>(
                          model.profile(cfgServer, cls.networkId,
                                        cls.sizeBucket)
                              .totalCycles);
        totalWeight += cls.weight;
    }
    meanCycles /= totalWeight;
    const double capacityPerMCycle = 1e6 / meanCycles; // one instance
    std::printf("mix mean service: %.0f cycles -> 1-instance capacity "
                "%.2f req/Mcycle\n\n",
                meanCycles, capacityPerMCycle);

    std::vector<Row> rows;
    printHeader();

    // Sweep 1: fleet scaling at a load that saturates one instance.
    base.seed = 2026;
    base.horizonCycles = 400'000'000;
    base.arrivals = ArrivalProcess::Poisson;
    base.requestsPerMCycle = 1.5 * capacityPerMCycle;
    for (const std::size_t fleetSize : {1u, 2u, 4u}) {
        rows.push_back(runScenario("fleet", model, fleetSize, base,
                                   QueuePolicy::Fifo, false));
        printRow(rows.back());
    }
    bench::rule(108);

    // Sweep 2: FIFO vs SJF, one instance, rising load.
    for (const double frac : {0.6, 0.9, 1.2}) {
        base.requestsPerMCycle = frac * capacityPerMCycle;
        for (const QueuePolicy pol : {QueuePolicy::Fifo, QueuePolicy::Sjf}) {
            rows.push_back(
                runScenario("policy", model, 1, base, pol, false));
            printRow(rows.back());
        }
    }
    bench::rule(108);

    // Sweep 3: batching on/off under bursty single-network traffic
    // (bursts of same-class requests are what batching can coalesce).
    WorkloadSpec burstSpec = base;
    burstSpec.arrivals = ArrivalProcess::Bursty;
    burstSpec.meanBurstSize = 6;
    burstSpec.mix = {{0, 0, 1.0, 0}}; // all PointNet small
    const double pnCycles = static_cast<double>(
        model.profile(cfgServer, 0, 0).totalCycles);
    burstSpec.requestsPerMCycle = 0.9 * 1e6 / pnCycles;
    for (const bool batching : {false, true}) {
        rows.push_back(runScenario("batching", model, 1, burstSpec,
                                   QueuePolicy::Fifo, batching));
        printRow(rows.back());
    }
    bench::rule(108);

    // Acceptance check: p99 must not increase with fleet size.
    const double p99_1 = rows[0].report.p99Ms();
    const double p99_2 = rows[1].report.p99Ms();
    const double p99_4 = rows[2].report.p99Ms();
    const bool monotone = p99_1 >= p99_2 && p99_2 >= p99_4;
    std::printf("fleet-scaling p99: 1x %.3f >= 2x %.3f >= 4x %.3f ms: %s\n",
                p99_1, p99_2, p99_4, monotone ? "OK" : "VIOLATED");

    if (!jsonPath.empty()) {
        std::ofstream jf(jsonPath);
        writeRows(jf, rows);
        jf.flush();
        if (jf.good())
            std::printf("wrote %s\n", jsonPath.c_str());
        else
            std::fprintf(stderr, "error: could not write %s\n",
                         jsonPath.c_str());
    }
    return monotone ? 0 : 1;
}
