/**
 * @file
 * Figure 19: distribution of per-layer DRAM access size for
 * MinkowskiUNet on S3DIS and SemanticKITTI, with the input buffers in
 * cache mode (Fetch-on-Demand) vs without (Gather & Scatter).
 *
 * Paper reference: configurable caching reduces average layer DRAM
 * access by 3.5x (SemanticKITTI) to 6.3x (S3DIS).
 */

#include "bench_util.hpp"
#include "core/stats.hpp"
#include "nn/zoo.hpp"
#include "sim/accelerator.hpp"

using namespace pointacc;

namespace {

Summary
layerDram(const Accelerator &accel, const Network &net,
          const PointCloud &cloud, bool use_cache)
{
    RunOptions opt;
    opt.useCache = use_cache;
    const auto r = accel.run(net, cloud, opt);
    Summary s;
    for (const auto &ls : r.layers) {
        if (!ls.isDense)
            s.record(static_cast<double>(ls.dramReadBytes +
                                         ls.dramWriteBytes) /
                     1e6);
    }
    return s;
}

} // namespace

int
main()
{
    bench::banner("bench_fig19_dram",
                  "Fig. 19 (per-layer DRAM access distribution with / "
                  "without caching)");

    Accelerator accel(pointAccConfig());
    const std::vector<Network> nets = {minkowskiUNetIndoor(),
                                       minkowskiUNetOutdoor()};
    for (const auto &net : nets) {
        const auto cloud = bench::benchCloud(net);
        const auto cached = layerDram(accel, net, cloud, true);
        const auto uncached = layerDram(accel, net, cloud, false);

        std::printf("\n%s on %s (%zu points), per-layer DRAM MB:\n",
                    net.notation.c_str(), toString(net.dataset).c_str(),
                    cloud.size());
        std::printf("%-22s %10s %10s %10s %10s\n", "mode", "mean",
                    "p25", "p50", "p75");
        std::printf("%-22s %10.2f %10.2f %10.2f %10.2f\n",
                    "gather & scatter", uncached.mean(),
                    uncached.percentile(0.25), uncached.percentile(0.5),
                    uncached.percentile(0.75));
        std::printf("%-22s %10.2f %10.2f %10.2f %10.2f\n",
                    "fetch-on-demand", cached.mean(),
                    cached.percentile(0.25), cached.percentile(0.5),
                    cached.percentile(0.75));
        std::printf("average reduction: %.1fx\n",
                    uncached.mean() / cached.mean());
    }
    std::printf("\nPaper reference: 6.3x (S3DIS) and 3.5x "
                "(SemanticKITTI) average reduction.\n");
    return 0;
}
