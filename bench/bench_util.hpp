/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries.
 *
 * Every bench prints the rows/series of one paper table or figure.
 * Clouds are generated at a per-dataset scale factor chosen so the
 * full suite completes in well under a minute; scales are reported in
 * each table header so absolute numbers are interpretable.
 */

#ifndef POINTACC_BENCH_BENCH_UTIL_HPP
#define POINTACC_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "datasets/synthetic.hpp"
#include "nn/network.hpp"

namespace pointacc::bench {

/** Workload scale per dataset (fraction of the paper's input size). */
inline double
datasetScale(DatasetKind kind)
{
    switch (kind) {
      case DatasetKind::ModelNet40:
      case DatasetKind::ShapeNet:
        return 1.0;   // full object clouds
      case DatasetKind::KITTI:
        return 0.5;
      case DatasetKind::S3DIS:
        return 0.5;
      case DatasetKind::SemanticKITTI:
        return 0.25;  // ~24k of ~98k points
    }
    return 1.0;
}

/** Deterministic benchmark cloud for one network. */
inline PointCloud
benchCloud(const Network &net, std::uint64_t seed = 20211018)
{
    return generate(net.dataset, seed, datasetScale(net.dataset));
}

/** Print a rule line. */
inline void
rule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Print a bench banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    rule();
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    rule();
}

} // namespace pointacc::bench

#endif // POINTACC_BENCH_BENCH_UTIL_HPP
