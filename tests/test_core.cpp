/**
 * @file
 * Unit tests for the core module: coordinates, packing, point cloud
 * container, RNG determinism, statistics helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "core/point_cloud.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"

namespace pointacc {
namespace {

TEST(Coord3, LexicographicOrdering)
{
    EXPECT_LT(Coord3(0, 0, 0), Coord3(0, 0, 1));
    EXPECT_LT(Coord3(0, 9, 9), Coord3(1, 0, 0));
    EXPECT_LT(Coord3(-1, 5, 5), Coord3(0, 0, 0));
    EXPECT_EQ(Coord3(3, 4, 5), Coord3(3, 4, 5));
    EXPECT_GT(Coord3(1, 0, 0), Coord3(0, 100, 100));
}

TEST(Coord3, Arithmetic)
{
    const Coord3 a{1, 2, 3}, b{-4, 5, -6};
    EXPECT_EQ(a + b, Coord3(-3, 7, -3));
    EXPECT_EQ(a - b, Coord3(5, -3, 9));
    EXPECT_EQ(a * 3, Coord3(3, 6, 9));
}

TEST(Coord3, Distance2)
{
    EXPECT_EQ(Coord3(0, 0, 0).distance2({1, 2, 2}), 9);
    EXPECT_EQ(Coord3(-1, -1, -1).distance2({1, 1, 1}), 12);
    // Large coordinates must not overflow 32 bits.
    const Coord3 far1{1000000, 0, 0}, far2{-1000000, 0, 0};
    EXPECT_EQ(far1.distance2(far2), 4000000000000LL);
}

TEST(Coord3, Chebyshev)
{
    EXPECT_EQ(Coord3(0, 0, 0).chebyshev({1, -2, 1}), 2);
    EXPECT_EQ(Coord3(5, 5, 5).chebyshev({5, 5, 5}), 0);
}

TEST(Coord3, PackPreservesOrder)
{
    // Packing must preserve lexicographic order, including negatives.
    const std::vector<Coord3> coords = {
        {-100, 50, 3}, {-100, 50, 4}, {-1, -1, -1}, {0, 0, 0},
        {0, 0, 1},     {0, 1, -500},  {7, -3, 2},   {1000, 1000, 1000},
    };
    for (std::size_t i = 0; i + 1 < coords.size(); ++i) {
        EXPECT_LT(packCoord(coords[i]), packCoord(coords[i + 1]))
            << "at index " << i;
    }
}

TEST(Coord3, PackUnpackRoundTrip)
{
    Rng rng(42);
    for (int i = 0; i < 1000; ++i) {
        const Coord3 c{
            static_cast<std::int32_t>(rng.range(2000000)) - 1000000,
            static_cast<std::int32_t>(rng.range(2000000)) - 1000000,
            static_cast<std::int32_t>(rng.range(2000000)) - 1000000};
        EXPECT_EQ(unpackCoord(packCoord(c)), c);
    }
}

TEST(Coord3, HashSpreadsValues)
{
    std::unordered_set<std::size_t> hashes;
    for (int x = 0; x < 16; ++x)
        for (int y = 0; y < 16; ++y)
            for (int z = 0; z < 16; ++z)
                hashes.insert(Coord3Hash{}(Coord3{x, y, z}));
    // All 4096 coordinates should hash distinctly (no structured
    // collisions on small grids).
    EXPECT_EQ(hashes.size(), 4096u);
}

TEST(FixedPoint, RoundTripResolution)
{
    EXPECT_EQ(fromFixed(toFixed(1.0f)), 1.0f);
    EXPECT_NEAR(fromFixed(toFixed(0.123f)), 0.123f,
                1.0f / (1 << kFixedPointFracBits));
    EXPECT_NEAR(fromFixed(toFixed(-5.67f)), -5.67f,
                1.0f / (1 << kFixedPointFracBits));
}

TEST(PointCloud, BasicAccessors)
{
    PointCloud pc({{1, 2, 3}, {4, 5, 6}}, 2);
    EXPECT_EQ(pc.size(), 2u);
    EXPECT_EQ(pc.channels(), 2);
    EXPECT_EQ(pc.coord(1), Coord3(4, 5, 6));
    pc.setFeature(0, 1, 3.5f);
    EXPECT_FLOAT_EQ(pc.feature(0, 1), 3.5f);
    EXPECT_FLOAT_EQ(pc.feature(1, 0), 0.0f);
}

TEST(PointCloud, BoundingBoxAndDensity)
{
    PointCloud pc({{0, 0, 0}, {1, 1, 1}, {3, 0, 0}});
    const auto box = pc.boundingBox();
    EXPECT_EQ(box.lo, Coord3(0, 0, 0));
    EXPECT_EQ(box.hi, Coord3(3, 1, 1));
    EXPECT_EQ(box.volume(), 4 * 2 * 2);
    EXPECT_DOUBLE_EQ(pc.density(), 3.0 / 16.0);
}

TEST(PointCloud, EmptyCloud)
{
    PointCloud pc;
    EXPECT_TRUE(pc.empty());
    EXPECT_DOUBLE_EQ(pc.density(), 0.0);
    EXPECT_TRUE(pc.isSorted());
    pc.sortByCoord();
    EXPECT_EQ(pc.dedupSorted(), 0u);
}

TEST(PointCloud, SortCarriesFeatures)
{
    PointCloud pc({{5, 0, 0}, {1, 0, 0}, {3, 0, 0}}, 1);
    pc.setFeature(0, 0, 50.0f);
    pc.setFeature(1, 0, 10.0f);
    pc.setFeature(2, 0, 30.0f);
    pc.sortByCoord();
    ASSERT_TRUE(pc.isSorted());
    EXPECT_FLOAT_EQ(pc.feature(0, 0), 10.0f);
    EXPECT_FLOAT_EQ(pc.feature(1, 0), 30.0f);
    EXPECT_FLOAT_EQ(pc.feature(2, 0), 50.0f);
}

TEST(PointCloud, DedupKeepsFirstOccurrence)
{
    PointCloud pc({{1, 1, 1}, {1, 1, 1}, {2, 2, 2}, {2, 2, 2}, {3, 3, 3}},
                  1);
    for (int i = 0; i < 5; ++i)
        pc.setFeature(i, 0, static_cast<float>(i));
    EXPECT_EQ(pc.dedupSorted(), 2u);
    ASSERT_EQ(pc.size(), 3u);
    EXPECT_FLOAT_EQ(pc.feature(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(pc.feature(1, 0), 2.0f);
    EXPECT_FLOAT_EQ(pc.feature(2, 0), 4.0f);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(2.0, 5.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, RangeBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.range(17), 17u);
}

TEST(Rng, GaussMoments)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gauss();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Stats, RegistryAccumulates)
{
    StatRegistry reg;
    reg.add("reads", 10);
    reg.add("reads", 5);
    reg.add("writes");
    EXPECT_EQ(reg.get("reads"), 15u);
    EXPECT_EQ(reg.get("writes"), 1u);
    EXPECT_EQ(reg.get("missing"), 0u);
    reg.clear();
    EXPECT_EQ(reg.get("reads"), 0u);
}

TEST(Stats, SummaryMoments)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.record(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 4.0);
}

TEST(Stats, GeomeanMatchesHandComputed)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, GeomeanRejectsNonPositiveSamples)
{
    // log(0) = -inf used to collapse the mean to 0 silently; a
    // negative sample used to poison it with NaN. Both now fail loud.
    EXPECT_THROW(geomean({1.0, 0.0, 4.0}), std::invalid_argument);
    EXPECT_THROW(geomean({-2.0}), std::invalid_argument);
    EXPECT_THROW(geomean({3.0, -1.0}), std::invalid_argument);
    // Empty stays the documented 0.0, not a throw.
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, PercentileSeesSameSizeMutations)
{
    // Regression: the selection scratch used to refresh only when
    // samples.size() changed, so any same-size mutation (clear() +
    // re-record, a size-preserving merge sequence) selected over the
    // STALE values. The dirty flag must catch it.
    Summary s;
    for (double v : {10.0, 20.0, 30.0})
        s.record(v);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 20.0); // seeds the scratch

    s.clear();
    for (double v : {1.0, 2.0, 3.0}) // same count as before
        s.record(v);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 3.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
}

TEST(Stats, ClearResetsToFreshState)
{
    Summary s;
    s.record(5.0);
    s.record(7.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
    s.record(9.0);
    EXPECT_DOUBLE_EQ(s.min(), 9.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 9.0);
}

TEST(Stats, MergeMatchesSingleSummaryRun)
{
    // merge(a, b) must equal one summary fed the union, in every
    // moment and percentile — the property the sharded bench relies
    // on when it folds per-shard reports into one.
    Summary a, b, all;
    for (double v : {5.0, 1.0, 9.0}) {
        a.record(v);
        all.record(v);
    }
    for (double v : {2.0, 14.0}) {
        b.record(v);
        all.record(v);
    }
    a.percentile(0.5); // seed a's scratch: merge must invalidate it
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
    EXPECT_DOUBLE_EQ(a.mean(), all.mean());
    for (double p : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(a.percentile(p), all.percentile(p)) << p;
}

TEST(Stats, MergeHandlesEmptySummaries)
{
    Summary empty, s;
    s.record(3.0);
    s.merge(empty); // no-op
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.min(), 3.0);

    Summary into;
    into.merge(s); // empty absorbs: min/max come from the source
    EXPECT_EQ(into.count(), 1u);
    EXPECT_DOUBLE_EQ(into.min(), 3.0);
    EXPECT_DOUBLE_EQ(into.max(), 3.0);
    EXPECT_DOUBLE_EQ(into.percentile(0.5), 3.0);

    Summary e1, e2;
    e1.merge(e2);
    EXPECT_EQ(e1.count(), 0u);
}

} // namespace
} // namespace pointacc
