/**
 * @file
 * Tests for the Memory Management Unit components: DRAM model, MIR
 * container, configurable cache, dataflow traffic models and the
 * temporal fusion planner. Property tests enforce the paper's
 * monotonic claims (Fig. 18: miss rate falls with block size, kernel
 * size and channels; Section 4.2.3: Fetch-on-Demand saves >= 3x input
 * feature traffic).
 */

#include <gtest/gtest.h>

#include "datasets/synthetic.hpp"
#include "mapping/kernel_map.hpp"
#include "mapping/quantize.hpp"
#include "memory/cache.hpp"
#include "memory/dram.hpp"
#include "memory/flows.hpp"
#include "memory/fusion.hpp"
#include "memory/mir.hpp"

namespace pointacc {
namespace {

// ---------------------------------------------------------------- //
//                             DRAM                                  //
// ---------------------------------------------------------------- //

TEST(Dram, SpecsMatchTable3)
{
    EXPECT_DOUBLE_EQ(hbm2Spec().bandwidthGBps, 256.0);
    EXPECT_DOUBLE_EQ(ddr4Spec().bandwidthGBps, 17.0);
    EXPECT_DOUBLE_EQ(lpddr3Spec().bandwidthGBps, 12.8);
}

TEST(Dram, SequentialTimeMatchesBandwidth)
{
    DramModel dram(hbm2Spec());
    dram.readSequential(256ULL * 1000 * 1000 * 1000); // 256 GB
    EXPECT_NEAR(dram.timeNs(), 1e9, 1e9 * 0.01);      // ~1 second
}

TEST(Dram, RandomAccessPadsToBursts)
{
    DramModel dram(ddr4Spec());
    dram.readRandom(10, 4); // 4-byte reads pad to 64-byte bursts
    EXPECT_EQ(dram.readBytes(), 640u);
}

TEST(Dram, RandomSlowerThanSequential)
{
    DramModel seq(ddr4Spec()), rnd(ddr4Spec());
    seq.readSequential(64 * 1024);
    rnd.readRandom(1024, 64);
    EXPECT_GT(rnd.timeNs(), seq.timeNs());
}

TEST(Dram, EnergyProportionalToBits)
{
    DramModel dram(hbm2Spec());
    dram.readSequential(1000);
    dram.writeSequential(500);
    EXPECT_DOUBLE_EQ(dram.energyPJ(), 1500.0 * 8.0 * 4.0);
}

TEST(Dram, ResetClears)
{
    DramModel dram(hbm2Spec());
    dram.readSequential(1000);
    dram.reset();
    EXPECT_EQ(dram.totalBytes(), 0u);
    EXPECT_DOUBLE_EQ(dram.timeNs(), 0.0);
}

// ---------------------------------------------------------------- //
//                         MIR container                             //
// ---------------------------------------------------------------- //

TEST(MirContainer, TagArrayHitMiss)
{
    MirContainer tags(8, MirMode::TagArray);
    EXPECT_FALSE(tags.lookup(3).has_value());
    Mir mir;
    mir.tileId = 3;
    tags.install(mir);
    EXPECT_TRUE(tags.lookup(3).has_value());
    // Conflicting tag (3 + 8 maps to the same slot) evicts.
    mir.tileId = 11;
    tags.install(mir);
    EXPECT_FALSE(tags.lookup(3).has_value());
    EXPECT_TRUE(tags.lookup(11).has_value());
}

TEST(MirContainer, FifoOrder)
{
    MirContainer fifo(4, MirMode::Fifo);
    for (int i = 0; i < 3; ++i) {
        Mir mir;
        mir.tileId = i;
        fifo.pushBack(mir);
    }
    EXPECT_EQ(fifo.popFront().tileId, 0);
    EXPECT_EQ(fifo.popFront().tileId, 1);
    EXPECT_EQ(fifo.size(), 1u);
}

TEST(MirContainer, StackOrder)
{
    MirContainer stack(4, MirMode::Stack);
    for (int i = 0; i < 3; ++i) {
        Mir mir;
        mir.tileId = i;
        stack.push(mir);
    }
    EXPECT_EQ(stack.top().tileId, 2);
    EXPECT_EQ(stack.pop().tileId, 2);
    EXPECT_EQ(stack.pop().tileId, 1);
    EXPECT_EQ(stack.size(), 1u);
}

TEST(MirContainer, ModeSwitchRequiresDrain)
{
    MirContainer c(4, MirMode::Stack);
    Mir mir;
    c.push(mir);
    c.pop();
    c.setMode(MirMode::TagArray); // legal when drained
    EXPECT_EQ(c.mode(), MirMode::TagArray);
}

// ---------------------------------------------------------------- //
//                        Feature cache                              //
// ---------------------------------------------------------------- //

TEST(FeatureCache, SequentialAccessHitsWithinBlock)
{
    CacheConfig cfg;
    cfg.capacityBytes = 16 * 1024;
    cfg.blockPoints = 8;
    cfg.blockChannels = 64;
    FeatureCache cache(cfg, 1000, 64);
    for (std::uint32_t p = 0; p < 64; ++p)
        cache.access(p, 0);
    // 64 points / 8 per block = 8 misses, rest hits.
    EXPECT_EQ(cache.stats().misses, 8u);
    EXPECT_EQ(cache.stats().accesses, 64u);
    EXPECT_EQ(cache.stats().missBytes, 8u * cache.blockBytes());
}

TEST(FeatureCache, RepeatAccessHits)
{
    CacheConfig cfg;
    cfg.blockPoints = 1;
    FeatureCache cache(cfg, 100, 64);
    EXPECT_FALSE(cache.access(5, 0));
    EXPECT_TRUE(cache.access(5, 0));
    EXPECT_TRUE(cache.access(5, 0));
    EXPECT_DOUBLE_EQ(cache.stats().missRate(), 1.0 / 3.0);
}

TEST(FeatureCache, ConflictEviction)
{
    CacheConfig cfg;
    cfg.capacityBytes = 4 * 128; // 4 blocks of one point x 64ch x 2B
    cfg.blockPoints = 1;
    cfg.blockChannels = 64;
    FeatureCache cache(cfg, 100, 64);
    ASSERT_EQ(cache.numBlocks(), 4u);
    cache.access(0, 0);
    cache.access(4, 0); // same slot as 0 -> evicts
    EXPECT_FALSE(cache.access(0, 0));
    EXPECT_EQ(cache.stats().misses, 3u);
}

// ---------------------------------------------------------------- //
//                     Flow traffic models                           //
// ---------------------------------------------------------------- //

class FlowFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cloud = generate(DatasetKind::S3DIS, 3, 0.2);
        KernelMapConfig kcfg;
        maps = sortKernelMap(cloud, cloud, kcfg);
        shape.numInputs = static_cast<std::uint32_t>(cloud.size());
        shape.numOutputs = static_cast<std::uint32_t>(cloud.size());
        shape.inChannels = 64;
        shape.outChannels = 64;
    }

    PointCloud cloud;
    MapSet maps;
    SparseLayerShape shape;
};

TEST_F(FlowFixture, GatherScatterTrafficFormula)
{
    const auto t = gatherMatMulScatterTraffic(maps, shape);
    const std::uint64_t m = maps.size();
    EXPECT_EQ(t.inputReadBytes, m * 64 * 2);
    EXPECT_EQ(t.scratchWriteBytes, m * 64 * 2 + m * 64 * 2);
    EXPECT_EQ(t.outputWriteBytes, m * 64 * 2);
    EXPECT_GT(t.totalBytes(), 5 * m * 64 * 2);
}

TEST_F(FlowFixture, FetchOnDemandSavesInputTraffic)
{
    CacheConfig ccfg;
    ccfg.capacityBytes = 128 * 1024;
    ccfg.blockPoints = 16;
    const auto gs = gatherMatMulScatterTraffic(maps, shape);
    const auto fod = fetchOnDemandTraffic(maps, shape, ccfg);
    // Section 4.2.3: >= 3x saving on input feature DRAM access.
    EXPECT_GT(static_cast<double>(gs.inputReadBytes +
                                  gs.scratchReadBytes +
                                  gs.scratchWriteBytes),
              3.0 * static_cast<double>(fod.traffic.inputReadBytes));
    // Outputs written exactly once.
    EXPECT_EQ(fod.traffic.outputWriteBytes,
              static_cast<std::uint64_t>(shape.numOutputs) * 64 * 2);
    EXPECT_EQ(fod.traffic.scratchReadBytes, 0u);
    EXPECT_EQ(fod.traffic.scratchWriteBytes, 0u);
}

TEST_F(FlowFixture, MissRateFallsWithBlockSize)
{
    double prev = 1.1;
    for (std::uint32_t block : {1u, 4u, 16u, 64u}) {
        CacheConfig ccfg;
        ccfg.capacityBytes = 64 * 1024;
        ccfg.blockPoints = block;
        const auto fod = fetchOnDemandTraffic(maps, shape, ccfg);
        EXPECT_LT(fod.cache.missRate(), prev) << "block=" << block;
        prev = fod.cache.missRate();
    }
    EXPECT_LT(prev, 0.1); // large blocks: most accesses hit
}

TEST_F(FlowFixture, MissRateFallsWithChannels)
{
    CacheConfig ccfg;
    ccfg.capacityBytes = 64 * 1024;
    ccfg.blockPoints = 4;
    auto wide = shape;
    wide.inChannels = 128;
    const auto narrow = fetchOnDemandTraffic(maps, shape, ccfg);
    const auto wideRes = fetchOnDemandTraffic(maps, wide, ccfg);
    // Fig. 18: more channels -> more reuse per cached block.
    EXPECT_LT(wideRes.cache.missRate(), narrow.cache.missRate());
}

TEST_F(FlowFixture, MissRateFallsWithKernelSize)
{
    KernelMapConfig k2cfg;
    k2cfg.kernelSize = 2;
    const auto maps2 = sortKernelMap(cloud, cloud, k2cfg);
    CacheConfig ccfg;
    ccfg.capacityBytes = 64 * 1024;
    ccfg.blockPoints = 4;
    const auto k2 = fetchOnDemandTraffic(maps2, shape, ccfg);
    const auto k3 = fetchOnDemandTraffic(maps, shape, ccfg);
    EXPECT_LT(k3.cache.missRate(), k2.cache.missRate());
}

TEST(DenseTraffic, InOutOnce)
{
    const auto t = denseLayerTraffic(1000, 64, 128);
    EXPECT_EQ(t.inputReadBytes, 1000u * 64 * 2);
    EXPECT_EQ(t.outputWriteBytes, 1000u * 128 * 2);
    EXPECT_EQ(t.weightReadBytes, 64u * 128 * 2);
}

// ---------------------------------------------------------------- //
//                         Layer fusion                              //
// ---------------------------------------------------------------- //

TEST(Fusion, FusesEverythingWithAmpleBuffer)
{
    const std::vector<std::uint32_t> chain = {64, 64, 128, 128, 256};
    const auto plan = planFusion(chain, 4096, 64ULL * 1024 * 1024);
    ASSERT_EQ(plan.groups.size(), 1u);
    EXPECT_EQ(plan.groups[0].numLayers, 4u);
}

TEST(Fusion, SplitsWhenBufferTight)
{
    const std::vector<std::uint32_t> chain = {64, 64, 128, 128, 256};
    // Buffer fits barely one layer pair at the minimum tile.
    const auto plan = planFusion(chain, 4096, 16 * 1024);
    EXPECT_GT(plan.groups.size(), 1u);
    std::size_t covered = 0;
    for (const auto &g : plan.groups) {
        EXPECT_GE(g.numLayers, 1u);
        EXPECT_EQ(g.firstLayer, covered);
        covered += g.numLayers;
    }
    EXPECT_EQ(covered, chain.size() - 1);
}

TEST(Fusion, FusedTrafficLessThanLayerByLayer)
{
    const std::vector<std::uint32_t> chain = {64, 64, 64, 128, 1024};
    const std::uint32_t points = 8192;
    const auto plan = planFusion(chain, points, 512 * 1024);
    const auto fused = fusedTraffic(chain, points, plan);
    const auto unfused = layerByLayerTraffic(chain, points);
    EXPECT_LT(fused, unfused);
    // PointNet-style chains cut DRAM by ~half or better (Fig. 20).
    EXPECT_GT(1.0 - static_cast<double>(fused) /
                        static_cast<double>(unfused),
              0.3);
}

TEST(Fusion, SimulationRespectsPlannedFootprint)
{
    const std::vector<std::uint32_t> chain = {64, 128, 256};
    const std::uint32_t points = 2048;
    const std::uint64_t buffer = 256 * 1024;
    const auto plan = planFusion(chain, points, buffer);
    for (const auto &g : plan.groups) {
        const auto peak = simulateFusedExecution(chain, g, points);
        EXPECT_LE(peak, buffer) << "group at layer " << g.firstLayer;
    }
}

TEST(Fusion, SingleLayerChainDegenerates)
{
    const std::vector<std::uint32_t> chain = {64, 128};
    const auto plan = planFusion(chain, 1024, 1024);
    ASSERT_EQ(plan.groups.size(), 1u);
    EXPECT_EQ(plan.groups[0].numLayers, 1u);
    EXPECT_EQ(fusedTraffic(chain, 1024, plan),
              layerByLayerTraffic(chain, 1024));
}

class FusionBufferSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FusionBufferSweep, MoreBufferNeverHurts)
{
    const std::vector<std::uint32_t> chain = {32, 64, 64, 128, 128, 256};
    const std::uint32_t points = 4096;
    const auto planSmall = planFusion(chain, points, GetParam());
    const auto planBig = planFusion(chain, points, GetParam() * 4);
    EXPECT_LE(fusedTraffic(chain, points, planBig),
              fusedTraffic(chain, points, planSmall));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusionBufferSweep,
                         ::testing::Values(8 * 1024, 32 * 1024, 128 * 1024,
                                           1024 * 1024));

} // namespace
} // namespace pointacc
