/**
 * @file
 * Tests for the Matrix Unit systolic-array model.
 */

#include <gtest/gtest.h>

#include "datasets/synthetic.hpp"
#include "mapping/kernel_map.hpp"
#include "mxu/systolic.hpp"

namespace pointacc {
namespace {

TEST(Mxu, PeakMacsPerCycle)
{
    EXPECT_EQ(MatrixUnit(MxuConfig{64, 64}).peakMacsPerCycle(), 4096u);
    EXPECT_EQ(MatrixUnit(MxuConfig{16, 16}).peakMacsPerCycle(), 256u);
}

TEST(Mxu, DenseMatmulMacCount)
{
    MatrixUnit mxu(MxuConfig{64, 64});
    const auto s = mxu.denseMatmul(1000, 64, 64);
    EXPECT_EQ(s.macs, 1000ULL * 64 * 64);
}

TEST(Mxu, DenseMatmulCyclesNearStreamLength)
{
    // A single-tile matmul should take ~points cycles (+ fill/drain).
    MatrixUnit mxu(MxuConfig{64, 64});
    const auto s = mxu.denseMatmul(100000, 64, 64);
    EXPECT_GE(s.cycles, 100000u);
    EXPECT_LE(s.cycles, 100000u + 3 * 64 + 8);
    EXPECT_GT(s.utilization(), 0.99);
}

TEST(Mxu, TilingMultipliesPasses)
{
    MatrixUnit mxu(MxuConfig{64, 64});
    const auto one = mxu.denseMatmul(10000, 64, 64);
    const auto four = mxu.denseMatmul(10000, 128, 128);
    // 2x2 channel tiles: four streaming passes.
    EXPECT_GT(four.cycles, 3 * one.cycles);
    EXPECT_LT(four.cycles, 5 * one.cycles);
    EXPECT_EQ(four.macs, 10000ULL * 128 * 128);
}

TEST(Mxu, RaggedTilesLowerUtilization)
{
    MatrixUnit mxu(MxuConfig{64, 64});
    const auto ragged = mxu.denseMatmul(10000, 65, 65);
    EXPECT_LT(ragged.utilization(), 0.5);
    EXPECT_EQ(ragged.macs, 10000ULL * 65 * 65);
}

TEST(Mxu, SmallEdgeArrayTakesMoreCycles)
{
    MatrixUnit big(MxuConfig{64, 64});
    MatrixUnit small(MxuConfig{16, 16});
    const auto b = big.denseMatmul(4096, 64, 64);
    const auto s = small.denseMatmul(4096, 64, 64);
    // 16x smaller array -> ~16x more cycles.
    EXPECT_GT(s.cycles, 12 * b.cycles);
    EXPECT_LT(s.cycles, 20 * b.cycles);
}

TEST(Mxu, SparseConvMacsMatchMaps)
{
    auto cloud = generate(DatasetKind::ShapeNet, 5, 0.2);
    KernelMapConfig kcfg;
    const auto maps = sortKernelMap(cloud, cloud, kcfg);
    MatrixUnit mxu(MxuConfig{64, 64});
    const auto s = mxu.sparseConv(maps, 64, 64);
    EXPECT_EQ(s.macs, maps.size() * 64ULL * 64ULL);
    EXPECT_GE(s.cycles, maps.size());
}

TEST(Mxu, SparseConvSkipsEmptyWeightGroups)
{
    MapSet maps(27);
    maps.add(Map{0, 0, 13}); // only the center weight has a map
    MatrixUnit mxu(MxuConfig{64, 64});
    const auto s = mxu.sparseConv(maps, 64, 64);
    // Only one tile pass: fill + 1 + drain, not 27 passes.
    EXPECT_LT(s.cycles, 4u * 64u);
}

TEST(Mxu, ZeroWork)
{
    MatrixUnit mxu;
    EXPECT_EQ(mxu.denseMatmul(0, 64, 64).cycles, 0u);
    EXPECT_EQ(mxu.denseMatmul(10, 0, 64).cycles, 0u);
}

TEST(Mxu, SramTrafficAccounting)
{
    MatrixUnit mxu(MxuConfig{64, 64});
    const auto s = mxu.denseMatmul(1000, 64, 64);
    EXPECT_EQ(s.inputSramBytes, 1000ULL * 64 * 2);
    EXPECT_EQ(s.weightSramBytes, 64ULL * 64 * 2);
    EXPECT_EQ(s.outputSramBytes, 2ULL * 1000 * 64 * 2);
}

} // namespace
} // namespace pointacc
