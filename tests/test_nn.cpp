/**
 * @file
 * Tests for the NN substrate: layer construction, the network zoo, the
 * executor's shape bookkeeping, workload summaries and functional
 * sparse convolution semantics.
 */

#include <gtest/gtest.h>

#include "datasets/synthetic.hpp"
#include "mapping/kernel_map.hpp"
#include "nn/executor.hpp"
#include "nn/functional.hpp"
#include "nn/zoo.hpp"

namespace pointacc {
namespace {

TEST(Zoo, EightBenchmarks)
{
    const auto nets = allBenchmarks();
    ASSERT_EQ(nets.size(), 8u);
    EXPECT_EQ(nets[0].notation, "PointNet");
    EXPECT_EQ(nets[7].notation, "MinkNet(o)");
    for (const auto &net : nets)
        EXPECT_FALSE(net.layers.empty()) << net.notation;
}

TEST(Zoo, ConvClassesMatchTable1)
{
    EXPECT_EQ(pointNet().convClass, ConvClass::PointMlp);
    EXPECT_EQ(pointNetPPClass().convClass, ConvClass::PointNetPP);
    EXPECT_EQ(dgcnn().convClass, ConvClass::PointNetPP);
    EXPECT_EQ(minkowskiUNetOutdoor().convClass, ConvClass::SparseConv);
}

TEST(Zoo, MesorasiCompatibilityFlags)
{
    // Section 5.2.2: Mesorasi only supports shared-weight aggregation
    // (PointNet++-based); SparseConv models are incompatible.
    EXPECT_TRUE(pointNetPPClass().mesorasiCompatible);
    EXPECT_TRUE(fPointNetPP().mesorasiCompatible);
    EXPECT_FALSE(minkowskiUNetIndoor().mesorasiCompatible);
    EXPECT_FALSE(miniMinkowskiUNet().mesorasiCompatible);
}

TEST(Zoo, MiniMinkBeatsPointNetPPAccuracy)
{
    // Fig. 16: co-designed Mini-MinkowskiUNet has 9.1% higher mIoU
    // than the PointNet++SSG Mesorasi runs on S3DIS.
    EXPECT_NEAR(miniMinkowskiUNet().paperAccuracy -
                    pointNetPPSemSeg().paperAccuracy,
                9.1, 0.01);
}

TEST(Executor, PointNetVisitsAllDenseLayers)
{
    const auto cloud = generate(DatasetKind::ModelNet40, 7, 0.5);
    int denseLayers = 0;
    std::uint64_t macs = 0;
    executeNetwork(pointNet(), cloud, [&](const LayerWork &w) {
        EXPECT_TRUE(w.isDense);
        EXPECT_EQ(w.maps, nullptr);
        ++denseLayers;
        macs += w.macs;
    });
    EXPECT_EQ(denseLayers, 8); // 5 backbone MLPs + 3 classifier FCs
    EXPECT_GT(macs, 0u);
}

TEST(Executor, DenseChainsSplitAtGlobalPool)
{
    const auto cloud = generate(DatasetKind::ModelNet40, 7, 0.5);
    std::vector<std::int32_t> chains;
    executeNetwork(pointNet(), cloud, [&](const LayerWork &w) {
        chains.push_back(w.denseChainId);
    });
    ASSERT_EQ(chains.size(), 8u);
    // First five layers one chain, classifier a second chain.
    EXPECT_EQ(chains[0], chains[4]);
    EXPECT_NE(chains[4], chains[5]);
    EXPECT_EQ(chains[5], chains[7]);
}

TEST(Executor, MinkUNetShapesAreConsistent)
{
    const auto cloud = generate(DatasetKind::S3DIS, 11, 0.1);
    std::uint64_t sparseOps = 0;
    std::uint64_t maxStridePoints = 0;
    executeNetwork(minkowskiUNetIndoor(), cloud, [&](const LayerWork &w) {
        if (!w.isDense) {
            ++sparseOps;
            ASSERT_NE(w.maps, nullptr) << w.name;
            EXPECT_EQ(w.macs,
                      w.maps->size() * static_cast<std::uint64_t>(w.cin) *
                          w.cout)
                << w.name;
            for (const auto &m : w.maps->flattened()) {
                EXPECT_GE(m.in, 0);
                EXPECT_LT(static_cast<std::uint64_t>(m.in), w.numIn);
                EXPECT_LT(static_cast<std::uint64_t>(m.out), w.numOut);
            }
        }
        maxStridePoints = std::max(maxStridePoints, w.numOut);
    });
    // Stem 2 + 4 encoder stages (1 down + 4 convs) + 4 decoder stages
    // (1 up + 4 convs).
    EXPECT_EQ(sparseOps, 2u + 4u * 5u + 4u * 5u);
    EXPECT_EQ(maxStridePoints, cloud.size());
}

TEST(Executor, UNetReturnsToFullResolution)
{
    const auto cloud = generate(DatasetKind::S3DIS, 13, 0.08);
    std::uint64_t lastOut = 0;
    std::uint32_t lastCout = 0;
    executeNetwork(minkowskiUNetIndoor(), cloud, [&](const LayerWork &w) {
        lastOut = w.numOut;
        lastCout = w.cout;
    });
    EXPECT_EQ(lastOut, cloud.size()); // head runs at full resolution
    EXPECT_EQ(lastCout, 13u);         // S3DIS classes
}

TEST(Executor, DownsamplingShrinksCloud)
{
    const auto cloud = generate(DatasetKind::SemanticKITTI, 17, 0.05);
    std::vector<std::uint64_t> downOutputs;
    executeNetwork(minkowskiUNetOutdoor(), cloud, [&](const LayerWork &w) {
        if (w.name.find(".down") != std::string::npos)
            downOutputs.push_back(w.numOut);
    });
    ASSERT_EQ(downOutputs.size(), 4u);
    for (std::size_t i = 1; i < downOutputs.size(); ++i)
        EXPECT_LT(downOutputs[i], downOutputs[i - 1]);
}

TEST(Executor, PointNetPPEmitsMappingOps)
{
    const auto cloud = generate(DatasetKind::ModelNet40, 19, 1.0);
    bool sawFps = false, sawBall = false;
    executeNetwork(pointNetPPClass(), cloud, [&](const LayerWork &w) {
        for (const auto &op : w.mappingOps) {
            if (op.kind == MappingOpKind::Fps)
                sawFps = true;
            if (op.kind == MappingOpKind::BallQuery) {
                sawBall = true;
                EXPECT_GT(op.k, 0);
            }
        }
    });
    EXPECT_TRUE(sawFps);
    EXPECT_TRUE(sawBall);
}

TEST(Executor, DgcnnUsesKnnOnEveryEdgeConv)
{
    const auto cloud = generate(DatasetKind::ShapeNet, 23, 0.25);
    int knnOps = 0;
    executeNetwork(dgcnn(), cloud, [&](const LayerWork &w) {
        for (const auto &op : w.mappingOps) {
            if (op.kind == MappingOpKind::Knn)
                ++knnOps;
        }
    });
    EXPECT_EQ(knnOps, 3);
}

TEST(Summary, MinkNetSparseDominated)
{
    const auto cloud = generate(DatasetKind::S3DIS, 29, 0.1);
    const auto s = summarizeWorkload(minkowskiUNetIndoor(), cloud);
    EXPECT_GT(s.sparseMacs, s.denseMacs);
    EXPECT_GT(s.kernelMapWork, 0u);
    EXPECT_EQ(s.fpsWork, 0u);
}

TEST(Summary, PointNetPPFpsDominatesMappingWork)
{
    const auto cloud = generate(DatasetKind::ModelNet40, 31, 1.0);
    const auto s = summarizeWorkload(pointNetPPClass(), cloud);
    EXPECT_GT(s.fpsWork, 0u);
    EXPECT_GT(s.neighborWork, 0u);
    EXPECT_EQ(s.kernelMapWork, 0u);
}

TEST(Summary, Fig5MacsPerPointRegime)
{
    // Fig. 5 (middle): point cloud networks sit orders of magnitude
    // below CNNs in MACs per point... actually per *pixel* CNNs are
    // ~1e5; point cloud nets span 1e3-1e6 per point. Check our zoo
    // lands in a sane band and MinkNet > PointNet per point.
    const auto mn40 = generate(DatasetKind::ModelNet40, 37, 1.0);
    const auto s3dis = generate(DatasetKind::S3DIS, 37, 0.25);
    const auto pn = characterize(pointNet(), mn40);
    const auto mink = characterize(minkowskiUNetIndoor(), s3dis);
    EXPECT_GT(pn.macsPerPoint, 100u);
    EXPECT_GT(mink.macsPerPoint, pn.macsPerPoint / 100);
    EXPECT_GT(mink.featureBytesPerPoint, 100.0);
}

TEST(Summary, CnnReferencesPresent)
{
    const auto &refs = cnnReferences();
    ASSERT_EQ(refs.size(), 2u);
    EXPECT_GT(refs[1].gmacs, refs[0].gmacs); // ResNet50 > MobileNetV2
}

// ---------------------------------------------------------------- //
//                     Functional layer compute                      //
// ---------------------------------------------------------------- //

TEST(Functional, IdentityConvIsPassthrough)
{
    auto cloud = generate(DatasetKind::ModelNet40, 41, 0.25);
    randomizeFeatures(cloud, 8, 42);
    KernelMapConfig kcfg;
    const auto maps = sortKernelMap(cloud, cloud, kcfg);
    const auto weights = identityWeights(27, 8);
    const auto out = sparseConvForward(cloud, maps, weights, cloud.size());
    ASSERT_EQ(out.size(), cloud.size() * 8);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        for (int c = 0; c < 8; ++c) {
            EXPECT_FLOAT_EQ(out[i * 8 + c],
                            cloud.feature(static_cast<PointIndex>(i), c))
                << "point " << i << " ch " << c;
        }
    }
}

TEST(Functional, ConvIsLinearInFeatures)
{
    auto cloud = generate(DatasetKind::ShapeNet, 43, 0.1);
    randomizeFeatures(cloud, 4, 1);
    KernelMapConfig kcfg;
    const auto maps = sortKernelMap(cloud, cloud, kcfg);
    const auto weights = randomWeights(27, 4, 6, 2);

    const auto once = sparseConvForward(cloud, maps, weights, cloud.size());
    auto doubled = cloud;
    for (auto &v : doubled.featureData())
        v *= 2.0f;
    const auto twice =
        sparseConvForward(doubled, maps, weights, cloud.size());
    for (std::size_t i = 0; i < once.size(); ++i)
        EXPECT_NEAR(twice[i], 2.0f * once[i], 1e-4f);
}

TEST(Functional, DenseForwardMatchesManual)
{
    ConvWeights w;
    w.numWeights = 1;
    w.cin = 2;
    w.cout = 2;
    w.data = {1.0f, 2.0f,   // row ci=0
              3.0f, 4.0f};  // row ci=1
    const std::vector<float> f = {1.0f, 1.0f, 2.0f, 0.0f};
    const auto out = denseForward(f, 2, w);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_FLOAT_EQ(out[0], 4.0f);
    EXPECT_FLOAT_EQ(out[1], 6.0f);
    EXPECT_FLOAT_EQ(out[2], 2.0f);
    EXPECT_FLOAT_EQ(out[3], 4.0f);
}

TEST(Functional, ReluClampsNegatives)
{
    std::vector<float> f = {-1.0f, 0.5f, -0.25f, 2.0f};
    reluInPlace(f);
    EXPECT_FLOAT_EQ(f[0], 0.0f);
    EXPECT_FLOAT_EQ(f[1], 0.5f);
    EXPECT_FLOAT_EQ(f[2], 0.0f);
    EXPECT_FLOAT_EQ(f[3], 2.0f);
}

TEST(Functional, MaxPoolByOutputPicksMaxEdge)
{
    MapSet maps(2);
    maps.add(Map{0, 0, 0});
    maps.add(Map{1, 0, 1});
    // Two edges into output 0, one channel each row.
    const std::vector<float> edges = {3.0f, 7.0f};
    const auto out = maxPoolByOutput(edges, maps, 1, 1);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FLOAT_EQ(out[0], 7.0f);
}

TEST(Functional, MaxPoolZeroFillsUntouchedOutputs)
{
    MapSet maps(1);
    maps.add(Map{0, 1, 0});
    const std::vector<float> edges = {5.0f};
    const auto out = maxPoolByOutput(edges, maps, 1, 3);
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    EXPECT_FLOAT_EQ(out[1], 5.0f);
    EXPECT_FLOAT_EQ(out[2], 0.0f);
}

} // namespace
} // namespace pointacc
