/**
 * @file
 * Tests for the baseline platform models and the Mesorasi model,
 * including the paper's qualitative orderings: GPU beats CPU, TPU is
 * data-movement bound (Fig. 6), Mesorasi rejects SparseConv networks
 * and PointAcc beats all of them (Figs. 13-16).
 */

#include <gtest/gtest.h>

#include "baselines/mesorasi.hpp"
#include "baselines/platform.hpp"
#include "datasets/synthetic.hpp"
#include "nn/zoo.hpp"
#include "sim/accelerator.hpp"

namespace pointacc {
namespace {

class BaselineFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cloud = generate(DatasetKind::S3DIS, 3, 0.1);
        workload = summarizeWorkload(minkowskiUNetIndoor(), cloud);
    }

    PointCloud cloud;
    WorkloadSummary workload;
};

TEST_F(BaselineFixture, GpuFasterThanCpu)
{
    const auto gpu = estimatePlatform(rtx2080Ti(), "MinkNet(i)", workload);
    const auto cpu =
        estimatePlatform(xeonGold6130(), "MinkNet(i)", workload);
    EXPECT_LT(gpu.totalMs(), cpu.totalMs());
    EXPECT_GT(cpu.totalMs() / gpu.totalMs(), 5.0);
}

TEST_F(BaselineFixture, TpuDataMovementDominates)
{
    // Fig. 6 / Section 3: on CPU+TPU, the host round trip costs 60-90%
    // of total runtime.
    const auto tpu = estimatePlatform(tpuV3(), "MinkNet(i)", workload);
    EXPECT_GT(tpu.dataMovementMs / tpu.totalMs(), 0.5);
}

TEST_F(BaselineFixture, EdgeDevicesOrdered)
{
    const auto nx =
        estimatePlatform(jetsonXavierNX(), "MinkNet(i)", workload);
    const auto nano =
        estimatePlatform(jetsonNano(), "MinkNet(i)", workload);
    const auto rpi =
        estimatePlatform(raspberryPi4(), "MinkNet(i)", workload);
    EXPECT_LT(nx.totalMs(), nano.totalMs());
    EXPECT_LT(nano.totalMs(), rpi.totalMs());
}

TEST_F(BaselineFixture, EnergyIsPowerTimesTime)
{
    const auto gpu = estimatePlatform(rtx2080Ti(), "x", workload);
    EXPECT_NEAR(gpu.energyMJ, rtx2080Ti().powerW * gpu.totalMs(), 1e-9);
}

TEST(BaselinePointNetPP, MappingDominatesOnGeneralHardware)
{
    // Fig. 6 (left): PointNet++-based networks spend > 50% of runtime
    // on mapping operations on CPU (FPS + ball query are O(n*m)).
    const auto cloud = generate(DatasetKind::S3DIS, 3, 0.5);
    const auto w = summarizeWorkload(pointNetPPSemSeg(), cloud);
    const auto cpu = estimatePlatform(xeonGold6130(), "PointNet++(s)", w);
    EXPECT_GT(cpu.mappingMs / cpu.totalMs(), 0.4);
}

// ---------------------------------------------------------------- //
//                            Mesorasi                               //
// ---------------------------------------------------------------- //

TEST(Mesorasi, RejectsSparseConvNetworks)
{
    const auto cloud = generate(DatasetKind::S3DIS, 5, 0.05);
    const auto r = runMesorasi(minkowskiUNetIndoor(), cloud);
    EXPECT_FALSE(r.supported);
    EXPECT_DOUBLE_EQ(r.totalMs(), 0.0);
}

TEST(Mesorasi, SupportsPointNetPP)
{
    const auto cloud = generate(DatasetKind::ModelNet40, 5, 1.0);
    const auto r = runMesorasi(pointNetPPClass(), cloud);
    EXPECT_TRUE(r.supported);
    EXPECT_GT(r.totalMs(), 0.0);
    EXPECT_GT(r.matmulMs, 0.0);
    EXPECT_GT(r.aggregationMs, 0.0);
}

TEST(Mesorasi, DelayedAggregationReducesNpuWork)
{
    // The rewritten MLP work must be below the direct per-neighbor
    // MLP work (that is the whole point of delayed aggregation).
    const auto cloud = generate(DatasetKind::ModelNet40, 7, 1.0);
    const auto net = pointNetPPClass();
    const auto direct = summarizeWorkload(net, cloud);

    MesorasiConfig cfg;
    const auto r = runMesorasi(net, cloud, cfg);
    const double directMs =
        static_cast<double>(direct.totalMacs) /
        (static_cast<double>(cfg.npuRows) * cfg.npuCols * cfg.freqGHz *
         1e9 * 0.55) *
        1e3;
    EXPECT_LT(r.matmulMs, directMs);
}

TEST(Mesorasi, HwFasterThanSwOnNano)
{
    const auto cloud = generate(DatasetKind::ModelNet40, 9, 1.0);
    const auto hw = runMesorasi(pointNetPPClass(), cloud);
    const auto sw = runMesorasiSW(jetsonNano(), pointNetPPClass(), cloud);
    EXPECT_LT(hw.totalMs(), sw.totalMs());
}

// ---------------------------------------------------------------- //
//             PointAcc vs baselines (headline claims)               //
// ---------------------------------------------------------------- //

TEST(HeadToHead, PointAccBeatsGpuOnEveryBenchmark)
{
    Accelerator accel(pointAccConfig());
    for (const auto &net : allBenchmarks()) {
        const auto cloud = generate(net.dataset, 31, 0.1);
        const auto ours = accel.run(net, cloud);
        const auto gpu = estimatePlatform(
            rtx2080Ti(), net.notation, summarizeWorkload(net, cloud));
        EXPECT_LT(ours.latencyMs(), gpu.totalMs()) << net.notation;
    }
}

TEST(HeadToHead, EdgeBeatsMesorasiOnPointNetPP)
{
    Accelerator edge(pointAccEdgeConfig());
    const auto net = pointNetPPClass();
    const auto cloud = generate(net.dataset, 33, 1.0);
    const auto ours = edge.run(net, cloud);
    const auto mesorasi = runMesorasi(net, cloud);
    ASSERT_TRUE(mesorasi.supported);
    EXPECT_LT(ours.latencyMs(), mesorasi.totalMs());
}

TEST(HeadToHead, CodesignGapIsLarge)
{
    // Fig. 16: PointAcc.Edge running Mini-MinkowskiUNet vs Mesorasi
    // running PointNet++SSG on the same S3DIS scene: large speedup
    // with higher accuracy.
    const auto cloud = generate(DatasetKind::S3DIS, 35, 0.25);
    Accelerator edge(pointAccEdgeConfig());
    const auto ours = edge.run(miniMinkowskiUNet(), cloud);
    const auto mesorasi = runMesorasi(pointNetPPSemSeg(), cloud);
    ASSERT_TRUE(mesorasi.supported);
    EXPECT_GT(mesorasi.totalMs() / ours.latencyMs(), 8.0);
    EXPECT_GT(miniMinkowskiUNet().paperAccuracy,
              pointNetPPSemSeg().paperAccuracy);
}

} // namespace
} // namespace pointacc
