/**
 * @file
 * Tests for the serving runtime: deterministic replay, queue-policy
 * ordering, batcher compatibility, conservation of requests through
 * the scheduler, and per-accelerator utilization bounds.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "nn/zoo.hpp"
#include "runtime/batcher.hpp"
#include "runtime/queue.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/serving_stats.hpp"
#include "runtime/workload.hpp"
#include "sim/accel_config.hpp"
#include "sim/report.hpp"

namespace pointacc {
namespace {

// ---------------------------------------------------------------- //
//                           Workload                                //
// ---------------------------------------------------------------- //

WorkloadSpec
basicSpec(ArrivalProcess process = ArrivalProcess::Poisson)
{
    WorkloadSpec spec;
    spec.seed = 99;
    spec.requestsPerMCycle = 50.0;
    spec.horizonCycles = 10'000'000;
    spec.arrivals = process;
    spec.mix = {{0, 0, 3.0, 0}, {1, 1, 1.0, 500'000}};
    return spec;
}

TEST(Workload, DeterministicReplay)
{
    const auto a = WorkloadGenerator(basicSpec()).generate();
    const auto b = WorkloadGenerator(basicSpec()).generate();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].arrivalCycle, b[i].arrivalCycle);
        EXPECT_EQ(a[i].networkId, b[i].networkId);
        EXPECT_EQ(a[i].sizeBucket, b[i].sizeBucket);
        EXPECT_EQ(a[i].deadlineCycle, b[i].deadlineCycle);
    }

    auto other = basicSpec();
    other.seed = 100;
    const auto c = WorkloadGenerator(other).generate();
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].arrivalCycle != c[i].arrivalCycle;
    EXPECT_TRUE(differs);
}

TEST(Workload, ArrivalsSortedAndInHorizon)
{
    for (const auto process :
         {ArrivalProcess::Poisson, ArrivalProcess::Bursty}) {
        const auto spec = basicSpec(process);
        const auto trace = WorkloadGenerator(spec).generate();
        ASSERT_FALSE(trace.empty()) << toString(process);
        for (std::size_t i = 1; i < trace.size(); ++i)
            EXPECT_GE(trace[i].arrivalCycle, trace[i - 1].arrivalCycle);
        // Burst members trail their event by at most the burst size.
        const std::uint64_t slack =
            process == ArrivalProcess::Bursty ? 2 * spec.meanBurstSize : 0;
        EXPECT_LT(trace.back().arrivalCycle, spec.horizonCycles + slack);
    }
}

TEST(Workload, MeanRateIsRespected)
{
    for (const auto process :
         {ArrivalProcess::Poisson, ArrivalProcess::Bursty}) {
        const auto spec = basicSpec(process);
        const auto trace = WorkloadGenerator(spec).generate();
        const double expected = spec.requestsPerMCycle *
                                static_cast<double>(spec.horizonCycles) /
                                1e6;
        EXPECT_NEAR(static_cast<double>(trace.size()), expected,
                    0.25 * expected)
            << toString(process);
    }
}

TEST(Workload, DeadlinesFollowTheMix)
{
    const auto trace = WorkloadGenerator(basicSpec()).generate();
    for (const auto &r : trace) {
        if (r.networkId == 1) {
            EXPECT_EQ(r.deadlineCycle, r.arrivalCycle + 500'000);
        } else {
            EXPECT_EQ(r.deadlineCycle, 0u);
        }
    }
}

// ---------------------------------------------------------------- //
//                             Queue                                 //
// ---------------------------------------------------------------- //

Request
makeRequest(std::uint64_t id, std::uint64_t arrival,
            std::uint64_t estimate = 0, std::uint64_t deadline = 0)
{
    Request r;
    r.id = id;
    r.arrivalCycle = arrival;
    r.estimatedCycles = estimate;
    r.deadlineCycle = deadline;
    return r;
}

TEST(AdmissionQueue, FifoPreservesArrivalOrder)
{
    AdmissionQueue q(8);
    q.push(makeRequest(0, 30));
    q.push(makeRequest(1, 10));
    q.push(makeRequest(2, 20));
    EXPECT_EQ(q.pop(QueuePolicy::Fifo).id, 1u);
    EXPECT_EQ(q.pop(QueuePolicy::Fifo).id, 2u);
    EXPECT_EQ(q.pop(QueuePolicy::Fifo).id, 0u);
}

TEST(AdmissionQueue, SjfPicksShortestEstimate)
{
    AdmissionQueue q(8);
    q.push(makeRequest(0, 0, 900));
    q.push(makeRequest(1, 1, 100));
    q.push(makeRequest(2, 2, 500));
    EXPECT_EQ(q.pop(QueuePolicy::Sjf).id, 1u);
    EXPECT_EQ(q.pop(QueuePolicy::Sjf).id, 2u);
    EXPECT_EQ(q.pop(QueuePolicy::Sjf).id, 0u);
}

TEST(AdmissionQueue, EdfPicksEarliestDeadlineBestEffortLast)
{
    AdmissionQueue q(8);
    q.push(makeRequest(0, 0, 0, 0));    // best-effort
    q.push(makeRequest(1, 1, 0, 5000));
    q.push(makeRequest(2, 2, 0, 1000));
    EXPECT_EQ(q.pop(QueuePolicy::Edf).id, 2u);
    EXPECT_EQ(q.pop(QueuePolicy::Edf).id, 1u);
    EXPECT_EQ(q.pop(QueuePolicy::Edf).id, 0u);
}

TEST(AdmissionQueue, BoundedDepthDropsAndCounts)
{
    AdmissionQueue q(2);
    EXPECT_TRUE(q.push(makeRequest(0, 0)));
    EXPECT_TRUE(q.push(makeRequest(1, 1)));
    EXPECT_FALSE(q.push(makeRequest(2, 2)));
    EXPECT_EQ(q.admitted(), 2u);
    EXPECT_EQ(q.dropped(), 1u);
    EXPECT_EQ(q.size(), 2u);
}

TEST(AdmissionQueue, PopCompatibleHonorsPredicateAndBound)
{
    AdmissionQueue q(8);
    for (std::uint64_t i = 0; i < 6; ++i) {
        auto r = makeRequest(i, i);
        r.networkId = i % 2; // alternate two networks
        q.push(r);
    }
    const auto same = [](const Request &a, const Request &b) {
        return a.networkId == b.networkId;
    };
    const auto batch = q.popCompatible(QueuePolicy::Fifo, same, 2);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].id, 0u);
    EXPECT_EQ(batch[1].id, 2u); // next same-network, not id 1
    EXPECT_EQ(q.size(), 4u);
}

// ---------------------------------------------------------------- //
//                            Batcher                                //
// ---------------------------------------------------------------- //

TEST(Batcher, CompatibilityRules)
{
    BatcherConfig bcfg;
    bcfg.maxPointsRatio = 2.0;
    const Batcher batcher(bcfg, {1.0, 1.5, 4.0});

    auto a = makeRequest(0, 0);
    auto b = makeRequest(1, 1);
    a.networkId = b.networkId = 3;
    a.sizeBucket = 0;
    b.sizeBucket = 1; // ratio 1.5 <= 2.0
    EXPECT_TRUE(batcher.compatible(a, b));

    b.sizeBucket = 2; // ratio 4.0 > 2.0
    EXPECT_FALSE(batcher.compatible(a, b));

    b.sizeBucket = 1;
    b.networkId = 4; // different network
    EXPECT_FALSE(batcher.compatible(a, b));
}

TEST(Batcher, FormRespectsMaxSizeAndDisabledMode)
{
    BatcherConfig bcfg;
    bcfg.maxBatchSize = 3;
    const Batcher batcher(bcfg, {1.0});

    AdmissionQueue q(16);
    for (std::uint64_t i = 0; i < 5; ++i)
        q.push(makeRequest(i, i));
    const auto batch = batcher.form(q, QueuePolicy::Fifo);
    EXPECT_EQ(batch.size(), 3u);
    EXPECT_EQ(q.size(), 2u);

    BatcherConfig off = bcfg;
    off.enabled = false;
    const Batcher single(off, {1.0});
    const auto lone = single.form(q, QueuePolicy::Fifo);
    EXPECT_EQ(lone.size(), 1u);
}

// ---------------------------------------------------------------- //
//                      Scheduler + fleet                            //
// ---------------------------------------------------------------- //

/** Fixed cost table: network n, bucket b costs base*(n+1)*(b+1). */
class FixedServiceModel : public ServiceModel
{
  public:
    explicit FixedServiceModel(std::uint64_t base_cycles,
                               std::uint64_t weight_load = 0)
        : base(base_cycles), weightLoad(weight_load)
    {}

    ServiceProfile
    profile(const AcceleratorConfig &, std::uint32_t network_id,
            std::uint32_t bucket) const override
    {
        ServiceProfile p;
        p.totalCycles = base * (network_id + 1) * (bucket + 1);
        p.computeCycles = p.totalCycles;
        p.weightLoadCycles = weightLoad;
        return p;
    }

  private:
    std::uint64_t base;
    std::uint64_t weightLoad;
};

std::vector<Request>
denseTrace(std::size_t count, std::uint64_t gap)
{
    std::vector<Request> trace;
    for (std::size_t i = 0; i < count; ++i) {
        auto r = makeRequest(i, i * gap);
        r.networkId = i % 2;
        trace.push_back(r);
    }
    return trace;
}

TEST(FleetScheduler, ConservationUnderOverload)
{
    const FixedServiceModel model(10'000);
    SchedulerConfig scfg;
    scfg.queueDepth = 4; // tiny: force drops
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);

    // Arrivals far faster than service: queue must shed load.
    const auto report = sched.run(denseTrace(200, 100));
    EXPECT_EQ(report.generated, 200u);
    EXPECT_GT(report.dropped, 0u);
    EXPECT_EQ(report.generated, report.admitted + report.dropped);
    EXPECT_EQ(report.admitted, report.completed + report.leftoverQueued);
    EXPECT_EQ(report.leftoverQueued, 0u); // the simulation drains
}

TEST(FleetScheduler, DeterministicReplay)
{
    const FixedServiceModel model(25'000, 2'000);
    SchedulerConfig scfg;
    scfg.policy = QueuePolicy::Sjf;
    scfg.batcher.enabled = true;
    FleetScheduler sched({pointAccConfig(), pointAccConfig()}, model,
                         {1.0}, scfg);

    const auto a = sched.run(denseTrace(300, 7'000));
    const auto b = sched.run(denseTrace(300, 7'000));
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.horizonCycles, b.horizonCycles);
    EXPECT_DOUBLE_EQ(a.latencyCycles.mean(), b.latencyCycles.mean());
    EXPECT_DOUBLE_EQ(a.latencyCycles.percentile(0.99),
                     b.latencyCycles.percentile(0.99));
    ASSERT_EQ(a.accelerators.size(), b.accelerators.size());
    for (std::size_t i = 0; i < a.accelerators.size(); ++i)
        EXPECT_EQ(a.accelerators[i].busyCycles,
                  b.accelerators[i].busyCycles);
}

TEST(FleetScheduler, UtilizationNeverExceedsOne)
{
    const FixedServiceModel model(50'000);
    for (const std::size_t fleetSize : {1u, 2u, 3u}) {
        std::vector<AcceleratorConfig> fleet(fleetSize, pointAccConfig());
        FleetScheduler sched(fleet, model, {1.0}, {});
        const auto report = sched.run(denseTrace(150, 10'000));
        ASSERT_EQ(report.accelerators.size(), fleetSize);
        for (const auto &acc : report.accelerators) {
            EXPECT_LE(acc.utilization(report.horizonCycles), 1.0)
                << acc.name;
            EXPECT_LE(acc.busyCycles, report.horizonCycles) << acc.name;
        }
    }
}

TEST(FleetScheduler, P99MonotoneWithFleetSize)
{
    const FixedServiceModel model(40'000);
    WorkloadSpec spec;
    spec.seed = 5;
    spec.requestsPerMCycle = 30.0; // ~1.2x one instance's capacity
    spec.horizonCycles = 30'000'000;
    spec.mix = {{0, 0, 1.0, 0}, {1, 0, 1.0, 0}};
    const auto trace = WorkloadGenerator(spec).generate();

    double prev = -1.0;
    for (const std::size_t fleetSize : {4u, 2u, 1u}) {
        std::vector<AcceleratorConfig> fleet(fleetSize, pointAccConfig());
        FleetScheduler sched(fleet, model, {1.0}, {});
        const auto report = sched.run(trace);
        const double p99 = report.latencyCycles.percentile(0.99);
        EXPECT_GE(p99, prev) << fleetSize << " accelerators";
        prev = p99;
    }
}

TEST(FleetScheduler, DeadlineMissesAreCounted)
{
    const FixedServiceModel model(100'000);
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, {});

    // Two back-to-back requests; the second waits 100k cycles and
    // misses its 150k relative deadline, the first makes it.
    auto a = makeRequest(0, 0, 0, 150'000);
    auto b = makeRequest(1, 1, 0, 150'001);
    const auto report = sched.run({a, b});
    EXPECT_EQ(report.completed, 2u);
    EXPECT_EQ(report.deadlineMisses, 1u);
}

TEST(ServiceModelBatching, AmortizesWeightLoadWithFloor)
{
    const FixedServiceModel model(10'000, 3'000);
    const auto cfg = pointAccConfig();

    Batch batch;
    for (std::uint64_t i = 0; i < 4; ++i)
        batch.requests.push_back(makeRequest(i, 0));
    // 4 requests of 10k each, 3 followers amortize 3k of weight load.
    EXPECT_EQ(model.batchServiceCycles(cfg, batch), 40'000u - 3u * 3'000u);

    // The floor: savings can never push a batch under its longest
    // member.
    const FixedServiceModel greedy(10'000, 10'000);
    EXPECT_EQ(greedy.batchServiceCycles(cfg, batch), 10'000u);

    Batch one;
    one.requests.push_back(makeRequest(0, 0));
    EXPECT_EQ(model.batchServiceCycles(cfg, one), 10'000u);
}

// ---------------------------------------------------------------- //
//                 Simulator-backed service model                    //
// ---------------------------------------------------------------- //

TEST(SimServiceModel, ProfilesAndBatchesAgainstRealSimulator)
{
    ServingCatalog catalog;
    catalog.networks = {pointNet()};
    catalog.bucketScales = {0.05};
    const SimServiceModel model(catalog);

    const auto cfg = pointAccConfig();
    const auto p = model.profile(cfg, 0, 0);
    EXPECT_GT(p.totalCycles, 0u);
    EXPECT_LE(p.weightLoadCycles, p.totalCycles);

    // Memoized: a second lookup returns the identical profile.
    const auto p2 = model.profile(cfg, 0, 0);
    EXPECT_EQ(p.totalCycles, p2.totalCycles);

    Batch batch;
    for (std::uint64_t i = 0; i < 3; ++i)
        batch.requests.push_back(makeRequest(i, 0));
    const auto cycles = model.batchServiceCycles(cfg, batch);
    EXPECT_GE(cycles, p.totalCycles);
    EXPECT_LE(cycles, 3 * p.totalCycles);
}

TEST(SimServiceModel, EndToEndServingRunIsConsistent)
{
    ServingCatalog catalog;
    catalog.networks = {pointNet()};
    catalog.bucketScales = {0.05};
    const SimServiceModel model(catalog);

    WorkloadSpec spec;
    spec.seed = 3;
    spec.requestsPerMCycle = 5.0;
    spec.horizonCycles = 5'000'000;
    spec.arrivals = ArrivalProcess::Bursty;
    spec.mix = {{0, 0, 1.0, 0}};

    SchedulerConfig scfg;
    scfg.batcher.enabled = true;
    FleetScheduler sched({pointAccConfig(), pointAccEdgeConfig()}, model,
                         catalog.bucketScales, scfg);
    const auto report = sched.run(WorkloadGenerator(spec).generate());

    EXPECT_GT(report.completed, 0u);
    EXPECT_EQ(report.generated, report.admitted + report.dropped);
    EXPECT_EQ(report.admitted, report.completed + report.leftoverQueued);
    for (const auto &acc : report.accelerators)
        EXPECT_LE(acc.utilization(report.horizonCycles), 1.0);
    EXPECT_GT(report.throughputRps(), 0.0);
}

// ---------------------------------------------------------------- //
//                         Report output                             //
// ---------------------------------------------------------------- //

TEST(ServingStats, JsonAndTextOutputs)
{
    ServingReport report;
    report.generated = 10;
    report.admitted = 9;
    report.dropped = 1;
    report.completed = 9;
    report.horizonCycles = 1'000'000;
    report.latencyCycles.record(1000.0);
    report.latencyCycles.record(2000.0);
    AcceleratorUsage usage;
    usage.name = "PointAcc#0";
    usage.busyCycles = 500'000;
    report.accelerators.push_back(usage);

    const auto text = servingSummaryText(report);
    EXPECT_NE(text.find("9 completed"), std::string::npos);

    std::ostringstream os;
    writeServingJson(os, report);
    const auto json = os.str();
    EXPECT_NE(json.find("\"generated\":10"), std::string::npos);
    EXPECT_NE(json.find("\"utilization\":0.5"), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(RunResultJson, DumpContainsTotalsAndLayers)
{
    RunResult result;
    result.network = "PointNet";
    result.accelerator = "PointAcc";
    result.totalCycles = 1234;
    LayerStats ls;
    ls.name = "conv\"1"; // exercise string escaping
    ls.totalCycles = 1234;
    result.layers.push_back(ls);

    std::ostringstream os;
    writeJson(os, result);
    const auto json = os.str();
    EXPECT_NE(json.find("\"network\":\"PointNet\""), std::string::npos);
    EXPECT_NE(json.find("\"total_cycles\":1234"), std::string::npos);
    EXPECT_NE(json.find("conv\\\"1"), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

} // namespace
} // namespace pointacc
