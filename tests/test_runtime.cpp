/**
 * @file
 * Tests for the serving runtime: deterministic replay, queue-policy
 * ordering, batcher compatibility, conservation of requests through
 * the scheduler, per-accelerator utilization bounds, the kernel-map
 * cache (eviction policies, counters, and hand-computed hit/miss
 * schedules), traffic-program validation and presets, and the
 * reactive autoscaler (config validation, the windowed decision
 * function, and a hand-computed spin-up/graceful-drain schedule).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "nn/zoo.hpp"
#include "runtime/autoscaler.hpp"
#include "runtime/batcher.hpp"
#include "runtime/faults.hpp"
#include "runtime/map_cache.hpp"
#include "runtime/planner.hpp"
#include "runtime/queue.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/serving_stats.hpp"
#include "runtime/traffic.hpp"
#include "runtime/workload.hpp"
#include "sim/accel_config.hpp"
#include "sim/report.hpp"

namespace pointacc {
namespace {

// ---------------------------------------------------------------- //
//                           Workload                                //
// ---------------------------------------------------------------- //

WorkloadSpec
basicSpec(ArrivalProcess process = ArrivalProcess::Poisson)
{
    WorkloadSpec spec;
    spec.seed = 99;
    spec.requestsPerMCycle = 50.0;
    spec.horizonCycles = 10'000'000;
    spec.arrivals = process;
    spec.mix = {{0, 0, 3.0, 0}, {1, 1, 1.0, 500'000}};
    return spec;
}

TEST(Workload, DeterministicReplay)
{
    const auto a = WorkloadGenerator(basicSpec()).generate();
    const auto b = WorkloadGenerator(basicSpec()).generate();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].arrivalCycle, b[i].arrivalCycle);
        EXPECT_EQ(a[i].networkId, b[i].networkId);
        EXPECT_EQ(a[i].sizeBucket, b[i].sizeBucket);
        EXPECT_EQ(a[i].deadlineCycle, b[i].deadlineCycle);
        EXPECT_EQ(a[i].cloudId, b[i].cloudId);
    }

    auto other = basicSpec();
    other.seed = 100;
    const auto c = WorkloadGenerator(other).generate();
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].arrivalCycle != c[i].arrivalCycle;
    EXPECT_TRUE(differs);
}

TEST(Workload, ArrivalsSortedAndInHorizon)
{
    for (const auto process :
         {ArrivalProcess::Poisson, ArrivalProcess::Bursty}) {
        const auto spec = basicSpec(process);
        const auto trace = WorkloadGenerator(spec).generate();
        ASSERT_FALSE(trace.empty()) << toString(process);
        for (std::size_t i = 1; i < trace.size(); ++i)
            EXPECT_GE(trace[i].arrivalCycle, trace[i - 1].arrivalCycle);
        // Burst members trail their event by at most the burst size.
        const std::uint64_t slack =
            process == ArrivalProcess::Bursty ? 2 * spec.meanBurstSize : 0;
        EXPECT_LT(trace.back().arrivalCycle, spec.horizonCycles + slack);
    }
}

TEST(Workload, MeanRateIsRespected)
{
    for (const auto process :
         {ArrivalProcess::Poisson, ArrivalProcess::Bursty}) {
        const auto spec = basicSpec(process);
        const auto trace = WorkloadGenerator(spec).generate();
        const double expected = spec.requestsPerMCycle *
                                static_cast<double>(spec.horizonCycles) /
                                1e6;
        EXPECT_NEAR(static_cast<double>(trace.size()), expected,
                    0.25 * expected)
            << toString(process);
    }
}

TEST(Workload, DeadlinesFollowTheMix)
{
    const auto trace = WorkloadGenerator(basicSpec()).generate();
    for (const auto &r : trace) {
        if (r.networkId == 1) {
            EXPECT_EQ(r.deadlineCycle, r.arrivalCycle + 500'000);
        } else {
            EXPECT_EQ(r.deadlineCycle, 0u);
        }
    }
}

TEST(Workload, StreamReuseControlsCloudIdentity)
{
    // mapReuseProb = 0: every frame is fresh — cloudIds are unique
    // and real (>= 1; 0 is the no-identity default).
    auto spec = basicSpec();
    const auto fresh = WorkloadGenerator(spec).generate();
    std::set<std::uint64_t> ids;
    for (const auto &r : fresh) {
        EXPECT_GE(r.cloudId, 1u);
        ids.insert(r.cloudId);
    }
    EXPECT_EQ(ids.size(), fresh.size());

    // mapReuseProb = 1 on a single stream: the first frame repeats
    // forever — one cloudId across the whole trace.
    spec.mix = {{0, 0, 1.0, 0, 0, 1.0}};
    const auto repeated = WorkloadGenerator(spec).generate();
    ASSERT_FALSE(repeated.empty());
    for (const auto &r : repeated)
        EXPECT_EQ(r.cloudId, repeated.front().cloudId);

    // Two classes on separate streams never share frames.
    spec.mix = {{0, 0, 1.0, 0, 0, 0.5}, {1, 1, 1.0, 0, 1, 0.5}};
    const auto twoStreams = WorkloadGenerator(spec).generate();
    std::set<std::uint64_t> net0, net1;
    for (const auto &r : twoStreams)
        (r.networkId == 0 ? net0 : net1).insert(r.cloudId);
    for (const auto id : net0)
        EXPECT_EQ(net1.count(id), 0u);
}

// ---------------------------------------------------------------- //
//                             Queue                                 //
// ---------------------------------------------------------------- //

Request
makeRequest(std::uint64_t id, std::uint64_t arrival,
            std::uint64_t estimate = 0, std::uint64_t deadline = 0)
{
    Request r;
    r.id = id;
    r.arrivalCycle = arrival;
    r.estimatedCycles = estimate;
    r.deadlineCycle = deadline;
    return r;
}

TEST(AdmissionQueue, FifoPreservesArrivalOrder)
{
    AdmissionQueue q(8);
    q.push(makeRequest(0, 30));
    q.push(makeRequest(1, 10));
    q.push(makeRequest(2, 20));
    EXPECT_EQ(q.pop(QueuePolicy::Fifo).id, 1u);
    EXPECT_EQ(q.pop(QueuePolicy::Fifo).id, 2u);
    EXPECT_EQ(q.pop(QueuePolicy::Fifo).id, 0u);
}

TEST(AdmissionQueue, SjfPicksShortestEstimate)
{
    AdmissionQueue q(8);
    q.push(makeRequest(0, 0, 900));
    q.push(makeRequest(1, 1, 100));
    q.push(makeRequest(2, 2, 500));
    EXPECT_EQ(q.pop(QueuePolicy::Sjf).id, 1u);
    EXPECT_EQ(q.pop(QueuePolicy::Sjf).id, 2u);
    EXPECT_EQ(q.pop(QueuePolicy::Sjf).id, 0u);
}

TEST(AdmissionQueue, EdfPicksEarliestDeadlineBestEffortLast)
{
    AdmissionQueue q(8);
    q.push(makeRequest(0, 0, 0, 0));    // best-effort
    q.push(makeRequest(1, 1, 0, 5000));
    q.push(makeRequest(2, 2, 0, 1000));
    EXPECT_EQ(q.pop(QueuePolicy::Edf).id, 2u);
    EXPECT_EQ(q.pop(QueuePolicy::Edf).id, 1u);
    EXPECT_EQ(q.pop(QueuePolicy::Edf).id, 0u);
}

TEST(AdmissionQueue, BoundedDepthDropsAndCounts)
{
    AdmissionQueue q(2);
    EXPECT_TRUE(q.push(makeRequest(0, 0)));
    EXPECT_TRUE(q.push(makeRequest(1, 1)));
    EXPECT_FALSE(q.push(makeRequest(2, 2)));
    EXPECT_EQ(q.admitted(), 2u);
    EXPECT_EQ(q.dropped(), 1u);
    EXPECT_EQ(q.size(), 2u);
}

TEST(AdmissionQueue, PushUncountedNeverTouchesDropAccounting)
{
    // The crash-retry re-admission path: a request already counted as
    // admitted at its first push must not inflate `admitted` when it
    // re-enters, and a shed retry must not become a second `dropped` —
    // the conservation identities count each request exactly once.
    AdmissionQueue q(2);
    EXPECT_TRUE(q.push(makeRequest(0, 0)));
    EXPECT_TRUE(q.pushUncounted(makeRequest(1, 1)));
    EXPECT_EQ(q.admitted(), 1u);
    EXPECT_EQ(q.dropped(), 0u);
    EXPECT_EQ(q.size(), 2u);

    // Full queue: the uncounted push sheds, with no drop recorded.
    EXPECT_FALSE(q.pushUncounted(makeRequest(2, 2)));
    EXPECT_EQ(q.admitted(), 1u);
    EXPECT_EQ(q.dropped(), 0u);
    EXPECT_EQ(q.size(), 2u);

    // The counted path still counts normally afterwards.
    EXPECT_FALSE(q.push(makeRequest(3, 3)));
    EXPECT_EQ(q.dropped(), 1u);

    // Re-admitted requests drain through the policies like any other.
    EXPECT_EQ(q.pop(QueuePolicy::Fifo).id, 0u);
    EXPECT_EQ(q.pop(QueuePolicy::Fifo).id, 1u);
    EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------- //
//                       Fault validation                            //
// ---------------------------------------------------------------- //

TEST(FaultValidation, DisabledProgramAndPolicyAreVacuouslyValid)
{
    // Disabled carriers validate vacuously even with absurd fields —
    // the off switch must never be able to throw.
    FaultProgram program;
    program.mtbfNs = 5;
    program.crashes.push_back(CrashWindow{0, 999, 0});
    EXPECT_NO_THROW(validateFaultProgram(program));

    RetryPolicy policy;
    policy.backoffBaseNs = 0;
    policy.backoffMult = 0.0;
    EXPECT_NO_THROW(validateRetryPolicy(policy));
}

TEST(FaultValidation, StochasticRatesMustBePairedWithAHorizon)
{
    FaultProgram program;
    program.enabled = true;
    program.horizonNs = 1'000'000;
    program.mtbfNs = 10'000;
    program.mttrNs = 1'000;
    EXPECT_NO_THROW(validateFaultProgram(program));

    program.mttrNs = 0; // MTBF without MTTR: outage length undefined
    EXPECT_THROW(validateFaultProgram(program),
                 std::invalid_argument);

    program.mtbfNs = 0; // MTTR without MTBF: nothing ever fails
    program.mttrNs = 1'000;
    EXPECT_THROW(validateFaultProgram(program),
                 std::invalid_argument);

    program.mtbfNs = 10'000; // paired again, but no generation window
    program.horizonNs = 0;
    EXPECT_THROW(validateFaultProgram(program),
                 std::invalid_argument);
}

TEST(FaultValidation, ScheduledWindowsBeyondTheHorizonThrow)
{
    FaultProgram program;
    program.enabled = true;
    program.horizonNs = 1'000;
    program.crashes.push_back(CrashWindow{0, 500, 100});
    EXPECT_NO_THROW(validateFaultProgram(program));

    program.crashes.push_back(CrashWindow{1, 2'000, 0});
    EXPECT_THROW(validateFaultProgram(program),
                 std::invalid_argument);

    program.crashes.pop_back();
    program.stragglers.push_back(StragglerWindow{0, 5'000, 10, 2.0});
    EXPECT_THROW(validateFaultProgram(program),
                 std::invalid_argument);

    // horizonNs == 0 means "no bound": the same windows are fine.
    program.crashes.push_back(CrashWindow{1, 2'000, 0});
    program.horizonNs = 0;
    EXPECT_NO_THROW(validateFaultProgram(program));
}

TEST(FaultValidation, StragglerWindowsNeedRealSlowdownsAndDurations)
{
    FaultProgram program;
    program.enabled = true;
    program.stragglers.push_back(StragglerWindow{0, 100, 50, 2.0});
    EXPECT_NO_THROW(validateFaultProgram(program));

    program.stragglers[0].slowdown = 1.0; // not a slowdown at all
    EXPECT_THROW(validateFaultProgram(program),
                 std::invalid_argument);

    program.stragglers[0].slowdown =
        std::numeric_limits<double>::infinity();
    EXPECT_THROW(validateFaultProgram(program),
                 std::invalid_argument);

    program.stragglers[0].slowdown = 2.0;
    program.stragglers[0].durationNs = 0; // empty window
    EXPECT_THROW(validateFaultProgram(program),
                 std::invalid_argument);
}

TEST(FaultValidation, OverlappingStragglerWindowsPerInstanceThrow)
{
    FaultProgram program;
    program.enabled = true;
    program.stragglers.push_back(StragglerWindow{0, 100, 100, 2.0});
    program.stragglers.push_back(StragglerWindow{0, 150, 100, 3.0});
    EXPECT_THROW(validateFaultProgram(program),
                 std::invalid_argument);

    // The same two windows on different instances are fine.
    program.stragglers[1].instance = 1;
    EXPECT_NO_THROW(validateFaultProgram(program));
}

TEST(FaultValidation, RetryBackoffParametersAreBounded)
{
    RetryPolicy policy;
    policy.enabled = true;
    EXPECT_NO_THROW(validateRetryPolicy(policy));

    policy.backoffBaseNs = 0;
    EXPECT_THROW(validateRetryPolicy(policy), std::invalid_argument);

    policy.backoffBaseNs = 1'000;
    policy.backoffMult = 0.5; // shrinking "backoff"
    EXPECT_THROW(validateRetryPolicy(policy), std::invalid_argument);

    policy.backoffMult = 2.0;
    policy.maxBackoffNs = 500; // cap below the base
    EXPECT_THROW(validateRetryPolicy(policy), std::invalid_argument);
}

TEST(FaultValidation, RetryBackoffGrowsGeometricallyAndSaturates)
{
    RetryPolicy policy;
    policy.enabled = true;
    policy.backoffBaseNs = 1'000;
    policy.backoffMult = 2.0;
    EXPECT_EQ(retryBackoffNs(policy, 0), 1'000u);
    EXPECT_EQ(retryBackoffNs(policy, 1), 2'000u);
    EXPECT_EQ(retryBackoffNs(policy, 3), 8'000u);

    policy.maxBackoffNs = 3'000;
    EXPECT_EQ(retryBackoffNs(policy, 3), 3'000u);

    // A huge attempt index saturates instead of overflowing.
    policy.maxBackoffNs = 0;
    EXPECT_GT(retryBackoffNs(policy, 200), retryBackoffNs(policy, 3));
}

TEST(FaultValidation, MaterializeIsDeterministicAndFleetBounded)
{
    FaultProgram program;
    program.enabled = true;
    program.horizonNs = 10'000'000;
    program.mtbfNs = 1'000'000;
    program.mttrNs = 100'000;
    program.seed = 7;
    program.crashes.push_back(CrashWindow{5, 1'000, 500});

    const auto a = materializeFaultEvents(program, 2);
    const auto b = materializeFaultEvents(program, 2);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].atNs, b[i].atNs);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].instance, b[i].instance);
    }
    // Sorted by time, and the out-of-fleet scheduled window (instance
    // 5 against a 2-instance fleet) materialized to nothing.
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_GE(a[i].atNs, a[i - 1].atNs);
    for (const auto &e : a)
        EXPECT_LT(e.instance, 2u);

    FaultProgram off;
    EXPECT_TRUE(materializeFaultEvents(off, 4).empty());
}

TEST(AdmissionQueue, PopCompatibleHonorsPredicateAndBound)
{
    AdmissionQueue q(8);
    for (std::uint64_t i = 0; i < 6; ++i) {
        auto r = makeRequest(i, i);
        r.networkId = i % 2; // alternate two networks
        q.push(r);
    }
    const auto same = [](const Request &a, const Request &b) {
        return a.networkId == b.networkId;
    };
    const auto batch = q.popCompatible(QueuePolicy::Fifo, same, 2);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].id, 0u);
    EXPECT_EQ(batch[1].id, 2u); // next same-network, not id 1
    EXPECT_EQ(q.size(), 4u);
}

TEST(AdmissionQueue, VisitClassWalksExactlyThatClass)
{
    AdmissionQueue q(16);
    for (std::uint64_t i = 0; i < 8; ++i) {
        auto r = makeRequest(i, i);
        r.networkId = static_cast<std::uint32_t>(i % 2);
        r.sizeBucket = static_cast<std::uint32_t>(i % 4 / 2);
        q.push(r);
    }
    std::vector<std::uint64_t> seen;
    q.visitClass(0, 1, [&](const Request &r) {
        seen.push_back(r.id);
        return true;
    });
    // Network 0, bucket 1: ids 2 and 6, in rank (arrival) order.
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], 2u);
    EXPECT_EQ(seen[1], 6u);

    // Early stop after the first member.
    seen.clear();
    q.visitClass(1, 0, [&](const Request &r) {
        seen.push_back(r.id);
        return false;
    });
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], 1u);

    // Absent classes visit nothing.
    q.visitClass(7, 0, [&](const Request &) {
        ADD_FAILURE() << "visited an absent class";
        return true;
    });
}

TEST(AdmissionQueue, PopLedByBucketsMergesClassesInPolicyOrder)
{
    AdmissionQueue q(16);
    // Network 0 requests across buckets 0/1/2, interleaved arrivals;
    // one network-1 request that must never join.
    const auto add = [&](std::uint64_t id, std::uint64_t arrival,
                         std::uint32_t net, std::uint32_t bucket) {
        auto r = makeRequest(id, arrival);
        r.networkId = net;
        r.sizeBucket = bucket;
        q.push(r);
    };
    add(0, 5, 0, 0);
    add(1, 1, 0, 1);
    add(2, 2, 1, 0);
    add(3, 3, 0, 2);
    add(4, 4, 0, 1);

    const Request head = q.peek(QueuePolicy::Fifo); // id 1, arrival 1
    ASSERT_EQ(head.id, 1u);
    // Buckets 0 and 1 are allowed; bucket 2 (id 3) is not. The merge
    // must interleave the two class sub-queues by arrival order.
    const auto batch = q.popLedByBuckets(head, QueuePolicy::Fifo,
                                         {0u, 1u}, nullptr, 8, nullptr);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].id, 1u);
    EXPECT_EQ(batch[1].id, 4u); // arrival 4, bucket 1
    EXPECT_EQ(batch[2].id, 0u); // arrival 5, bucket 0
    EXPECT_EQ(q.size(), 2u);    // ids 2 (other network) and 3 remain

    // The per-item extra rule filters followers but never the head,
    // and only the head's network's classes are visited.
    EXPECT_EQ(q.pop(QueuePolicy::Fifo).id, 2u); // clear network 1
    add(5, 6, 0, 0);
    add(6, 7, 0, 0);
    const Request head2 = q.peek(QueuePolicy::Fifo);
    ASSERT_EQ(head2.id, 3u); // network 0, bucket 2
    const auto filtered = q.popLedByBuckets(
        head2, QueuePolicy::Fifo, {0u},
        [](const Request &, const Request &r) { return r.id % 2 == 0; },
        8, nullptr);
    ASSERT_EQ(filtered.size(), 2u); // head 3 (odd!) + id 6; id 5 odd
    EXPECT_EQ(filtered[0].id, 3u);
    EXPECT_EQ(filtered[1].id, 6u);
    EXPECT_EQ(q.size(), 1u); // id 5 remains
}

// ---------------------------------------------------------------- //
//                            Batcher                                //
// ---------------------------------------------------------------- //

TEST(Batcher, CompatibilityRules)
{
    BatcherConfig bcfg;
    bcfg.maxPointsRatio = 2.0;
    const Batcher batcher(bcfg, {1.0, 1.5, 4.0});

    auto a = makeRequest(0, 0);
    auto b = makeRequest(1, 1);
    a.networkId = b.networkId = 3;
    a.sizeBucket = 0;
    b.sizeBucket = 1; // ratio 1.5 <= 2.0
    EXPECT_TRUE(batcher.compatible(a, b));

    b.sizeBucket = 2; // ratio 4.0 > 2.0
    EXPECT_FALSE(batcher.compatible(a, b));

    b.sizeBucket = 1;
    b.networkId = 4; // different network
    EXPECT_FALSE(batcher.compatible(a, b));
}

TEST(Batcher, FormRespectsMaxSizeAndDisabledMode)
{
    BatcherConfig bcfg;
    bcfg.maxBatchSize = 3;
    const Batcher batcher(bcfg, {1.0});

    AdmissionQueue q(16);
    for (std::uint64_t i = 0; i < 5; ++i)
        q.push(makeRequest(i, i));
    const auto batch = batcher.form(q, QueuePolicy::Fifo);
    EXPECT_EQ(batch.size(), 3u);
    EXPECT_EQ(q.size(), 2u);

    BatcherConfig off = bcfg;
    off.enabled = false;
    const Batcher single(off, {1.0});
    const auto lone = single.form(q, QueuePolicy::Fifo);
    EXPECT_EQ(lone.size(), 1u);
}

TEST(Batcher, ExtraCompatibilityRuleIsAnded)
{
    // The scheduler installs "equal map-cache hit status" through this
    // hook; any pair the extra rule rejects must not batch, however
    // compatible the built-in rule finds them.
    Batcher batcher(BatcherConfig{}, {1.0});
    auto a = makeRequest(0, 0);
    auto b = makeRequest(1, 1);
    EXPECT_TRUE(batcher.compatible(a, b));

    batcher.setExtraCompatibility([](const Request &x, const Request &y) {
        return x.cloudId == y.cloudId;
    });
    a.cloudId = 7;
    b.cloudId = 8;
    EXPECT_FALSE(batcher.compatible(a, b));
    b.cloudId = 7;
    EXPECT_TRUE(batcher.compatible(a, b));
}

// ---------------------------------------------------------------- //
//                          Map cache                                //
// ---------------------------------------------------------------- //

MapCacheKey
cloudKey(std::uint64_t cloud)
{
    MapCacheKey key;
    key.cloudId = cloud;
    return key;
}

TEST(MapCache, LruEvictsLeastRecentlyUsed)
{
    MapCacheConfig mcfg;
    mcfg.enabled = true;
    mcfg.capacityEntries = 2;
    mcfg.eviction = MapCacheEviction::Lru;
    MapCache cache(mcfg);

    cache.insert(cloudKey(1), {100, 64});
    cache.insert(cloudKey(2), {100, 64});
    cache.recordHit(cloudKey(1)); // 1 is now the most recent
    cache.insert(cloudKey(3), {100, 64});
    EXPECT_TRUE(cache.contains(cloudKey(1)));
    EXPECT_FALSE(cache.contains(cloudKey(2)));
    EXPECT_TRUE(cache.contains(cloudKey(3)));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(MapCache, LfuEvictsLeastFrequentlyUsed)
{
    MapCacheConfig mcfg;
    mcfg.enabled = true;
    mcfg.capacityEntries = 2;
    mcfg.eviction = MapCacheEviction::Lfu;
    MapCache cache(mcfg);

    cache.insert(cloudKey(1), {100, 64});
    cache.insert(cloudKey(2), {100, 64});
    cache.recordHit(cloudKey(1));
    cache.recordHit(cloudKey(1));
    cache.recordHit(cloudKey(2)); // 2 used once, 1 used twice
    cache.insert(cloudKey(3), {100, 64});
    EXPECT_TRUE(cache.contains(cloudKey(1)));
    EXPECT_FALSE(cache.contains(cloudKey(2)));
    EXPECT_TRUE(cache.contains(cloudKey(3)));
}

TEST(MapCache, CountersAndIdempotentInsert)
{
    MapCacheConfig mcfg;
    mcfg.enabled = true;
    mcfg.capacityEntries = 8;
    mcfg.hitReadCycles = 10;
    MapCache cache(mcfg);

    EXPECT_FALSE(cache.contains(cloudKey(1)));
    cache.recordMiss();
    cache.insert(cloudKey(1), {100, 64});
    // Re-inserting a resident key (two in-flight misses of one frame)
    // refreshes without double-counting.
    cache.insert(cloudKey(1), {100, 64});
    EXPECT_EQ(cache.stats().insertions, 1u);

    cache.recordHit(cloudKey(1));
    cache.recordHit(cloudKey(1));
    const auto &s = cache.stats();
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.bytesSaved, 128u);          // 2 hits x 64 bytes
    // recordHit books no cycle savings: the scheduler credits the
    // batch-level skipped mapping explicitly, so the counter matches
    // the simulated schedule instead of a per-hit approximation.
    EXPECT_EQ(s.cyclesSaved, 0u);
    cache.creditSavedCycles(100 - 10);
    cache.creditSavedCycles(100 - 10);
    EXPECT_EQ(s.cyclesSaved, 2u * (100 - 10));
    EXPECT_DOUBLE_EQ(s.hitRate(), 2.0 / 3.0);

    // Distinct networks / layer stacks never share entries, even for
    // the same cloud.
    MapCacheKey otherNet = cloudKey(1);
    otherNet.networkId = 1;
    EXPECT_FALSE(cache.contains(otherNet));
    MapCacheKey otherLayers = cloudKey(1);
    otherLayers.layerHash = 42;
    EXPECT_FALSE(cache.contains(otherLayers));
}

// ---------------------------------------------------------------- //
//                      Scheduler + fleet                            //
// ---------------------------------------------------------------- //

/** Fixed cost table: network n, bucket b costs base*(n+1)*(b+1). */
class FixedServiceModel : public ServiceModel
{
  public:
    explicit FixedServiceModel(std::uint64_t base_cycles,
                               std::uint64_t weight_load = 0)
        : base(base_cycles), weightLoad(weight_load)
    {}

    ServiceProfile
    profile(const AcceleratorConfig &, std::uint32_t network_id,
            std::uint32_t bucket) const override
    {
        ServiceProfile p;
        p.totalCycles = base * (network_id + 1) * (bucket + 1);
        p.computeCycles = p.totalCycles;
        p.weightLoadCycles = weightLoad;
        return p;
    }

  private:
    std::uint64_t base;
    std::uint64_t weightLoad;
};

/** Explicit per-network phase table (network id indexes the table). */
class PhasedServiceModel : public ServiceModel
{
  public:
    struct Entry
    {
        std::uint64_t mapCycles;
        std::uint64_t backendCycles;
        std::uint64_t weightLoadCycles = 0;
    };

    explicit PhasedServiceModel(std::vector<Entry> entries)
        : table(std::move(entries))
    {}

    ServiceProfile
    profile(const AcceleratorConfig &, std::uint32_t network_id,
            std::uint32_t) const override
    {
        const Entry &e = table.at(network_id);
        ServiceProfile p;
        p.totalCycles = e.mapCycles + e.backendCycles;
        p.mappingCycles = e.mapCycles;
        p.computeCycles = e.backendCycles;
        p.weightLoadCycles = e.weightLoadCycles;
        return p;
    }

  private:
    std::vector<Entry> table;
};

std::vector<Request>
denseTrace(std::size_t count, std::uint64_t gap)
{
    std::vector<Request> trace;
    for (std::size_t i = 0; i < count; ++i) {
        auto r = makeRequest(i, i * gap);
        r.networkId = i % 2;
        trace.push_back(r);
    }
    return trace;
}

TEST(FleetScheduler, ConstructorRejectsBadFaultPrograms)
{
    // The scheduler validates fault/retry configs at construction,
    // never mid-simulation — the validateWorkloadSpec idiom.
    const FixedServiceModel model(10'000);
    SchedulerConfig cfg;
    cfg.faults.enabled = true;
    cfg.faults.mtbfNs = 1'000; // MTBF without MTTR
    EXPECT_THROW(
        FleetScheduler({pointAccConfig()}, model, {1.0}, cfg),
        std::invalid_argument);

    SchedulerConfig cfg2;
    cfg2.retry.enabled = true;
    cfg2.retry.backoffBaseNs = 0;
    EXPECT_THROW(
        FleetScheduler({pointAccConfig()}, model, {1.0}, cfg2),
        std::invalid_argument);
}

TEST(FleetScheduler, ConservationUnderOverload)
{
    const FixedServiceModel model(10'000);
    SchedulerConfig scfg;
    scfg.queueDepth = 4; // tiny: force drops
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);

    // Arrivals far faster than service: queue must shed load.
    const auto report = sched.run(denseTrace(200, 100));
    EXPECT_EQ(report.generated, 200u);
    EXPECT_GT(report.dropped, 0u);
    EXPECT_EQ(report.generated, report.admitted + report.dropped);
    EXPECT_EQ(report.admitted, report.completed + report.leftoverQueued);
    EXPECT_EQ(report.leftoverQueued, 0u); // the simulation drains
}

TEST(FleetScheduler, DeterministicReplay)
{
    const FixedServiceModel model(25'000, 2'000);
    SchedulerConfig scfg;
    scfg.policy = QueuePolicy::Sjf;
    scfg.batcher.enabled = true;
    FleetScheduler sched({pointAccConfig(), pointAccConfig()}, model,
                         {1.0}, scfg);

    const auto a = sched.run(denseTrace(300, 7'000));
    const auto b = sched.run(denseTrace(300, 7'000));
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.horizonCycles, b.horizonCycles);
    EXPECT_DOUBLE_EQ(a.latencyCycles.mean(), b.latencyCycles.mean());
    EXPECT_DOUBLE_EQ(a.latencyCycles.percentile(0.99),
                     b.latencyCycles.percentile(0.99));
    ASSERT_EQ(a.accelerators.size(), b.accelerators.size());
    for (std::size_t i = 0; i < a.accelerators.size(); ++i)
        EXPECT_EQ(a.accelerators[i].busyCycles,
                  b.accelerators[i].busyCycles);
}

TEST(FleetScheduler, UtilizationNeverExceedsOne)
{
    const FixedServiceModel model(50'000);
    for (const std::size_t fleetSize : {1u, 2u, 3u}) {
        std::vector<AcceleratorConfig> fleet(fleetSize, pointAccConfig());
        FleetScheduler sched(fleet, model, {1.0}, {});
        const auto report = sched.run(denseTrace(150, 10'000));
        ASSERT_EQ(report.accelerators.size(), fleetSize);
        for (const auto &acc : report.accelerators) {
            EXPECT_LE(acc.utilization(report.horizonCycles), 1.0)
                << acc.name;
            EXPECT_LE(acc.busyCycles, report.horizonCycles) << acc.name;
        }
    }
}

TEST(FleetScheduler, P99MonotoneWithFleetSize)
{
    const FixedServiceModel model(40'000);
    WorkloadSpec spec;
    spec.seed = 5;
    spec.requestsPerMCycle = 30.0; // ~1.2x one instance's capacity
    spec.horizonCycles = 30'000'000;
    spec.mix = {{0, 0, 1.0, 0}, {1, 0, 1.0, 0}};
    const auto trace = WorkloadGenerator(spec).generate();

    double prev = -1.0;
    for (const std::size_t fleetSize : {4u, 2u, 1u}) {
        std::vector<AcceleratorConfig> fleet(fleetSize, pointAccConfig());
        FleetScheduler sched(fleet, model, {1.0}, {});
        const auto report = sched.run(trace);
        const double p99 = report.latencyCycles.percentile(0.99);
        EXPECT_GE(p99, prev) << fleetSize << " accelerators";
        prev = p99;
    }
}

TEST(FleetScheduler, DeadlineMissesAreCounted)
{
    const FixedServiceModel model(100'000);
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, {});

    // Two back-to-back requests; the second waits 100k cycles and
    // misses its 150k relative deadline, the first makes it.
    auto a = makeRequest(0, 0, 0, 150'000);
    auto b = makeRequest(1, 1, 0, 150'001);
    const auto report = sched.run({a, b});
    EXPECT_EQ(report.completed, 2u);
    EXPECT_EQ(report.deadlineMisses, 1u);
}

TEST(FleetScheduler, CrashRetryFailoverOracle)
{
    // One request, two instances, phases 100 + 900. Dispatched to
    // instance 0 at t=0 (due at 1000); the scheduled crash at 500
    // kills it mid-flight. The retry waits its 100 ns backoff, re-
    // enters admission at 600, and lands on the healthy instance 1,
    // completing at 1600 — a counted failover.
    const PhasedServiceModel model({{100, 900}});
    SchedulerConfig scfg;
    scfg.faults.enabled = true;
    scfg.faults.crashes.push_back(CrashWindow{0, 500, 0});
    scfg.retry.enabled = true;
    scfg.retry.backoffBaseNs = 100;
    FleetScheduler sched({pointAccConfig(), pointAccConfig()}, model,
                         {1.0}, scfg);
    const auto report = sched.run({makeRequest(0, 0)});

    EXPECT_EQ(report.completed, 1u);
    EXPECT_EQ(report.failed, 0u);
    EXPECT_EQ(report.faults.crashes, 1u);
    EXPECT_EQ(report.faults.inflightFailed, 1u);
    EXPECT_EQ(report.faults.failedBatches, 1u);
    EXPECT_EQ(report.faults.retryAttempts, 1u);
    EXPECT_EQ(report.faults.failovers, 1u);
    EXPECT_EQ(report.horizonCycles, 1600u);
    EXPECT_EQ(report.latencyCycles.mean(), 1600.0);
    EXPECT_EQ(report.admitted, report.completed + report.failed +
                                   report.leftoverQueued);
}

TEST(FleetScheduler, CrashWithoutRetryFailsTerminallyAndRecovers)
{
    // No retry policy: the crash victim fails terminally. The single
    // instance recovers at 700 and serves the second arrival (queued
    // while it was down) to completion at 1700.
    const PhasedServiceModel model({{100, 900}});
    SchedulerConfig scfg;
    scfg.faults.enabled = true;
    scfg.faults.crashes.push_back(CrashWindow{0, 500, 200});
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);
    const auto report =
        sched.run({makeRequest(0, 0), makeRequest(1, 600)});

    EXPECT_EQ(report.failed, 1u);
    EXPECT_EQ(report.completed, 1u);
    EXPECT_EQ(report.faults.crashes, 1u);
    EXPECT_EQ(report.faults.recoveries, 1u);
    EXPECT_EQ(report.faults.retryAttempts, 0u);
    EXPECT_EQ(report.horizonCycles, 1700u);
    EXPECT_EQ(report.admitted, 2u);
    EXPECT_EQ(report.admitted, report.completed + report.failed +
                                   report.leftoverQueued);
}

TEST(FleetScheduler, StragglerWindowStretchesServiceTime)
{
    // The window covers the dispatch instant, so the 2x slowdown
    // prices the batch at 200 + 1800 instead of 100 + 900; a second
    // request dispatched after the window ends runs at full speed.
    const PhasedServiceModel model({{100, 900}});
    SchedulerConfig scfg;
    scfg.faults.enabled = true;
    scfg.faults.stragglers.push_back(StragglerWindow{0, 0, 1000, 2.0});
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);
    const auto report =
        sched.run({makeRequest(0, 0), makeRequest(1, 2000)});

    EXPECT_EQ(report.completed, 2u);
    EXPECT_EQ(report.faults.stragglerWindows, 1u);
    // First: 0 -> 2000 (slowed). Second: 2000 -> 3000 (full speed).
    EXPECT_EQ(report.horizonCycles, 3000u);
}

TEST(FleetScheduler, BatchOfSeveralHedgesKeepsAdmissionAccounting)
{
    // Regression: one batch can carry several hedge copies, and the
    // in-queue hedge counter must come down once per copy, not once
    // per batch — a stuck counter wraps leftoverQueued below zero at
    // the end of the run. Two originals batch at t=0 (map 20, long
    // backend), both arm hedges at t=100; the copies batch together
    // and lose to the originals.
    const PhasedServiceModel model({{10, 10'000}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = true;
    scfg.batcher.maxBatchSize = 2;
    scfg.retry.enabled = true;
    scfg.retry.backoffBaseNs = 1;
    scfg.retry.hedgeDelayNs = 100;
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);
    const auto report =
        sched.run({makeRequest(0, 0), makeRequest(1, 0)});

    EXPECT_EQ(report.completed, 2u);
    EXPECT_EQ(report.failed, 0u);
    EXPECT_EQ(report.faults.hedges, 2u);
    EXPECT_EQ(report.faults.hedgesWon, 0u);
    EXPECT_EQ(report.faults.hedgesLost, 2u);
    // The conservation identity only holds if both copies left the
    // in-queue count at their shared dispatch.
    EXPECT_EQ(report.leftoverQueued, 0u);
    EXPECT_EQ(report.admitted, report.completed + report.failed +
                                   report.leftoverQueued);
}

TEST(ServiceModelBatching, AmortizesWeightLoadWithFloor)
{
    const FixedServiceModel model(10'000, 3'000);
    const auto cfg = pointAccConfig();

    Batch batch;
    for (std::uint64_t i = 0; i < 4; ++i)
        batch.requests.push_back(makeRequest(i, 0));
    // 4 requests of 10k each, 3 followers amortize 3k of weight load.
    EXPECT_EQ(model.batchServiceCycles(cfg, batch), 40'000u - 3u * 3'000u);

    // The floor: savings can never push a batch under its longest
    // member.
    const FixedServiceModel greedy(10'000, 10'000);
    EXPECT_EQ(greedy.batchServiceCycles(cfg, batch), 10'000u);

    Batch one;
    one.requests.push_back(makeRequest(0, 0));
    EXPECT_EQ(model.batchServiceCycles(cfg, one), 10'000u);
}

// ---------------------------------------------------------------- //
//                          Phase splits                             //
// ---------------------------------------------------------------- //

TEST(ServiceModelPhases, ProfilePhasesPartitionTheTotal)
{
    ServiceProfile p;
    p.totalCycles = 1000;
    p.mappingCycles = 300;
    p.computeCycles = 700;
    const auto ph = p.phases();
    EXPECT_EQ(ph.mapCycles, 300u);
    EXPECT_EQ(ph.backendCycles, 700u);
    EXPECT_EQ(ph.total(), p.totalCycles);

    // Degenerate profile (mapping exceeds total): clamp, never wrap.
    p.mappingCycles = 1500;
    const auto clamped = p.phases();
    EXPECT_EQ(clamped.mapCycles, 1000u);
    EXPECT_EQ(clamped.backendCycles, 0u);
}

TEST(ServiceModelPhases, BatchPhasesPartitionTheBatchPrice)
{
    const PhasedServiceModel model({{400, 600, 200}});
    const auto cfg = pointAccConfig();

    Batch batch;
    for (std::uint64_t i = 0; i < 3; ++i)
        batch.requests.push_back(makeRequest(i, 0));

    // Total: 3*1000 - 2*200 (weight credit) = 2600; mapping never
    // amortizes, so map = 3*400 and the credit lands on the backend.
    const auto total = model.batchServiceCycles(cfg, batch);
    EXPECT_EQ(total, 2600u);
    const auto ph = model.batchPhases(cfg, batch);
    EXPECT_EQ(ph.mapCycles, 1200u);
    EXPECT_EQ(ph.backendCycles, 1400u);
    EXPECT_EQ(ph.total(), total);

    // Map-dominated profile where the weight credit would push the
    // backend negative: the map share is clamped into the total.
    const PhasedServiceModel mapHeavy({{900, 100, 100}});
    Batch big;
    for (std::uint64_t i = 0; i < 4; ++i)
        big.requests.push_back(makeRequest(i, 0));
    const auto heavyTotal = mapHeavy.batchServiceCycles(cfg, big);
    const auto heavyPh = mapHeavy.batchPhases(cfg, big);
    EXPECT_EQ(heavyPh.total(), heavyTotal);
    EXPECT_LE(heavyPh.mapCycles, heavyTotal);
}

// ---------------------------------------------------------------- //
//                     Wait-for-K batching                           //
// ---------------------------------------------------------------- //

TEST(Batcher, HoldForWaitsUntilKOrTimeout)
{
    BatcherConfig bcfg;
    bcfg.targetK = 3;
    bcfg.maxWaitCycles = 100;
    const Batcher batcher(bcfg, {1.0});

    AdmissionQueue q(16);
    auto r0 = makeRequest(0, 10);
    q.push(r0);

    // One of three wanted, inside the window: hold until arrival+wait.
    auto hold = batcher.holdFor(q, QueuePolicy::Fifo, 20);
    EXPECT_TRUE(hold.hold);
    EXPECT_EQ(hold.until, 110u);

    // Window expired: dispatch undersized.
    hold = batcher.holdFor(q, QueuePolicy::Fifo, 110);
    EXPECT_FALSE(hold.hold);

    // Incompatible requests do not count toward K.
    auto other = makeRequest(1, 15);
    other.networkId = 7;
    q.push(other);
    auto third = makeRequest(2, 16);
    third.networkId = 7;
    q.push(third);
    hold = batcher.holdFor(q, QueuePolicy::Fifo, 30);
    EXPECT_TRUE(hold.hold);

    // K compatible requests queued: dispatch immediately.
    q.push(makeRequest(3, 17));
    q.push(makeRequest(4, 18));
    hold = batcher.holdFor(q, QueuePolicy::Fifo, 30);
    EXPECT_FALSE(hold.hold);

    // Excluded requests (members of other held groups) never count
    // toward K: with one of the three compatibles masked out, the
    // head must keep waiting.
    const auto maskId3 = [](const Request &r) { return r.id == 3; };
    hold = batcher.holdForHead(q, q.peek(QueuePolicy::Fifo), 30, maskId3);
    EXPECT_TRUE(hold.hold);

    // Immediate-mode batcher (targetK == 1) never holds.
    BatcherConfig immediate;
    const Batcher eager(immediate, {1.0});
    EXPECT_FALSE(eager.holdFor(q, QueuePolicy::Fifo, 0).hold);
}

TEST(Batcher, HoldDeadlineAnchorsAtOldestGroupMember)
{
    // Under SJF a newly arrived shorter request becomes the leader;
    // the wait bound must stay anchored at the group's oldest member
    // so leader churn can never extend the hold past maxWaitCycles.
    BatcherConfig bcfg;
    bcfg.targetK = 3;
    bcfg.maxWaitCycles = 100;
    const Batcher batcher(bcfg, {1.0});

    AdmissionQueue q(8);
    q.push(makeRequest(0, 0, 900));  // long job, arrived first
    q.push(makeRequest(1, 90, 100)); // short job, now the SJF head
    ASSERT_EQ(q.peek(QueuePolicy::Sjf).id, 1u);

    const auto hold = batcher.holdFor(q, QueuePolicy::Sjf, 95);
    EXPECT_TRUE(hold.hold);
    EXPECT_EQ(hold.until, 100u); // oldest arrival 0 + 100, not 190

    // Past the oldest member's deadline: dispatch undersized.
    EXPECT_FALSE(batcher.holdFor(q, QueuePolicy::Sjf, 100).hold);
}

TEST(FleetScheduler, WaitForKCoalescesSpreadArrivals)
{
    // Two same-network requests 50 cycles apart. Immediate batching
    // dispatches the first alone; wait-for-2 holds it and serves both
    // in one batch.
    const FixedServiceModel model(10'000, 2'000);

    const auto trace = [] {
        std::vector<Request> t;
        t.push_back(makeRequest(0, 0));
        t.push_back(makeRequest(1, 50));
        return t;
    };

    SchedulerConfig eager;
    eager.batcher.enabled = true;
    FleetScheduler eagerSched({pointAccConfig()}, model, {1.0}, eager);
    const auto eagerReport = eagerSched.run(trace());
    EXPECT_EQ(eagerReport.batchSize.max(), 1.0);
    EXPECT_EQ(eagerReport.batchHolds, 0u);

    SchedulerConfig waitK = eager;
    waitK.batcher.targetK = 2;
    waitK.batcher.maxWaitCycles = 1'000;
    FleetScheduler waitSched({pointAccConfig()}, model, {1.0}, waitK);
    const auto waitReport = waitSched.run(trace());
    EXPECT_EQ(waitReport.batchSize.max(), 2.0);
    // One hold episode: the first request held once, however many
    // events re-evaluated the hold before the second arrived.
    EXPECT_EQ(waitReport.batchHolds, 1u);
    EXPECT_EQ(waitReport.completed, 2u);
    // One batch of two at 10k cycles each minus one 2k weight reload.
    ASSERT_EQ(waitReport.completionCycles.size(), 2u);
    EXPECT_EQ(waitReport.completionCycles[0], 50u + 18'000u);
}

TEST(FleetScheduler, WaitForKTimesOutAndDispatchesUndersized)
{
    // A lone request with targetK 4: held exactly maxWait cycles past
    // arrival, then dispatched anyway by the timer event.
    const FixedServiceModel model(10'000);
    SchedulerConfig scfg;
    scfg.batcher.enabled = true;
    scfg.batcher.targetK = 4;
    scfg.batcher.maxWaitCycles = 200;
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);

    const auto report = sched.run({makeRequest(0, 30)});
    EXPECT_EQ(report.completed, 1u);
    EXPECT_EQ(report.batchHolds, 1u);
    ASSERT_EQ(report.completionCycles.size(), 1u);
    EXPECT_EQ(report.completionCycles[0], 30u + 200u + 10'000u);
    ASSERT_EQ(report.queueWaitCycles.count(), 1u);
    EXPECT_EQ(report.queueWaitCycles.mean(), 200.0);
}

TEST(FleetScheduler, HeldGroupDoesNotBlockOtherGroups)
{
    // Network 0's lone request is held waiting for K=2; network 1's
    // pair reaches K while the hold is outstanding and must dispatch
    // around it — a held head never freezes the rest of the queue.
    const FixedServiceModel model(10'000); // net0: 10k, net1: 20k
    SchedulerConfig scfg;
    scfg.batcher.enabled = true;
    scfg.batcher.targetK = 2;
    scfg.batcher.maxWaitCycles = 100'000;
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);

    auto a = makeRequest(0, 0); // net 0: held until 100'000
    auto b1 = makeRequest(1, 10);
    auto b2 = makeRequest(2, 20);
    b1.networkId = b2.networkId = 1;
    const auto report = sched.run({a, b1, b2});

    ASSERT_EQ(report.completionCycles.size(), 3u);
    // {b1, b2} dispatch at t=20 (K reached): 2 * 20'000 cycles.
    EXPECT_EQ(report.completionCycles[0], 20u + 40'000u);
    EXPECT_EQ(report.completionCycles[1], 20u + 40'000u);
    // The held net-0 request times out at t=100'000 and runs alone.
    EXPECT_EQ(report.completionCycles[2], 100'000u + 10'000u);
    // Two hold episodes: net 0's leader and net 1's first request
    // (held from t=10 until its partner arrived at t=20).
    EXPECT_EQ(report.batchHolds, 2u);
}

// ---------------------------------------------------------------- //
//                  Cost-aware hold-vs-dispatch                      //
// ---------------------------------------------------------------- //

/**
 * Hand-computed cost-aware schedule. One pipelined FIFO instance,
 * network 0 has map 100 + backend 100 with a 150-cycle weight load,
 * targetK = maxBatchSize = 2, no wait-deadline (the cost model alone
 * decides). Arrivals at 0 / 50 / 100 give a 50 ns observed cadence.
 *
 *   t=0:   r0's class has no cadence yet (one arrival) -> eager solo
 *          dispatch. mapDone=100, handoff, backDone=200.
 *   t=50:  r1 arrives; the front is busy until 100, nothing to price.
 *   t=100: front frees. Hold r1? missing=1, gain=150 (one forfeited
 *          weight load). Backlog is r0's remaining backend (100),
 *          which exactly covers r1's own map (100) -> slack=0. Spent
 *          so far: 50 waited + 50 more to the predicted partner =
 *          100. gain 150 > cost 100 -> hold until min(next-arrival
 *          150, break-even 150). Same tick, r2 is admitted: the group
 *          reaches K=2 and dispatches. Batch price: 2x200 - 150
 *          amortized = 250 total, map phase 200, backend 50:
 *          mapDone=300, backStart=max(300, 200), backDone=350.
 */
TEST(FleetScheduler, CostAwareOracleHoldsThenJoins)
{
    const PhasedServiceModel model({{100, 100, 150}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = true;
    scfg.batcher.costAware = true;
    scfg.batcher.targetK = 2;
    scfg.batcher.maxBatchSize = 2;
    scfg.batcher.maxWaitCycles = 0; // no deadline: pure cost model
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);

    const auto report = sched.run(
        {makeRequest(0, 0), makeRequest(1, 50), makeRequest(2, 100)});
    ASSERT_EQ(report.completionCycles.size(), 3u);
    EXPECT_EQ(report.completionCycles[0], 200u);
    EXPECT_EQ(report.completionCycles[1], 350u);
    EXPECT_EQ(report.completionCycles[2], 350u);
    EXPECT_TRUE(report.costAware);
    EXPECT_EQ(report.costHolds, 1u);      // r1's one priced hold
    EXPECT_EQ(report.costDispatches, 1u); // r0's undersized solo
    EXPECT_EQ(report.batchHolds, 1u);
}

TEST(FleetScheduler, CostAwareDispatchesAtBreakEven)
{
    // Same class and cadence, but the predicted partner never comes:
    // after the hold at t=100 (gain 150 > cost 100), waiting accrues
    // cost at 1/ns with no further slack — the break-even timer fires
    // at 150, where cost reaches gain, and r1 dispatches undersized
    // instead of waiting on a wall-clock deadline that does not exist.
    const PhasedServiceModel model({{100, 100, 150}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = true;
    scfg.batcher.costAware = true;
    scfg.batcher.targetK = 2;
    scfg.batcher.maxBatchSize = 2;
    scfg.batcher.maxWaitCycles = 0;
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);

    const auto report =
        sched.run({makeRequest(0, 0), makeRequest(1, 50)});
    ASSERT_EQ(report.completionCycles.size(), 2u);
    EXPECT_EQ(report.completionCycles[0], 200u);
    // r1 solo at 150: mapDone 250, backStart max(250, 200), done 350.
    EXPECT_EQ(report.completionCycles[1], 350u);
    // costHolds counts priced hold decisions, and t=100 prices twice
    // (the dispatch pass runs before and after arrival admission).
    EXPECT_EQ(report.costHolds, 2u);
    EXPECT_EQ(report.costDispatches, 2u); // both ran undersized
    EXPECT_EQ(report.batchHolds, 1u);     // but one hold episode
}

TEST(FleetScheduler, CostAwareHonorsTheHardDeadline)
{
    // maxWaitCycles stays a hard cap on top of the cost model: r1's
    // group deadline (arrival 50 + 30) has already passed when the
    // front frees at t=100, so it dispatches without a priced hold.
    const PhasedServiceModel model({{100, 100, 150}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = true;
    scfg.batcher.costAware = true;
    scfg.batcher.targetK = 2;
    scfg.batcher.maxBatchSize = 2;
    scfg.batcher.maxWaitCycles = 30;
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);

    const auto report =
        sched.run({makeRequest(0, 0), makeRequest(1, 50)});
    ASSERT_EQ(report.completionCycles.size(), 2u);
    EXPECT_EQ(report.completionCycles[0], 200u);
    // r1 solo at 100: mapDone 200, backStart 200, done 300.
    EXPECT_EQ(report.completionCycles[1], 300u);
    EXPECT_EQ(report.costHolds, 0u);
    EXPECT_EQ(report.costDispatches, 2u);
}

// ---------------------------------------------------------------- //
//               Two-stage pipeline vs oracle                        //
// ---------------------------------------------------------------- //

/**
 * Hand-computed two-stage pipeline makespans for 3-request traces on
 * a 1-instance FIFO fleet (no batching). The recurrence, with m/b
 * the map/backend phases, t the arrival and d the dispatch time:
 *   d_k        = max(t_k, backStart_{k-1})   (blocking handoff frees
 *                                             the front at handoff)
 *   mapDone_k  = d_k + m_k
 *   backStart_k= max(mapDone_k, backDone_{k-1})
 *   backDone_k = backStart_k + b_k
 */
TEST(FleetScheduler, PipelineOracleBackendBoundTrace)
{
    // m=10 b=100 each, all arriving at 0: the map phases of requests
    // 2 and 3 hide behind the running back-end entirely.
    const PhasedServiceModel model({{10, 100}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = false;
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);

    const auto report = sched.run(
        {makeRequest(0, 0), makeRequest(1, 0), makeRequest(2, 0)});
    ASSERT_EQ(report.completionCycles.size(), 3u);
    EXPECT_EQ(report.completionCycles[0], 110u);
    EXPECT_EQ(report.completionCycles[1], 210u);
    EXPECT_EQ(report.completionCycles[2], 310u);
    EXPECT_EQ(report.horizonCycles, 310u);

    // The same trace under monolithic occupancy serializes fully.
    SchedulerConfig mono = scfg;
    mono.occupancy = OccupancyModel::Monolithic;
    FleetScheduler monoSched({pointAccConfig()}, model, {1.0}, mono);
    const auto monoReport = monoSched.run(
        {makeRequest(0, 0), makeRequest(1, 0), makeRequest(2, 0)});
    ASSERT_EQ(monoReport.completionCycles.size(), 3u);
    EXPECT_EQ(monoReport.completionCycles[0], 110u);
    EXPECT_EQ(monoReport.completionCycles[1], 220u);
    EXPECT_EQ(monoReport.completionCycles[2], 330u);
}

TEST(FleetScheduler, PipelineOracleMapBoundTrace)
{
    // m=100 b=20: the front-end is the bottleneck; each back-end run
    // hides behind the next mapping.
    const PhasedServiceModel model({{100, 20}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = false;
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);

    const auto report = sched.run(
        {makeRequest(0, 0), makeRequest(1, 0), makeRequest(2, 0)});
    ASSERT_EQ(report.completionCycles.size(), 3u);
    EXPECT_EQ(report.completionCycles[0], 120u);
    EXPECT_EQ(report.completionCycles[1], 220u);
    EXPECT_EQ(report.completionCycles[2], 320u);
    EXPECT_EQ(report.horizonCycles, 320u);
}

TEST(FleetScheduler, PipelineOracleMixedTraceWithGaps)
{
    // Three different networks, staggered arrivals:
    //   r0: m=50 b=70 t=0   -> d=0,   mapDone=50,  backStart=50,
    //                          backDone=120
    //   r1: m=30 b=90 t=60  -> d=60,  mapDone=90,  backStart=120,
    //                          backDone=210
    //   r2: m=40 b=10 t=65  -> d=120 (front frees at r1's handoff),
    //                          mapDone=160, backStart=210, backDone=220
    const PhasedServiceModel model({{50, 70}, {30, 90}, {40, 10}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = false;
    FleetScheduler sched({pointAccConfig()}, model, {1.0, 1.0, 1.0}, scfg);

    auto r0 = makeRequest(0, 0);
    auto r1 = makeRequest(1, 60);
    auto r2 = makeRequest(2, 65);
    r1.networkId = 1;
    r2.networkId = 2;
    const auto report = sched.run({r0, r1, r2});
    ASSERT_EQ(report.completionCycles.size(), 3u);
    EXPECT_EQ(report.completionCycles[0], 120u);
    EXPECT_EQ(report.completionCycles[1], 210u);
    EXPECT_EQ(report.completionCycles[2], 220u);
    EXPECT_EQ(report.horizonCycles, 220u);

    // Latencies follow completion - arrival exactly.
    ASSERT_EQ(report.latencyCycles.count(), 3u);
    EXPECT_EQ(report.latencyCycles.data()[0], 120.0);
    EXPECT_EQ(report.latencyCycles.data()[1], 150.0);
    EXPECT_EQ(report.latencyCycles.data()[2], 155.0);

    // Per-stage accounting: map stage busy 120 of 220 cycles, backend
    // 170 of 220, instance covered 0..220 continuously.
    ASSERT_EQ(report.accelerators.size(), 1u);
    const auto &acc = report.accelerators.front();
    EXPECT_EQ(acc.mapBusyCycles, 120u);
    EXPECT_EQ(acc.backendBusyCycles, 170u);
    EXPECT_EQ(acc.busyCycles, 220u);
}

/**
 * Hand-computed run-ahead schedule pinning the two-batch stall and
 * its fix. Three networks, all arriving at t=0, FIFO, no batching:
 *   net 0: m=10  b=200   net 1: m=10 b=10   net 2: m=100 b=10
 *
 * Depth 1 (blocking handoff): r1's mapped output occupies the front
 * until the back frees at 210, so r2's long map cannot start before
 * then and the back idles waiting for it:
 *   r0: d=0,   mapDone=10,  backStart=10,  backDone=210
 *   r1: d=10,  mapDone=20,  backStart=210, backDone=220
 *   r2: d=210, mapDone=310, backStart=310, backDone=320
 *
 * Depth 2 (one staged slot): r1 parks at 20, freeing the front for
 * r2 at 20 — its map finishes at 120, well inside r0's backend run,
 * and the back never idles:
 *   r0: d=0,  mapDone=10,  backStart=10,  backDone=210
 *   r1: d=10, mapDone=20 -> staged;       backStart=210, backDone=220
 *   r2: d=20, mapDone=120 (front-held);   backStart=220, backDone=230
 */
TEST(FleetScheduler, RunAheadOracleBreaksTheTwoBatchStall)
{
    const PhasedServiceModel model({{10, 200}, {10, 10}, {100, 10}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = false;

    std::vector<Request> trace;
    for (std::uint64_t i = 0; i < 3; ++i) {
        auto r = makeRequest(i, 0);
        r.networkId = static_cast<std::uint32_t>(i);
        trace.push_back(r);
    }

    scfg.runAheadDepth = 1;
    FleetScheduler shallow({pointAccConfig()}, model, {1.0, 1.0, 1.0},
                           scfg);
    const auto d1 = shallow.run(trace);
    ASSERT_EQ(d1.completionCycles.size(), 3u);
    EXPECT_EQ(d1.completionCycles[0], 210u);
    EXPECT_EQ(d1.completionCycles[1], 220u);
    EXPECT_EQ(d1.completionCycles[2], 320u);
    EXPECT_EQ(d1.runAheadDepth, 1u);
    EXPECT_EQ(d1.runAheadStaged, 0u);

    scfg.runAheadDepth = 2;
    FleetScheduler deep({pointAccConfig()}, model, {1.0, 1.0, 1.0},
                        scfg);
    const auto d2 = deep.run(trace);
    ASSERT_EQ(d2.completionCycles.size(), 3u);
    EXPECT_EQ(d2.completionCycles[0], 210u);
    EXPECT_EQ(d2.completionCycles[1], 220u);
    EXPECT_EQ(d2.completionCycles[2], 230u);
    EXPECT_EQ(d2.horizonCycles, 230u);
    EXPECT_EQ(d2.runAheadDepth, 2u);
    // r1 parked at 20 and r2 parked at 210; never more than one slot.
    EXPECT_EQ(d2.runAheadStaged, 2u);
    EXPECT_EQ(d2.runAheadPeakStaged, 1u);
    // Stage accounting: maps 10+10+100, backends 200+10+10, and the
    // instance is busy without a gap from 0 to 230.
    ASSERT_EQ(d2.accelerators.size(), 1u);
    EXPECT_EQ(d2.accelerators[0].mapBusyCycles, 120u);
    EXPECT_EQ(d2.accelerators[0].backendBusyCycles, 220u);
    EXPECT_EQ(d2.accelerators[0].busyCycles, 230u);
}

/** Per-accelerator-class phase table in each class's OWN clock
 *  domain (cycles), keyed by config name — the scheduler converts to
 *  the wall-clock ns axis at dispatch, which is exactly what the
 *  heterogeneous oracle below pins. */
class ClassPhasedServiceModel : public ServiceModel
{
  public:
    struct Entry
    {
        std::uint64_t mapCycles;
        std::uint64_t backendCycles;
    };

    explicit ClassPhasedServiceModel(
        std::map<std::string, Entry> entries)
        : table(std::move(entries))
    {}

    ServiceProfile
    profile(const AcceleratorConfig &cfg, std::uint32_t,
            std::uint32_t) const override
    {
        const Entry &e = table.at(cfg.name);
        ServiceProfile p;
        p.totalCycles = e.mapCycles + e.backendCycles;
        p.mappingCycles = e.mapCycles;
        p.computeCycles = e.backendCycles;
        return p;
    }

  private:
    std::map<std::string, Entry> table;
};

/**
 * Hand-computed heterogeneous-fleet oracle on the wall-clock event
 * axis: a 2 GHz server (100 map + 200 backend cycles in its own clock
 * -> 150 ns total, split 50 map + 100 backend after the clamp-into-
 * total conversion) next to a 1 GHz edge part (120 + 240 cycles ->
 * 120 + 240 ns, the identity). FIFO, no batching, pipelined. Trace:
 * r0 and r1 at t=0, r2 at t=50 ns.
 *
 *   r0 at 0:  server (done 0+50+100 = 150 ns) beats edge (360) ->
 *             server: mapDone 50, backDone 150.
 *   r1 at 0:  server front busy, edge free -> edge: mapDone 120,
 *             backDone 360.
 *   r2 at 50: server front freed by r0's handoff, edge front busy ->
 *             server: mapDone 100, backStart max(100, 150) = 150,
 *             backDone 250.
 */
TEST(FleetScheduler, HeterogeneousFleetWallClockOracle)
{
    AcceleratorConfig server = pointAccConfig();
    server.name = "Server@2GHz";
    server.freqGHz = 2.0;
    const AcceleratorConfig edge = pointAccEdgeConfig();

    const ClassPhasedServiceModel model(
        {{server.name, {100, 200}}, {edge.name, {120, 240}}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = false;
    FleetScheduler sched({server, edge}, model, {1.0}, scfg);

    const auto report = sched.run(
        {makeRequest(0, 0), makeRequest(1, 0), makeRequest(2, 50)});
    ASSERT_EQ(report.completionCycles.size(), 3u);
    EXPECT_EQ(report.completionCycles[0], 150u);
    EXPECT_EQ(report.completionCycles[1], 250u);
    EXPECT_EQ(report.completionCycles[2], 360u);
    EXPECT_EQ(report.horizonCycles, 360u);

    // Latencies in completion order: r0 150-0, r2 250-50, r1 360-0.
    ASSERT_EQ(report.latencyCycles.count(), 3u);
    EXPECT_EQ(report.latencyCycles.data()[0], 150.0);
    EXPECT_EQ(report.latencyCycles.data()[1], 200.0);
    EXPECT_EQ(report.latencyCycles.data()[2], 360.0);

    // Per-instance accounting, all in event-axis ns: the server ran
    // r0 and r2 (maps 50+50, backends 100+100, resident 0..250), the
    // edge ran r1 alone (resident 0..360). Each instance reports its
    // own clock for the ns -> cycles conversion.
    ASSERT_EQ(report.accelerators.size(), 2u);
    const auto &srv = report.accelerators[0];
    EXPECT_EQ(srv.freqGHz, 2.0);
    EXPECT_EQ(srv.requests, 2u);
    EXPECT_EQ(srv.mapBusyCycles, 100u);
    EXPECT_EQ(srv.backendBusyCycles, 200u);
    EXPECT_EQ(srv.busyCycles, 250u);
    const auto &edg = report.accelerators[1];
    EXPECT_EQ(edg.freqGHz, 1.0);
    EXPECT_EQ(edg.requests, 1u);
    EXPECT_EQ(edg.mapBusyCycles, 120u);
    EXPECT_EQ(edg.backendBusyCycles, 240u);
    EXPECT_EQ(edg.busyCycles, 360u);
}

TEST(FleetScheduler, HeterogeneousTieBreaksToLowestIndex)
{
    // Two classes that price identically on the ns axis: 100+900
    // cycles at 1 GHz and 200+1800 cycles at 2 GHz are both 1000 ns.
    // A strict done < bestDone comparison keeps the first-indexed
    // instance on ties — whichever class sits at index 0 — so fleet
    // order, not clock rate or name, decides.
    AcceleratorConfig slow = pointAccConfig();
    slow.name = "Slow@1GHz";
    AcceleratorConfig fast = pointAccConfig();
    fast.name = "Fast@2GHz";
    fast.freqGHz = 2.0;
    const ClassPhasedServiceModel model(
        {{slow.name, {100, 900}}, {fast.name, {200, 1800}}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = false;

    for (const auto &fleet :
         {std::vector<AcceleratorConfig>{slow, fast},
          std::vector<AcceleratorConfig>{fast, slow}}) {
        FleetScheduler sched(fleet, model, {1.0}, scfg);
        const auto report = sched.run({makeRequest(0, 0)});
        SCOPED_TRACE(fleet.front().name + " first");
        ASSERT_EQ(report.accelerators.size(), 2u);
        EXPECT_EQ(report.accelerators[0].requests, 1u);
        EXPECT_EQ(report.accelerators[1].requests, 0u);
        EXPECT_EQ(report.horizonCycles, 1000u);
    }
}

// ---------------------------------------------------------------- //
//                Kernel-map cache through the scheduler             //
// ---------------------------------------------------------------- //

/**
 * Hand-computed hit/miss schedule: network 0 has m=100 b=50, the
 * cache reads a stored map back in 10 cycles, batching is off, one
 * pipelined FIFO instance. Three requests at t=0: clouds A, A, B.
 *
 *   r0 (A, miss): d=0,   mapDone=100 (A published), backDone=150
 *   r1 (A, hit):  d=100 (front frees at r0's handoff; A resident),
 *                 map collapses to 10 -> mapDone=110,
 *                 backStart=max(110, 150)=150, backDone=200
 *   r2 (B, miss): d=150 (front frees at r1's handoff), mapDone=250,
 *                 backStart=250, backDone=300
 *
 * Without the cache r1 maps in full: completions 150 / 250 / 350.
 */
TEST(FleetScheduler, MapCacheOracleHitMissTrace)
{
    const PhasedServiceModel model({{100, 50}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = false;
    scfg.mapCache.enabled = true;
    scfg.mapCache.hitReadCycles = 10;

    auto r0 = makeRequest(0, 0);
    auto r1 = makeRequest(1, 0);
    auto r2 = makeRequest(2, 0);
    r0.cloudId = r1.cloudId = 1; // repeated frame
    r2.cloudId = 2;

    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);
    const auto report = sched.run({r0, r1, r2});
    ASSERT_EQ(report.completionCycles.size(), 3u);
    EXPECT_EQ(report.completionCycles[0], 150u);
    EXPECT_EQ(report.completionCycles[1], 200u);
    EXPECT_EQ(report.completionCycles[2], 300u);
    EXPECT_EQ(report.mapCache.hits, 1u);
    EXPECT_EQ(report.mapCache.misses, 2u);
    EXPECT_EQ(report.mapCache.insertions, 2u);
    EXPECT_EQ(report.mapCache.evictions, 0u);
    EXPECT_EQ(report.mapCache.cyclesSaved, 90u); // 100 - 10 read

    SchedulerConfig off = scfg;
    off.mapCache.enabled = false;
    FleetScheduler offSched({pointAccConfig()}, model, {1.0}, off);
    const auto offReport = offSched.run({r0, r1, r2});
    ASSERT_EQ(offReport.completionCycles.size(), 3u);
    EXPECT_EQ(offReport.completionCycles[0], 150u);
    EXPECT_EQ(offReport.completionCycles[1], 250u);
    EXPECT_EQ(offReport.completionCycles[2], 350u);
    EXPECT_EQ(offReport.mapCache.hits + offReport.mapCache.misses, 0u);
}

TEST(FleetScheduler, MapCacheBatchSavingsMatchTheSimulatedSchedule)
{
    // Batched-hit savings are priced at batch level, against what the
    // simulation actually skipped. Network 0: map 100 + backend 50
    // with a 150-cycle weight load, so a 2-batch prices at
    // max(2x150 - 150, 150) = 150 total — the batch map phase clamps
    // to 150, not the 200 sum of member maps. A 2-hit batch replaces
    // that with 2x30 = 60 of reads: the honest credit is 150 - 60 =
    // 90. Per-request accounting would claim 2x(100 - 30) = 140,
    // savings the schedule never saw.
    const PhasedServiceModel model({{100, 50, 150}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = true;
    scfg.batcher.maxBatchSize = 2;
    scfg.mapCache.enabled = true;
    scfg.mapCache.hitReadCycles = 30;

    // Prime with a miss-pure 2-batch (clouds 1, 2), then replay the
    // same clouds after the maps publish at t=150.
    auto r0 = makeRequest(0, 0);
    auto r1 = makeRequest(1, 0);
    auto r2 = makeRequest(2, 200);
    auto r3 = makeRequest(3, 200);
    r0.cloudId = r2.cloudId = 1;
    r1.cloudId = r3.cloudId = 2;

    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);
    const auto report = sched.run({r0, r1, r2, r3});
    EXPECT_EQ(report.mapCache.hits, 2u);
    EXPECT_EQ(report.mapCache.misses, 2u);
    EXPECT_EQ(report.mapCache.cyclesSaved, 90u);
    // The hit batch dispatches at 200, reads both maps back by 260
    // and has no residual backend phase: completions at 260.
    ASSERT_EQ(report.completionCycles.size(), 4u);
    EXPECT_EQ(report.completionCycles[2], 260u);
    EXPECT_EQ(report.completionCycles[3], 260u);
}

TEST(FleetScheduler, MapCacheHitNeverSlowerThanMissEvenWithCostlyReads)
{
    // A pathological read cost far above the mapping it replaces must
    // clamp: the cached run can never be slower than the uncached one.
    const PhasedServiceModel model({{100, 50}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = false;
    scfg.mapCache.enabled = true;
    scfg.mapCache.hitReadCycles = 1'000'000;

    auto r0 = makeRequest(0, 0);
    auto r1 = makeRequest(1, 0);
    r0.cloudId = r1.cloudId = 9;
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);
    const auto report = sched.run({r0, r1});
    ASSERT_EQ(report.completionCycles.size(), 2u);
    // The "hit" costs exactly the full map phase (clamped): the
    // schedule matches the uncached one, and no savings are claimed.
    EXPECT_EQ(report.completionCycles[1], 250u);
    EXPECT_EQ(report.mapCache.hits, 1u);
    EXPECT_EQ(report.mapCache.cyclesSaved, 0u);
}

TEST(FleetScheduler, MapCacheKeepsHitsAndMissesInSeparateBatches)
{
    // r0 publishes cloud 1; r1 (cloud 1, a hit) and r2 (cloud 2, a
    // miss) are both queued when the front frees — compatible by
    // network and size, but the cache rule must keep them apart.
    const PhasedServiceModel model({{100, 50}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = true;
    scfg.batcher.maxBatchSize = 8;
    scfg.mapCache.enabled = true;
    scfg.mapCache.hitReadCycles = 10;

    auto r0 = makeRequest(0, 0);
    auto r1 = makeRequest(1, 10);
    auto r2 = makeRequest(2, 10);
    r0.cloudId = r1.cloudId = 1;
    r2.cloudId = 2;

    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);
    const auto report = sched.run({r0, r1, r2});
    EXPECT_EQ(report.completed, 3u);
    EXPECT_EQ(report.batchSize.max(), 1.0);
    EXPECT_EQ(report.mapCache.hits, 1u);
    EXPECT_EQ(report.mapCache.misses, 2u);

    // Control: with the cache off the pair {r1, r2} merges into one
    // dispatch — the split above really is the cache rule.
    SchedulerConfig off = scfg;
    off.mapCache.enabled = false;
    FleetScheduler offSched({pointAccConfig()}, model, {1.0}, off);
    const auto offReport = offSched.run({r0, r1, r2});
    EXPECT_EQ(offReport.batchSize.max(), 2.0);
}

TEST(FleetScheduler, MapCacheIdentitylessRequestsNeverHit)
{
    // cloudId 0 means "no content identity" (hand-built traces):
    // distinct geometries must never alias one cache entry, so such
    // requests count as misses, publish nothing, and the schedule
    // matches the cache-off one exactly.
    const PhasedServiceModel model({{100, 50}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = false;
    scfg.mapCache.enabled = true;
    scfg.mapCache.hitReadCycles = 10;

    const auto r0 = makeRequest(0, 0);
    const auto r1 = makeRequest(1, 0); // cloudId stays 0 on both
    FleetScheduler sched({pointAccConfig()}, model, {1.0}, scfg);
    const auto report = sched.run({r0, r1});
    ASSERT_EQ(report.completionCycles.size(), 2u);
    EXPECT_EQ(report.completionCycles[0], 150u);
    EXPECT_EQ(report.completionCycles[1], 250u); // full map, no hit
    EXPECT_EQ(report.mapCache.hits, 0u);
    EXPECT_EQ(report.mapCache.misses, 2u);
    EXPECT_EQ(report.mapCache.insertions, 0u);
}

TEST(FleetScheduler, MapCacheMonolithicPublishesAtRunCompletion)
{
    // A monolithic run is one opaque interval: there is no observable
    // mapping-completion moment inside it, so its maps publish only
    // when the run finishes. A same-frame request dispatched to a
    // second instance mid-run must therefore miss; one arriving after
    // completion hits.
    const PhasedServiceModel model({{100, 50}});
    SchedulerConfig scfg;
    scfg.batcher.enabled = false;
    scfg.occupancy = OccupancyModel::Monolithic;
    scfg.mapCache.enabled = true;
    scfg.mapCache.hitReadCycles = 10;

    auto r0 = makeRequest(0, 0);
    auto r1 = makeRequest(1, 1);   // mid-run on the second instance
    auto r2 = makeRequest(2, 200); // after r0's run (0..150) finished
    r0.cloudId = r1.cloudId = r2.cloudId = 1;

    FleetScheduler sched({pointAccConfig(), pointAccConfig()}, model,
                         {1.0}, scfg);
    const auto report = sched.run({r0, r1, r2});
    EXPECT_EQ(report.mapCache.misses, 2u); // r0, and r1 mid-run
    EXPECT_EQ(report.mapCache.hits, 1u);   // r2, after publication
}

// ---------------------------------------------------------------- //
//                        Capacity planner                           //
// ---------------------------------------------------------------- //

/** Tiny workload for planner tests whose probes never read the trace
 *  (TablePlanner below) or only need a handful of requests. */
WorkloadSpec
plannerSpec()
{
    WorkloadSpec spec;
    spec.seed = 5;
    spec.requestsPerMCycle = 20.0;
    spec.horizonCycles = 500'000;
    spec.mix = {{0, 0, 1.0, 0}};
    return spec;
}

/**
 * Planner with a scripted fleet axis: probe(n) passes the SLO (p99
 * 500 against a 1000-cycle bound) iff `pass[n]` — the seam that lets
 * the search logic, including the non-monotone fallback, be tested
 * against exact pass/fail shapes no real workload reproduces on
 * demand. Also logs every probed size, duplicates included, to prove
 * the memoization claim (probesSpent counts simulations, and repeat
 * evaluations never re-simulate).
 */
class TablePlanner : public CapacityPlanner
{
  public:
    TablePlanner(const ServiceModel &model, std::vector<bool> pass_by_fleet)
        : CapacityPlanner(pointAccConfig(), model, {1.0, 2.0},
                          PlannerConfig{4}),
          pass(std::move(pass_by_fleet))
    {
    }

    ServingReport
    probe(std::size_t fleet_size, const SchedulerConfig &,
          const std::vector<Request> &) const override
    {
        probedSizes.push_back(fleet_size);
        const bool ok = fleet_size < pass.size() && pass[fleet_size];
        ServingReport r;
        r.horizonCycles = 1'000'000;
        r.completed = 1;
        r.latencyCycles.record(ok ? 500.0 : 5000.0);
        return r;
    }

    std::vector<bool> pass; ///< indexed by fleet size
    mutable std::vector<std::size_t> probedSizes;
};

SloSpec
p99Slo(std::uint64_t max_cycles)
{
    SloSpec slo;
    slo.maxP99Cycles = max_cycles;
    return slo;
}

PlanSearchSpace
fleetOnlySpace(std::size_t max_fleet)
{
    PlanSearchSpace space;
    space.minFleetSize = 1;
    space.maxFleetSize = max_fleet;
    return space;
}

TEST(CapacityPlanner, GallopAndBisectFindTheCheapestMonotoneFleet)
{
    const FixedServiceModel model(1000);
    // Fleet sizes 1..8; 5 is the smallest passing size.
    std::vector<bool> pass(9, true);
    for (std::size_t n = 1; n <= 4; ++n)
        pass[n] = false;
    const TablePlanner planner(model, pass);

    const auto report =
        planner.plan(plannerSpec(), p99Slo(1000), fleetOnlySpace(8));
    ASSERT_TRUE(report.feasible);
    EXPECT_EQ(report.chosen.fleetSize, 5u);
    EXPECT_TRUE(report.chosen.meetsSlo);
    EXPECT_TRUE(report.monotoneFleetAxis);
    // Gallop 1,2,4,8 + bisect 6,5 + one spot probe (3): strictly
    // fewer than the 8-point axis, and every probe simulated once.
    EXPECT_LT(report.probesSpent, report.exhaustiveProbes);
    EXPECT_EQ(report.probesSpent, planner.probedSizes.size());
    for (const auto &p : report.probes)
        EXPECT_FALSE(p.fleetSize < report.chosen.fleetSize && p.meetsSlo);
}

TEST(CapacityPlanner, NonMonotoneFleetAxisFallsBackToLinearScan)
{
    const FixedServiceModel model(1000);
    // Pass at 3, fail at 4 and 5, pass from 6 up: bisection alone
    // would land on 6; the spot verification must catch 3.
    std::vector<bool> pass(9, false);
    pass[3] = true;
    for (std::size_t n = 6; n <= 8; ++n)
        pass[n] = true;
    const TablePlanner planner(model, pass);

    const auto report =
        planner.plan(plannerSpec(), p99Slo(1000), fleetOnlySpace(8));
    ASSERT_TRUE(report.feasible);
    EXPECT_EQ(report.chosen.fleetSize, 3u);
    EXPECT_FALSE(report.monotoneFleetAxis);
    EXPECT_LE(report.probesSpent, report.exhaustiveProbes);
    for (const auto &p : report.probes)
        EXPECT_FALSE(p.fleetSize < report.chosen.fleetSize && p.meetsSlo);

    // The exhaustive oracle agrees on the pick and detects the same
    // violation from the full grid.
    const auto grid = planner.planExhaustive(plannerSpec(), p99Slo(1000),
                                             fleetOnlySpace(8));
    EXPECT_EQ(grid.chosen.fleetSize, 3u);
    EXPECT_FALSE(grid.monotoneFleetAxis);
    EXPECT_EQ(grid.probesSpent, grid.exhaustiveProbes);
}

TEST(CapacityPlanner, InfeasibleSpaceIsReportedNotInvented)
{
    const FixedServiceModel model(1000);
    const TablePlanner planner(model, std::vector<bool>(9, false));
    const auto report =
        planner.plan(plannerSpec(), p99Slo(1000), fleetOnlySpace(8));
    EXPECT_FALSE(report.feasible);
    EXPECT_EQ(report.chosen.fleetSize, 0u);
    EXPECT_EQ(report.p99MarginCycles, 0.0);
    EXPECT_TRUE(report.monotoneFleetAxis);
    // Gallop (1, 2, 4, 8) plus the infeasibility spot check over the
    // sizes it skipped (3, 5, 6, 7 at this planner's spot budget).
    EXPECT_EQ(report.probesSpent, 8u);
    EXPECT_LE(report.probesSpent, report.exhaustiveProbes);
}

TEST(CapacityPlanner, PassOnlyAtASizeTheGallopSkippedIsStillFound)
{
    const FixedServiceModel model(1000);
    // The SLO passes only at fleet 3 — a size galloping (1, 2, 4, 8)
    // never touches. The infeasibility conclusion must be verified
    // like a candidate: the spot check finds 3, flags the axis
    // non-monotone and the linear fallback returns the true optimum
    // instead of inventing "infeasible".
    std::vector<bool> pass(9, false);
    pass[3] = true;
    const TablePlanner planner(model, pass);

    const auto report =
        planner.plan(plannerSpec(), p99Slo(1000), fleetOnlySpace(8));
    ASSERT_TRUE(report.feasible);
    EXPECT_EQ(report.chosen.fleetSize, 3u);
    EXPECT_FALSE(report.monotoneFleetAxis);
    EXPECT_LE(report.probesSpent, report.exhaustiveProbes);

    const auto grid = planner.planExhaustive(plannerSpec(), p99Slo(1000),
                                             fleetOnlySpace(8));
    EXPECT_EQ(grid.chosen.fleetSize, report.chosen.fleetSize);
    EXPECT_FALSE(grid.monotoneFleetAxis);
}

TEST(CapacityPlanner, CategoricalAxesTieBreakToEarlierCombos)
{
    const FixedServiceModel model(1000);
    // Every size from 2 passes for every combo: the fleet tie must
    // resolve to the first combo in axis order (FIFO before EDF,
    // cache off before on).
    std::vector<bool> pass(5, true);
    pass[1] = false;
    const TablePlanner planner(model, pass);

    PlanSearchSpace space = fleetOnlySpace(4);
    space.policies = {QueuePolicy::Fifo, QueuePolicy::Edf};
    space.mapCacheOptions = {false, true};
    const auto report =
        planner.plan(plannerSpec(), p99Slo(1000), space);
    ASSERT_TRUE(report.feasible);
    EXPECT_EQ(report.chosen.fleetSize, 2u);
    EXPECT_EQ(report.chosen.policy, QueuePolicy::Fifo);
    EXPECT_FALSE(report.chosen.mapCacheOn);

    const auto grid = planner.planExhaustive(plannerSpec(),
                                             p99Slo(1000), space);
    EXPECT_EQ(grid.chosen.fleetSize, report.chosen.fleetSize);
    EXPECT_EQ(grid.chosen.policy, report.chosen.policy);
    EXPECT_EQ(grid.chosen.mapCacheOn, report.chosen.mapCacheOn);
}

TEST(CapacityPlanner, RespectsAFleetRangeFloorAboveOne)
{
    const FixedServiceModel model(1000);
    // Range [3, 20], smallest passing size 8: the gallop must start
    // at the floor (3, 6, 12, 20...), never probe below it, and the
    // bisection must still land exactly.
    std::vector<bool> pass(21, true);
    for (std::size_t n = 0; n <= 7; ++n)
        pass[n] = false;
    const TablePlanner planner(model, pass);

    PlanSearchSpace space;
    space.minFleetSize = 3;
    space.maxFleetSize = 20;
    const auto report =
        planner.plan(plannerSpec(), p99Slo(1000), space);
    ASSERT_TRUE(report.feasible);
    EXPECT_EQ(report.chosen.fleetSize, 8u);
    EXPECT_TRUE(report.monotoneFleetAxis);
    for (const auto &p : report.probes) {
        EXPECT_GE(p.fleetSize, 3u);
        EXPECT_LE(p.fleetSize, 20u);
    }
    EXPECT_LT(report.probesSpent, report.exhaustiveProbes);
}

TEST(CapacityPlanner, RealProbeMeetsItsOwnReSimulation)
{
    // End to end on the real probe path: plan over a fixed-cost
    // model, then re-run the chosen configuration through a fresh
    // FleetScheduler and check the planner's recorded numbers.
    const FixedServiceModel model(40'000, 5'000);
    CapacityPlanner planner(pointAccConfig(), model, {1.0, 2.0});

    WorkloadSpec spec;
    spec.seed = 17;
    spec.requestsPerMCycle = 40.0;
    spec.horizonCycles = 2'000'000;
    spec.mix = {{0, 0, 2.0, 0}, {1, 1, 1.0, 0}};

    PlanSearchSpace space = fleetOnlySpace(6);
    const SloSpec slo = p99Slo(300'000);
    const auto report = planner.plan(spec, slo, space);
    ASSERT_TRUE(report.feasible);

    const auto rerun =
        planner.probe(report.chosen.fleetSize,
                      schedulerConfigFor(space, report.chosen),
                      WorkloadGenerator(spec).generate());
    EXPECT_TRUE(meetsSlo(rerun, slo));
    EXPECT_EQ(rerun.p99Cycles(), report.chosen.p99Cycles);
    EXPECT_EQ(rerun.throughputRps(), report.chosen.throughputRps);
}

// ---------------------------------------------------------------- //
//                 Simulator-backed service model                    //
// ---------------------------------------------------------------- //

TEST(SimServiceModel, ProfilesAndBatchesAgainstRealSimulator)
{
    ServingCatalog catalog;
    catalog.networks = {pointNet()};
    catalog.bucketScales = {0.05};
    const SimServiceModel model(catalog);

    const auto cfg = pointAccConfig();
    const auto p = model.profile(cfg, 0, 0);
    EXPECT_GT(p.totalCycles, 0u);
    EXPECT_LE(p.weightLoadCycles, p.totalCycles);

    // Memoized: a second lookup returns the identical profile.
    const auto p2 = model.profile(cfg, 0, 0);
    EXPECT_EQ(p.totalCycles, p2.totalCycles);

    Batch batch;
    for (std::uint64_t i = 0; i < 3; ++i)
        batch.requests.push_back(makeRequest(i, 0));
    const auto cycles = model.batchServiceCycles(cfg, batch);
    EXPECT_GE(cycles, p.totalCycles);
    EXPECT_LE(cycles, 3 * p.totalCycles);
}

TEST(SimServiceModel, EndToEndServingRunIsConsistent)
{
    ServingCatalog catalog;
    catalog.networks = {pointNet()};
    catalog.bucketScales = {0.05};
    const SimServiceModel model(catalog);

    WorkloadSpec spec;
    spec.seed = 3;
    spec.requestsPerMCycle = 5.0;
    spec.horizonCycles = 5'000'000;
    spec.arrivals = ArrivalProcess::Bursty;
    spec.mix = {{0, 0, 1.0, 0}};

    SchedulerConfig scfg;
    scfg.batcher.enabled = true;
    FleetScheduler sched({pointAccConfig(), pointAccEdgeConfig()}, model,
                         catalog.bucketScales, scfg);
    const auto report = sched.run(WorkloadGenerator(spec).generate());

    EXPECT_GT(report.completed, 0u);
    EXPECT_EQ(report.generated, report.admitted + report.dropped);
    EXPECT_EQ(report.admitted, report.completed + report.leftoverQueued);
    for (const auto &acc : report.accelerators)
        EXPECT_LE(acc.utilization(report.horizonCycles), 1.0);
    EXPECT_GT(report.throughputRps(), 0.0);
}

// ---------------------------------------------------------------- //
//                  Traffic programs & autoscaler                    //
// ---------------------------------------------------------------- //

TEST(Workload, ValidationRejectsBadSpecs)
{
    // The seed accepted these silently (negative rates generated an
    // empty or nonsense trace); both entry points now refuse at
    // construction with std::invalid_argument.
    EXPECT_NO_THROW(WorkloadGenerator{basicSpec()});

    auto bad = basicSpec();
    bad.mix.clear();
    EXPECT_THROW(WorkloadGenerator{bad}, std::invalid_argument);

    bad = basicSpec();
    bad.requestsPerMCycle = -3.0;
    EXPECT_THROW(WorkloadGenerator{bad}, std::invalid_argument);

    bad = basicSpec();
    bad.requestsPerMCycle = 0.0;
    EXPECT_THROW(WorkloadGenerator{bad}, std::invalid_argument);

    bad = basicSpec(ArrivalProcess::Bursty);
    bad.meanBurstSize = 0;
    EXPECT_THROW(WorkloadGenerator{bad}, std::invalid_argument);

    bad = basicSpec();
    bad.mix[0].mapReuseProb = 1.5;
    EXPECT_THROW(WorkloadGenerator{bad}, std::invalid_argument);

    bad = basicSpec();
    bad.mix[0].weight = -1.0;
    EXPECT_THROW(WorkloadGenerator{bad}, std::invalid_argument);

    // The streaming entry point validates too, including the
    // degenerate all-zero-weight mix (an infinite-loop class pick in
    // the seed).
    bad = basicSpec();
    for (auto &cls : bad.mix)
        cls.weight = 0.0;
    EXPECT_THROW(WorkloadStream{bad}, std::invalid_argument);
}

TEST(Traffic, ValidationRejectsBadPrograms)
{
    TrafficProgram program;
    program.base = basicSpec();
    EXPECT_NO_THROW(validateTrafficProgram(program));

    program.phases = {{1'000, 60.0}, {1'000, 80.0}}; // equal starts
    EXPECT_THROW(validateTrafficProgram(program), std::invalid_argument);

    program.phases = {{5'000, 60.0}, {1'000, 80.0}}; // decreasing
    EXPECT_THROW(validateTrafficProgram(program), std::invalid_argument);

    program.phases = {{1'000, 0.0}}; // rate must be positive
    EXPECT_THROW(validateTrafficProgram(program), std::invalid_argument);

    program.phases = {{1'000, -5.0}};
    EXPECT_THROW(validateTrafficProgram(program), std::invalid_argument);

    program.phases.clear();
    program.base.requestsPerMCycle = -1.0; // bad base propagates
    EXPECT_THROW(validateTrafficProgram(program), std::invalid_argument);
    EXPECT_THROW(TrafficStream{program}, std::invalid_argument);
}

TEST(Traffic, PresetShapesAndPeakRates)
{
    const auto base = basicSpec();

    const auto flash = flashCrowdProgram(base, 6.0, 0.3, 0.2);
    EXPECT_NO_THROW(validateTrafficProgram(flash));
    EXPECT_DOUBLE_EQ(flash.peakRequestsPerMCycle(),
                     6.0 * base.requestsPerMCycle);
    // Spike up at ~30% of the horizon, back to base at ~50%.
    ASSERT_EQ(flash.phases.size(), 2u);
    EXPECT_NEAR(static_cast<double>(flash.phases[0].startCycle),
                0.3 * static_cast<double>(base.horizonCycles), 1.0);
    EXPECT_DOUBLE_EQ(flash.phases[0].requestsPerMCycle,
                     6.0 * base.requestsPerMCycle);
    EXPECT_DOUBLE_EQ(flash.phases[1].requestsPerMCycle,
                     base.requestsPerMCycle);
    EXPECT_THROW(flashCrowdProgram(base, 0.0, 0.3, 0.2),
                 std::invalid_argument);
    EXPECT_THROW(flashCrowdProgram(base, 2.0, 1.5, 0.2),
                 std::invalid_argument);
    EXPECT_THROW(flashCrowdProgram(base, 2.0, 0.9, 0.5),
                 std::invalid_argument);

    // Eight steps per period sample the raised cosine at mid-period
    // exactly, so the peak rate is exactly peak_factor * base.
    const auto diurnal = diurnalProgram(base, 2'000'000, 3.0, 8);
    EXPECT_NO_THROW(validateTrafficProgram(diurnal));
    EXPECT_DOUBLE_EQ(diurnal.peakRequestsPerMCycle(),
                     3.0 * base.requestsPerMCycle);
    EXPECT_THROW(diurnalProgram(base, 0, 3.0, 8), std::invalid_argument);
    EXPECT_THROW(diurnalProgram(base, 2'000'000, 0.5, 8),
                 std::invalid_argument);
    EXPECT_THROW(diurnalProgram(base, 2'000'000, 3.0, 1),
                 std::invalid_argument);
}

TEST(Autoscaler, ConfigValidationAndDefaults)
{
    AutoscalerConfig cfg;
    cfg.enabled = true;
    const auto resolved = resolveAutoscalerConfig(cfg, 4);
    EXPECT_EQ(resolved.maxInstances, 4u);     // 0 = whole fleet
    EXPECT_EQ(resolved.initialInstances, 1u); // 0 = the floor

    auto bad = cfg;
    bad.minInstances = 0;
    EXPECT_THROW(resolveAutoscalerConfig(bad, 4), std::invalid_argument);

    bad = cfg;
    bad.maxInstances = 5; // larger than the fleet
    EXPECT_THROW(resolveAutoscalerConfig(bad, 4), std::invalid_argument);

    bad = cfg;
    bad.minInstances = 3;
    bad.maxInstances = 2;
    EXPECT_THROW(resolveAutoscalerConfig(bad, 4), std::invalid_argument);

    bad = cfg;
    bad.maxInstances = 2;
    bad.initialInstances = 4; // outside [min, max]
    EXPECT_THROW(resolveAutoscalerConfig(bad, 4), std::invalid_argument);

    bad = cfg;
    bad.evalIntervalCycles = 0;
    EXPECT_THROW(resolveAutoscalerConfig(bad, 4), std::invalid_argument);

    bad = cfg;
    bad.queueLowDepth = bad.queueHighDepth;
    EXPECT_THROW(resolveAutoscalerConfig(bad, 4), std::invalid_argument);
}

TEST(Autoscaler, PolicyDecidesFromWindowedSignals)
{
    AutoscalerConfig cfg;
    cfg.enabled = true;
    cfg.minInstances = 1;
    cfg.maxInstances = 4;
    cfg.queueHighDepth = 8;
    cfg.queueLowDepth = 2;
    cfg.p99HighCycles = 1'000'000;
    cfg.cooldownCycles = 100'000;
    AutoscalerPolicy policy(resolveAutoscalerConfig(cfg, 4));

    // Queue pressure scales up.
    EXPECT_EQ(policy.decide(0, 8, 0, 2), 1);
    // Cooldown holds even under heavy pressure...
    EXPECT_EQ(policy.decide(50'000, 20, 0, 3), 0);
    // ...and releases once it elapses.
    EXPECT_EQ(policy.decide(100'000, 20, 0, 3), 1);
    // Tail pressure alone (empty queue) also scales up.
    EXPECT_EQ(policy.decide(300'000, 0, 2'000'000, 3), 1);
    // At the ceiling, pressure holds rather than overshooting.
    EXPECT_EQ(policy.decide(500'000, 20, 0, 4), 0);
    // Quiet and drained scales down...
    EXPECT_EQ(policy.decide(700'000, 1, 0, 2), -1);
    // ...but never through the floor.
    EXPECT_EQ(policy.decide(900'000, 0, 0, 1), 0);
}

TEST(Autoscaler, SpinUpDelayAndGracefulDrainOracle)
{
    // Hand-checkable closed loop: four identical 100'000-cycle
    // requests arrive at cycle 0 on a two-instance fleet with one
    // instance powered.
    //
    //   t=0       instance 0 takes r0 (queued: r1 r2 r3)
    //   t=10'000  eval: depth 3 >= 2 -> scale up; 5'000-cycle spin-up
    //   t=15'000  instance 1 powers on and takes r1
    //   t=100'000 instance 0 finishes r0, takes r2
    //   t=115'000 instance 1 finishes r1, takes r3
    //   t=120'000 eval: queue empty -> scale down; instance 1 is busy
    //             so it drains: finishes r3, then powers off
    //   t=200'000 instance 0 finishes r2
    //   t=215'000 instance 1 finishes r3 while draining
    const FixedServiceModel model(100'000);
    SchedulerConfig scfg;
    scfg.occupancy = OccupancyModel::Monolithic;
    scfg.batcher.enabled = false; // singleton dispatches
    scfg.autoscaler.enabled = true;
    scfg.autoscaler.minInstances = 1;
    scfg.autoscaler.initialInstances = 1;
    scfg.autoscaler.evalIntervalCycles = 10'000;
    scfg.autoscaler.queueHighDepth = 2;
    scfg.autoscaler.queueLowDepth = 0;
    scfg.autoscaler.spinUpCycles = 5'000;
    FleetScheduler sched({pointAccConfig(), pointAccConfig()}, model,
                         {1.0}, scfg);

    std::vector<Request> trace;
    for (std::uint64_t i = 0; i < 4; ++i)
        trace.push_back(makeRequest(i, 0));
    const auto report = sched.run(trace);

    EXPECT_EQ(report.completed, 4u);
    EXPECT_EQ(report.dropped, 0u);
    const std::vector<std::uint64_t> expected = {100'000, 115'000,
                                                 200'000, 215'000};
    EXPECT_EQ(report.completionCycles, expected);
    EXPECT_EQ(report.horizonCycles, 215'000u);

    const auto &as = report.autoscaler;
    ASSERT_TRUE(as.enabled);
    EXPECT_EQ(as.scaleUps, 1u);
    EXPECT_EQ(as.scaleDowns, 1u);
    EXPECT_EQ(as.drainedBatches, 1u); // r3 finished while draining
    EXPECT_EQ(as.peakProvisioned, 2u);
    EXPECT_EQ(as.finalProvisioned, 1u);
    // Power integral: one instance for [0, 10'000), two from the
    // scale-up decision (spin-up burns power) until the drain
    // completes at 215'000.
    EXPECT_EQ(as.instanceCycles, 10'000u + 2u * 205'000u);
    // The saving the traffic gate reports: static 2-instance cost
    // would be 430'000 instance-cycles.
    EXPECT_LT(as.instanceCycles, 2 * report.horizonCycles);
}

TEST(Autoscaler, WaitForKBatcherSurvivesScaling)
{
    // Structural companion to the oracle above: slow arrivals under a
    // wait-for-K batcher while the autoscaler retires idle capacity.
    // Holds, timers, drains and scaling events interleave; nothing may
    // leak or double-complete.
    const FixedServiceModel model(20'000, 2'000);
    SchedulerConfig scfg;
    scfg.queueDepth = 256;
    scfg.batcher.enabled = true;
    scfg.batcher.targetK = 4;
    scfg.batcher.maxBatchSize = 8;
    scfg.batcher.maxWaitCycles = 30'000;
    scfg.autoscaler.enabled = true;
    scfg.autoscaler.minInstances = 1;
    scfg.autoscaler.initialInstances = 3;
    scfg.autoscaler.evalIntervalCycles = 40'000;
    scfg.autoscaler.queueHighDepth = 50;
    scfg.autoscaler.queueLowDepth = 6;
    scfg.autoscaler.spinUpCycles = 10'000;
    FleetScheduler sched(
        {pointAccConfig(), pointAccConfig(), pointAccConfig()}, model,
        {1.0}, scfg);

    const auto report = sched.run(denseTrace(40, 20'000));
    EXPECT_EQ(report.generated, 40u);
    EXPECT_EQ(report.dropped, 0u);
    EXPECT_EQ(report.completed, 40u);
    EXPECT_EQ(report.leftoverQueued, 0u);
    EXPECT_GT(report.batchHolds, 0u); // wait-for-K actually held

    const auto &as = report.autoscaler;
    ASSERT_TRUE(as.enabled);
    EXPECT_GE(as.scaleDowns, 1u); // idle capacity was retired
    EXPECT_GE(as.finalProvisioned, 1u);
    EXPECT_EQ(as.evals, as.timeline.samples.size());
    EXPECT_LE(as.instanceCycles, 3 * report.horizonCycles);
}

// ---------------------------------------------------------------- //
//                         Report output                             //
// ---------------------------------------------------------------- //

TEST(SimServiceModel, ConcurrentProfilingIsRaceFreeAndMemoizedOnce)
{
    // ThreadSanitizer repro for the pre-executor data race: profile()
    // mutates the memo caches and the profiled-runs meter, and the
    // moment two probes share one model those writes collide. Hammer
    // the same triples from several threads; under TSan the unfixed
    // model reports the race, and with any synchronization scheme the
    // meter must still count each distinct triple exactly once and
    // every thread must read identical profiles.
    ServingCatalog catalog;
    catalog.networks = {pointNet(), pointNetPPClass()};
    catalog.bucketScales = {0.02, 0.04};
    SimServiceModel model(catalog);
    const auto cfg = pointAccConfig();

    constexpr std::size_t kThreads = 4;
    constexpr int kRounds = 16;
    std::vector<std::vector<ServiceProfile>> seen(kThreads);
    {
        std::vector<std::thread> threads;
        for (std::size_t t = 0; t < kThreads; ++t)
            threads.emplace_back([&model, &cfg, &seen, t] {
                for (int round = 0; round < kRounds; ++round)
                    for (std::uint32_t n = 0; n < 2; ++n)
                        for (std::uint32_t b = 0; b < 2; ++b)
                            seen[t].push_back(model.profile(cfg, n, b));
            });
        for (auto &th : threads)
            th.join();
    }

    // One real simulator run per distinct (class, network, bucket)
    // triple, however many threads raced to be first.
    EXPECT_EQ(model.profiledRuns(), 4u);

    // Every thread observed the same memoized values.
    for (std::size_t t = 0; t < kThreads; ++t) {
        ASSERT_EQ(seen[t].size(), seen[0].size());
        for (std::size_t i = 0; i < seen[t].size(); ++i) {
            EXPECT_EQ(seen[t][i].totalCycles, seen[0][i].totalCycles);
            EXPECT_EQ(seen[t][i].mappingCycles,
                      seen[0][i].mappingCycles);
            EXPECT_EQ(seen[t][i].weightLoadCycles,
                      seen[0][i].weightLoadCycles);
        }
    }
}

TEST(ServingStats, JsonAndTextOutputs)
{
    ServingReport report;
    report.generated = 10;
    report.admitted = 9;
    report.dropped = 1;
    report.completed = 9;
    report.horizonCycles = 1'000'000;
    report.latencyCycles.record(1000.0);
    report.latencyCycles.record(2000.0);
    AcceleratorUsage usage;
    usage.name = "PointAcc#0";
    usage.busyCycles = 500'000;
    report.accelerators.push_back(usage);

    const auto text = servingSummaryText(report);
    EXPECT_NE(text.find("9 completed"), std::string::npos);

    std::ostringstream os;
    writeServingJson(os, report);
    const auto json = os.str();
    EXPECT_NE(json.find("\"generated\":10"), std::string::npos);
    EXPECT_NE(json.find("\"utilization\":0.5"), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(RunResultJson, DumpContainsTotalsAndLayers)
{
    RunResult result;
    result.network = "PointNet";
    result.accelerator = "PointAcc";
    result.totalCycles = 1234;
    LayerStats ls;
    ls.name = "conv\"1"; // exercise string escaping
    ls.totalCycles = 1234;
    result.layers.push_back(ls);

    std::ostringstream os;
    writeJson(os, result);
    const auto json = os.str();
    EXPECT_NE(json.find("\"network\":\"PointNet\""), std::string::npos);
    EXPECT_NE(json.find("\"total_cycles\":1234"), std::string::npos);
    EXPECT_NE(json.find("conv\\\"1"), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

} // namespace
} // namespace pointacc
