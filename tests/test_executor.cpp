// Unit suite for the work-stealing probe executor
// (src/runtime/executor.hpp). Covers the four contract points every
// consumer leans on: deterministic submission-order merge, work
// stealing under unbalanced schedules, exception propagation with
// pool survival, and inline serial mode.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/executor.hpp"

namespace {

using pointacc::ProbeExecutor;

TEST(ProbeExecutor, MapReturnsResultsInSubmissionOrder)
{
    ProbeExecutor pool(3);
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 64; ++i) {
        tasks.push_back([i] {
            // Reverse-staggered sleeps so completion order is roughly
            // the opposite of submission order.
            std::this_thread::sleep_for(
                std::chrono::microseconds((64 - i) * 20));
            return i * i;
        });
    }
    const std::vector<int> results = pool.map(std::move(tasks));
    ASSERT_EQ(results.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
    EXPECT_EQ(pool.executed(), 64u);
}

TEST(ProbeExecutor, MapIsDeterministicAcrossRepeatsAndThreadCounts)
{
    // The merge contract behind every byte-identical gate: the same
    // task list produces the same result vector for any pool size.
    auto runWith = [](std::size_t threads) {
        ProbeExecutor pool(threads);
        std::vector<std::function<int()>> tasks;
        for (int i = 0; i < 40; ++i)
            tasks.push_back([i] { return 1000 + i * 7; });
        return pool.map(std::move(tasks));
    };
    const std::vector<int> serial = runWith(0);
    for (std::size_t threads : {1u, 2u, 4u})
        EXPECT_EQ(runWith(threads), serial) << "threads=" << threads;
}

TEST(ProbeExecutor, IdleWorkerStealsFromBusyWorkersBacklog)
{
    // Round-robin homes with 2 workers: tasks 0,2 land on worker 0 and
    // tasks 1,3 on worker 1. Task 0 blocks worker 0 until `release` is
    // set — and only task 2 (queued behind it on worker 0) sets it. The
    // schedule can therefore only terminate if another thread steals
    // task 2 from worker 0's backlog.
    ProbeExecutor pool(2);
    std::atomic<bool> release{false};
    auto blocker = pool.submit([&release] {
        while (!release.load())
            std::this_thread::yield();
        return 0;
    });
    auto filler1 = pool.submit([] { return 1; });
    auto unblocker = pool.submit([&release] {
        release.store(true);
        return 2;
    });
    auto filler2 = pool.submit([] { return 3; });
    EXPECT_EQ(blocker.get(), 0);
    EXPECT_EQ(filler1.get(), 1);
    EXPECT_EQ(unblocker.get(), 2);
    EXPECT_EQ(filler2.get(), 3);
    EXPECT_GE(pool.stolen(), 1u);
}

TEST(ProbeExecutor, TaskExceptionPropagatesAndPoolSurvives)
{
    ProbeExecutor pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("probe exploded"); });
    auto good = pool.submit([] { return 17; });
    EXPECT_THROW(
        {
            try {
                bad.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "probe exploded");
                throw;
            }
        },
        std::runtime_error);
    // The pool is still functional after a task threw.
    EXPECT_EQ(good.get(), 17);
    EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
}

TEST(ProbeExecutor, MapRethrowsFirstFailureBySubmissionOrder)
{
    ProbeExecutor pool(2);
    std::vector<std::function<int()>> tasks;
    tasks.push_back([] { return 1; });
    tasks.push_back([]() -> int { throw std::invalid_argument("first"); });
    tasks.push_back([]() -> int { throw std::runtime_error("second"); });
    EXPECT_THROW(pool.map(std::move(tasks)), std::invalid_argument);
}

TEST(ProbeExecutor, InlineModeRunsOnCallerWithNoThreads)
{
    ProbeExecutor pool(0);
    EXPECT_EQ(pool.threadCount(), 0u);
    const std::thread::id caller = std::this_thread::get_id();
    std::thread::id ran{};
    auto fut = pool.submit([&ran] {
        ran = std::this_thread::get_id();
        return 42;
    });
    // Inline mode executes during submit: the result is ready and ran
    // on the calling thread, and nothing counts as stolen.
    EXPECT_EQ(ran, caller);
    EXPECT_EQ(fut.get(), 42);
    EXPECT_EQ(pool.executed(), 1u);
    EXPECT_EQ(pool.stolen(), 0u);
}

TEST(ProbeExecutor, ResolveThreadsMapsKnobToPoolSize)
{
    // 0 = auto (never less than one thread of parallelism), 1 = serial
    // inline mode, N>1 = N workers.
    EXPECT_GE(ProbeExecutor::resolveThreads(0) + 1, 1u);
    EXPECT_EQ(ProbeExecutor::resolveThreads(1), 0u);
    EXPECT_EQ(ProbeExecutor::resolveThreads(4), 4u);
    EXPECT_GE(ProbeExecutor::defaultThreads(), 1u);
}

TEST(ProbeExecutor, DestructorDrainsQueuedTasks)
{
    // Submitted-but-unconsumed tasks still run before the pool dies:
    // dropping a Future must not drop its side effects.
    std::atomic<int> ran{0};
    {
        ProbeExecutor pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), 32);
}

TEST(ProbeExecutor, NestedGetInsideTaskDoesNotDeadlock)
{
    // A task that submits and waits on subtasks exercises the
    // help-while-waiting path even on a single-worker pool.
    ProbeExecutor pool(1);
    auto outer = pool.submit([&pool] {
        auto a = pool.submit([] { return 3; });
        auto b = pool.submit([] { return 4; });
        return a.get() * b.get();
    });
    EXPECT_EQ(outer.get(), 12);
}

TEST(ProbeExecutor, ManySmallTasksAggregateCorrectly)
{
    ProbeExecutor pool(4);
    std::vector<std::function<long()>> tasks;
    for (long i = 1; i <= 500; ++i)
        tasks.push_back([i] { return i; });
    const std::vector<long> results = pool.map(std::move(tasks));
    const long sum = std::accumulate(results.begin(), results.end(), 0L);
    EXPECT_EQ(sum, 500L * 501L / 2L);
    EXPECT_EQ(pool.executed(), 500u);
}

} // namespace
