/**
 * @file
 * Property/fuzz tests for the serving runtime: seeded random workload
 * and scheduler-configuration sweeps asserting invariants that must
 * hold for *every* scenario, not just the hand-picked unit-test ones:
 *
 *  - conservation: every generated request is admitted or dropped,
 *    and every admitted request completes (the simulation drains, so
 *    nothing is in flight or queued at the end);
 *  - per-stage utilization <= 1: neither the mapping front-end, the
 *    matrix/memory back-end, nor the whole-instance busy union can
 *    exceed the simulated span;
 *  - completion timestamps are non-decreasing (the event loop never
 *    travels back in time) and account exactly for every completion;
 *  - determinism: identical seeds produce byte-identical serving
 *    stats JSON, for both the immediate and wait-for-K batchers, with
 *    the kernel-map cache on and off;
 *  - map-cache invariants: hits + misses account exactly for every
 *    completion, evictions never exceed insertions, and enabling the
 *    cache never slows any request down (a hit is clamped to be no
 *    slower than the miss it replaces).
 *
 * The service model is a seeded random phase table, so the fuzz space
 * covers map-bound, backend-bound and degenerate (zero-phase) costs
 * alongside every queue policy, occupancy model, batcher config and
 * map-cache config (including read costs above the map phase, tiny
 * capacities that force evictions, and both eviction policies).
 */

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <vector>

#include "core/rng.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/serving_stats.hpp"
#include "runtime/workload.hpp"
#include "sim/accel_config.hpp"

namespace pointacc {
namespace {

constexpr std::uint32_t kNetworks = 3;
constexpr std::uint32_t kBuckets = 2;

/** Seeded random (map, backend, weight) cost table; accelerator-class
 *  independent so fleets of mixed classes stress only the scheduler. */
class RandomPhasedServiceModel : public ServiceModel
{
  public:
    explicit RandomPhasedServiceModel(std::uint64_t seed)
    {
        Rng rng(seed);
        for (std::uint32_t n = 0; n < kNetworks; ++n) {
            for (std::uint32_t b = 0; b < kBuckets; ++b) {
                ServiceProfile p;
                // ~1/8 of profiles are map-less, ~1/8 backend-less:
                // the pipeline's degenerate phases must not wedge.
                const std::uint64_t shape = rng.range(8);
                p.mappingCycles =
                    shape == 0 ? 0 : 1 + rng.range(50'000);
                const std::uint64_t backend =
                    shape == 1 ? 0 : 1 + rng.range(100'000);
                p.totalCycles = p.mappingCycles + backend;
                if (p.totalCycles == 0)
                    p.totalCycles = 1; // never free
                p.computeCycles = backend;
                p.weightLoadCycles = rng.range(p.totalCycles + 1);
                table[n * kBuckets + b] = p;
            }
        }
    }

    ServiceProfile
    profile(const AcceleratorConfig &, std::uint32_t network_id,
            std::uint32_t bucket) const override
    {
        return table.at(network_id * kBuckets + bucket);
    }

  private:
    std::array<ServiceProfile, kNetworks * kBuckets> table;
};

WorkloadSpec
randomSpec(Rng &rng, std::uint64_t seed)
{
    WorkloadSpec spec;
    spec.seed = seed;
    spec.requestsPerMCycle = rng.uniform(5.0, 80.0);
    spec.horizonCycles = 500'000 + rng.range(3'500'000);
    spec.arrivals = rng.range(2) == 0 ? ArrivalProcess::Poisson
                                      : ArrivalProcess::Bursty;
    spec.meanBurstSize = 2 + static_cast<std::uint32_t>(rng.range(6));
    const std::size_t classes = 1 + rng.range(3);
    for (std::size_t i = 0; i < classes; ++i) {
        RequestClass cls;
        cls.networkId = static_cast<std::uint32_t>(rng.range(kNetworks));
        cls.sizeBucket = static_cast<std::uint32_t>(rng.range(kBuckets));
        cls.weight = rng.uniform(0.5, 4.0);
        cls.deadlineCycles = rng.range(3) == 0 ? 50'000 + rng.range(500'000)
                                               : 0;
        // Half the classes are repeated-frame streams (one stream per
        // class), so the map cache sees real reuse in the fuzz space.
        cls.streamId = static_cast<std::uint32_t>(i);
        cls.mapReuseProb =
            rng.range(2) == 0 ? rng.uniform(0.1, 1.0) : 0.0;
        spec.mix.push_back(cls);
    }
    return spec;
}

SchedulerConfig
randomConfig(Rng &rng)
{
    SchedulerConfig scfg;
    const std::uint64_t pol = rng.range(3);
    scfg.policy = pol == 0   ? QueuePolicy::Fifo
                  : pol == 1 ? QueuePolicy::Sjf
                             : QueuePolicy::Edf;
    scfg.occupancy = rng.range(2) == 0 ? OccupancyModel::Monolithic
                                       : OccupancyModel::Pipelined;
    scfg.queueDepth = 4 + rng.range(125);
    scfg.batcher.enabled = rng.range(4) != 0;
    scfg.batcher.maxBatchSize =
        1 + static_cast<std::uint32_t>(rng.range(8));
    scfg.batcher.maxPointsRatio = rng.uniform(1.0, 4.0);
    scfg.batcher.targetK = 1 + static_cast<std::uint32_t>(rng.range(4));
    scfg.batcher.maxWaitCycles = rng.range(300'000);
    // Map cache on half the scenarios: tiny capacities force
    // evictions, and read costs above most map phases exercise the
    // hit-never-slower clamp.
    scfg.mapCache.enabled = rng.range(2) == 0;
    scfg.mapCache.capacityEntries = 1 + rng.range(64);
    scfg.mapCache.eviction = rng.range(2) == 0 ? MapCacheEviction::Lru
                                               : MapCacheEviction::Lfu;
    scfg.mapCache.hitReadCycles = rng.range(60'000);
    return scfg;
}

std::vector<AcceleratorConfig>
randomFleet(Rng &rng)
{
    std::vector<AcceleratorConfig> fleet;
    const std::size_t size = 1 + rng.range(3);
    for (std::size_t i = 0; i < size; ++i)
        fleet.push_back(rng.range(2) == 0 ? pointAccConfig()
                                          : pointAccEdgeConfig());
    return fleet;
}

void
checkInvariants(const ServingReport &report, std::uint64_t seed)
{
    SCOPED_TRACE("seed " + std::to_string(seed));

    // Conservation: offered = admitted + dropped, and the simulation
    // drains — nothing queued or in flight survives the run.
    EXPECT_EQ(report.generated, report.admitted + report.dropped);
    EXPECT_EQ(report.admitted,
              report.completed + report.leftoverQueued);
    EXPECT_EQ(report.leftoverQueued, 0u);

    // Every completion is accounted once, in event order.
    ASSERT_EQ(report.completionCycles.size(), report.completed);
    EXPECT_EQ(report.latencyCycles.count(), report.completed);
    EXPECT_EQ(report.queueWaitCycles.count(), report.completed);
    for (std::size_t i = 1; i < report.completionCycles.size(); ++i)
        ASSERT_GE(report.completionCycles[i],
                  report.completionCycles[i - 1])
            << "completion order regressed at index " << i;
    if (!report.completionCycles.empty())
        EXPECT_LE(report.completionCycles.back(), report.horizonCycles);

    // Dispatch accounting: batch members sum to completions.
    EXPECT_EQ(static_cast<std::uint64_t>(report.batchSize.sum()),
              report.completed);

    // Utilization <= 1 per pipeline stage and for the busy union.
    std::uint64_t served = 0;
    for (const auto &acc : report.accelerators) {
        EXPECT_LE(acc.busyCycles, report.horizonCycles) << acc.name;
        EXPECT_LE(acc.mapBusyCycles, report.horizonCycles) << acc.name;
        EXPECT_LE(acc.backendBusyCycles, report.horizonCycles)
            << acc.name;
        // The busy union covers each stage individually.
        EXPECT_GE(acc.busyCycles, acc.mapBusyCycles) << acc.name;
        EXPECT_GE(acc.busyCycles, acc.backendBusyCycles) << acc.name;
        served += acc.requests;
    }
    EXPECT_EQ(served, report.completed);
}

TEST(RuntimeProperties, RandomSweepsHoldInvariants)
{
    // >= 100 seeded scenarios across the whole config space.
    for (std::uint64_t seed = 1; seed <= 120; ++seed) {
        Rng rng(seed * 0x9e3779b9ULL);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);
        const auto scfg = randomConfig(rng);
        const auto fleet = randomFleet(rng);

        // Bucket scales only feed the batcher's size-ratio rule here.
        FleetScheduler sched(fleet, model, {1.0, 2.0}, scfg);
        const auto trace = WorkloadGenerator(spec).generate();
        const auto report = sched.run(trace);
        EXPECT_EQ(report.generated, trace.size());
        checkInvariants(report, seed);

        // Map-cache conservation: every completed request was priced
        // against the cache exactly once (when it was enabled), and
        // evictions only ever follow insertions.
        if (scfg.mapCache.enabled) {
            EXPECT_EQ(report.mapCache.hits + report.mapCache.misses,
                      report.completed)
                << "seed " << seed;
            EXPECT_LE(report.mapCache.insertions, report.mapCache.misses)
                << "seed " << seed;
            EXPECT_LE(report.mapCache.evictions, report.mapCache.insertions)
                << "seed " << seed;
        } else {
            EXPECT_EQ(report.mapCache.hits + report.mapCache.misses, 0u)
                << "seed " << seed;
        }
        if (HasFatalFailure())
            return; // one broken seed is enough diagnostics
    }
}

TEST(RuntimeProperties, PipelinedNeverCompletesLessThanMonolithic)
{
    // At equal fleet and workload, pipelining only adds capacity:
    // with an unbounded queue (no drops) the pipelined makespan must
    // not exceed the monolithic one on a FIFO single instance.
    for (std::uint64_t seed = 200; seed < 230; ++seed) {
        Rng rng(seed);
        const RandomPhasedServiceModel model(seed);
        auto spec = randomSpec(rng, seed);

        SchedulerConfig scfg;
        scfg.batcher.enabled = false;
        scfg.queueDepth = 1 << 20;
        scfg.occupancy = OccupancyModel::Pipelined;
        FleetScheduler pipe({pointAccConfig()}, model, {1.0, 2.0}, scfg);
        scfg.occupancy = OccupancyModel::Monolithic;
        FleetScheduler mono({pointAccConfig()}, model, {1.0, 2.0}, scfg);

        const auto trace = WorkloadGenerator(spec).generate();
        const auto pipeReport = pipe.run(trace);
        const auto monoReport = mono.run(trace);
        SCOPED_TRACE("seed " + std::to_string(seed));
        EXPECT_EQ(pipeReport.completed, monoReport.completed);
        EXPECT_LE(pipeReport.horizonCycles, monoReport.horizonCycles);
    }
}

TEST(RuntimeProperties, ServingStatsAreByteIdenticalAcrossRuns)
{
    // Determinism regression: identical workload seeds must give
    // byte-identical serving stats, for the immediate batcher and the
    // wait-for-K batcher alike, with the map cache off and on (the
    // JSON includes the cache counters, so a nondeterministic victim
    // choice or hit classification would show up here).
    for (const bool cacheOn : {false, true}) {
        for (const std::uint32_t targetK : {1u, 4u}) {
            for (const std::uint64_t seed : {7ULL, 21ULL, 1021ULL}) {
                Rng rng(seed);
                const RandomPhasedServiceModel model(seed);
                const auto spec = randomSpec(rng, seed);

                SchedulerConfig scfg;
                scfg.batcher.enabled = true;
                scfg.batcher.targetK = targetK;
                scfg.batcher.maxWaitCycles = targetK > 1 ? 100'000 : 0;
                scfg.occupancy = OccupancyModel::Pipelined;
                scfg.mapCache.enabled = cacheOn;
                scfg.mapCache.capacityEntries = 32; // small: evict often
                scfg.mapCache.hitReadCycles = 5'000;
                scfg.mapCache.eviction = targetK > 1
                                             ? MapCacheEviction::Lfu
                                             : MapCacheEviction::Lru;

                std::string dumps[2];
                for (auto &dump : dumps) {
                    FleetScheduler sched(
                        {pointAccConfig(), pointAccEdgeConfig()}, model,
                        {1.0, 2.0}, scfg);
                    const auto report =
                        sched.run(WorkloadGenerator(spec).generate());
                    std::ostringstream os;
                    writeServingJson(os, report);
                    dump = os.str();
                }
                EXPECT_EQ(dumps[0], dumps[1])
                    << "seed " << seed << " targetK " << targetK
                    << " cache " << cacheOn;
            }
        }
    }
}

TEST(RuntimeProperties, MapCacheNeverSlowsASingleInstance)
{
    // On a FIFO single instance without batching, dispatch order is
    // arrival order in both runs, and a hit's phase profile is clamped
    // to never exceed the miss it replaces — so enabling the cache
    // must leave every completion timestamp no later, request by
    // request, under both occupancy models.
    for (const auto occupancy :
         {OccupancyModel::Pipelined, OccupancyModel::Monolithic}) {
        for (std::uint64_t seed = 300; seed < 330; ++seed) {
            Rng rng(seed);
            const RandomPhasedServiceModel model(seed);
            auto spec = randomSpec(rng, seed);
            for (auto &cls : spec.mix)
                cls.mapReuseProb = 0.8; // reuse-heavy: hits matter

            SchedulerConfig scfg;
            scfg.batcher.enabled = false;
            scfg.queueDepth = 1 << 20; // no drops
            scfg.occupancy = occupancy;
            scfg.mapCache.enabled = false;
            FleetScheduler off({pointAccConfig()}, model, {1.0, 2.0},
                               scfg);
            scfg.mapCache.enabled = true;
            scfg.mapCache.capacityEntries = 256;
            scfg.mapCache.hitReadCycles = rng.range(80'000);
            FleetScheduler on({pointAccConfig()}, model, {1.0, 2.0},
                              scfg);

            const auto trace = WorkloadGenerator(spec).generate();
            const auto offReport = off.run(trace);
            const auto onReport = on.run(trace);
            SCOPED_TRACE("seed " + std::to_string(seed) + " " +
                         toString(occupancy));
            ASSERT_EQ(onReport.completed, offReport.completed);
            ASSERT_EQ(onReport.completionCycles.size(),
                      offReport.completionCycles.size());
            for (std::size_t i = 0; i < onReport.completionCycles.size();
                 ++i)
                ASSERT_LE(onReport.completionCycles[i],
                          offReport.completionCycles[i])
                    << "request index " << i;
            EXPECT_LE(onReport.horizonCycles, offReport.horizonCycles);
        }
    }
}

} // namespace
} // namespace pointacc
