/**
 * @file
 * Property/fuzz tests for the serving runtime: seeded random workload
 * and scheduler-configuration sweeps asserting invariants that must
 * hold for *every* scenario, not just the hand-picked unit-test ones:
 *
 *  - conservation: every generated request is admitted or dropped,
 *    and every admitted request completes (the simulation drains, so
 *    nothing is in flight or queued at the end);
 *  - per-stage utilization <= 1: neither the mapping front-end, the
 *    matrix/memory back-end, nor the whole-instance busy union can
 *    exceed the simulated span;
 *  - completion timestamps are non-decreasing (the event loop never
 *    travels back in time) and account exactly for every completion;
 *  - determinism: identical seeds produce byte-identical serving
 *    stats JSON, for both the immediate and wait-for-K batchers, with
 *    the kernel-map cache on and off;
 *  - map-cache invariants: hits + misses account exactly for every
 *    completion, evictions never exceed insertions, and enabling the
 *    cache never slows any request down (a hit is clamped to be no
 *    slower than the miss it replaces).
 *
 * The service model is a seeded random phase table, so the fuzz space
 * covers map-bound, backend-bound and degenerate (zero-phase) costs
 * alongside every queue policy, occupancy model, batcher config and
 * map-cache config (including read costs above the map phase, tiny
 * capacities that force evictions, and both eviction policies).
 *
 * Since the O(log n) rebuild of the discrete-event core, this suite is
 * also the equivalence harness: the production engine must match the
 * preserved seed engine (runtime/reference) byte for byte —
 * report-for-report over fuzzed scenarios, pop-for-pop between the
 * indexed admission queue and the seed's linear queue (ties included),
 * and draw-for-draw between the streaming workload generator and a
 * replica of the seed's materializing one. The capacity planner's
 * probe path is a further consumer of the production engine and is
 * held to the same bar (probe-vs-reference byte identity), plus four
 * planner-level invariants over ~60 seeded workloads: the chosen
 * config meets the SLO when re-simulated, no cheaper fleet size in
 * the probe log met it, plan output is byte-identical across runs,
 * and probes spent never exceed the exhaustive grid size.
 *
 * Since the wall-clock migration, the production engine prices events
 * in nanoseconds (each instance converts its cycle costs through its
 * freqGHz at dispatch) while the preserved seed engine still prices
 * raw cycles — so the byte-identity gates double as the time-domain
 * differential harness: every fleet the equivalence sweeps build runs
 * at the default 1 GHz, where cycles-to-ns is the identity, and any
 * conversion leak (a rounding, a double round-trip, a missed clamp)
 * shows up as a byte diff. Mixed-frequency fleets (0.5 / 1 / 2 GHz),
 * which have no cycle-domain reference, are pinned by the
 * conservation sweep plus byte-identical repeatability; the
 * heterogeneous composition lattice by its own planner invariants:
 * the chosen composition re-simulates to meet the SLO, no
 * cheaper-cost passing composition exists in the probe log, probes
 * price their compositions exactly as the objective rule says, plans
 * are byte-identical across runs and across threads=4 vs serial, and
 * lattice probe spend never exceeds the exhaustive composition grid.
 *
 * The traffic/autoscaling layer (runtime/traffic, runtime/autoscaler)
 * is held to the same bar: per-segment arrival counts match the
 * analytic MMPP expectation, a phase-free churn-free program is
 * draw-for-draw the stationary stream, schedule files round-trip
 * exactly (and serve byte-identically, with malformed input rejected),
 * and autoscaled runs keep every serving invariant while remaining
 * byte-identical across repeats and across the streaming/materialized
 * entry points.
 *
 * A scale tier (10^5-request traces, plus a 10^6-request generator
 * memory check) runs only when the binary is invoked with `--scale`
 * (scripts/ci.sh does), so the quick ctest pass stays fast.
 *
 * `--threads N` shards the big seeded loops across a work-stealing
 * ProbeExecutor (each seed is an independent scenario; gtest assertion
 * recording is thread-safe on pthread platforms). The default is 1 —
 * plain ctest runs stay serial — and results are seed-for-seed the
 * same either way. The parallel planner itself is pinned by
 * PlannerProperties.ParallelPlanIsByteIdenticalToSerial: >= 20 seeded
 * configs where a threads=3 plan must serialize byte-identically to
 * the serial plan.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/rng.hpp"
#include "nn/zoo.hpp"
#include "runtime/executor.hpp"
#include "runtime/faults.hpp"
#include "runtime/planner.hpp"
#include "runtime/reference.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/serving_stats.hpp"
#include "runtime/traffic.hpp"
#include "runtime/workload.hpp"
#include "sim/accel_config.hpp"

namespace pointacc {
namespace {

/** Set by main() when the binary runs with --scale. */
bool scaleTierEnabled = false;

/** Set by main() from --threads N; 1 (the default) keeps every seed
 *  loop on the caller thread, so plain ctest runs are serial. */
std::size_t propertyThreads = 1;

constexpr std::uint32_t kNetworks = 3;
constexpr std::uint32_t kBuckets = 2;

/** Seeded random (map, backend, weight) cost table; accelerator-class
 *  independent so fleets of mixed classes stress only the scheduler. */
class RandomPhasedServiceModel : public ServiceModel
{
  public:
    explicit RandomPhasedServiceModel(std::uint64_t seed)
    {
        Rng rng(seed);
        for (std::uint32_t n = 0; n < kNetworks; ++n) {
            for (std::uint32_t b = 0; b < kBuckets; ++b) {
                ServiceProfile p;
                // ~1/8 of profiles are map-less, ~1/8 backend-less:
                // the pipeline's degenerate phases must not wedge.
                const std::uint64_t shape = rng.range(8);
                p.mappingCycles =
                    shape == 0 ? 0 : 1 + rng.range(50'000);
                const std::uint64_t backend =
                    shape == 1 ? 0 : 1 + rng.range(100'000);
                p.totalCycles = p.mappingCycles + backend;
                if (p.totalCycles == 0)
                    p.totalCycles = 1; // never free
                p.computeCycles = backend;
                p.weightLoadCycles = rng.range(p.totalCycles + 1);
                table[n * kBuckets + b] = p;
            }
        }
    }

    ServiceProfile
    profile(const AcceleratorConfig &, std::uint32_t network_id,
            std::uint32_t bucket) const override
    {
        return table.at(network_id * kBuckets + bucket);
    }

  private:
    std::array<ServiceProfile, kNetworks * kBuckets> table;
};

WorkloadSpec
randomSpec(Rng &rng, std::uint64_t seed)
{
    WorkloadSpec spec;
    spec.seed = seed;
    spec.requestsPerMCycle = rng.uniform(5.0, 80.0);
    spec.horizonCycles = 500'000 + rng.range(3'500'000);
    spec.arrivals = rng.range(2) == 0 ? ArrivalProcess::Poisson
                                      : ArrivalProcess::Bursty;
    spec.meanBurstSize = 2 + static_cast<std::uint32_t>(rng.range(6));
    const std::size_t classes = 1 + rng.range(3);
    for (std::size_t i = 0; i < classes; ++i) {
        RequestClass cls;
        cls.networkId = static_cast<std::uint32_t>(rng.range(kNetworks));
        cls.sizeBucket = static_cast<std::uint32_t>(rng.range(kBuckets));
        cls.weight = rng.uniform(0.5, 4.0);
        cls.deadlineCycles = rng.range(3) == 0 ? 50'000 + rng.range(500'000)
                                               : 0;
        // Half the classes are repeated-frame streams (one stream per
        // class), so the map cache sees real reuse in the fuzz space.
        cls.streamId = static_cast<std::uint32_t>(i);
        cls.mapReuseProb =
            rng.range(2) == 0 ? rng.uniform(0.1, 1.0) : 0.0;
        spec.mix.push_back(cls);
    }
    return spec;
}

SchedulerConfig
randomConfig(Rng &rng)
{
    SchedulerConfig scfg;
    const std::uint64_t pol = rng.range(3);
    scfg.policy = pol == 0   ? QueuePolicy::Fifo
                  : pol == 1 ? QueuePolicy::Sjf
                             : QueuePolicy::Edf;
    scfg.occupancy = rng.range(2) == 0 ? OccupancyModel::Monolithic
                                       : OccupancyModel::Pipelined;
    scfg.queueDepth = 4 + rng.range(125);
    scfg.batcher.enabled = rng.range(4) != 0;
    scfg.batcher.maxBatchSize =
        1 + static_cast<std::uint32_t>(rng.range(8));
    scfg.batcher.maxPointsRatio = rng.uniform(1.0, 4.0);
    scfg.batcher.targetK = 1 + static_cast<std::uint32_t>(rng.range(4));
    scfg.batcher.maxWaitCycles = rng.range(300'000);
    // Map cache on half the scenarios: tiny capacities force
    // evictions, and read costs above most map phases exercise the
    // hit-never-slower clamp.
    scfg.mapCache.enabled = rng.range(2) == 0;
    scfg.mapCache.capacityEntries = 1 + rng.range(64);
    scfg.mapCache.eviction = rng.range(2) == 0 ? MapCacheEviction::Lru
                                               : MapCacheEviction::Lfu;
    scfg.mapCache.hitReadCycles = rng.range(60'000);
    return scfg;
}

std::vector<AcceleratorConfig>
randomFleet(Rng &rng)
{
    std::vector<AcceleratorConfig> fleet;
    const std::size_t size = 1 + rng.range(3);
    for (std::size_t i = 0; i < size; ++i)
        fleet.push_back(rng.range(2) == 0 ? pointAccConfig()
                                          : pointAccEdgeConfig());
    return fleet;
}

void
checkInvariants(const ServingReport &report, std::uint64_t seed)
{
    SCOPED_TRACE("seed " + std::to_string(seed));

    // Conservation: offered = admitted + dropped, and the simulation
    // drains — nothing queued or in flight survives the run.
    EXPECT_EQ(report.generated, report.admitted + report.dropped);
    EXPECT_EQ(report.admitted,
              report.completed + report.leftoverQueued);
    EXPECT_EQ(report.leftoverQueued, 0u);

    // Every completion is accounted once, in event order.
    ASSERT_EQ(report.completionCycles.size(), report.completed);
    EXPECT_EQ(report.latencyCycles.count(), report.completed);
    EXPECT_EQ(report.queueWaitCycles.count(), report.completed);
    for (std::size_t i = 1; i < report.completionCycles.size(); ++i)
        ASSERT_GE(report.completionCycles[i],
                  report.completionCycles[i - 1])
            << "completion order regressed at index " << i;
    if (!report.completionCycles.empty())
        EXPECT_LE(report.completionCycles.back(), report.horizonCycles);

    // Dispatch accounting: batch members sum to completions.
    EXPECT_EQ(static_cast<std::uint64_t>(report.batchSize.sum()),
              report.completed);

    // Utilization <= 1 per pipeline stage and for the busy union.
    std::uint64_t served = 0;
    for (const auto &acc : report.accelerators) {
        EXPECT_LE(acc.busyCycles, report.horizonCycles) << acc.name;
        EXPECT_LE(acc.mapBusyCycles, report.horizonCycles) << acc.name;
        EXPECT_LE(acc.backendBusyCycles, report.horizonCycles)
            << acc.name;
        // The busy union covers each stage individually.
        EXPECT_GE(acc.busyCycles, acc.mapBusyCycles) << acc.name;
        EXPECT_GE(acc.busyCycles, acc.backendBusyCycles) << acc.name;
        served += acc.requests;
    }
    EXPECT_EQ(served, report.completed);
}

/**
 * Run fn(seed) for every seed in [first, last), sharded across a
 * work-stealing pool when the binary runs with --threads N (serial
 * otherwise: resolveThreads(1) is inline execution). Each seed is an
 * independent scenario — its own Rng, model and scheduler — and gtest
 * assertion recording is thread-safe on pthread platforms, so the
 * outcome is seed-for-seed identical to the serial loop. An ASSERT
 * failure aborts only its own seed's task (gtest returns from the
 * enclosing body, here the per-seed closure), never a neighbour's.
 */
void
forEachSeed(std::uint64_t first, std::uint64_t last,
            const std::function<void(std::uint64_t)> &fn)
{
    ProbeExecutor pool(ProbeExecutor::resolveThreads(propertyThreads));
    std::vector<ProbeExecutor::Future<void>> inflight;
    inflight.reserve(static_cast<std::size_t>(last - first));
    for (std::uint64_t seed = first; seed < last; ++seed)
        inflight.push_back(pool.submit([&fn, seed] { fn(seed); }));
    for (auto &f : inflight)
        f.get();
}

TEST(RuntimeProperties, RandomSweepsHoldInvariants)
{
    // >= 100 seeded scenarios across the whole config space.
    forEachSeed(1, 121, [](std::uint64_t seed) {
        Rng rng(seed * 0x9e3779b9ULL);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);
        const auto scfg = randomConfig(rng);
        const auto fleet = randomFleet(rng);

        // Bucket scales only feed the batcher's size-ratio rule here.
        FleetScheduler sched(fleet, model, {1.0, 2.0}, scfg);
        const auto trace = WorkloadGenerator(spec).generate();
        const auto report = sched.run(trace);
        EXPECT_EQ(report.generated, trace.size());
        checkInvariants(report, seed);

        // Map-cache conservation: every completed request was priced
        // against the cache exactly once (when it was enabled), and
        // evictions only ever follow insertions.
        if (scfg.mapCache.enabled) {
            EXPECT_EQ(report.mapCache.hits + report.mapCache.misses,
                      report.completed)
                << "seed " << seed;
            EXPECT_LE(report.mapCache.insertions, report.mapCache.misses)
                << "seed " << seed;
            EXPECT_LE(report.mapCache.evictions, report.mapCache.insertions)
                << "seed " << seed;
        } else {
            EXPECT_EQ(report.mapCache.hits + report.mapCache.misses, 0u)
                << "seed " << seed;
        }
    });
}

TEST(RuntimeProperties, MixedFrequencyFleetsHoldInvariants)
{
    // The wall-clock axis must keep every conservation and
    // utilization invariant when instances tick at different rates:
    // each instance converts its cycle costs to event-axis ns at
    // dispatch (0.5 / 1 / 2 GHz here), so there is no cycle-domain
    // reference to diff against — the invariants plus byte-identical
    // repeatability are the contract.
    forEachSeed(1100, 1130, [](std::uint64_t seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed * 0x9e3779b9ULL);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);
        const auto scfg = randomConfig(rng);

        std::vector<AcceleratorConfig> fleet;
        const std::size_t size = 1 + rng.range(3);
        for (std::size_t i = 0; i < size; ++i) {
            AcceleratorConfig cfg = rng.range(2) == 0
                                        ? pointAccConfig()
                                        : pointAccEdgeConfig();
            // A clock rate is part of the serving class: same-name
            // fleet members must share a config, so the name carries
            // the frequency.
            const char *const tags[3] = {"@0.5GHz", "@1GHz", "@2GHz"};
            const double freqs[3] = {0.5, 1.0, 2.0};
            const std::uint64_t pick = rng.range(3);
            cfg.freqGHz = freqs[pick];
            cfg.name += tags[pick];
            fleet.push_back(cfg);
        }

        const auto trace = WorkloadGenerator(spec).generate();
        std::string dumps[2];
        ServingReport report;
        for (auto &dump : dumps) {
            FleetScheduler sched(fleet, model, {1.0, 2.0}, scfg);
            report = sched.run(trace);
            std::ostringstream os;
            writeServingJson(os, report);
            dump = os.str();
        }
        EXPECT_EQ(dumps[0], dumps[1])
            << "mixed-frequency run is not repeatable";
        EXPECT_EQ(report.generated, trace.size());
        checkInvariants(report, seed);

        // The report echoes each instance's clock rate.
        ASSERT_EQ(report.accelerators.size(), fleet.size());
        for (std::size_t i = 0; i < fleet.size(); ++i)
            EXPECT_EQ(report.accelerators[i].freqGHz, fleet[i].freqGHz);
    });
}

TEST(RuntimeProperties, PipelinedNeverCompletesLessThanMonolithic)
{
    // At equal fleet and workload, pipelining only adds capacity:
    // with an unbounded queue (no drops) the pipelined makespan must
    // not exceed the monolithic one on a FIFO single instance.
    forEachSeed(200, 230, [](std::uint64_t seed) {
        Rng rng(seed);
        const RandomPhasedServiceModel model(seed);
        auto spec = randomSpec(rng, seed);

        SchedulerConfig scfg;
        scfg.batcher.enabled = false;
        scfg.queueDepth = 1 << 20;
        scfg.occupancy = OccupancyModel::Pipelined;
        FleetScheduler pipe({pointAccConfig()}, model, {1.0, 2.0}, scfg);
        scfg.occupancy = OccupancyModel::Monolithic;
        FleetScheduler mono({pointAccConfig()}, model, {1.0, 2.0}, scfg);

        const auto trace = WorkloadGenerator(spec).generate();
        const auto pipeReport = pipe.run(trace);
        const auto monoReport = mono.run(trace);
        SCOPED_TRACE("seed " + std::to_string(seed));
        EXPECT_EQ(pipeReport.completed, monoReport.completed);
        EXPECT_LE(pipeReport.horizonCycles, monoReport.horizonCycles);
    });
}

TEST(RuntimeProperties, ServingStatsAreByteIdenticalAcrossRuns)
{
    // Determinism regression: identical workload seeds must give
    // byte-identical serving stats, for the immediate batcher and the
    // wait-for-K batcher alike, with the map cache off and on (the
    // JSON includes the cache counters, so a nondeterministic victim
    // choice or hit classification would show up here).
    for (const bool cacheOn : {false, true}) {
        for (const std::uint32_t targetK : {1u, 4u}) {
            for (const std::uint64_t seed : {7ULL, 21ULL, 1021ULL}) {
                Rng rng(seed);
                const RandomPhasedServiceModel model(seed);
                const auto spec = randomSpec(rng, seed);

                SchedulerConfig scfg;
                scfg.batcher.enabled = true;
                scfg.batcher.targetK = targetK;
                scfg.batcher.maxWaitCycles = targetK > 1 ? 100'000 : 0;
                scfg.occupancy = OccupancyModel::Pipelined;
                scfg.mapCache.enabled = cacheOn;
                scfg.mapCache.capacityEntries = 32; // small: evict often
                scfg.mapCache.hitReadCycles = 5'000;
                scfg.mapCache.eviction = targetK > 1
                                             ? MapCacheEviction::Lfu
                                             : MapCacheEviction::Lru;

                std::string dumps[2];
                for (auto &dump : dumps) {
                    FleetScheduler sched(
                        {pointAccConfig(), pointAccEdgeConfig()}, model,
                        {1.0, 2.0}, scfg);
                    const auto report =
                        sched.run(WorkloadGenerator(spec).generate());
                    std::ostringstream os;
                    writeServingJson(os, report);
                    dump = os.str();
                }
                EXPECT_EQ(dumps[0], dumps[1])
                    << "seed " << seed << " targetK " << targetK
                    << " cache " << cacheOn;
            }
        }
    }
}

/** Random fault program against `horizon` ns and `fleet_size`
 *  instances: a stochastic MTBF/MTTR process on half the scenarios,
 *  up to two scheduled crash windows, and at most one straggler
 *  window per instance (the validator rejects overlap). */
FaultProgram
randomFaultProgram(Rng &rng, std::uint64_t horizon,
                   std::size_t fleet_size)
{
    FaultProgram program;
    program.enabled = true;
    program.horizonNs = horizon;
    program.seed = rng.range(1 << 20) + 1;
    if (rng.range(2) == 0) {
        program.mtbfNs = horizon / (2 + rng.range(6)) + 1;
        program.mttrNs = program.mtbfNs / (2 + rng.range(8)) + 1;
    }
    const std::size_t crashes = rng.range(3);
    for (std::size_t i = 0; i < crashes; ++i) {
        CrashWindow w;
        w.instance = static_cast<std::uint32_t>(rng.range(fleet_size));
        w.atNs = rng.range(horizon);
        w.downForNs = rng.range(2) == 0 ? 0 : horizon / 8 + 1;
        program.crashes.push_back(w);
    }
    for (std::size_t i = 0; i < fleet_size; ++i) {
        if (rng.range(3) != 0)
            continue;
        StragglerWindow w;
        w.instance = static_cast<std::uint32_t>(i);
        w.atNs = rng.range(horizon / 2);
        w.durationNs = 1 + rng.range(horizon / 4);
        w.slowdown = rng.uniform(1.5, 4.0);
        program.stragglers.push_back(w);
    }
    return program;
}

RetryPolicy
randomRetryPolicy(Rng &rng)
{
    RetryPolicy retry;
    retry.enabled = rng.range(4) != 0;
    retry.maxRetries = 1 + static_cast<std::uint32_t>(rng.range(4));
    retry.backoffBaseNs = 1 + rng.range(50'000);
    retry.backoffMult = rng.uniform(1.0, 3.0);
    retry.maxBackoffNs =
        rng.range(2) == 0 ? 0 : retry.backoffBaseNs * 4;
    retry.hedgeDelayNs =
        rng.range(3) == 0 ? 100'000 + rng.range(400'000) : 0;
    retry.timeoutNs =
        rng.range(4) == 0 ? 1'000'000 + rng.range(4'000'000) : 0;
    return retry;
}

/** The fault-mode analogue of checkInvariants: conservation extends
 *  to the three-way admitted split, leftovers may be nonzero (a fleet
 *  crashed for good strands its backlog), and dispatch counters hold
 *  "dispatched" semantics (retries and hedges re-dispatch, so sums
 *  bound completions from above instead of equalling them). */
void
checkFaultInvariants(const ServingReport &report, std::uint64_t seed)
{
    SCOPED_TRACE("fault seed " + std::to_string(seed));

    EXPECT_EQ(report.generated, report.admitted + report.dropped);
    EXPECT_EQ(report.admitted, report.completed + report.failed +
                                   report.leftoverQueued);

    ASSERT_EQ(report.completionCycles.size(), report.completed);
    EXPECT_EQ(report.latencyCycles.count(), report.completed);
    for (std::size_t i = 1; i < report.completionCycles.size(); ++i)
        ASSERT_GE(report.completionCycles[i],
                  report.completionCycles[i - 1])
            << "completion order regressed at index " << i;
    if (!report.completionCycles.empty())
        EXPECT_LE(report.completionCycles.back(), report.horizonCycles);

    // Goodput can never exceed throughput: deadline misses are a
    // subset of completions.
    EXPECT_LE(report.goodputRps(), report.throughputRps());

    // Every terminal failure traces back to a crash victim, and each
    // victim is counted per crash incident, so failures are bounded
    // by incidents.
    EXPECT_LE(report.failed, report.faults.inflightFailed);
    EXPECT_EQ(report.faults.hedgesWon + report.faults.hedgesLost <=
                  report.faults.hedges,
              true);

    std::uint64_t served = 0;
    for (const auto &acc : report.accelerators) {
        EXPECT_LE(acc.busyCycles, report.horizonCycles) << acc.name;
        EXPECT_LE(acc.mapBusyCycles, report.horizonCycles) << acc.name;
        EXPECT_LE(acc.backendBusyCycles, report.horizonCycles)
            << acc.name;
        EXPECT_GE(acc.busyCycles, acc.mapBusyCycles) << acc.name;
        EXPECT_GE(acc.busyCycles, acc.backendBusyCycles) << acc.name;
        served += acc.requests;
    }
    // Dispatched >= completed: crash victims and hedge duplicates
    // consumed capacity without (each) producing a completion.
    EXPECT_GE(served, report.completed);
    EXPECT_GE(static_cast<std::uint64_t>(report.batchSize.sum()),
              report.completed);
}

TEST(RuntimeProperties, FaultSweepsHoldExtendedInvariants)
{
    // 24 seeded fault scenarios across the whole config space:
    // stochastic and scheduled crashes, stragglers, retries with
    // backoff, hedging and timeouts, over random fleets and policies.
    // Each scenario must keep the extended conservation identity and
    // be byte-identical across reruns.
    forEachSeed(3000, 3024, [](std::uint64_t seed) {
        Rng rng(seed * 0x9e3779b9ULL);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);
        const auto fleet = randomFleet(rng);
        auto scfg = randomConfig(rng);
        scfg.faults =
            randomFaultProgram(rng, spec.horizonCycles, fleet.size());
        scfg.retry = randomRetryPolicy(rng);

        const auto trace = WorkloadGenerator(spec).generate();
        std::string dumps[2];
        ServingReport report;
        for (auto &dump : dumps) {
            FleetScheduler sched(fleet, model, {1.0, 2.0}, scfg);
            report = sched.run(trace);
            std::ostringstream os;
            writeServingJson(os, report);
            dump = os.str();
        }
        EXPECT_EQ(dumps[0], dumps[1])
            << "faulted run is not repeatable, seed " << seed;
        EXPECT_EQ(report.generated, trace.size());
        EXPECT_TRUE(report.faults.enabled);
        checkFaultInvariants(report, seed);
    });
}

TEST(RuntimeProperties, EmptyFaultProgramIsByteIdenticalToFaultFree)
{
    // The off switch is absolute: an enabled program that materializes
    // no events (and no retry policy) must leave the serialized report
    // byte-identical to a run with no fault config at all.
    forEachSeed(3100, 3112, [](std::uint64_t seed) {
        Rng rng(seed * 0x9e3779b9ULL);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);
        const auto scfg = randomConfig(rng);
        const auto fleet = randomFleet(rng);
        const auto trace = WorkloadGenerator(spec).generate();

        SchedulerConfig withEmpty = scfg;
        withEmpty.faults.enabled = true; // enabled, nothing to inject

        std::string dumps[2];
        {
            FleetScheduler sched(fleet, model, {1.0, 2.0}, scfg);
            std::ostringstream os;
            writeServingJson(os, sched.run(trace));
            dumps[0] = os.str();
        }
        {
            FleetScheduler sched(fleet, model, {1.0, 2.0}, withEmpty);
            std::ostringstream os;
            writeServingJson(os, sched.run(trace));
            dumps[1] = os.str();
        }
        EXPECT_EQ(dumps[0], dumps[1])
            << "empty fault program perturbed the run, seed " << seed;
    });
}

TEST(RuntimeProperties, RetryPolicyWithoutFaultsChangesOnlyTheBlock)
{
    // Retries (without hedging) never fire when nothing crashes: the
    // run's behaviour is untouched, only the fault_*/retry_* block
    // appears — with every counter zero.
    forEachSeed(3200, 3208, [](std::uint64_t seed) {
        Rng rng(seed * 0x9e3779b9ULL);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);
        const auto scfg = randomConfig(rng);
        const auto fleet = randomFleet(rng);
        const auto trace = WorkloadGenerator(spec).generate();

        SchedulerConfig withRetry = scfg;
        withRetry.retry.enabled = true;
        withRetry.retry.backoffBaseNs = 1'000;

        FleetScheduler plain(fleet, model, {1.0, 2.0}, scfg);
        FleetScheduler retried(fleet, model, {1.0, 2.0}, withRetry);
        const auto a = plain.run(trace);
        const auto b = retried.run(trace);

        SCOPED_TRACE("seed " + std::to_string(seed));
        EXPECT_EQ(a.completed, b.completed);
        EXPECT_EQ(a.dropped, b.dropped);
        EXPECT_EQ(a.horizonCycles, b.horizonCycles);
        EXPECT_EQ(b.failed, 0u);
        EXPECT_TRUE(b.faults.enabled);
        EXPECT_EQ(b.faults.crashes, 0u);
        EXPECT_EQ(b.faults.retryAttempts, 0u);
        EXPECT_EQ(b.faults.hedges, 0u);
    });
}

TEST(RuntimeProperties, MapCacheNeverSlowsASingleInstance)
{
    // On a FIFO single instance without batching, dispatch order is
    // arrival order in both runs, and a hit's phase profile is clamped
    // to never exceed the miss it replaces — so enabling the cache
    // must leave every completion timestamp no later, request by
    // request, under both occupancy models.
    for (const auto occupancy :
         {OccupancyModel::Pipelined, OccupancyModel::Monolithic}) {
        forEachSeed(300, 330, [occupancy](std::uint64_t seed) {
            Rng rng(seed);
            const RandomPhasedServiceModel model(seed);
            auto spec = randomSpec(rng, seed);
            for (auto &cls : spec.mix)
                cls.mapReuseProb = 0.8; // reuse-heavy: hits matter

            SchedulerConfig scfg;
            scfg.batcher.enabled = false;
            scfg.queueDepth = 1 << 20; // no drops
            scfg.occupancy = occupancy;
            scfg.mapCache.enabled = false;
            FleetScheduler off({pointAccConfig()}, model, {1.0, 2.0},
                               scfg);
            scfg.mapCache.enabled = true;
            scfg.mapCache.capacityEntries = 256;
            scfg.mapCache.hitReadCycles = rng.range(80'000);
            FleetScheduler on({pointAccConfig()}, model, {1.0, 2.0},
                              scfg);

            const auto trace = WorkloadGenerator(spec).generate();
            const auto offReport = off.run(trace);
            const auto onReport = on.run(trace);
            SCOPED_TRACE("seed " + std::to_string(seed) + " " +
                         toString(occupancy));
            ASSERT_EQ(onReport.completed, offReport.completed);
            ASSERT_EQ(onReport.completionCycles.size(),
                      offReport.completionCycles.size());
            for (std::size_t i = 0; i < onReport.completionCycles.size();
                 ++i)
                ASSERT_LE(onReport.completionCycles[i],
                          offReport.completionCycles[i])
                    << "request index " << i;
            EXPECT_LE(onReport.horizonCycles, offReport.horizonCycles);
        });
    }
}

// ---------------------------------------------------------------- //
//         Equivalence against the preserved seed engine             //
// ---------------------------------------------------------------- //

std::string
servingJsonOf(const ServingReport &report)
{
    std::ostringstream os;
    writeServingJson(os, report);
    return os.str();
}

TEST(RuntimeEquivalence, ProductionEngineMatchesSeedEngineByteForByte)
{
    // The O(log n) core's contract is behavioral identity with the
    // seed loop — not "close", identical. Since the wall-clock
    // migration this is also the time-domain differential gate: the
    // production engine prices in ns, the seed engine in raw cycles,
    // and every fleet here ticks at the default 1 GHz — where the
    // conversion is the identity, so any ns leak is a byte diff.
    // Run both engines over 60 fuzzed scenarios and compare the
    // serialized reports byte for byte (policies, occupancy models,
    // batching, wait-for-K and the map cache all flow through the
    // JSON).
    forEachSeed(1, 61, [](std::uint64_t seed) {
        Rng rng(seed * 0x9e3779b9ULL);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);
        const auto scfg = randomConfig(rng);
        const auto fleet = randomFleet(rng);

        const auto trace = WorkloadGenerator(spec).generate();
        FleetScheduler sched(fleet, model, {1.0, 2.0}, scfg);
        const auto production = sched.run(trace);
        const auto reference = runServingReference(fleet, model,
                                                   {1.0, 2.0}, scfg,
                                                   trace);
        ASSERT_EQ(servingJsonOf(production), servingJsonOf(reference))
            << "engines diverged at seed " << seed;
    });
}

TEST(RuntimeEquivalence, InertRunAheadDefaultsMatchSeedEngine)
{
    // The run-ahead buffer and the cost-aware hold are strict
    // supersets of the frozen behaviour: with runAheadDepth pinned to
    // 1 and costAware off, every new code path (staged promotion,
    // arrival-cadence tracking, class-price memos) must be completely
    // inert, leaving the production engine byte-identical to the seed
    // loop across the fuzz space.
    forEachSeed(4000, 4030, [](std::uint64_t seed) {
        Rng rng(seed * 0x9e3779b9ULL);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);
        auto scfg = randomConfig(rng);
        scfg.runAheadDepth = 1;
        scfg.batcher.costAware = false;
        const auto fleet = randomFleet(rng);

        const auto trace = WorkloadGenerator(spec).generate();
        FleetScheduler sched(fleet, model, {1.0, 2.0}, scfg);
        const auto production = sched.run(trace);
        const auto reference = runServingReference(fleet, model,
                                                   {1.0, 2.0}, scfg,
                                                   trace);
        ASSERT_EQ(servingJsonOf(production), servingJsonOf(reference))
            << "inert run-ahead defaults diverged at seed " << seed;
    });
}

TEST(RuntimeProperties, RunAheadDepthsHoldInvariants)
{
    // Depths 2..4 across the fuzz space: conservation, utilization
    // and drain invariants must survive the staged handoff buffer,
    // repeat runs must stay byte-identical, and the observed peak
    // staged occupancy can never exceed the buffer's capacity of
    // depth - 1 slots.
    forEachSeed(4100, 4130, [](std::uint64_t seed) {
        Rng rng(seed * 0x9e3779b9ULL);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);
        auto scfg = randomConfig(rng);
        scfg.occupancy = OccupancyModel::Pipelined;
        scfg.runAheadDepth =
            2 + static_cast<std::uint32_t>(rng.range(3));
        const auto fleet = randomFleet(rng);

        const auto trace = WorkloadGenerator(spec).generate();
        std::string dumps[2];
        ServingReport report;
        for (auto &dump : dumps) {
            FleetScheduler sched(fleet, model, {1.0, 2.0}, scfg);
            report = sched.run(trace);
            dump = servingJsonOf(report);
        }
        SCOPED_TRACE("depth " + std::to_string(scfg.runAheadDepth));
        EXPECT_EQ(dumps[0], dumps[1]) << "run-ahead is not repeatable";
        EXPECT_EQ(report.generated, trace.size());
        checkInvariants(report, seed);
        EXPECT_EQ(report.runAheadDepth, scfg.runAheadDepth);
        EXPECT_LE(report.runAheadPeakStaged,
                  static_cast<std::uint64_t>(scfg.runAheadDepth) - 1);
        if (report.runAheadStaged == 0)
            EXPECT_EQ(report.runAheadPeakStaged, 0u);
    });
}

TEST(RuntimeProperties, RunAheadNeverDelaysAFifoSingleInstance)
{
    // On a FIFO single instance without batching, deepening the
    // handoff buffer only lets the mapper start earlier: each map
    // finishes no later, so each backend start — max(previous backend
    // done, map done) under either depth — and with it every
    // completion timestamp is monotonically no later than at depth 1,
    // request by request.
    forEachSeed(4200, 4230, [](std::uint64_t seed) {
        Rng rng(seed);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);

        SchedulerConfig scfg;
        scfg.batcher.enabled = false;
        scfg.queueDepth = 1 << 20; // no drops
        scfg.occupancy = OccupancyModel::Pipelined;
        scfg.runAheadDepth = 1;
        FleetScheduler shallow({pointAccConfig()}, model, {1.0, 2.0},
                               scfg);
        scfg.runAheadDepth = 4;
        FleetScheduler deep({pointAccConfig()}, model, {1.0, 2.0},
                            scfg);

        const auto trace = WorkloadGenerator(spec).generate();
        const auto shallowReport = shallow.run(trace);
        const auto deepReport = deep.run(trace);
        SCOPED_TRACE("seed " + std::to_string(seed));
        ASSERT_EQ(deepReport.completed, shallowReport.completed);
        ASSERT_EQ(deepReport.completionCycles.size(),
                  shallowReport.completionCycles.size());
        for (std::size_t i = 0; i < deepReport.completionCycles.size();
             ++i)
            ASSERT_LE(deepReport.completionCycles[i],
                      shallowReport.completionCycles[i])
                << "request index " << i;
        EXPECT_LE(deepReport.horizonCycles,
                  shallowReport.horizonCycles);
    });
}

TEST(RuntimeProperties, CostAwareDispatchHoldsInvariants)
{
    // The cost-aware hold is a scheduling heuristic, not a semantics
    // change: whatever it decides, conservation and drain must hold
    // (the bounded hold deadline guarantees the queue always makes
    // progress), repeat runs must stay byte-identical, and the
    // hold-episode ledger stays within the queue bound.
    forEachSeed(4300, 4330, [](std::uint64_t seed) {
        Rng rng(seed * 0x9e3779b9ULL);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);
        auto scfg = randomConfig(rng);
        scfg.batcher.enabled = true;
        scfg.batcher.costAware = true;
        scfg.batcher.targetK =
            2 + static_cast<std::uint32_t>(rng.range(3));
        scfg.runAheadDepth =
            1 + static_cast<std::uint32_t>(rng.range(3));
        const auto fleet = randomFleet(rng);

        const auto trace = WorkloadGenerator(spec).generate();
        std::string dumps[2];
        ServingReport report;
        for (auto &dump : dumps) {
            FleetScheduler sched(fleet, model, {1.0, 2.0}, scfg);
            report = sched.run(trace);
            dump = servingJsonOf(report);
        }
        EXPECT_EQ(dumps[0], dumps[1])
            << "cost-aware run is not repeatable";
        EXPECT_EQ(report.generated, trace.size());
        checkInvariants(report, seed);
        EXPECT_TRUE(report.costAware);
        EXPECT_LE(report.holdTrackingPeak,
                  static_cast<std::uint64_t>(scfg.queueDepth));
    });
}

/** Replica of the seed's materializing generator (pre-streaming),
 *  kept in the test as the draw-order oracle for WorkloadStream. */
std::vector<Request>
seedReferenceTrace(const WorkloadSpec &spec)
{
    Rng rng(spec.seed);
    double totalWeight = 0.0;
    for (const auto &cls : spec.mix)
        totalWeight += cls.weight;
    const auto exponential = [](Rng &r, double mean) {
        double u = r.uniform();
        if (u > 1.0 - 1e-12)
            u = 1.0 - 1e-12;
        return -std::log(1.0 - u) * mean;
    };
    const auto pickClass = [&](Rng &r) {
        double x = r.uniform() * totalWeight;
        for (std::size_t i = 0; i < spec.mix.size(); ++i) {
            x -= spec.mix[i].weight;
            if (x <= 0.0)
                return i;
        }
        return spec.mix.size() - 1;
    };
    const bool bursty = spec.arrivals == ArrivalProcess::Bursty;
    const double perEvent =
        bursty ? static_cast<double>(spec.meanBurstSize) : 1.0;
    const double eventRatePerCycle =
        spec.requestsPerMCycle / 1e6 / perEvent;
    const double meanGap = 1.0 / eventRatePerCycle;

    std::vector<Request> out;
    double clock = 0.0;
    std::uint64_t id = 0;
    std::map<std::uint32_t, std::uint64_t> lastFrame;
    std::uint64_t nextCloudId = 1;
    while (true) {
        clock += exponential(rng, meanGap);
        const auto cycle = static_cast<std::uint64_t>(clock);
        if (cycle >= spec.horizonCycles)
            break;
        std::uint64_t count = 1;
        if (bursty && spec.meanBurstSize > 1)
            count = 1 + rng.range(2 * spec.meanBurstSize - 1);
        const auto &cls = spec.mix[pickClass(rng)];
        for (std::uint64_t i = 0; i < count; ++i) {
            Request r;
            r.id = id++;
            r.networkId = cls.networkId;
            r.sizeBucket = cls.sizeBucket;
            const auto last = lastFrame.find(cls.streamId);
            const bool repeat = cls.mapReuseProb > 0.0 &&
                                last != lastFrame.end() &&
                                rng.uniform() < cls.mapReuseProb;
            r.cloudId = repeat ? last->second : nextCloudId++;
            lastFrame[cls.streamId] = r.cloudId;
            r.arrivalCycle = cycle + i;
            if (cls.deadlineCycles > 0)
                r.deadlineCycle = r.arrivalCycle + cls.deadlineCycles;
            out.push_back(r);
        }
    }
    std::stable_sort(out.begin(), out.end(), arrivalOrderBefore);
    return out;
}

bool
sameRequest(const Request &a, const Request &b)
{
    return a.id == b.id && a.networkId == b.networkId &&
           a.sizeBucket == b.sizeBucket && a.cloudId == b.cloudId &&
           a.arrivalCycle == b.arrivalCycle &&
           a.deadlineCycle == b.deadlineCycle &&
           a.estimatedCycles == b.estimatedCycles;
}

TEST(RuntimeEquivalence, StreamingGeneratorMatchesSeedDrawForDraw)
{
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        Rng rng(seed * 0x51ed2701ULL);
        const auto spec = randomSpec(rng, seed);
        const auto reference = seedReferenceTrace(spec);
        const auto streamed = WorkloadGenerator(spec).generate();
        SCOPED_TRACE("seed " + std::to_string(seed));
        ASSERT_EQ(streamed.size(), reference.size());
        for (std::size_t i = 0; i < streamed.size(); ++i)
            ASSERT_TRUE(sameRequest(streamed[i], reference[i]))
                << "trace diverged at index " << i;
    }
}

TEST(RuntimeEquivalence, IndexedQueueMatchesLinearQueuePopForPop)
{
    // Fuzz the queue pair through mixed operation sequences designed
    // to tie on every primary key (tiny arrival/estimate/deadline
    // ranges), across all three policies — including switching the
    // policy per call, which forces the indexed queue to rebuild.
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        Rng rng(seed * 0x2545f491ULL);
        AdmissionQueue indexed(48);
        LinearRequestQueue linear(48);
        std::uint64_t nextId = 0;

        const auto somePolicy = [&]() {
            const std::uint64_t p = rng.range(3);
            return p == 0   ? QueuePolicy::Fifo
                   : p == 1 ? QueuePolicy::Sjf
                            : QueuePolicy::Edf;
        };

        for (int op = 0; op < 400; ++op) {
            const std::uint64_t kind = rng.range(10);
            if (kind < 5 || linear.empty()) {
                Request r;
                r.id = nextId++;
                r.arrivalCycle = rng.range(4); // heavy ties
                r.estimatedCycles = 100 * rng.range(3);
                r.deadlineCycle = rng.range(3) == 0 ? 0 : rng.range(3);
                r.networkId = static_cast<std::uint32_t>(rng.range(2));
                r.sizeBucket = static_cast<std::uint32_t>(rng.range(2));
                ASSERT_EQ(indexed.push(r), linear.push(r));
            } else if (kind < 7) {
                const auto policy = somePolicy();
                const Request a = indexed.pop(policy);
                const Request b = linear.pop(policy);
                ASSERT_TRUE(sameRequest(a, b))
                    << "pop diverged, seed " << seed << " op " << op;
            } else if (kind == 7) {
                const auto policy = somePolicy();
                const auto excluded = [&](const Request &r) {
                    return r.id % 3 == 0;
                };
                const Request *a = indexed.peekEligible(policy, excluded);
                const Request *b = linear.peekEligible(policy, excluded);
                ASSERT_EQ(a == nullptr, b == nullptr);
                if (a != nullptr)
                    ASSERT_TRUE(sameRequest(*a, *b));
            } else {
                const auto policy = somePolicy();
                const auto compatible = [](const Request &x,
                                           const Request &y) {
                    return x.networkId == y.networkId;
                };
                const auto excluded = [&](const Request &r) {
                    return r.sizeBucket == 1 && r.id % 2 == 0;
                };
                const Request head = linear.peek(policy);
                const std::size_t maxCount = 1 + rng.range(4);
                const auto a = indexed.popLedBy(head, policy, compatible,
                                                maxCount, excluded);
                const auto b = linear.popLedBy(head, policy, compatible,
                                               maxCount, excluded);
                ASSERT_EQ(a.size(), b.size());
                for (std::size_t i = 0; i < a.size(); ++i)
                    ASSERT_TRUE(sameRequest(a[i], b[i]))
                        << "popLedBy diverged, seed " << seed << " op "
                        << op << " index " << i;
            }
            ASSERT_EQ(indexed.size(), linear.size());
            ASSERT_EQ(indexed.admitted(), linear.admitted());
            ASSERT_EQ(indexed.dropped(), linear.dropped());
        }
    }
}

TEST(RuntimeEquivalence, StreamedRunMatchesVectorRun)
{
    // The scheduler's streaming entry point must serve the exact
    // report the materialized entry point serves.
    for (std::uint64_t seed = 70; seed < 90; ++seed) {
        Rng rng(seed);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);
        const auto scfg = randomConfig(rng);
        const auto fleet = randomFleet(rng);

        FleetScheduler sched(fleet, model, {1.0, 2.0}, scfg);
        const auto fromVector =
            sched.run(WorkloadGenerator(spec).generate());
        WorkloadStream stream = WorkloadGenerator(spec).stream();
        const auto fromStream = sched.run(stream);
        ASSERT_EQ(servingJsonOf(fromVector), servingJsonOf(fromStream))
            << "seed " << seed;
    }
}

TEST(RuntimeProperties, StreamBuffersOnlyInFlightRequests)
{
    // The streaming generator's footprint is the reorder heap; its
    // high-water mark depends on burst overlap, never on trace length.
    WorkloadSpec spec;
    spec.seed = 99;
    spec.requestsPerMCycle = 2'000.0;
    spec.horizonCycles = 50'000'000; // ~100k requests
    spec.arrivals = ArrivalProcess::Bursty;
    spec.meanBurstSize = 8;
    spec.mix = {{0, 0, 1.0, 0}, {1, 1, 1.0, 0}, {2, 0, 1.0, 0}};

    WorkloadStream stream = WorkloadGenerator(spec).stream();
    while (stream.peek() != nullptr)
        stream.take();
    EXPECT_GT(stream.emitted(), 50'000u);
    EXPECT_LT(stream.peakBuffered(), 4'096u);
    EXPECT_LT(stream.peakBuffered(), stream.emitted() / 20);
}

// ---------------------------------------------------------------- //
//                        Capacity planner                           //
// ---------------------------------------------------------------- //

/** Rebuild the SchedulerConfig a PlanProbe describes (the mirror of
 *  the planner's combo-to-config mapping, kept here so a drift between
 *  the two would fail the re-simulation invariant loudly). */
SchedulerConfig
configOfProbe(const PlanSearchSpace &space, const PlanProbe &probe)
{
    SchedulerConfig scfg = space.base;
    scfg.policy = probe.policy;
    scfg.batcher.enabled = probe.batching;
    scfg.batcher.targetK = probe.targetK;
    scfg.batcher.maxWaitCycles = probe.maxWaitCycles;
    scfg.mapCache.enabled = probe.mapCacheOn;
    return scfg;
}

TEST(PlannerProperties, SeededWorkloadsHoldAllFourInvariants)
{
    // ~60 seeded (workload, search space, SLO) scenarios. The SLO is
    // calibrated off the best fleet's p99 and randomly tightened or
    // loosened, so the sweep mixes comfortably-feasible, tight and
    // infeasible plans.
    forEachSeed(500, 560, [](std::uint64_t seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed * 0x9e3779b97f4a7c15ULL);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);

        PlanSearchSpace space;
        space.minFleetSize = 1;
        space.maxFleetSize = 4 + rng.range(5); // 4..8
        space.policies = {QueuePolicy::Fifo};
        if (rng.range(2) == 0)
            space.policies.push_back(QueuePolicy::Sjf);
        space.batchers = {BatcherAxisPoint{}};
        if (rng.range(2) == 0)
            space.batchers.push_back(
                BatcherAxisPoint{true, 1 + static_cast<std::uint32_t>(
                                           rng.range(3)),
                                 rng.range(200'000)});
        space.mapCacheOptions = {false};
        if (rng.range(2) == 0)
            space.mapCacheOptions.push_back(true);
        space.base.queueDepth = 64 + rng.range(200);
        space.base.mapCache.capacityEntries = 1 + rng.range(64);
        space.base.mapCache.hitReadCycles = rng.range(40'000);

        const CapacityPlanner planner(pointAccConfig(), model,
                                      {1.0, 2.0});
        const auto trace = WorkloadGenerator(spec).generate();
        const auto atMax =
            planner.probe(space.maxFleetSize, space.base, trace);
        SloSpec slo;
        slo.maxP99Cycles = 1 + static_cast<std::uint64_t>(
                                   atMax.p99Cycles() *
                                   rng.uniform(0.8, 3.0));
        if (rng.range(3) == 0)
            slo.minThroughputRps =
                atMax.throughputRps() * rng.uniform(0.5, 1.1);

        const auto report = planner.plan(spec, slo, space);

        // (d) probe accounting: never more than the exhaustive grid,
        // and the log is the spend.
        EXPECT_LE(report.probesSpent, report.exhaustiveProbes);
        EXPECT_EQ(report.probesSpent, report.probes.size());
        EXPECT_EQ(report.exhaustiveProbes, space.gridSize());

        // (c) determinism: a second plan is byte-identical.
        const auto again = planner.plan(spec, slo, space);
        std::ostringstream first, second;
        writePlanJson(first, report);
        writePlanJson(second, again);
        ASSERT_EQ(first.str(), second.str());

        if (!report.feasible) {
            EXPECT_EQ(report.chosen.fleetSize, 0u);
            return;
        }

        // (a) the chosen config actually meets the SLO when re-built
        // from the report and re-simulated from scratch.
        const auto rerun =
            planner.probe(report.chosen.fleetSize,
                          configOfProbe(space, report.chosen), trace);
        EXPECT_TRUE(meetsSlo(rerun, slo));
        EXPECT_EQ(rerun.p99Cycles(), report.chosen.p99Cycles);
        EXPECT_EQ(rerun.throughputRps(), report.chosen.throughputRps);

        // (b) no cheaper fleet size anywhere in the probe log met the
        // SLO — the pick is minimal over everything actually measured.
        for (const auto &p : report.probes)
            EXPECT_FALSE(p.fleetSize < report.chosen.fleetSize &&
                         p.meetsSlo)
                << "cheaper passing probe at fleet " << p.fleetSize;
    });
}

TEST(PlannerProperties, ParallelPlanIsByteIdenticalToSerial)
{
    // The executor's planner integration is pure speculation: worker
    // threads only precompute probes the serial search may request,
    // and results are logged in the order the serial search consumes
    // them. So a threads=3 plan must serialize byte-identically to
    // the threads=1 reference — probe log, spend, pick, feasibility,
    // everything writePlanJson emits — across >= 20 seeded (workload,
    // search space, SLO) scenarios. Deliberately a plain serial seed
    // loop: each iteration already runs a 3-worker pool inside.
    for (std::uint64_t seed = 800; seed < 824; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed * 0x9e3779b97f4a7c15ULL);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);

        PlanSearchSpace space;
        space.minFleetSize = 1;
        space.maxFleetSize = 4 + rng.range(5); // 4..8
        space.policies = {QueuePolicy::Fifo};
        if (rng.range(2) == 0)
            space.policies.push_back(QueuePolicy::Sjf);
        space.batchers = {BatcherAxisPoint{}};
        if (rng.range(2) == 0)
            space.batchers.push_back(
                BatcherAxisPoint{true, 1 + static_cast<std::uint32_t>(
                                           rng.range(3)),
                                 rng.range(200'000)});
        space.mapCacheOptions = {false};
        if (rng.range(2) == 0)
            space.mapCacheOptions.push_back(true);
        space.base.queueDepth = 64 + rng.range(200);
        space.base.mapCache.capacityEntries = 1 + rng.range(64);
        space.base.mapCache.hitReadCycles = rng.range(40'000);

        PlannerConfig parallelCfg;
        parallelCfg.threads = 3;
        const CapacityPlanner serial(pointAccConfig(), model,
                                     {1.0, 2.0});
        const CapacityPlanner parallel(pointAccConfig(), model,
                                       {1.0, 2.0}, parallelCfg);

        const auto trace = WorkloadGenerator(spec).generate();
        const auto atMax =
            serial.probe(space.maxFleetSize, space.base, trace);
        SloSpec slo;
        slo.maxP99Cycles = 1 + static_cast<std::uint64_t>(
                                   atMax.p99Cycles() *
                                   rng.uniform(0.8, 3.0));
        if (rng.range(3) == 0)
            slo.minThroughputRps =
                atMax.throughputRps() * rng.uniform(0.5, 1.1);

        std::ostringstream serialJson, parallelJson;
        writePlanJson(serialJson, serial.plan(spec, slo, space));
        writePlanJson(parallelJson, parallel.plan(spec, slo, space));
        EXPECT_EQ(serialJson.str(), parallelJson.str())
            << "speculative plan diverged from serial";

        // The exhaustive grid speculates every point up front — the
        // widest fan-out the planner has; spot-check it on a quarter
        // of the seeds to keep the suite fast.
        if (seed % 4 == 0) {
            std::ostringstream serialEx, parallelEx;
            writePlanJson(serialEx,
                          serial.planExhaustive(spec, slo, space));
            writePlanJson(parallelEx,
                          parallel.planExhaustive(spec, slo, space));
            EXPECT_EQ(serialEx.str(), parallelEx.str())
                << "speculative exhaustive plan diverged from serial";
        }
    }
}

TEST(RuntimeEquivalence, PlannerProbeMatchesSeedEngineByteForByte)
{
    // The planner prices configurations through probe() — a new call
    // path into the production engine. Extend the PR-4 equivalence
    // harness to it: on small configs spanning the policy, batching
    // and cache axes, the probe's serving JSON must match the
    // preserved seed engine byte for byte.
    const RandomPhasedServiceModel model(11);
    const CapacityPlanner planner(pointAccConfig(), model, {1.0, 2.0});
    Rng rng(0xfeedULL);
    const auto spec = randomSpec(rng, 11);
    const auto trace = WorkloadGenerator(spec).generate();

    struct Case
    {
        std::size_t fleetSize;
        SchedulerConfig scfg;
    };
    std::vector<Case> cases(3);
    cases[0].fleetSize = 1;
    cases[1].fleetSize = 2;
    cases[1].scfg.policy = QueuePolicy::Sjf;
    cases[1].scfg.batcher.enabled = true;
    cases[2].fleetSize = 3;
    cases[2].scfg.policy = QueuePolicy::Edf;
    cases[2].scfg.mapCache.enabled = true;
    cases[2].scfg.mapCache.capacityEntries = 32;
    cases[2].scfg.mapCache.hitReadCycles = 4'000;

    for (const auto &c : cases) {
        SCOPED_TRACE("fleet " + std::to_string(c.fleetSize));
        const auto viaPlanner = planner.probe(c.fleetSize, c.scfg, trace);
        const std::vector<AcceleratorConfig> fleet(c.fleetSize,
                                                   pointAccConfig());
        const auto reference = runServingReference(
            fleet, model, {1.0, 2.0}, c.scfg, trace);
        ASSERT_EQ(servingJsonOf(viaPlanner), servingJsonOf(reference));
    }
}

// ---------------------------------------------------------------- //
//              Heterogeneous composition lattice                    //
// ---------------------------------------------------------------- //

/** Unit objective cost of one instance of space.kinds[k] — the test's
 *  independent mirror of the planner's pricing rule, so a drift
 *  between the two fails the cost cross-check loudly. */
double
kindUnitCost(const PlanSearchSpace &space, std::size_t k)
{
    const InstanceKindSpec &kind = space.kinds[k];
    switch (space.objective) {
    case PlanObjective::Instances:
        return 1.0;
    case PlanObjective::Watts:
        return kind.watts > 0.0 ? kind.watts : nominalWatts(kind.config);
    case PlanObjective::Price:
        return kind.price;
    }
    return 1.0;
}

double
compositionCost(const PlanSearchSpace &space,
                const std::vector<std::size_t> &composition)
{
    double cost = 0.0;
    for (std::size_t k = 0; k < composition.size(); ++k)
        cost +=
            static_cast<double>(composition[k]) * kindUnitCost(space, k);
    return cost;
}

/** Seeded two-kind lattice: a (sometimes overclocked) server kind
 *  plus the Table 3 edge kind, a random objective, and a watt/price
 *  budget on roughly half the seeds. */
PlanSearchSpace
randomLatticeSpace(Rng &rng)
{
    PlanSearchSpace space;
    InstanceKindSpec server;
    server.config = pointAccConfig();
    if (rng.range(2) == 0) {
        // Distinct name: profile memos key on the class name, and a
        // 2 GHz server is a different serving class than a 1 GHz one.
        server.config.name = "PointAcc@2GHz";
        server.config.freqGHz = 2.0;
    }
    server.maxCount = 2 + rng.range(4); // 2..5
    InstanceKindSpec edge;
    edge.config = pointAccEdgeConfig();
    edge.minCount = rng.range(3) == 0 ? 1 : 0;
    edge.maxCount = 1 + rng.range(3); // 1..3
    space.kinds = {server, edge};

    const std::uint64_t obj = rng.range(3);
    space.objective = obj == 0   ? PlanObjective::Instances
                      : obj == 1 ? PlanObjective::Watts
                                 : PlanObjective::Price;
    if (space.objective == PlanObjective::Price) {
        space.kinds[0].price = rng.uniform(4.0, 12.0);
        space.kinds[1].price = rng.uniform(0.5, 3.0);
    }
    if (rng.range(2) == 0) {
        // A budget between "one server plus the mandatory edges" and
        // the full lattice keeps at least one composition affordable
        // while usually pruning the expensive corner.
        const double full = compositionCost(
            space,
            {space.kinds[0].maxCount, space.kinds[1].maxCount});
        const double floor =
            kindUnitCost(space, 0) +
            static_cast<double>(space.kinds[1].minCount) *
                kindUnitCost(space, 1);
        space.maxCostBudget =
            std::max(floor, full * rng.uniform(0.4, 1.0));
    }

    space.policies = {QueuePolicy::Fifo};
    if (rng.range(2) == 0)
        space.policies.push_back(QueuePolicy::Sjf);
    space.batchers = {BatcherAxisPoint{}};
    space.mapCacheOptions = {false};
    if (rng.range(2) == 0)
        space.mapCacheOptions.push_back(true);
    space.base.queueDepth = 64 + rng.range(200);
    space.base.mapCache.capacityEntries = 1 + rng.range(64);
    space.base.mapCache.hitReadCycles = rng.range(40'000);
    return space;
}

TEST(PlannerProperties, HeteroLatticeSeedsHoldInvariants)
{
    // >= 24 seeded (workload, two-kind lattice, objective, budget,
    // SLO) scenarios over the composition lattice — the hetero
    // analogue of SeededWorkloadsHoldAllFourInvariants, plus the
    // lattice-only contracts: compositions stay inside their kind
    // ranges and the budget, and every probe's cost matches the
    // test's own mirror of the objective pricing rule.
    forEachSeed(1200, 1228, [](std::uint64_t seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed * 0x9e3779b97f4a7c15ULL);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);
        const auto space = randomLatticeSpace(rng);

        const CapacityPlanner planner(pointAccConfig(), model,
                                      {1.0, 2.0});
        const auto trace = WorkloadGenerator(spec).generate();
        const auto atMax = planner.probeComposition(
            space,
            {space.kinds[0].maxCount, space.kinds[1].maxCount},
            space.base, trace);
        SloSpec slo;
        slo.maxP99Cycles = 1 + static_cast<std::uint64_t>(
                                   atMax.p99Cycles() *
                                   rng.uniform(0.8, 3.0));
        if (rng.range(3) == 0)
            slo.minThroughputRps =
                atMax.throughputRps() * rng.uniform(0.5, 1.1);

        const auto report = planner.plan(spec, slo, space);

        // Probe accounting: the ray gallop never spends more than
        // the exhaustive composition grid, and the log is the spend.
        EXPECT_LE(report.probesSpent, report.exhaustiveProbes);
        EXPECT_EQ(report.probesSpent, report.probes.size());
        EXPECT_EQ(report.exhaustiveProbes, space.gridSize());
        EXPECT_EQ(report.objective, space.objective);
        EXPECT_EQ(report.costBudget, space.maxCostBudget);

        // Lattice contracts, probe by probe.
        for (const auto &p : report.probes) {
            ASSERT_EQ(p.composition.size(), space.kinds.size());
            std::size_t total = 0;
            for (std::size_t k = 0; k < p.composition.size(); ++k) {
                EXPECT_GE(p.composition[k], space.kinds[k].minCount);
                EXPECT_LE(p.composition[k], space.kinds[k].maxCount);
                total += p.composition[k];
            }
            EXPECT_GE(total, 1u);
            EXPECT_EQ(p.fleetSize, total);
            EXPECT_DOUBLE_EQ(p.cost,
                             compositionCost(space, p.composition));
            if (space.maxCostBudget > 0.0)
                EXPECT_LE(p.cost, space.maxCostBudget + 1e-9);
        }

        // Determinism: a second plan is byte-identical.
        const auto again = planner.plan(spec, slo, space);
        std::ostringstream first, second;
        writePlanJson(first, report);
        writePlanJson(second, again);
        ASSERT_EQ(first.str(), second.str());

        if (!report.feasible) {
            EXPECT_EQ(report.chosen.fleetSize, 0u);
            return;
        }

        // The chosen composition actually meets the SLO when re-built
        // from the report and re-simulated from scratch.
        const auto rerun = planner.probeComposition(
            space, report.chosen.composition,
            configOfProbe(space, report.chosen), trace);
        EXPECT_TRUE(meetsSlo(rerun, slo));
        EXPECT_EQ(rerun.p99Cycles(), report.chosen.p99Cycles);
        EXPECT_EQ(rerun.throughputRps(), report.chosen.throughputRps);

        // No cheaper-cost passing composition anywhere in the probe
        // log — and at equal cost, none fielding fewer instances.
        for (const auto &p : report.probes) {
            EXPECT_FALSE(p.meetsSlo && p.cost < report.chosen.cost)
                << "cheaper passing composition at cost " << p.cost;
            EXPECT_FALSE(p.meetsSlo && p.cost == report.chosen.cost &&
                         p.fleetSize < report.chosen.fleetSize)
                << "equal-cost smaller passing fleet " << p.fleetSize;
        }
    });
}

TEST(PlannerProperties, HeteroParallelPlanIsByteIdenticalToSerial)
{
    // Same speculation-is-pure argument as the homogeneous pin, on
    // the composition lattice: a threads=4 plan over a two-kind
    // space must serialize byte-identically to the serial plan,
    // across >= 24 seeded scenarios. Deliberately a plain serial
    // seed loop: each iteration runs a 4-worker pool inside.
    for (std::uint64_t seed = 1300; seed < 1324; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed * 0x9e3779b97f4a7c15ULL);
        const RandomPhasedServiceModel model(seed);
        const auto spec = randomSpec(rng, seed);
        const auto space = randomLatticeSpace(rng);

        PlannerConfig parallelCfg;
        parallelCfg.threads = 4;
        const CapacityPlanner serial(pointAccConfig(), model,
                                     {1.0, 2.0});
        const CapacityPlanner parallel(pointAccConfig(), model,
                                       {1.0, 2.0}, parallelCfg);

        const auto trace = WorkloadGenerator(spec).generate();
        const auto atMax = serial.probeComposition(
            space,
            {space.kinds[0].maxCount, space.kinds[1].maxCount},
            space.base, trace);
        SloSpec slo;
        slo.maxP99Cycles = 1 + static_cast<std::uint64_t>(
                                   atMax.p99Cycles() *
                                   rng.uniform(0.8, 3.0));
        if (rng.range(3) == 0)
            slo.minThroughputRps =
                atMax.throughputRps() * rng.uniform(0.5, 1.1);

        std::ostringstream serialJson, parallelJson;
        writePlanJson(serialJson, serial.plan(spec, slo, space));
        writePlanJson(parallelJson, parallel.plan(spec, slo, space));
        EXPECT_EQ(serialJson.str(), parallelJson.str())
            << "speculative lattice plan diverged from serial";

        // Exhaustive lattice fan-out, spot-checked on a quarter of
        // the seeds to keep the suite fast.
        if (seed % 4 == 0) {
            std::ostringstream serialEx, parallelEx;
            writePlanJson(serialEx,
                          serial.planExhaustive(spec, slo, space));
            writePlanJson(parallelEx,
                          parallel.planExhaustive(spec, slo, space));
            EXPECT_EQ(serialEx.str(), parallelEx.str())
                << "speculative exhaustive lattice plan diverged";
        }
    }
}

// ---------------------------------------------------------------- //
//                 Traffic programs & autoscaling                    //
// ---------------------------------------------------------------- //

TEST(TrafficProperties, SegmentArrivalCountsMatchAnalyticRates)
{
    // MMPP conservation: over 60 seeds, the arrivals landing inside
    // each piecewise-rate segment match rate * length / 1e6 within
    // sampling tolerance. Segment counts of a piecewise-constant-rate
    // Poisson process are exactly Poisson(rate * length), so a
    // 6-sigma band keeps ~180 checks deterministic-in-practice while
    // catching a rate applied to the wrong segment (a >= 2x error
    // under these programs).
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed * 0x7f4a7c15ULL);
        TrafficProgram program;
        program.base.seed = seed;
        program.base.horizonCycles = 6'000'000;
        program.base.requestsPerMCycle = rng.uniform(20.0, 60.0);
        program.base.mix = {{0, 0, 1.0, 0}};
        const double mid =
            rng.uniform(2.5, 4.0) * program.base.requestsPerMCycle;
        const double late =
            rng.uniform(0.2, 0.6) * program.base.requestsPerMCycle;
        program.phases = {{2'000'000, mid}, {4'000'000, late}};

        const auto trace = materialize(program);
        std::array<double, 3> counts{};
        for (const auto &r : trace)
            counts[r.arrivalCycle < 2'000'000   ? 0
                   : r.arrivalCycle < 4'000'000 ? 1
                                                : 2] += 1.0;
        const std::array<double, 3> rates = {
            program.base.requestsPerMCycle, mid, late};
        for (std::size_t s = 0; s < 3; ++s) {
            const double expected = rates[s] * 2'000'000 / 1e6;
            EXPECT_NEAR(counts[s], expected,
                        6.0 * std::sqrt(expected) + 6.0)
                << "segment " << s;
        }
    }
}

TEST(TrafficProperties, StationaryProgramMatchesWorkloadStream)
{
    // The anchor property: a program with no phases and no churn is
    // the stationary stream — draw for draw, across the fuzzed spec
    // space (both arrival processes, deadlines, reuse streams).
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Rng rng(seed * 0x51ed2701ULL);
        const auto spec = randomSpec(rng, seed);
        TrafficProgram program;
        program.base = spec;
        const auto viaTraffic = materialize(program);
        const auto viaWorkload = WorkloadGenerator(spec).generate();
        SCOPED_TRACE("seed " + std::to_string(seed));
        ASSERT_EQ(viaTraffic.size(), viaWorkload.size());
        for (std::size_t i = 0; i < viaTraffic.size(); ++i)
            ASSERT_TRUE(sameRequest(viaTraffic[i], viaWorkload[i]))
                << "trace diverged at index " << i;
    }
}

TEST(TrafficProperties, ChurnRetiresStreamFrameHistory)
{
    // mapReuseProb = 1 on a single stream: without churn one cloudId
    // repeats across the whole trace; with churn every crossed epoch
    // boundary forces the next frame fresh.
    TrafficProgram program;
    program.base.seed = 5;
    program.base.requestsPerMCycle = 40.0;
    program.base.horizonCycles = 4'000'000;
    program.base.mix = {{0, 0, 1.0, 0, 0, 1.0}};

    TrafficTelemetry plain;
    const auto noChurn = materialize(program, &plain);
    ASSERT_FALSE(noChurn.empty());
    std::set<std::uint64_t> plainIds;
    for (const auto &r : noChurn)
        plainIds.insert(r.cloudId);
    EXPECT_EQ(plainIds.size(), 1u);
    EXPECT_TRUE(plain.present);
    EXPECT_EQ(plain.segments, 1u);
    EXPECT_DOUBLE_EQ(plain.basePerMCycle, plain.peakPerMCycle);
    EXPECT_EQ(plain.churnEvents, 0u);

    program.churn.intervalCycles = 1'000'000;
    TrafficTelemetry churned;
    const auto withChurn = materialize(program, &churned);
    EXPECT_EQ(churned.churnIntervalCycles, 1'000'000u);
    EXPECT_GT(churned.churnEvents, 0u);
    std::set<std::uint64_t> churnedIds;
    for (const auto &r : withChurn)
        churnedIds.insert(r.cloudId);
    // One fresh frame per crossed boundary at most (an empty epoch
    // crosses a boundary without minting a cloudId), and at least one
    // beyond the original single frame.
    EXPECT_GE(churnedIds.size(), 2u);
    EXPECT_LE(churnedIds.size(), churned.churnEvents + 1);
}

TEST(TrafficProperties, ScheduleRoundTripIsExactAndServesIdentically)
{
    // writeSchedule -> readSchedule must reproduce the request vector
    // field for field, and the replayed schedule must serve to a
    // byte-identical report.
    for (std::uint64_t seed = 40; seed < 52; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed * 0x9e3779b9ULL);
        TrafficProgram program;
        program.base = randomSpec(rng, seed);
        program.phases = {
            {program.base.horizonCycles / 3,
             rng.uniform(1.5, 4.0) * program.base.requestsPerMCycle},
            {2 * program.base.horizonCycles / 3,
             program.base.requestsPerMCycle}};
        if (rng.range(2) == 0)
            program.churn.intervalCycles =
                100'000 + rng.range(program.base.horizonCycles / 3);

        const auto trace = materialize(program);
        std::stringstream file;
        writeSchedule(file, trace);
        const auto replayed = readSchedule(file);
        ASSERT_EQ(replayed.size(), trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i)
            ASSERT_TRUE(sameRequest(trace[i], replayed[i]))
                << "round trip diverged at index " << i;

        const RandomPhasedServiceModel model(seed);
        const auto scfg = randomConfig(rng);
        FleetScheduler sched({pointAccConfig(), pointAccEdgeConfig()},
                             model, {1.0, 2.0}, scfg);
        ASSERT_EQ(servingJsonOf(sched.run(trace)),
                  servingJsonOf(sched.run(replayed)));
    }
}

TEST(TrafficProperties, MalformedSchedulesThrow)
{
    const auto parse = [](const std::string &text) {
        std::istringstream is(text);
        return readSchedule(is);
    };
    EXPECT_THROW(parse(""), std::invalid_argument);
    EXPECT_THROW(parse("wrong-magic v1 1\n"), std::invalid_argument);
    EXPECT_THROW(parse("pointacc-schedule v9 0\n"),
                 std::invalid_argument);
    EXPECT_THROW(parse("pointacc-schedule v1 2\n"
                       "0 0 0 1 100 0\n"),
                 std::invalid_argument); // truncated
    EXPECT_THROW(parse("pointacc-schedule v1 1\n"
                       "0 0 0 1 abc 0\n"),
                 std::invalid_argument); // garbage field
    EXPECT_THROW(parse("pointacc-schedule v1 2\n"
                       "0 0 0 1 500 0\n"
                       "1 0 0 2 100 0\n"),
                 std::invalid_argument); // out of arrival order

    const auto ok = parse("pointacc-schedule v1 1\n"
                          "7 1 0 9 100 600\n");
    ASSERT_EQ(ok.size(), 1u);
    EXPECT_EQ(ok[0].id, 7u);
    EXPECT_EQ(ok[0].networkId, 1u);
    EXPECT_EQ(ok[0].sizeBucket, 0u);
    EXPECT_EQ(ok[0].cloudId, 9u);
    EXPECT_EQ(ok[0].arrivalCycle, 100u);
    EXPECT_EQ(ok[0].deadlineCycle, 600u);
}

TEST(AutoscalerProperties, ScaledRunsConserveAndAreByteIdentical)
{
    // Fuzz the closed loop: random traffic programs (flash phase +
    // optional churn) over random fleets and scheduler configs with
    // the autoscaler enabled. Every run must keep the serving
    // invariants, the autoscaler's own accounting must balance, and
    // repeats — streaming or materialized — must be byte-identical.
    for (std::uint64_t seed = 600; seed < 625; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed * 0x9e3779b9ULL);
        const RandomPhasedServiceModel model(seed);
        TrafficProgram program;
        program.base = randomSpec(rng, seed);
        program.phases = {
            {program.base.horizonCycles / 4,
             rng.uniform(2.0, 5.0) * program.base.requestsPerMCycle},
            {program.base.horizonCycles / 2,
             program.base.requestsPerMCycle}};
        if (rng.range(2) == 0)
            program.churn.intervalCycles =
                50'000 + rng.range(program.base.horizonCycles / 4);

        auto scfg = randomConfig(rng);
        const auto fleet = randomFleet(rng);
        scfg.autoscaler.enabled = true;
        scfg.autoscaler.minInstances = 1;
        scfg.autoscaler.initialInstances =
            1 + static_cast<std::uint32_t>(rng.range(fleet.size()));
        scfg.autoscaler.evalIntervalCycles = 20'000 + rng.range(150'000);
        scfg.autoscaler.queueHighDepth = 4 + rng.range(28);
        scfg.autoscaler.queueLowDepth = rng.range(4);
        scfg.autoscaler.p99HighCycles =
            rng.range(2) == 0 ? 100'000 + rng.range(400'000) : 0;
        scfg.autoscaler.spinUpCycles = rng.range(80'000);
        scfg.autoscaler.cooldownCycles = rng.range(150'000);

        FleetScheduler sched(fleet, model, {1.0, 2.0}, scfg);
        TrafficStream stream(program);
        const auto report = sched.run(stream);
        checkInvariants(report, seed);

        const auto &as = report.autoscaler;
        ASSERT_TRUE(as.enabled);
        EXPECT_EQ(as.evals, as.timeline.samples.size());
        std::uint64_t ups = 0, downs = 0;
        for (const auto &s : as.timeline.samples) {
            EXPECT_GE(s.provisioned, as.minInstances);
            EXPECT_LE(s.provisioned, as.maxInstances);
            ups += s.action > 0 ? 1 : 0;
            downs += s.action < 0 ? 1 : 0;
        }
        EXPECT_EQ(ups, as.scaleUps);
        EXPECT_EQ(downs, as.scaleDowns);
        EXPECT_LE(as.peakProvisioned,
                  static_cast<std::uint32_t>(fleet.size()));
        EXPECT_GE(as.finalProvisioned, as.minInstances);
        EXPECT_LE(as.instanceCycles,
                  fleet.size() * report.horizonCycles);

        // Byte-identical on a repeat, and streaming == materialized.
        TrafficStream again(program);
        ASSERT_EQ(servingJsonOf(report),
                  servingJsonOf(sched.run(again)));
        ASSERT_EQ(servingJsonOf(report),
                  servingJsonOf(sched.run(materialize(program))));

        if (HasFatalFailure())
            return;
    }
}

// ---------------------------------------------------------------- //
//                   Bench row-order independence                    //
// ---------------------------------------------------------------- //

TEST(RuntimeProperties, BenchRowJsonIsIndependentOfRowOrder)
{
    // bench_serving runs many sweep rows in one process, sharing only
    // the SimServiceModel (whose memoized profiles are pure values);
    // workload generators, schedulers and reports are rebuilt per
    // row. Pin that contract: serving three scenario rows forward,
    // reversed, and against per-row fresh models must produce the
    // same per-scenario JSON — any state leaking between rows (stats
    // not reset, an RNG not reseeded, a poisoned profile cache) shows
    // up as an order-dependent row.
    ServingCatalog catalog;
    catalog.networks = {pointNet()};
    catalog.bucketScales = {0.03, 0.06};

    struct Scenario
    {
        WorkloadSpec spec;
        SchedulerConfig scfg;
        std::size_t fleetSize;
    };
    std::vector<Scenario> scenarios(3);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        auto &s = scenarios[i];
        s.spec.seed = 900 + i;
        s.spec.requestsPerMCycle = 20.0 + 10.0 * static_cast<double>(i);
        s.spec.horizonCycles = 1'500'000;
        s.spec.mix = {{0, 0, 2.0, 0, 0, 0.5}, {0, 1, 1.0, 0, 1, 0.0}};
        s.fleetSize = 1 + i % 2;
    }
    scenarios[0].scfg.policy = QueuePolicy::Fifo;
    scenarios[1].scfg.policy = QueuePolicy::Sjf;
    scenarios[1].scfg.batcher.enabled = true;
    scenarios[2].scfg.policy = QueuePolicy::Fifo;
    scenarios[2].scfg.mapCache.enabled = true;
    scenarios[2].scfg.mapCache.capacityEntries = 64;
    scenarios[2].scfg.mapCache.hitReadCycles = 2'000;

    const auto runRow = [&](const SimServiceModel &model,
                            const Scenario &s) {
        const std::vector<AcceleratorConfig> fleet(s.fleetSize,
                                                   pointAccConfig());
        FleetScheduler sched(fleet, model, catalog.bucketScales, s.scfg);
        return servingJsonOf(
            sched.run(WorkloadGenerator(s.spec).generate()));
    };

    std::vector<std::string> forward(3), reversed(3), isolated(3);
    {
        const SimServiceModel model(catalog);
        for (std::size_t i = 0; i < scenarios.size(); ++i)
            forward[i] = runRow(model, scenarios[i]);
    }
    {
        const SimServiceModel model(catalog);
        for (std::size_t i = scenarios.size(); i-- > 0;)
            reversed[i] = runRow(model, scenarios[i]);
    }
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const SimServiceModel model(catalog);
        isolated[i] = runRow(model, scenarios[i]);
    }
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        SCOPED_TRACE("scenario " + std::to_string(i));
        EXPECT_EQ(forward[i], reversed[i]);
        EXPECT_EQ(forward[i], isolated[i]);
    }
}

// ---------------------------------------------------------------- //
//                 Scale tier (run with --scale)                     //
// ---------------------------------------------------------------- //

#define POINTACC_REQUIRE_SCALE()                                        \
    do {                                                                \
        if (!scaleTierEnabled)                                          \
            GTEST_SKIP()                                                \
                << "scale tier disabled (run with --scale)";            \
    } while (0)

WorkloadSpec
scaleSpec(std::uint64_t target_requests)
{
    WorkloadSpec spec;
    spec.seed = 20260730;
    spec.requestsPerMCycle = 120.0;
    spec.horizonCycles = static_cast<std::uint64_t>(
        static_cast<double>(target_requests) * 1e6 /
        spec.requestsPerMCycle);
    spec.arrivals = ArrivalProcess::Bursty;
    spec.meanBurstSize = 4;
    spec.mix = {
        {0, 0, 4.0, 0},
        {1, 1, 2.0, 200'000},
        {2, 1, 1.0, 0},
    };
    return spec;
}

TEST(RuntimePropertiesScale, HundredThousandRequestsHoldInvariants)
{
    POINTACC_REQUIRE_SCALE();
    // 10^5 requests through each policy: conservation, stage
    // utilization <= 1, byte-identical determinism across runs, and
    // byte-identical equivalence with the seed engine (which subsumes
    // heap-vs-seed pop-order equivalence under ties at scale — FIFO,
    // SJF and EDF all rank-tie constantly inside bursts).
    const RandomPhasedServiceModel model(7);
    const auto spec = scaleSpec(100'000);
    const auto trace = WorkloadGenerator(spec).generate();

    for (const QueuePolicy policy :
         {QueuePolicy::Fifo, QueuePolicy::Sjf, QueuePolicy::Edf}) {
        SchedulerConfig scfg;
        scfg.policy = policy;
        scfg.batcher.enabled = true;
        scfg.batcher.maxBatchSize = 8;
        scfg.queueDepth = 512;
        const std::vector<AcceleratorConfig> fleet(4, pointAccConfig());

        FleetScheduler sched(fleet, model, {1.0, 2.0}, scfg);
        const auto report = sched.run(trace);
        SCOPED_TRACE(toString(policy));
        EXPECT_EQ(report.generated, trace.size());
        checkInvariants(report, 7);

        const auto again = sched.run(trace);
        ASSERT_EQ(servingJsonOf(report), servingJsonOf(again))
            << "nondeterministic at scale";

        const auto reference = runServingReference(
            fleet, model, {1.0, 2.0}, scfg, trace);
        ASSERT_EQ(servingJsonOf(report), servingJsonOf(reference))
            << "engines diverged at scale";
    }
}

TEST(RuntimePropertiesScale, WaitForKHoldTrackingStaysBounded)
{
    POINTACC_REQUIRE_SCALE();
    // Guard for the hold-episode ledger: 10^5 requests through a
    // wait-for-K batcher must keep the dedup set's peak within the
    // queue bound — dispatch erases what the hold path inserted, so
    // the set tracks live leaders, not trace length.
    const RandomPhasedServiceModel model(7);
    const auto spec = scaleSpec(100'000);
    const auto trace = WorkloadGenerator(spec).generate();

    SchedulerConfig scfg;
    scfg.batcher.enabled = true;
    scfg.batcher.maxBatchSize = 8;
    scfg.batcher.targetK = 4;
    scfg.batcher.maxWaitCycles = 50'000;
    scfg.queueDepth = 512;
    const std::vector<AcceleratorConfig> fleet(4, pointAccConfig());

    FleetScheduler sched(fleet, model, {1.0, 2.0}, scfg);
    const auto report = sched.run(trace);
    checkInvariants(report, 7);
    EXPECT_GT(report.batchHolds, 0u);
    EXPECT_GT(report.holdTrackingPeak, 0u);
    EXPECT_LE(report.holdTrackingPeak,
              static_cast<std::uint64_t>(scfg.queueDepth));
}

TEST(RuntimePropertiesScale, MillionRequestStreamStaysBounded)
{
    POINTACC_REQUIRE_SCALE();
    // The acceptance criterion behind the streaming generator: peak
    // resident state is O(in-flight + classes) however long the trace
    // — here 10^6 emitted requests against a four-digit buffer bound.
    const auto spec = scaleSpec(1'000'000);
    WorkloadStream stream = WorkloadGenerator(spec).stream();
    while (stream.peek() != nullptr)
        stream.take();
    EXPECT_GT(stream.emitted(), 900'000u);
    EXPECT_LT(stream.peakBuffered(), 4'096u);
}

} // namespace
} // namespace pointacc

/**
 * Custom main: gtest_main's is not linked once this one exists. Two
 * additions over the stock runner: the --scale flag gating the scale
 * tier above (CI's Release and sanitized stages pass it; plain ctest
 * stays fast), and --threads N sharding the big seed loops across a
 * work-stealing pool (CI's TSan stage passes 4; the default of 1
 * keeps plain runs serial and results are identical either way).
 */
int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scale") == 0)
            pointacc::scaleTierEnabled = true;
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            pointacc::propertyThreads = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
    }
    return RUN_ALL_TESTS();
}
