/**
 * @file
 * Tests for the Mapping Unit hardware model. The load-bearing property:
 * every MPU operation is bit-identical to its functional reference in
 * src/mapping, while also reporting structurally-derived cycle counts.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.hpp"
#include "datasets/synthetic.hpp"
#include "mapping/quantize.hpp"
#include "mapping/fps.hpp"
#include "mapping/kernel_map.hpp"
#include "mapping/knn.hpp"
#include "mpu/alt_engines.hpp"
#include "mpu/mpu.hpp"
#include "mpu/sorting_network.hpp"
#include "mpu/stream_merger.hpp"

namespace pointacc {
namespace {

ElementVec
randomElements(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    ElementVec v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        v.push_back(ComparatorStruct{rng.range(1000), static_cast<std::int32_t>(i), 0});
    return v;
}

bool
isSortedElems(const ElementVec &v)
{
    return std::is_sorted(v.begin(), v.end(),
                          [](const auto &a, const auto &b) { return a < b; });
}

// ---------------------------------------------------------------- //
//                        Sorting networks                           //
// ---------------------------------------------------------------- //

TEST(BitonicSort, SortsPowerOfTwoSizes)
{
    for (std::size_t n : {2u, 4u, 8u, 16u, 64u, 256u}) {
        auto v = randomElements(n, n);
        bitonicSort(v);
        EXPECT_TRUE(isSortedElems(v)) << "n=" << n;
    }
}

TEST(BitonicSort, StageCountIsLogSquared)
{
    auto v = randomElements(64, 1);
    const auto stats = bitonicSort(v);
    // N=64: log N = 6 -> 6*7/2 = 21 stages, each N/2 = 32 comparators.
    EXPECT_EQ(stats.stages, 21u);
    EXPECT_EQ(stats.compareExchanges, 21u * 32u);
}

TEST(BitonicMerge, MergesTwoSortedHalves)
{
    for (std::size_t n : {2u, 8u, 32u, 128u}) {
        auto v = randomElements(n, n + 7);
        std::sort(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(n / 2));
        std::sort(v.begin() + static_cast<std::ptrdiff_t>(n / 2), v.end());
        const auto stats = bitonicMerge(v);
        EXPECT_TRUE(isSortedElems(v)) << "n=" << n;
        std::uint64_t logn = 0;
        for (std::size_t s = n; s > 1; s /= 2)
            ++logn;
        EXPECT_EQ(stats.stages, logn);
        EXPECT_EQ(stats.compareExchanges, logn * (n / 2));
    }
}

TEST(BitonicSort, PadElementsSinkToEnd)
{
    ElementVec v = randomElements(6, 3);
    v.push_back(padElement());
    v.push_back(padElement());
    bitonicSort(v);
    EXPECT_TRUE(isPad(v[6]));
    EXPECT_TRUE(isPad(v[7]));
    EXPECT_FALSE(isPad(v[0]));
}

// ---------------------------------------------------------------- //
//                        Stream merger                              //
// ---------------------------------------------------------------- //

TEST(StreamMerger, MergesArbitraryLengths)
{
    StreamMerger merger(8);
    for (std::size_t lenA : {0u, 1u, 3u, 4u, 17u, 100u}) {
        for (std::size_t lenB : {0u, 1u, 5u, 64u}) {
            auto a = randomElements(lenA, lenA * 131 + 1);
            auto b = randomElements(lenB, lenB * 17 + 2);
            for (auto &e : b)
                e.source = 1;
            std::sort(a.begin(), a.end());
            std::sort(b.begin(), b.end());

            MergeStats stats;
            const auto merged = merger.merge(a, b, stats);
            ASSERT_EQ(merged.size(), lenA + lenB);
            EXPECT_TRUE(isSortedElems(merged))
                << "lenA=" << lenA << " lenB=" << lenB;

            // Reference merge must agree element-for-element.
            ElementVec ref = a;
            ref.insert(ref.end(), b.begin(), b.end());
            std::sort(ref.begin(), ref.end());
            EXPECT_EQ(merged, ref);
        }
    }
}

TEST(StreamMerger, CycleCountIsWindowBound)
{
    // Merging two runs of 1000 with a 64-merger (window 32) must take
    // between max(ceil counts) and the sum of window counts.
    StreamMerger merger(64);
    auto a = randomElements(1000, 5);
    auto b = randomElements(1000, 6);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    MergeStats stats;
    merger.merge(a, b, stats);
    const std::uint64_t windowsA = (1000 + 31) / 32;
    const std::uint64_t windowsB = (1000 + 31) / 32;
    EXPECT_GE(stats.cycles, std::max(windowsA, windowsB));
    EXPECT_LE(stats.cycles, windowsA + windowsB);
}

TEST(StreamMerger, PaperFigure10aExample)
{
    // Fig. 10a: N=8 merger, two streams of 8 elements each (2-D coords
    // embedded at z=0). Verify the final merged order.
    const std::vector<Coord3> inCloud = {{0, 2, 0}, {1, 1, 0}, {1, 4, 0},
                                         {2, 0, 0}, {2, 3, 0}, {3, 2, 0},
                                         {3, 3, 0}, {4, 2, 0}};
    const std::vector<Coord3> outCloud = {{-1, 3, 0}, {0, 2, 0}, {0, 5, 0},
                                          {1, 1, 0},  {1, 4, 0}, {2, 3, 0},
                                          {2, 4, 0},  {3, 3, 0}};
    ElementVec a, b;
    for (std::size_t i = 0; i < inCloud.size(); ++i)
        a.push_back(coordElement(inCloud[i], static_cast<int>(i), 0));
    for (std::size_t i = 0; i < outCloud.size(); ++i)
        b.push_back(coordElement(outCloud[i], static_cast<int>(i), 1));

    StreamMerger merger(8);
    MergeStats stats;
    const auto merged = merger.merge(a, b, stats);
    ASSERT_EQ(merged.size(), 16u);
    EXPECT_TRUE(isSortedElems(merged));
    // First element must be (-1,3) from the output cloud.
    EXPECT_EQ(unpackCoord(merged[0].key), Coord3(-1, 3, 0));
    // Duplicated coordinates (0,2), (1,1), (1,4), (2,3), (3,3) must sit
    // adjacent with input (source 0) before output (source 1).
    int adjacentDupes = 0;
    for (std::size_t i = 0; i + 1 < merged.size(); ++i) {
        if (merged[i].key == merged[i + 1].key) {
            ++adjacentDupes;
            EXPECT_LT(merged[i].source, merged[i + 1].source);
        }
    }
    EXPECT_EQ(adjacentDupes, 5);
    // 8-merger consumes one 4-element window per cycle: 16 elements in
    // 4 windows minimum.
    EXPECT_GE(stats.cycles, 4u);
}

TEST(StreamMerger, SortArbitraryLength)
{
    StreamMerger merger(16);
    for (std::size_t n : {1u, 2u, 7u, 8u, 9u, 63u, 200u, 1000u}) {
        MergeStats stats;
        auto sorted = merger.sort(randomElements(n, n * 3 + 11), stats);
        ASSERT_EQ(sorted.size(), n);
        EXPECT_TRUE(isSortedElems(sorted)) << "n=" << n;
    }
}

TEST(StreamMerger, TopKMatchesSortPrefix)
{
    StreamMerger merger(16);
    for (std::size_t k : {1u, 4u, 16u, 33u}) {
        auto data = randomElements(500, k + 77);
        MergeStats s1, s2;
        auto full = merger.sort(data, s1);
        auto top = merger.sort(data, s2, k);
        ASSERT_EQ(top.size(), std::min<std::size_t>(k, 500));
        for (std::size_t i = 0; i < top.size(); ++i)
            EXPECT_EQ(top[i], full[i]) << "k=" << k << " i=" << i;
        // Truncation must reduce the merge workload.
        if (k <= 16) {
            EXPECT_LT(s2.cycles, s1.cycles);
        }
    }
}

TEST(DetectIntersection, FindsCrossSourceDuplicates)
{
    ElementVec merged = {
        {10, 0, 0}, {10, 5, 1}, {11, 1, 0}, {12, 2, 1},
        {13, 3, 0}, {13, 9, 1}, {14, 4, 1}, {14, 6, 1},
    };
    MergeStats stats;
    const auto matches = detectIntersection(merged, 8, stats);
    ASSERT_EQ(matches.size(), 2u);
    EXPECT_EQ(matches[0], std::make_pair(0, 5));
    EXPECT_EQ(matches[1], std::make_pair(3, 9));
    EXPECT_GT(stats.comparisons, 0u);
}

// ---------------------------------------------------------------- //
//                    MPU vs functional references                   //
// ---------------------------------------------------------------- //

class MpuKernelMap
    : public ::testing::TestWithParam<std::tuple<DatasetKind, int>>
{};

TEST_P(MpuKernelMap, MatchesSortKernelMap)
{
    const auto [kind, kernelSize] = GetParam();
    auto input = generate(kind, 13, 0.05);
    KernelMapConfig cfg;
    cfg.kernelSize = kernelSize;

    MappingUnit mpu;
    auto hw = mpu.kernelMap(input, input, cfg);
    auto ref = sortKernelMap(input, input, cfg);
    hw.maps.sortGroups();
    ref.sortGroups();
    ASSERT_EQ(hw.maps.size(), ref.size());
    for (std::int32_t w = 0; w < ref.numWeights(); ++w)
        EXPECT_EQ(hw.maps.forWeight(w), ref.forWeight(w)) << "w=" << w;

    EXPECT_GT(hw.stats.cycles, 0u);
    EXPECT_EQ(hw.stats.mapsEmitted, ref.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpuKernelMap,
    ::testing::Combine(::testing::Values(DatasetKind::ModelNet40,
                                         DatasetKind::S3DIS,
                                         DatasetKind::SemanticKITTI),
                       ::testing::Values(2, 3)));

TEST(Mpu, KernelMapStridedDownsample)
{
    auto input = generate(DatasetKind::S3DIS, 41, 0.08);
    const auto output = quantizeDownsample(input, 2);
    KernelMapConfig cfg;
    cfg.kernelSize = 2;
    cfg.outStride = 2;

    MappingUnit mpu;
    auto hw = mpu.kernelMap(input, output, cfg);
    auto ref = sortKernelMap(input, output, cfg);
    hw.maps.sortGroups();
    ref.sortGroups();
    ASSERT_EQ(hw.maps.size(), ref.size());
    for (std::int32_t w = 0; w < ref.numWeights(); ++w)
        EXPECT_EQ(hw.maps.forWeight(w), ref.forWeight(w));
}

TEST(Mpu, KernelMapCyclesScaleWithKernelVolume)
{
    auto input = generate(DatasetKind::ShapeNet, 55, 0.2);
    MappingUnit mpu;
    KernelMapConfig k3{3, 1, 1};
    KernelMapConfig k1{1, 1, 1};
    const auto c3 = mpu.kernelMap(input, input, k3).stats.cycles;
    const auto c1 = mpu.kernelMap(input, input, k1).stats.cycles;
    // 27 offsets vs 1 offset: cycles should scale ~27x.
    EXPECT_GT(c3, c1 * 20);
    EXPECT_LT(c3, c1 * 34);
}

TEST(Mpu, FpsMatchesReference)
{
    const auto cloud = makeObjectCloud(61, 600, 64);
    MappingUnit mpu;
    const auto hw = mpu.farthestPointSampling(cloud, 64);
    const auto ref = farthestPointSampling(cloud, 64);
    EXPECT_EQ(hw.indices, ref);
    // m passes over n points with 64 lanes.
    const std::uint64_t expected =
        63ULL * ((cloud.size() + 63) / 64);
    EXPECT_GE(hw.stats.cycles, expected);
    EXPECT_EQ(hw.stats.distanceOps, 63ULL * cloud.size());
}

TEST(Mpu, KnnMatchesReference)
{
    const auto input = makeObjectCloud(71, 700, 96);
    const auto queries = makeObjectCloud(72, 50, 96);
    MappingUnit mpu;
    const auto hw = mpu.kNearestNeighbors(input, queries, 16);
    const auto ref = kNearestNeighbors(input, queries, 16);
    ASSERT_EQ(hw.lists.size(), ref.size());
    for (std::size_t q = 0; q < ref.size(); ++q) {
        EXPECT_EQ(hw.lists[q].indices, ref[q].indices) << "q=" << q;
        EXPECT_EQ(hw.lists[q].distances2, ref[q].distances2);
    }
}

TEST(Mpu, BallQueryMatchesReference)
{
    const auto input = makeObjectCloud(81, 500, 96);
    const auto queries = makeObjectCloud(82, 40, 96);
    const std::int64_t r2 = 15 * 15;
    MappingUnit mpu;
    const auto hw = mpu.ballQuery(input, queries, 8, r2);
    const auto ref = ballQuery(input, queries, 8, r2);
    ASSERT_EQ(hw.lists.size(), ref.size());
    for (std::size_t q = 0; q < ref.size(); ++q)
        EXPECT_EQ(hw.lists[q].indices, ref[q].indices) << "q=" << q;
}

TEST(Mpu, WiderMergerReducesCycles)
{
    auto input = generate(DatasetKind::S3DIS, 91, 0.1);
    KernelMapConfig cfg;
    MappingUnit narrow(MpuConfig{16, 16, 13});
    MappingUnit wide(MpuConfig{128, 128, 13});
    const auto cn = narrow.kernelMap(input, input, cfg).stats.cycles;
    const auto cw = wide.kernelMap(input, input, cfg).stats.cycles;
    EXPECT_GT(cn, cw * 4);
}

// ---------------------------------------------------------------- //
//                         Rival engines                             //
// ---------------------------------------------------------------- //

TEST(HashEngine, MatchesReferenceMaps)
{
    auto input = generate(DatasetKind::S3DIS, 101, 0.05);
    KernelMapConfig cfg;
    HashKernelMapper hashUnit(64);
    HashEngineStats stats;
    auto maps = hashUnit.map(input, input, cfg, stats);
    auto ref = hashKernelMap(input, input, cfg);
    maps.sortGroups();
    ref.sortGroups();
    ASSERT_EQ(maps.size(), ref.size());
    for (std::int32_t w = 0; w < ref.numWeights(); ++w)
        EXPECT_EQ(maps.forWeight(w), ref.forWeight(w));
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_EQ(stats.probes, input.size() * 27);
}

TEST(HashEngine, AreaMuchLargerThanMergeSorter)
{
    // Section 4.1.1: merge-based design saves up to 14x area at the
    // same parallelism (hash table sized for 1e5-point clouds).
    HashKernelMapper hashUnit(64);
    const double hashArea = hashUnit.areaUnits(65536);
    const double sorterArea = mergeSorterAreaUnits(64);
    EXPECT_GT(hashArea / sorterArea, 5.0);
    EXPECT_LT(hashArea / sorterArea, 30.0);
}

TEST(QuickSelect, MatchesTopK)
{
    for (std::size_t k : {1u, 8u, 32u}) {
        auto data = randomElements(512, k * 3 + 5);
        QuickSelectStats stats;
        auto qs = quickSelectTopK(data, k, 64, stats);
        std::sort(data.begin(), data.end());
        data.resize(k);
        EXPECT_EQ(qs, data) << "k=" << k;
        EXPECT_GT(stats.passes, 0u);
    }
}

TEST(QuickSelect, AllEqualKeysTerminates)
{
    ElementVec data(100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = {42, static_cast<std::int32_t>(i), 0};
    QuickSelectStats stats;
    const auto out = quickSelectTopK(data, 10, 8, stats);
    EXPECT_EQ(out.size(), 10u);
}

TEST(QuickSelect, KLargerThanInput)
{
    auto data = randomElements(5, 3);
    QuickSelectStats stats;
    const auto out = quickSelectTopK(data, 100, 8, stats);
    EXPECT_EQ(out.size(), 5u);
    EXPECT_TRUE(isSortedElems(out));
}

} // namespace
} // namespace pointacc
