/**
 * @file
 * Tests for the functional mapping operations. The central property:
 * hash-based and mergesort-based kernel mapping are interchangeable —
 * they must produce identical MapSets on every cloud (this is the
 * correctness claim behind PointAcc's ranking-based Mapping Unit).
 */

#include <gtest/gtest.h>

#include <set>

#include "datasets/synthetic.hpp"
#include "mapping/fps.hpp"
#include "mapping/kernel_map.hpp"
#include "mapping/knn.hpp"
#include "mapping/quantize.hpp"

namespace pointacc {
namespace {

TEST(KernelOffsets, Size3Kernel)
{
    const auto offs = kernelOffsets(3, 1);
    ASSERT_EQ(offs.size(), 27u);
    EXPECT_EQ(offs.front(), Coord3(-1, -1, -1));
    EXPECT_EQ(offs[13], Coord3(0, 0, 0)); // center at the middle index
    EXPECT_EQ(offs.back(), Coord3(1, 1, 1));
}

TEST(KernelOffsets, EvenKernelIsForwardOnly)
{
    const auto offs = kernelOffsets(2, 1);
    ASSERT_EQ(offs.size(), 8u);
    EXPECT_EQ(offs.front(), Coord3(0, 0, 0));
    EXPECT_EQ(offs.back(), Coord3(1, 1, 1));
}

TEST(KernelOffsets, ScaledByTensorStride)
{
    const auto offs = kernelOffsets(3, 4);
    EXPECT_EQ(offs.front(), Coord3(-4, -4, -4));
    EXPECT_EQ(offs.back(), Coord3(4, 4, 4));
}

TEST(Quantize, MatchesPaperExamples)
{
    // Paper Section 2.1.1: point (3,5) at ts=1 quantizes to (2,4) at
    // ts=2; point (4,8) at ts=4 quantizes to (0,8)... wait: (4,8) at
    // ts=8 -> (0,8). Verify both.
    EXPECT_EQ(quantizeCoord({3, 5, 0}, 2), Coord3(2, 4, 0));
    EXPECT_EQ(quantizeCoord({4, 8, 0}, 8), Coord3(0, 8, 0));
}

TEST(Quantize, NegativeCoordinatesFloor)
{
    EXPECT_EQ(quantizeCoord({-1, -1, -1}, 2), Coord3(-2, -2, -2));
    EXPECT_EQ(quantizeCoord({-4, -5, -8}, 4), Coord3(-4, -8, -8));
}

TEST(Quantize, DownsampleDeduplicates)
{
    PointCloud in({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {4, 4, 4}});
    const auto out = quantizeDownsample(in, 2);
    ASSERT_EQ(out.size(), 2u); // three points collapse into cell (0,0,0)
    EXPECT_EQ(out.coord(0), Coord3(0, 0, 0));
    EXPECT_EQ(out.coord(1), Coord3(4, 4, 4));
    EXPECT_EQ(out.tensorStride(), 2);
}

TEST(Quantize, RepeatedDownsampleMatchesDirect)
{
    auto cloud = generate(DatasetKind::S3DIS, 21, 0.05);
    const auto two = quantizeDownsample(cloud, 2);
    const auto fourViaTwo = quantizeDownsample(two, 4);
    const auto fourDirect = quantizeDownsample(cloud, 4);
    EXPECT_EQ(fourViaTwo.coordinates(), fourDirect.coordinates());
}

TEST(Fps, SelectsRequestedCount)
{
    const auto cloud = makeObjectCloud(3, 300, 64);
    const auto sel = farthestPointSampling(cloud, 50);
    EXPECT_EQ(sel.size(), 50u);
    std::set<PointIndex> unique(sel.begin(), sel.end());
    EXPECT_EQ(unique.size(), 50u) << "FPS must not repeat points";
}

TEST(Fps, FirstTwoPointsAreExtremes)
{
    // The second FPS point is by definition the farthest from the seed.
    PointCloud cloud({{0, 0, 0}, {1, 0, 0}, {5, 0, 0}, {9, 0, 0}});
    const auto sel = farthestPointSampling(cloud, 2, 0);
    ASSERT_EQ(sel.size(), 2u);
    EXPECT_EQ(sel[0], 0);
    EXPECT_EQ(sel[1], 3);
}

TEST(Fps, CoverageBeatsRandomSampling)
{
    // Property: FPS minimizes the maximum gap. For points on a line,
    // selecting k of n by FPS must cover every point within n/k * 2.
    std::vector<Coord3> line;
    for (int i = 0; i < 256; ++i)
        line.push_back({i, 0, 0});
    PointCloud cloud(std::move(line));
    const auto sel = farthestPointSampling(cloud, 16);
    for (int i = 0; i < 256; ++i) {
        std::int64_t best = std::numeric_limits<std::int64_t>::max();
        for (auto s : sel)
            best = std::min(best, cloud.coord(s).distance2({i, 0, 0}));
        EXPECT_LE(best, 32LL * 32LL) << "gap at " << i;
    }
}

TEST(Fps, ClampToCloudSize)
{
    const auto cloud = makeObjectCloud(3, 100, 64);
    const auto sel = farthestPointSampling(cloud, 100000);
    EXPECT_EQ(sel.size(), cloud.size());
}

TEST(RandomSampling, DeterministicAndUnique)
{
    const auto cloud = makeObjectCloud(4, 400, 64);
    const auto a = randomSampling(cloud, 64, 5);
    const auto b = randomSampling(cloud, 64, 5);
    EXPECT_EQ(a, b);
    std::set<PointIndex> unique(a.begin(), a.end());
    EXPECT_EQ(unique.size(), 64u);
}

TEST(GatherPoints, CarriesFeatures)
{
    PointCloud cloud({{1, 0, 0}, {2, 0, 0}, {3, 0, 0}}, 1);
    cloud.setFeature(0, 0, 1.5f);
    cloud.setFeature(2, 0, 3.5f);
    const auto out = gatherPoints(cloud, {2, 0});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out.coord(0), Coord3(3, 0, 0));
    EXPECT_FLOAT_EQ(out.feature(0, 0), 3.5f);
    EXPECT_FLOAT_EQ(out.feature(1, 0), 1.5f);
}

TEST(Knn, FindsExactNeighbors)
{
    PointCloud input({{0, 0, 0}, {2, 0, 0}, {5, 0, 0}, {100, 0, 0}});
    PointCloud queries({{1, 0, 0}});
    const auto lists = kNearestNeighbors(input, queries, 2);
    ASSERT_EQ(lists.size(), 1u);
    ASSERT_EQ(lists[0].indices.size(), 2u);
    EXPECT_EQ(lists[0].indices[0], 0); // dist 1, tie-break lower index
    EXPECT_EQ(lists[0].indices[1], 1); // dist 1
    EXPECT_EQ(lists[0].distances2[0], 1);
    EXPECT_EQ(lists[0].distances2[1], 1);
}

TEST(Knn, DistancesNonDecreasing)
{
    const auto input = makeObjectCloud(6, 500, 64);
    const auto queries = makeObjectCloud(7, 40, 64);
    const auto lists = kNearestNeighbors(input, queries, 16);
    for (const auto &list : lists) {
        for (std::size_t i = 1; i < list.distances2.size(); ++i)
            EXPECT_GE(list.distances2[i], list.distances2[i - 1]);
    }
}

TEST(BallQuery, RespectsRadius)
{
    const auto input = makeObjectCloud(8, 500, 64);
    const auto queries = makeObjectCloud(9, 30, 64);
    const std::int64_t r2 = 10 * 10;
    const auto lists = ballQuery(input, queries, 8, r2);
    for (const auto &list : lists) {
        EXPECT_LE(list.indices.size(), 8u);
        for (auto d : list.distances2)
            EXPECT_LE(d, r2);
    }
}

TEST(BallQuery, SubsetOfKnn)
{
    const auto input = makeObjectCloud(10, 300, 64);
    const auto queries = makeObjectCloud(11, 20, 64);
    const std::int64_t r2 = 64;
    const auto knn = kNearestNeighbors(input, queries, 8);
    const auto ball = ballQuery(input, queries, 8, r2);
    for (std::size_t q = 0; q < queries.size(); ++q) {
        // Ball query results = kNN results filtered by radius.
        std::vector<PointIndex> expected;
        for (std::size_t i = 0; i < knn[q].indices.size(); ++i) {
            if (knn[q].distances2[i] <= r2)
                expected.push_back(knn[q].indices[i]);
        }
        EXPECT_EQ(ball[q].indices, expected) << "query " << q;
    }
}

TEST(NeighborsToMaps, GroupsByRank)
{
    std::vector<NeighborList> lists(2);
    lists[0].indices = {5, 7};
    lists[0].distances2 = {1, 2};
    lists[1].indices = {3};
    lists[1].distances2 = {0};
    const auto maps = neighborsToMaps(lists, 2);
    EXPECT_EQ(maps.size(), 3u);
    ASSERT_EQ(maps.forWeight(0).size(), 2u);
    EXPECT_EQ(maps.forWeight(0)[0], (Map{5, 0, 0}));
    EXPECT_EQ(maps.forWeight(0)[1], (Map{3, 1, 0}));
    ASSERT_EQ(maps.forWeight(1).size(), 1u);
    EXPECT_EQ(maps.forWeight(1)[0], (Map{7, 0, 1}));
}

TEST(KernelMap, PaperFigure9Example)
{
    // Fig. 9: 2-D example embedded in z=0. Input/output clouds both
    // {(1,1),(2,2),(2,4),(3,2),(4,3)}; offset (-1,-1) (w_-1,-1) yields
    // exactly two maps: (p0,q1) and (p3,q4).
    PointCloud cloud({{1, 1, 0}, {2, 2, 0}, {2, 4, 0}, {3, 2, 0},
                      {4, 3, 0}});
    KernelMapConfig cfg;
    cfg.kernelSize = 3;
    const auto maps = sortKernelMap(cloud, cloud, cfg);

    // Weight index for delta (-1,-1,0) in the 27-offset enumeration:
    // dx=-1 -> 0, dy=-1 -> 0, dz=0 -> 1 => index 0*9 + 0*3 + 1 = 1.
    const auto &group = maps.forWeight(1);
    ASSERT_EQ(group.size(), 2u);
    EXPECT_EQ(group[0], (Map{0, 1, 1}));
    EXPECT_EQ(group[1], (Map{3, 4, 1}));
}

TEST(KernelMap, CenterWeightIsIdentityWhenStride1)
{
    auto cloud = generate(DatasetKind::ModelNet40, 31, 0.25);
    KernelMapConfig cfg;
    const auto maps = sortKernelMap(cloud, cloud, cfg);
    const auto &center = maps.forWeight(13);
    ASSERT_EQ(center.size(), cloud.size());
    for (const auto &m : center)
        EXPECT_EQ(m.in, m.out);
}

TEST(KernelMap, HashAndSortAgreeOnAllDatasets)
{
    for (const auto &spec : allDatasetSpecs()) {
        auto input = generate(spec.kind, 17, 0.05);
        KernelMapConfig cfg;
        cfg.kernelSize = 3;

        auto hashMaps = hashKernelMap(input, input, cfg);
        auto sortMaps = sortKernelMap(input, input, cfg);
        hashMaps.sortGroups();
        sortMaps.sortGroups();
        ASSERT_EQ(hashMaps.size(), sortMaps.size()) << spec.name;
        for (std::int32_t w = 0; w < hashMaps.numWeights(); ++w)
            EXPECT_EQ(hashMaps.forWeight(w), sortMaps.forWeight(w))
                << spec.name << " weight " << w;
    }
}

TEST(KernelMap, StridedDownsampleAgreement)
{
    auto input = generate(DatasetKind::S3DIS, 23, 0.1);
    const auto output = quantizeDownsample(input, 2);
    KernelMapConfig cfg;
    cfg.kernelSize = 2;
    cfg.inStride = 1;
    cfg.outStride = 2;

    auto hashMaps = hashKernelMap(input, output, cfg);
    auto sortMaps = sortKernelMap(input, output, cfg);
    hashMaps.sortGroups();
    sortMaps.sortGroups();
    ASSERT_EQ(hashMaps.size(), sortMaps.size());
    for (std::int32_t w = 0; w < hashMaps.numWeights(); ++w)
        EXPECT_EQ(hashMaps.forWeight(w), sortMaps.forWeight(w));

    // Every input point lands in exactly one output cell across the 8
    // offsets of the k=2 downsampling kernel.
    EXPECT_EQ(hashMaps.size(), input.size());
}

TEST(KernelMap, TransposeInvertsDirection)
{
    auto input = generate(DatasetKind::ShapeNet, 29, 0.1);
    const auto output = quantizeDownsample(input, 2);
    KernelMapConfig cfg;
    cfg.kernelSize = 2;
    cfg.outStride = 2;
    const auto down = sortKernelMap(input, output, cfg);
    const auto up = transposeMaps(down, 2);
    EXPECT_EQ(up.size(), down.size());
    // Each transposed map must appear with in/out swapped.
    std::set<std::pair<PointIndex, PointIndex>> downPairs, upPairs;
    for (const auto &m : down.flattened())
        downPairs.insert({m.in, m.out});
    for (const auto &m : up.flattened())
        upPairs.insert({m.out, m.in});
    EXPECT_EQ(downPairs, upPairs);
}

class KernelMapParams
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(KernelMapParams, HashSortEquivalenceSweep)
{
    const auto [kernelSize, seed] = GetParam();
    auto input = makeIndoorScene(static_cast<std::uint64_t>(seed), 2000,
                                 200);
    KernelMapConfig cfg;
    cfg.kernelSize = kernelSize;
    auto h = hashKernelMap(input, input, cfg);
    auto s = sortKernelMap(input, input, cfg);
    h.sortGroups();
    s.sortGroups();
    ASSERT_EQ(h.size(), s.size());
    for (std::int32_t w = 0; w < h.numWeights(); ++w)
        EXPECT_EQ(h.forWeight(w), s.forWeight(w));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelMapParams,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(1, 2, 3)));

} // namespace
} // namespace pointacc
