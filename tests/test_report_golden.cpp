/**
 * @file
 * Golden-file tests for the machine-readable JSON surfaces: the
 * per-run dump (sim::writeJson) and the serving-stats dump
 * (writeServingJson) that BENCH_*.json tooling consumes.
 *
 * Two layers of protection:
 *  - exact golden strings for fixed inputs, so a silently renamed or
 *    reordered key (or a formatting change) fails loudly here before
 *    it breaks a downstream consumer;
 *  - round-trip checks on every numeric token: parse with strtod and
 *    re-format; the writer's %.6g output must be stable under a
 *    parse/print cycle so archived benchmark JSON diffs cleanly.
 *
 * The capacity planner's dump (writePlanJson) is pinned the same two
 * ways; its schema lives next to the serving schema in
 * docs/SERVING_JSON.md and is held there by the same CI grep.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/planner.hpp"
#include "runtime/serving_stats.hpp"
#include "sim/accelerator.hpp"
#include "sim/report.hpp"

namespace pointacc {
namespace {

RunResult
fixedRunResult()
{
    RunResult r;
    r.network = "PointNet";
    r.accelerator = "PointAcc";
    r.freqGHz = 1.0;
    r.totalCycles = 125'000;
    r.mappingCycles = 25'000;
    r.computeCycles = 90'000;
    r.exposedDramCycles = 10'000;
    r.dramReadBytes = 4096;
    r.dramWriteBytes = 2048;
    r.totalMacs = 1'000'000;
    LayerStats ls;
    ls.name = "conv1";
    ls.isDense = true;
    ls.mappingCycles = 25'000;
    ls.computeCycles = 90'000;
    ls.dramCycles = 100'000;
    ls.totalCycles = 125'000;
    ls.dramReadBytes = 4096;
    ls.dramWriteBytes = 2048;
    ls.macs = 1'000'000;
    ls.maps = 512;
    ls.cacheMissRate = 0.25;
    r.layers.push_back(ls);
    return r;
}

ServingReport
fixedServingReport()
{
    ServingReport report;
    report.freqGHz = 1.0;
    report.horizonCycles = 1'000'000;
    report.occupancy = "pipelined";
    report.batchHolds = 3;
    report.generated = 4;
    report.admitted = 4;
    report.dropped = 0;
    report.completed = 4;
    report.deadlineMisses = 1;
    for (const double latency : {1000.0, 2000.0, 3000.0, 4000.0})
        report.latencyCycles.record(latency);
    for (const double wait : {0.0, 0.0, 500.0, 500.0})
        report.queueWaitCycles.record(wait);
    report.batchSize.record(2.0);
    report.batchSize.record(2.0);
    report.mapCache.hits = 3;
    report.mapCache.misses = 1;
    report.mapCache.insertions = 1;
    report.mapCache.evictions = 0;
    report.mapCache.bytesSaved = 1536;
    report.mapCache.cyclesSaved = 2700;
    report.completionCycles = {1000, 2000, 3500, 4500};
    AcceleratorUsage usage;
    usage.name = "PointAcc#0";
    usage.busyCycles = 500'000;
    usage.mapBusyCycles = 100'000;
    usage.backendBusyCycles = 450'000;
    usage.batches = 2;
    usage.requests = 4;
    report.accelerators.push_back(usage);
    return report;
}

/** fixedServingReport plus the conditional traffic_* / autoscaler_*
 *  blocks populated — the golden for an autoscaled traffic-program
 *  run. (fixedServingReport itself stays block-free, pinning that
 *  stationary fixed-fleet output is byte-identical to pre-traffic
 *  builds.) */
ServingReport
fixedAutoscaledServingReport()
{
    ServingReport report = fixedServingReport();
    report.traffic.present = true;
    report.traffic.program = "flash_crowd";
    report.traffic.segments = 3;
    report.traffic.basePerMCycle = 25.0;
    report.traffic.peakPerMCycle = 150.0;
    report.traffic.churnIntervalCycles = 250'000;
    report.traffic.churnEvents = 3;

    AutoscalerStats &as = report.autoscaler;
    as.enabled = true;
    as.minInstances = 1;
    as.maxInstances = 4;
    as.evals = 2;
    as.scaleUps = 1;
    as.scaleDowns = 1;
    as.instanceCycles = 1'500'000;
    as.peakProvisioned = 2;
    as.finalProvisioned = 1;
    as.drainedBatches = 1;
    as.timeline.bucketCycles = 500'000;
    as.timeline.samples = {
        ScalingSample{500'000, 6, 250'000, 2, 1},
        ScalingSample{1'000'000, 1, 125'000, 1, -1},
    };
    return report;
}

/** fixedServingReport plus the conditional fault_* / retry_* block —
 *  the golden for a fault-injected run with retries and hedging.
 *  (fixedServingReport itself stays fault-free, pinning that the
 *  `failed`/`goodput_rps` counters alone — emitted unconditionally —
 *  are the only schema change a fault-free report sees.) */
ServingReport
fixedFaultedServingReport()
{
    ServingReport report = fixedServingReport();
    report.failed = 1;
    FaultStats &f = report.faults;
    f.enabled = true;
    f.crashes = 2;
    f.recoveries = 1;
    f.stragglerWindows = 1;
    f.inflightFailed = 3;
    f.failedBatches = 2;
    f.failovers = 1;
    f.retryAttempts = 2;
    f.retryShed = 0;
    f.retryExhausted = 1;
    f.retryTimeouts = 0;
    f.retryBackoffNsTotal = 3000;
    f.hedges = 1;
    f.hedgesWon = 1;
    f.hedgesLost = 0;
    return report;
}

PlanReport
fixedPlanReport()
{
    PlanReport report;
    report.slo.maxP99Cycles = 2000;
    report.slo.minThroughputRps = 0.0;
    report.feasible = true;
    report.monotoneFleetAxis = true;
    report.probesSpent = 2;
    report.exhaustiveProbes = 8;
    report.p99MarginCycles = 499.5;
    report.throughputMarginRps = 0.0;

    PlanProbe miss;
    miss.fleetSize = 1;
    miss.cost = 1.0; // Instances objective: cost == fleet size
    miss.policy = QueuePolicy::Fifo;
    miss.batching = false;
    miss.targetK = 1;
    miss.maxWaitCycles = 0;
    miss.mapCacheOn = false;
    miss.p99Cycles = 3200.0;
    miss.throughputRps = 1250.0;
    miss.dropRate = 0.25;
    miss.meetsSlo = false;

    PlanProbe hit = miss;
    hit.fleetSize = 2;
    hit.cost = 2.0;
    hit.p99Cycles = 1500.5;
    hit.throughputRps = 2500.0;
    hit.dropRate = 0.0;
    hit.meetsSlo = true;

    report.chosen = hit;
    report.probes = {miss, hit};
    return report;
}

/** A heterogeneous lattice plan: two-kind compositions priced under
 *  the Watts objective against a watt budget — pins the composition
 *  array, the objective echo and the cost fields. */
PlanReport
fixedHeteroPlanReport()
{
    PlanReport report;
    report.slo.maxP99Cycles = 2000;
    report.slo.minThroughputRps = 0.0;
    report.objective = PlanObjective::Watts;
    report.costBudget = 120.5;
    report.feasible = true;
    report.monotoneFleetAxis = true;
    report.probesSpent = 2;
    report.exhaustiveProbes = 12;
    report.p99MarginCycles = 250.0;
    report.throughputMarginRps = 0.0;

    PlanProbe miss;
    miss.fleetSize = 1;
    miss.composition = {1, 0};
    miss.cost = 14.096; // one Table 3 server at nominal watts
    miss.policy = QueuePolicy::Fifo;
    miss.batching = false;
    miss.targetK = 1;
    miss.maxWaitCycles = 0;
    miss.mapCacheOn = false;
    miss.p99Cycles = 3200.0;
    miss.throughputRps = 1250.0;
    miss.dropRate = 0.25;
    miss.meetsSlo = false;

    PlanProbe hit = miss;
    hit.fleetSize = 3;
    hit.composition = {2, 1};
    hit.cost = 29.648; // two servers plus one edge
    hit.p99Cycles = 1750.0;
    hit.throughputRps = 2500.0;
    hit.dropRate = 0.0;
    hit.meetsSlo = true;

    report.chosen = hit;
    report.probes = {miss, hit};
    return report;
}

/** Every "key":number token must survive a parse/print round trip. */
void
checkNumericRoundTrip(const std::string &json)
{
    std::size_t checked = 0;
    for (std::size_t i = 0; i < json.size(); ++i) {
        if (json[i] != ':')
            continue;
        const std::size_t start = i + 1;
        if (start >= json.size())
            continue;
        const char c = json[start];
        if (c != '-' && (c < '0' || c > '9'))
            continue; // string/bool/container value
        std::size_t end = start;
        while (end < json.size() && json[end] != ',' &&
               json[end] != '}' && json[end] != ']')
            ++end;
        const std::string token = json.substr(start, end - start);
        char *tail = nullptr;
        const double parsed = std::strtod(token.c_str(), &tail);
        ASSERT_EQ(*tail, '\0') << "unparsable number: " << token;
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", parsed);
        // Integer tokens print through the integer path and stay
        // verbatim; double tokens must re-format identically.
        if (token.find('.') != std::string::npos ||
            token.find('e') != std::string::npos) {
            EXPECT_EQ(token, std::string(buf))
                << "double token not round-trippable";
        } else {
            EXPECT_EQ(parsed,
                      static_cast<double>(std::strtoll(
                          token.c_str(), nullptr, 10)))
                << "integer token lost precision: " << token;
        }
        checked += 1;
    }
    EXPECT_GT(checked, 10u) << "numeric scan found too few tokens";
}

TEST(ReportGolden, RunResultJsonMatchesGolden)
{
    std::ostringstream os;
    writeJson(os, fixedRunResult());
    const std::string expected =
        "{\"network\":\"PointNet\",\"accelerator\":\"PointAcc\","
        "\"freq_ghz\":1,\"total_cycles\":125000,"
        "\"mapping_cycles\":25000,\"compute_cycles\":90000,"
        "\"exposed_dram_cycles\":10000,\"map_phase_cycles\":25000,"
        "\"backend_phase_cycles\":100000,\"dram_read_bytes\":4096,"
        "\"dram_write_bytes\":2048,\"total_macs\":1000000,"
        "\"latency_ms\":0.125,\"energy_mj\":0,"
        "\"energy_compute_pj\":0,\"energy_sram_pj\":0,"
        "\"energy_dram_pj\":0,\"layers\":[{\"name\":\"conv1\","
        "\"dense\":true,\"mapping_cycles\":25000,"
        "\"compute_cycles\":90000,\"dram_cycles\":100000,"
        "\"total_cycles\":125000,\"dram_read_bytes\":4096,"
        "\"dram_write_bytes\":2048,\"macs\":1000000,\"maps\":512,"
        "\"cache_miss_rate\":0.25}]}\n";
    EXPECT_EQ(os.str(), expected);
    checkNumericRoundTrip(os.str());
}

TEST(ReportGolden, ServingJsonMatchesGolden)
{
    std::ostringstream os;
    writeServingJson(os, fixedServingReport());
    const std::string expected =
        "{\"freq_ghz\":1,\"horizon_cycles\":1000000,"
        "\"horizon_ns\":1000000,"
        "\"occupancy\":\"pipelined\",\"batch_holds\":3,"
        "\"generated\":4,\"admitted\":4,\"dropped\":0,"
        "\"completed\":4,\"failed\":0,"
        "\"leftover_queued\":0,\"deadline_misses\":1,"
        "\"throughput_rps\":4000,\"goodput_rps\":3000,\"drop_rate\":0,"
        "\"latency_ms_mean\":0.0025,\"latency_ms_p50\":0.003,"
        "\"latency_ms_p95\":0.004,\"latency_ms_p99\":0.004,"
        "\"latency_ns_p50\":3000,\"latency_ns_p95\":4000,"
        "\"latency_ns_p99\":4000,"
        "\"queue_wait_cycles_mean\":250,\"queue_wait_ns_mean\":250,"
        "\"batch_size_mean\":2,"
        "\"map_cache_hits\":3,\"map_cache_misses\":1,"
        "\"map_cache_insertions\":1,\"map_cache_evictions\":0,"
        "\"map_cache_bytes_saved\":1536,\"map_cache_cycles_saved\":2700,"
        "\"map_cache_hit_rate\":0.75,"
        "\"accelerators\":[{\"name\":\"PointAcc#0\",\"freq_ghz\":1,"
        "\"busy_cycles\":500000,\"busy_ns\":500000,"
        "\"map_busy_cycles\":100000,\"map_busy_ns\":100000,"
        "\"backend_busy_cycles\":450000,\"backend_busy_ns\":450000,"
        "\"batches\":2,\"requests\":4,"
        "\"utilization\":0.5,\"map_utilization\":0.1,"
        "\"backend_utilization\":0.45}]}\n";
    EXPECT_EQ(os.str(), expected);
    checkNumericRoundTrip(os.str());
}

TEST(ReportGolden, AutoscaledServingJsonMatchesGolden)
{
    std::ostringstream os;
    writeServingJson(os, fixedAutoscaledServingReport());
    const std::string expected =
        "{\"freq_ghz\":1,\"horizon_cycles\":1000000,"
        "\"horizon_ns\":1000000,"
        "\"occupancy\":\"pipelined\",\"batch_holds\":3,"
        "\"generated\":4,\"admitted\":4,\"dropped\":0,"
        "\"completed\":4,\"failed\":0,"
        "\"leftover_queued\":0,\"deadline_misses\":1,"
        "\"throughput_rps\":4000,\"goodput_rps\":3000,\"drop_rate\":0,"
        "\"latency_ms_mean\":0.0025,\"latency_ms_p50\":0.003,"
        "\"latency_ms_p95\":0.004,\"latency_ms_p99\":0.004,"
        "\"latency_ns_p50\":3000,\"latency_ns_p95\":4000,"
        "\"latency_ns_p99\":4000,"
        "\"queue_wait_cycles_mean\":250,\"queue_wait_ns_mean\":250,"
        "\"batch_size_mean\":2,"
        "\"map_cache_hits\":3,\"map_cache_misses\":1,"
        "\"map_cache_insertions\":1,\"map_cache_evictions\":0,"
        "\"map_cache_bytes_saved\":1536,\"map_cache_cycles_saved\":2700,"
        "\"map_cache_hit_rate\":0.75,"
        "\"traffic_program\":\"flash_crowd\",\"traffic_segments\":3,"
        "\"traffic_base_per_mcycle\":25,"
        "\"traffic_peak_per_mcycle\":150,"
        "\"traffic_churn_interval_cycles\":250000,"
        "\"traffic_churn_events\":3,"
        "\"autoscaler_min_instances\":1,\"autoscaler_max_instances\":4,"
        "\"autoscaler_evals\":2,\"autoscaler_scale_ups\":1,"
        "\"autoscaler_scale_downs\":1,"
        "\"autoscaler_instance_cycles\":1500000,"
        "\"autoscaler_peak_provisioned\":2,"
        "\"autoscaler_final_provisioned\":1,"
        "\"autoscaler_drained_batches\":1,"
        "\"autoscaler_timeline_bucket_cycles\":500000,"
        "\"autoscaler_timeline\":[{\"cycle\":500000,\"queue_depth\":6,"
        "\"window_p99_cycles\":250000,\"provisioned\":2,\"action\":1},"
        "{\"cycle\":1000000,\"queue_depth\":1,"
        "\"window_p99_cycles\":125000,\"provisioned\":1,"
        "\"action\":-1}],"
        "\"accelerators\":[{\"name\":\"PointAcc#0\",\"freq_ghz\":1,"
        "\"busy_cycles\":500000,\"busy_ns\":500000,"
        "\"map_busy_cycles\":100000,\"map_busy_ns\":100000,"
        "\"backend_busy_cycles\":450000,\"backend_busy_ns\":450000,"
        "\"batches\":2,\"requests\":4,"
        "\"utilization\":0.5,\"map_utilization\":0.1,"
        "\"backend_utilization\":0.45}]}\n";
    EXPECT_EQ(os.str(), expected);
    checkNumericRoundTrip(os.str());
}

TEST(ReportGolden, FaultedServingJsonMatchesGolden)
{
    std::ostringstream os;
    writeServingJson(os, fixedFaultedServingReport());
    const std::string expected =
        "{\"freq_ghz\":1,\"horizon_cycles\":1000000,"
        "\"horizon_ns\":1000000,"
        "\"occupancy\":\"pipelined\",\"batch_holds\":3,"
        "\"generated\":4,\"admitted\":4,\"dropped\":0,"
        "\"completed\":4,\"failed\":1,"
        "\"leftover_queued\":0,\"deadline_misses\":1,"
        "\"throughput_rps\":4000,\"goodput_rps\":3000,\"drop_rate\":0,"
        "\"latency_ms_mean\":0.0025,\"latency_ms_p50\":0.003,"
        "\"latency_ms_p95\":0.004,\"latency_ms_p99\":0.004,"
        "\"latency_ns_p50\":3000,\"latency_ns_p95\":4000,"
        "\"latency_ns_p99\":4000,"
        "\"queue_wait_cycles_mean\":250,\"queue_wait_ns_mean\":250,"
        "\"batch_size_mean\":2,"
        "\"map_cache_hits\":3,\"map_cache_misses\":1,"
        "\"map_cache_insertions\":1,\"map_cache_evictions\":0,"
        "\"map_cache_bytes_saved\":1536,\"map_cache_cycles_saved\":2700,"
        "\"map_cache_hit_rate\":0.75,"
        "\"fault_crashes\":2,\"fault_recoveries\":1,"
        "\"fault_straggler_windows\":1,\"fault_inflight_failed\":3,"
        "\"fault_failed_batches\":2,\"fault_failovers\":1,"
        "\"retry_attempts\":2,\"retry_shed\":0,"
        "\"retry_exhausted\":1,\"retry_timeouts\":0,"
        "\"retry_backoff_ns_total\":3000,\"retry_hedges\":1,"
        "\"retry_hedges_won\":1,\"retry_hedges_lost\":0,"
        "\"accelerators\":[{\"name\":\"PointAcc#0\",\"freq_ghz\":1,"
        "\"busy_cycles\":500000,\"busy_ns\":500000,"
        "\"map_busy_cycles\":100000,\"map_busy_ns\":100000,"
        "\"backend_busy_cycles\":450000,\"backend_busy_ns\":450000,"
        "\"batches\":2,\"requests\":4,"
        "\"utilization\":0.5,\"map_utilization\":0.1,"
        "\"backend_utilization\":0.45}]}\n";
    EXPECT_EQ(os.str(), expected);
    checkNumericRoundTrip(os.str());
}

TEST(ReportGolden, FaultedServingJsonSchemaKeysPresent)
{
    std::ostringstream os;
    writeServingJson(os, fixedFaultedServingReport());
    const std::string json = os.str();
    const std::vector<std::string> keys = {
        "failed",                "goodput_rps",
        "fault_crashes",         "fault_recoveries",
        "fault_straggler_windows", "fault_inflight_failed",
        "fault_failed_batches",  "fault_failovers",
        "retry_attempts",        "retry_shed",
        "retry_exhausted",       "retry_timeouts",
        "retry_backoff_ns_total", "retry_hedges",
        "retry_hedges_won",      "retry_hedges_lost"};
    for (const auto &key : keys)
        EXPECT_NE(json.find("\"" + key + "\":"), std::string::npos)
            << "missing key: " << key;

    // The block really is conditional: a fault-free report must not
    // leak a single fault_*/retry_* key (only the unconditional
    // `failed`/`goodput_rps` counters appear).
    std::ostringstream plain;
    writeServingJson(plain, fixedServingReport());
    EXPECT_EQ(plain.str().find("fault_"), std::string::npos);
    EXPECT_EQ(plain.str().find("retry_"), std::string::npos);
    EXPECT_NE(plain.str().find("\"failed\":"), std::string::npos);
    EXPECT_NE(plain.str().find("\"goodput_rps\":"), std::string::npos);
}

TEST(ReportGolden, AutoscaledServingJsonSchemaKeysPresent)
{
    std::ostringstream os;
    writeServingJson(os, fixedAutoscaledServingReport());
    const std::string json = os.str();
    const std::vector<std::string> keys = {
        "traffic_program",      "traffic_segments",
        "traffic_base_per_mcycle", "traffic_peak_per_mcycle",
        "traffic_churn_interval_cycles", "traffic_churn_events",
        "autoscaler_min_instances", "autoscaler_max_instances",
        "autoscaler_evals",     "autoscaler_scale_ups",
        "autoscaler_scale_downs", "autoscaler_instance_cycles",
        "autoscaler_peak_provisioned", "autoscaler_final_provisioned",
        "autoscaler_drained_batches",
        "autoscaler_timeline_bucket_cycles", "autoscaler_timeline",
        "cycle",                "queue_depth",
        "window_p99_cycles",    "provisioned",
        "action"};
    for (const auto &key : keys)
        EXPECT_NE(json.find("\"" + key + "\":"), std::string::npos)
            << "missing key: " << key;

    // And the block really is conditional: the stationary fixed
    // report must not leak a single traffic_*/autoscaler_* key.
    std::ostringstream plain;
    writeServingJson(plain, fixedServingReport());
    EXPECT_EQ(plain.str().find("traffic_"), std::string::npos);
    EXPECT_EQ(plain.str().find("autoscaler_"), std::string::npos);
}

TEST(ReportGolden, RunAheadAndCostAwareBlocksAreConditional)
{
    // Defaults (depth 1, cost-aware off) must keep every existing
    // golden byte-identical: not one run_ahead_*/cost_aware_* key may
    // appear. A deepened buffer or the cost-aware batcher switches
    // its block on, right after the map-cache counters.
    std::ostringstream plain;
    writeServingJson(plain, fixedServingReport());
    EXPECT_EQ(plain.str().find("run_ahead_"), std::string::npos);
    EXPECT_EQ(plain.str().find("cost_aware_"), std::string::npos);

    ServingReport report = fixedServingReport();
    report.runAheadDepth = 2;
    report.runAheadStaged = 5;
    report.runAheadPeakStaged = 1;
    report.costAware = true;
    report.costHolds = 7;
    report.costDispatches = 4;
    std::ostringstream os;
    writeServingJson(os, report);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"map_cache_hit_rate\":0.75,"
                        "\"run_ahead_depth\":2,"
                        "\"run_ahead_staged\":5,"
                        "\"run_ahead_peak_staged\":1,"
                        "\"cost_aware_holds\":7,"
                        "\"cost_aware_dispatches\":4,"),
              std::string::npos)
        << json;
    checkNumericRoundTrip(json);
}

TEST(ReportGolden, PlanJsonMatchesGolden)
{
    std::ostringstream os;
    writePlanJson(os, fixedPlanReport());
    const std::string expected =
        "{\"planner\":\"capacity\",\"objective\":\"instances\","
        "\"cost_budget\":0,\"slo_max_p99_cycles\":2000,"
        "\"slo_min_throughput_rps\":0,\"feasible\":true,"
        "\"monotone_fleet_axis\":true,\"probes_spent\":2,"
        "\"exhaustive_probes\":8,\"p99_margin_cycles\":499.5,"
        "\"throughput_margin_rps\":0,"
        "\"chosen\":{\"fleet_size\":2,\"cost\":2,\"policy\":\"fifo\","
        "\"batching\":false,\"target_k\":1,\"max_wait_cycles\":0,"
        "\"map_cache\":false,\"p99_cycles\":1500.5,"
        "\"throughput_rps\":2500,\"drop_rate\":0,\"meets_slo\":true},"
        "\"probes\":[{\"fleet_size\":1,\"cost\":1,\"policy\":\"fifo\","
        "\"batching\":false,\"target_k\":1,\"max_wait_cycles\":0,"
        "\"map_cache\":false,\"p99_cycles\":3200,"
        "\"throughput_rps\":1250,\"drop_rate\":0.25,"
        "\"meets_slo\":false},{\"fleet_size\":2,\"cost\":2,"
        "\"policy\":\"fifo\","
        "\"batching\":false,\"target_k\":1,\"max_wait_cycles\":0,"
        "\"map_cache\":false,\"p99_cycles\":1500.5,"
        "\"throughput_rps\":2500,\"drop_rate\":0,"
        "\"meets_slo\":true}]}\n";
    EXPECT_EQ(os.str(), expected);
    checkNumericRoundTrip(os.str());
}

TEST(ReportGolden, HeteroPlanJsonMatchesGolden)
{
    std::ostringstream os;
    writePlanJson(os, fixedHeteroPlanReport());
    const std::string expected =
        "{\"planner\":\"capacity\",\"objective\":\"watts\","
        "\"cost_budget\":120.5,\"slo_max_p99_cycles\":2000,"
        "\"slo_min_throughput_rps\":0,\"feasible\":true,"
        "\"monotone_fleet_axis\":true,\"probes_spent\":2,"
        "\"exhaustive_probes\":12,\"p99_margin_cycles\":250,"
        "\"throughput_margin_rps\":0,"
        "\"chosen\":{\"fleet_size\":3,\"composition\":[2,1],"
        "\"cost\":29.648,\"policy\":\"fifo\","
        "\"batching\":false,\"target_k\":1,\"max_wait_cycles\":0,"
        "\"map_cache\":false,\"p99_cycles\":1750,"
        "\"throughput_rps\":2500,\"drop_rate\":0,\"meets_slo\":true},"
        "\"probes\":[{\"fleet_size\":1,\"composition\":[1,0],"
        "\"cost\":14.096,\"policy\":\"fifo\","
        "\"batching\":false,\"target_k\":1,\"max_wait_cycles\":0,"
        "\"map_cache\":false,\"p99_cycles\":3200,"
        "\"throughput_rps\":1250,\"drop_rate\":0.25,"
        "\"meets_slo\":false},{\"fleet_size\":3,"
        "\"composition\":[2,1],\"cost\":29.648,\"policy\":\"fifo\","
        "\"batching\":false,\"target_k\":1,\"max_wait_cycles\":0,"
        "\"map_cache\":false,\"p99_cycles\":1750,"
        "\"throughput_rps\":2500,\"drop_rate\":0,"
        "\"meets_slo\":true}]}\n";
    EXPECT_EQ(os.str(), expected);
    checkNumericRoundTrip(os.str());

    // The composition array is lattice-only: the homogeneous plan
    // must not emit it.
    std::ostringstream plain;
    writePlanJson(plain, fixedPlanReport());
    EXPECT_EQ(plain.str().find("composition"), std::string::npos);
}

TEST(ReportGolden, PlanJsonSchemaKeysPresent)
{
    std::ostringstream os;
    writePlanJson(os, fixedPlanReport());
    const std::string json = os.str();
    const std::vector<std::string> keys = {
        "planner",            "objective",
        "cost_budget",        "slo_max_p99_cycles",
        "slo_min_throughput_rps", "feasible",
        "monotone_fleet_axis", "probes_spent",
        "exhaustive_probes",  "p99_margin_cycles",
        "throughput_margin_rps", "chosen",
        "probes",             "fleet_size",
        "cost",               "policy",
        "batching",           "target_k",
        "max_wait_cycles",    "map_cache",
        "p99_cycles",         "throughput_rps",
        "drop_rate",          "meets_slo"};
    for (const auto &key : keys)
        EXPECT_NE(json.find("\"" + key + "\":"), std::string::npos)
            << "missing key: " << key;

    // Lattice-only key, pinned on the hetero fixture.
    std::ostringstream hetero;
    writePlanJson(hetero, fixedHeteroPlanReport());
    EXPECT_NE(hetero.str().find("\"composition\":"), std::string::npos);
}

TEST(ReportGolden, ServingJsonSchemaKeysPresent)
{
    // Schema contract: consumers key on these names. A rename must be
    // a conscious, versioned change, not a refactor accident.
    std::ostringstream os;
    writeServingJson(os, fixedServingReport());
    const std::string json = os.str();
    const std::vector<std::string> keys = {
        "freq_ghz",          "horizon_cycles",
        "horizon_ns",        "occupancy",
        "batch_holds",       "generated",
        "admitted",          "dropped",
        "completed",         "failed",
        "leftover_queued",
        "deadline_misses",   "throughput_rps",
        "goodput_rps",
        "drop_rate",         "latency_ms_mean",
        "latency_ms_p50",    "latency_ms_p95",
        "latency_ms_p99",    "latency_ns_p50",
        "latency_ns_p95",    "latency_ns_p99",
        "queue_wait_cycles_mean", "queue_wait_ns_mean",
        "batch_size_mean",
        "map_cache_hits",    "map_cache_misses",
        "map_cache_insertions", "map_cache_evictions",
        "map_cache_bytes_saved", "map_cache_cycles_saved",
        "map_cache_hit_rate",
        "accelerators",      "busy_cycles",
        "busy_ns",           "map_busy_cycles",
        "map_busy_ns",       "backend_busy_cycles",
        "backend_busy_ns",   "batches",
        "requests",          "utilization",
        "map_utilization",   "backend_utilization"};
    for (const auto &key : keys)
        EXPECT_NE(json.find("\"" + key + "\":"), std::string::npos)
            << "missing key: " << key;
}

TEST(ReportGolden, RunResultJsonSchemaKeysPresent)
{
    std::ostringstream os;
    writeJson(os, fixedRunResult());
    const std::string json = os.str();
    const std::vector<std::string> keys = {
        "network",        "accelerator",
        "freq_ghz",       "total_cycles",
        "mapping_cycles", "compute_cycles",
        "exposed_dram_cycles", "map_phase_cycles",
        "backend_phase_cycles", "dram_read_bytes",
        "dram_write_bytes", "total_macs",
        "latency_ms",     "energy_mj",
        "layers",         "cache_miss_rate"};
    for (const auto &key : keys)
        EXPECT_NE(json.find("\"" + key + "\":"), std::string::npos)
            << "missing key: " << key;
}

} // namespace
} // namespace pointacc
