/**
 * @file
 * Tests for the accelerator simulator: analytic mapping costs vs the
 * executed hardware model, configuration invariants, ablation switches
 * (cache / fusion) and whole-network runs.
 */

#include <gtest/gtest.h>

#include "datasets/synthetic.hpp"
#include "mpu/mpu.hpp"
#include "nn/zoo.hpp"
#include "sim/accelerator.hpp"
#include "sim/mapping_cost.hpp"

namespace pointacc {
namespace {

TEST(AccelConfig, Table3Parameters)
{
    const auto full = pointAccConfig();
    EXPECT_EQ(full.mxu.rows * full.mxu.cols, 4096u);
    EXPECT_DOUBLE_EQ(full.peakGops(), 8192.0); // ~8 TOPS
    EXPECT_EQ(full.totalSramKB(), 776u);
    EXPECT_EQ(full.dram.name, "HBM2");

    const auto edge = pointAccEdgeConfig();
    EXPECT_EQ(edge.mxu.rows * edge.mxu.cols, 256u);
    EXPECT_DOUBLE_EQ(edge.peakGops(), 512.0);
    EXPECT_EQ(edge.totalSramKB(), 274u);
    EXPECT_EQ(edge.dram.name, "DDR4-2133");
}

// ---------------------------------------------------------------- //
//        Analytic mapping costs vs executed hardware model          //
// ---------------------------------------------------------------- //

TEST(MappingCost, KernelMapMatchesHardwareModel)
{
    auto cloud = generate(DatasetKind::S3DIS, 7, 0.08);
    MpuConfig mcfg{64, 64, 13};
    MappingUnit mpu(mcfg);
    KernelMapConfig kcfg;
    const auto hw = mpu.kernelMap(cloud, cloud, kcfg);
    const auto est = kernelMapCost(cloud.size(), cloud.size(), 27, mcfg);
    // The analytic count is a documented upper bound: it charges one
    // cycle per window of BOTH streams, while the executed forwarding
    // loop absorbs below-threshold prefixes of the non-advancing
    // stream for free (heavily so when the clouds interleave).
    EXPECT_GE(static_cast<double>(est.cycles),
              static_cast<double>(hw.stats.cycles) * 0.95);
    EXPECT_LE(static_cast<double>(est.cycles),
              static_cast<double>(hw.stats.cycles) * 2.0);
}

TEST(MappingCost, FpsMatchesHardwareModel)
{
    const auto cloud = makeObjectCloud(9, 800, 96);
    MpuConfig mcfg{64, 64, 13};
    MappingUnit mpu(mcfg);
    const auto hw = mpu.farthestPointSampling(cloud, 128);
    const auto est = fpsCost(cloud.size(), 128, mcfg);
    EXPECT_EQ(est.cycles, hw.stats.cycles);
    EXPECT_EQ(est.distanceOps, hw.stats.distanceOps);
}

TEST(MappingCost, KnnMatchesHardwareModel)
{
    const auto input = makeObjectCloud(11, 700, 96);
    const auto queries = makeObjectCloud(12, 30, 96);
    MpuConfig mcfg{64, 64, 13};
    MappingUnit mpu(mcfg);
    const auto hw = mpu.kNearestNeighbors(input, queries, 16);
    const auto est = knnCost(input.size(), queries.size(), 16, mcfg);
    // The analytic model pipelines CD under the sort stages (max
    // instead of sum), so it may sit slightly below the executed
    // serial count.
    EXPECT_GE(static_cast<double>(est.cycles),
              static_cast<double>(hw.stats.cycles) * 0.6);
    EXPECT_LE(static_cast<double>(est.cycles),
              static_cast<double>(hw.stats.cycles) * 1.3);
}

TEST(MappingCost, ScalesWithKernelVolume)
{
    MpuConfig mcfg;
    const auto k27 = kernelMapCost(10000, 10000, 27, mcfg);
    const auto k8 = kernelMapCost(10000, 10000, 8, mcfg);
    EXPECT_NEAR(static_cast<double>(k27.cycles) / k8.cycles, 27.0 / 8.0,
                0.01);
}

// ---------------------------------------------------------------- //
//                       Whole-network runs                          //
// ---------------------------------------------------------------- //

class AcceleratorRun : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cloud = generate(DatasetKind::S3DIS, 5, 0.1);
        accel = std::make_unique<Accelerator>(pointAccConfig());
    }

    PointCloud cloud;
    std::unique_ptr<Accelerator> accel;
};

TEST_F(AcceleratorRun, MinkUNetProducesPositiveStats)
{
    const auto r = accel->run(minkowskiUNetIndoor(), cloud);
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_GT(r.totalMacs, 0u);
    EXPECT_GT(r.latencyMs(), 0.0);
    EXPECT_GT(r.energyMJ(), 0.0);
    EXPECT_GT(r.dramReadBytes, 0u);
    EXPECT_FALSE(r.layers.empty());
    // Cycle conservation: per-layer totals sum to the network total.
    std::uint64_t sum = 0;
    for (const auto &ls : r.layers)
        sum += ls.totalCycles;
    EXPECT_EQ(sum, r.totalCycles);
}

TEST_F(AcceleratorRun, MatMulDominatesOnPointAcc)
{
    // Fig. 21: with mapping supported on-chip and data movement
    // overlapped, MatMul dominates latency.
    const auto r = accel->run(minkowskiUNetIndoor(), cloud);
    EXPECT_GT(r.computeCycles, r.mappingCycles);
    EXPECT_GT(r.computeCycles, r.exposedDramCycles);
}

TEST_F(AcceleratorRun, CacheReducesDram)
{
    RunOptions with, without;
    without.useCache = false;
    const auto rWith = accel->run(minkowskiUNetIndoor(), cloud, with);
    const auto rWithout =
        accel->run(minkowskiUNetIndoor(), cloud, without);
    // Fig. 19: caching cuts layer DRAM access by 3.5-6.3x.
    const double ratio =
        static_cast<double>(rWithout.dramReadBytes +
                            rWithout.dramWriteBytes) /
        static_cast<double>(rWith.dramReadBytes + rWith.dramWriteBytes);
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 20.0);
}

TEST_F(AcceleratorRun, FusionReducesDramOnPointNet)
{
    const auto mn40 = generate(DatasetKind::ModelNet40, 5, 1.0);
    RunOptions with, without;
    without.useFusion = false;
    const auto rWith = accel->run(pointNet(), mn40, with);
    const auto rWithout = accel->run(pointNet(), mn40, without);
    const double reduction =
        1.0 - static_cast<double>(rWith.dramReadBytes +
                                  rWith.dramWriteBytes) /
                  static_cast<double>(rWithout.dramReadBytes +
                                      rWithout.dramWriteBytes);
    // Fig. 20 reports 64% for PointNet counting activations; we also
    // count weight traffic (identical in both modes), which dilutes
    // the ratio. Expect a substantial reduction regardless.
    EXPECT_GT(reduction, 0.2);
    EXPECT_LT(reduction, 0.9);
}

TEST_F(AcceleratorRun, EdgeIsSlowerThanFull)
{
    Accelerator edge(pointAccEdgeConfig());
    const auto rFull = accel->run(minkowskiUNetIndoor(), cloud);
    const auto rEdge = edge.run(minkowskiUNetIndoor(), cloud);
    EXPECT_GT(rEdge.latencyMs(), rFull.latencyMs() * 3.0);
}

TEST_F(AcceleratorRun, EnergyBucketsAllPositive)
{
    const auto r = accel->run(minkowskiUNetIndoor(), cloud);
    EXPECT_GT(r.energy.computePJ, 0.0);
    EXPECT_GT(r.energy.sramPJ, 0.0);
    EXPECT_GT(r.energy.dramPJ, 0.0);
    // Fig. 21b: compute dominates energy on PointAcc (69-74%), DRAM
    // is a minority (~20-23%).
    EXPECT_GT(r.energy.computePJ, r.energy.dramPJ);
}

TEST(AcceleratorAll, EveryBenchmarkRuns)
{
    Accelerator accel(pointAccConfig());
    for (const auto &net : allBenchmarks()) {
        const auto cloud = generate(net.dataset, 21, 0.05);
        const auto r = accel.run(net, cloud);
        EXPECT_GT(r.totalCycles, 0u) << net.notation;
        EXPECT_GT(r.totalMacs, 0u) << net.notation;
        EXPECT_GT(r.energyMJ(), 0.0) << net.notation;
    }
}

} // namespace
} // namespace pointacc
