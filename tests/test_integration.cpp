/**
 * @file
 * Cross-module integration and property tests: end-to-end invariants
 * that hold across the whole simulator, parameterized over networks,
 * datasets and accelerator configurations.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/platform.hpp"
#include "datasets/synthetic.hpp"
#include "mapping/kernel_map.hpp"
#include "mapping/quantize.hpp"
#include "nn/functional.hpp"
#include "nn/zoo.hpp"
#include "sim/accelerator.hpp"
#include "sim/report.hpp"

namespace pointacc {
namespace {

// ---------------------------------------------------------------- //
//     End-to-end functional pipeline: maps -> conv -> residual      //
// ---------------------------------------------------------------- //

TEST(Pipeline, TwoIdentityConvsComposeToIdentity)
{
    auto cloud = generate(DatasetKind::ShapeNet, 3, 0.2);
    randomizeFeatures(cloud, 6, 9);
    KernelMapConfig kcfg;
    const auto maps = sortKernelMap(cloud, cloud, kcfg);
    const auto id = identityWeights(27, 6);

    auto mid = sparseConvForward(cloud, maps, id, cloud.size());
    PointCloud midCloud = cloud;
    midCloud.featureData() = mid;
    const auto out = sparseConvForward(midCloud, maps, id, cloud.size());
    EXPECT_EQ(out, cloud.featureData());
}

TEST(Pipeline, DownThenUpPreservesMass)
{
    // A strided conv followed by its transposed conv must route every
    // input exactly once down and back: with all-ones 1-channel
    // weights and all-ones features, each output of the round trip
    // counts the size of its quantization cell.
    auto cloud = generate(DatasetKind::S3DIS, 5, 0.05);
    cloud.setChannels(1);
    for (std::size_t i = 0; i < cloud.size(); ++i)
        cloud.setFeature(static_cast<PointIndex>(i), 0, 1.0f);

    const auto coarse = quantizeDownsample(cloud, 2);
    KernelMapConfig kcfg;
    kcfg.kernelSize = 2;
    kcfg.outStride = 2;
    const auto down = sortKernelMap(cloud, coarse, kcfg);
    const auto up = transposeMaps(down, 2);

    ConvWeights ones;
    ones.numWeights = 8;
    ones.cin = 1;
    ones.cout = 1;
    ones.data.assign(8, 1.0f);

    const auto pooled = sparseConvForward(cloud, down, ones,
                                          coarse.size());
    double total = 0.0;
    for (float v : pooled)
        total += v;
    EXPECT_DOUBLE_EQ(total, static_cast<double>(cloud.size()));

    PointCloud coarseCloud = coarse;
    coarseCloud.setChannels(1);
    coarseCloud.featureData() = pooled;
    const auto unpooled =
        sparseConvForward(coarseCloud, up, ones, cloud.size());
    // Every fine point receives its cell's count.
    double roundTrip = 0.0;
    for (float v : unpooled)
        roundTrip += v;
    double squares = 0.0;
    for (float v : pooled)
        squares += static_cast<double>(v) * v;
    EXPECT_DOUBLE_EQ(roundTrip, squares);
}

// ---------------------------------------------------------------- //
//          Simulator-level properties across all networks           //
// ---------------------------------------------------------------- //

class NetworkSweep : public ::testing::TestWithParam<int>
{
  protected:
    Network net() const { return allBenchmarks()[GetParam()]; }
};

TEST_P(NetworkSweep, DeterministicAcrossRuns)
{
    const auto network = net();
    const auto cloud = generate(network.dataset, 77, 0.05);
    Accelerator accel(pointAccConfig());
    const auto a = accel.run(network, cloud);
    const auto b = accel.run(network, cloud);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.dramReadBytes, b.dramReadBytes);
    EXPECT_DOUBLE_EQ(a.energy.totalPJ(), b.energy.totalPJ());
}

TEST_P(NetworkSweep, MoreInputPointsNeverFaster)
{
    const auto network = net();
    const auto small = generate(network.dataset, 77, 0.04);
    const auto large = generate(network.dataset, 77, 0.12);
    Accelerator accel(pointAccConfig());
    EXPECT_LE(accel.run(network, small).totalCycles,
              accel.run(network, large).totalCycles);
}

TEST_P(NetworkSweep, EnergyBucketsConsistent)
{
    const auto network = net();
    const auto cloud = generate(network.dataset, 77, 0.05);
    Accelerator accel(pointAccConfig());
    const auto r = accel.run(network, cloud);
    double layerSum = 0.0;
    for (const auto &ls : r.layers)
        layerSum += ls.energy.totalPJ();
    // Totals = per-layer sums + static power integral (> layer sum).
    EXPECT_GE(r.energy.totalPJ(), layerSum);
    EXPECT_GT(r.energy.computePJ, 0.0);
}

TEST_P(NetworkSweep, AblationsNeverImproveBaselineConfig)
{
    // Disabling the cache must not reduce DRAM traffic; disabling
    // fusion must not reduce it either.
    const auto network = net();
    const auto cloud = generate(network.dataset, 77, 0.05);
    Accelerator accel(pointAccConfig());
    RunOptions base;
    RunOptions noCache;
    noCache.useCache = false;
    RunOptions noFusion;
    noFusion.useFusion = false;
    const auto rBase = accel.run(network, cloud, base);
    const auto rNoCache = accel.run(network, cloud, noCache);
    const auto rNoFusion = accel.run(network, cloud, noFusion);
    EXPECT_LE(rBase.dramReadBytes + rBase.dramWriteBytes,
              rNoCache.dramReadBytes + rNoCache.dramWriteBytes);
    EXPECT_LE(rBase.dramReadBytes + rBase.dramWriteBytes,
              rNoFusion.dramReadBytes + rNoFusion.dramWriteBytes);
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, NetworkSweep,
                         ::testing::Range(0, 8),
                         [](const auto &info) {
                             std::string n = allBenchmarks()[info.param]
                                                 .notation;
                             for (auto &c : n) {
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return n;
                         });

// ---------------------------------------------------------------- //
//                     Block-size auto-tuning                        //
// ---------------------------------------------------------------- //

TEST(AutoTune, NeverWorseThanFixedCandidates)
{
    const auto net = minkowskiUNetIndoor();
    const auto cloud = generate(net.dataset, 13, 0.08);
    Accelerator accel(pointAccConfig());

    RunOptions autoOpt;
    autoOpt.cacheBlockPoints = 0;
    const auto rAuto = accel.run(net, cloud, autoOpt);

    for (std::uint32_t block : {4u, 16u, 64u}) {
        RunOptions fixed;
        fixed.cacheBlockPoints = block;
        const auto rFixed = accel.run(net, cloud, fixed);
        EXPECT_LE(rAuto.dramReadBytes, rFixed.dramReadBytes)
            << "block=" << block;
    }
}

// ---------------------------------------------------------------- //
//                           Reporting                               //
// ---------------------------------------------------------------- //

TEST(Report, SummaryMentionsNetworkAndUnits)
{
    const auto net = miniMinkowskiUNet();
    const auto cloud = generate(net.dataset, 3, 0.05);
    Accelerator accel(pointAccEdgeConfig());
    const auto r = accel.run(net, cloud);
    const auto text = summaryText(r);
    EXPECT_NE(text.find("Mini-MinkNet"), std::string::npos);
    EXPECT_NE(text.find("ms"), std::string::npos);
    EXPECT_NE(text.find("mJ"), std::string::npos);
}

TEST(Report, CsvHasHeaderAndOneRowPerLayer)
{
    const auto net = pointNetPPClass();
    const auto cloud = generate(net.dataset, 3, 0.5);
    Accelerator accel(pointAccConfig());
    const auto r = accel.run(net, cloud);

    std::ostringstream os;
    writeLayerCsv(os, r);
    const std::string csv = os.str();
    std::size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, r.layers.size() + 1);
    EXPECT_EQ(csv.find("layer,dense,"), 0u);
}

TEST(Report, CompareOrdersSpeedup)
{
    const auto net = miniMinkowskiUNet();
    const auto cloud = generate(net.dataset, 3, 0.05);
    Accelerator full(pointAccConfig());
    Accelerator edge(pointAccEdgeConfig());
    const auto a = full.run(net, cloud);
    const auto b = edge.run(net, cloud);
    const auto text = compareText(a, b);
    EXPECT_NE(text.find("PointAcc vs PointAcc.Edge"), std::string::npos);
}

// ---------------------------------------------------------------- //
//            Accelerator scaling laws (sanity physics)              //
// ---------------------------------------------------------------- //

TEST(Scaling, DoubleArrayNearlyHalvesComputeCycles)
{
    const auto net = minkowskiUNetIndoor();
    const auto cloud = generate(net.dataset, 13, 0.08);
    auto cfgA = pointAccConfig();
    auto cfgB = pointAccConfig();
    cfgB.mxu = MxuConfig{128, 128};
    const auto rA = Accelerator(cfgA).run(net, cloud);
    const auto rB = Accelerator(cfgB).run(net, cloud);
    const double ratio = static_cast<double>(rA.computeCycles) /
                         static_cast<double>(rB.computeCycles);
    // MinkNet channels (32..256) map raggedly onto a 128-wide array,
    // so the gain is between 1x and the ideal 4x.
    EXPECT_GT(ratio, 1.2);
    EXPECT_LT(ratio, 4.2);
}

TEST(Scaling, SlowerDramExposesStalls)
{
    const auto net = minkowskiUNetOutdoor();
    const auto cloud = generate(net.dataset, 13, 0.05);
    auto fast = pointAccConfig();
    auto slow = pointAccConfig();
    slow.dram = lpddr3Spec(); // 20x less bandwidth than HBM2
    const auto rFast = Accelerator(fast).run(net, cloud);
    const auto rSlow = Accelerator(slow).run(net, cloud);
    EXPECT_GE(rSlow.exposedDramCycles, rFast.exposedDramCycles);
    EXPECT_GT(rSlow.totalCycles, rFast.totalCycles);
}

TEST(Scaling, BaselineEstimatesScaleWithWorkload)
{
    const auto net = minkowskiUNetIndoor();
    const auto small = generate(net.dataset, 7, 0.05);
    const auto large = generate(net.dataset, 7, 0.15);
    const auto wSmall = summarizeWorkload(net, small);
    const auto wLarge = summarizeWorkload(net, large);
    for (const auto *p : {&rtx2080Ti(), &xeonGold6130(), &tpuV3()}) {
        EXPECT_LT(estimatePlatform(*p, net.notation, wSmall).totalMs(),
                  estimatePlatform(*p, net.notation, wLarge).totalMs())
            << p->name;
    }
}

} // namespace
} // namespace pointacc
