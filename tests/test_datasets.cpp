/**
 * @file
 * Unit + property tests for the synthetic dataset generators. The key
 * property is that each generator reproduces the *density regime* of the
 * dataset it stands in for (Fig. 5 of the paper): objects and indoor
 * scenes < 1e-2, outdoor LiDAR < 1e-3.
 */

#include <gtest/gtest.h>

#include "datasets/synthetic.hpp"

namespace pointacc {
namespace {

TEST(DatasetSpecs, CoverAllFiveDatasets)
{
    const auto &specs = allDatasetSpecs();
    ASSERT_EQ(specs.size(), 5u);
    EXPECT_EQ(specs[0].name, "ModelNet40");
    EXPECT_EQ(specs[4].name, "SemanticKITTI");
    EXPECT_EQ(toString(DatasetKind::S3DIS), "S3DIS");
}

TEST(DatasetSpecs, ScalesMatchPaperTable2)
{
    EXPECT_EQ(datasetSpec(DatasetKind::ModelNet40).numPoints, 1024u);
    EXPECT_EQ(datasetSpec(DatasetKind::ShapeNet).numPoints, 2048u);
    EXPECT_GT(datasetSpec(DatasetKind::SemanticKITTI).numPoints, 50000u);
    EXPECT_TRUE(datasetSpec(DatasetKind::ModelNet40).objectScale);
    EXPECT_FALSE(datasetSpec(DatasetKind::SemanticKITTI).objectScale);
}

TEST(Generate, DeterministicForEqualSeeds)
{
    const auto a = generate(DatasetKind::ModelNet40, 99);
    const auto b = generate(DatasetKind::ModelNet40, 99);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.coordinates(), b.coordinates());
}

TEST(Generate, DifferentSeedsDiffer)
{
    const auto a = generate(DatasetKind::ModelNet40, 1);
    const auto b = generate(DatasetKind::ModelNet40, 2);
    EXPECT_NE(a.coordinates(), b.coordinates());
}

TEST(Generate, SortedAndDeduplicated)
{
    for (const auto &spec : allDatasetSpecs()) {
        auto cloud = generate(spec.kind, 7, 0.25);
        EXPECT_TRUE(cloud.isSorted()) << spec.name;
        auto copy = cloud;
        EXPECT_EQ(copy.dedupSorted(), 0u) << spec.name;
        EXPECT_EQ(cloud.tensorStride(), 1) << spec.name;
    }
}

TEST(Generate, ScaleControlsPointBudget)
{
    const auto full = generate(DatasetKind::S3DIS, 3, 0.5);
    const auto quarter = generate(DatasetKind::S3DIS, 3, 0.125);
    EXPECT_GT(full.size(), quarter.size() * 2);
}

class DatasetDensity : public ::testing::TestWithParam<DatasetKind>
{};

TEST_P(DatasetDensity, MatchesPaperRegime)
{
    const auto kind = GetParam();
    const auto &spec = datasetSpec(kind);
    const auto cloud = generate(kind, 42);
    ASSERT_GT(cloud.size(), spec.numPoints / 2) << spec.name;

    const double density = cloud.density();
    // Fig. 5: every point cloud dataset is sparser than 1e-1; outdoor
    // LiDAR datasets are sparser than 1e-3.
    EXPECT_LT(density, 1e-1) << spec.name;
    EXPECT_GT(density, 1e-9) << spec.name;
    if (kind == DatasetKind::KITTI || kind == DatasetKind::SemanticKITTI) {
        EXPECT_LT(density, 1e-3) << spec.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetDensity,
    ::testing::Values(DatasetKind::ModelNet40, DatasetKind::ShapeNet,
                      DatasetKind::KITTI, DatasetKind::S3DIS,
                      DatasetKind::SemanticKITTI),
    [](const auto &info) { return toString(info.param); });

TEST(ObjectCloud, SurfaceNotVolume)
{
    // Surface sampling: point count should grow with the *square* of
    // the grid resolution, not the cube. Check indirectly: density at
    // higher resolution should be much lower.
    const auto coarse = makeObjectCloud(5, 4000, 64);
    const auto fine = makeObjectCloud(5, 4000, 256);
    EXPECT_GT(coarse.density(), fine.density() * 4);
}

TEST(OutdoorScene, HeightExtentIsFlat)
{
    // LiDAR scenes are pancake-shaped: z extent far smaller than x/y.
    const auto cloud = makeOutdoorScene(11, 20000, 2000);
    const auto box = cloud.boundingBox();
    const auto zExtent = box.hi.z - box.lo.z;
    const auto xExtent = box.hi.x - box.lo.x;
    EXPECT_LT(zExtent * 4, xExtent);
}

TEST(RandomizeFeatures, FillsDeterministically)
{
    auto cloud = makeObjectCloud(1, 500, 64);
    randomizeFeatures(cloud, 4, 77);
    auto again = makeObjectCloud(1, 500, 64);
    randomizeFeatures(again, 4, 77);
    EXPECT_EQ(cloud.featureData(), again.featureData());
    EXPECT_EQ(cloud.channels(), 4);
    bool anyNonZero = false;
    for (float v : cloud.featureData()) {
        EXPECT_GE(v, -1.0f);
        EXPECT_LE(v, 1.0f);
        anyNonZero |= v != 0.0f;
    }
    EXPECT_TRUE(anyNonZero);
}

} // namespace
} // namespace pointacc
