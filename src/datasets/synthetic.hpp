/**
 * @file
 * Synthetic point-cloud generators standing in for the paper's datasets.
 *
 * The paper evaluates on ModelNet40 / ShapeNet (objects), S3DIS (indoor
 * scenes) and KITTI / SemanticKITTI (outdoor LiDAR sweeps). Real scans
 * are not redistributable inside this repository, so each generator
 * reproduces the *statistics that drive the simulator*:
 *
 *  - point count (Table 2 scale),
 *  - spatial extent and voxel pitch, hence occupancy density (Fig. 5),
 *  - surface-like structure (points lie on 2-D manifolds embedded in
 *    3-D), which is what determines kernel-map match rates, kNN radii
 *    and cache locality in the hardware models.
 *
 * Object clouds sample primitive surfaces; indoor scenes are rooms with
 * walls and furniture; outdoor scenes emulate a spinning multi-beam
 * LiDAR with ground plane, buildings and cars, including the 1/r density
 * falloff that makes outdoor clouds 100x sparser than indoor ones.
 */

#ifndef POINTACC_DATASETS_SYNTHETIC_HPP
#define POINTACC_DATASETS_SYNTHETIC_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/point_cloud.hpp"

namespace pointacc {

/** The five point-cloud datasets of the paper (Table 2). */
enum class DatasetKind
{
    ModelNet40,    ///< CAD objects, classification
    ShapeNet,      ///< CAD objects, part segmentation
    KITTI,         ///< outdoor LiDAR, detection (frustum-cropped)
    S3DIS,         ///< indoor rooms, semantic segmentation
    SemanticKITTI, ///< outdoor LiDAR full sweeps, semantic segmentation
};

/** Static description of a dataset's scale (mirrors paper Table 2). */
struct DatasetSpec
{
    DatasetKind kind;
    std::string name;
    /** Nominal number of input points fed to the networks. */
    std::size_t numPoints;
    /** Voxel pitch in meters used when quantizing to the integer grid. */
    double voxelSizeM;
    /** Approximate scene extent in meters (cube edge). */
    double extentM;
    /** True for object-scale datasets (normalized into a unit sphere). */
    bool objectScale;
};

/** Specification for a dataset kind. */
const DatasetSpec &datasetSpec(DatasetKind kind);

/** All dataset specs, in paper order. */
const std::vector<DatasetSpec> &allDatasetSpecs();

/** Human-readable name. */
std::string toString(DatasetKind kind);

/**
 * Generate a synthetic cloud for `kind`.
 *
 * @param kind   dataset to imitate
 * @param seed   RNG seed; equal seeds give identical clouds
 * @param scale  multiplies the nominal point count (1.0 = paper scale);
 *               benches use < 1 scales to keep runtimes short
 * @return       deduplicated, coordinate-sorted cloud with tensor
 *               stride 1 and zero feature channels
 */
PointCloud generate(DatasetKind kind, std::uint64_t seed, double scale = 1.0);

/** Generate an object-style cloud with an explicit point budget. */
PointCloud makeObjectCloud(std::uint64_t seed, std::size_t points,
                           std::int32_t gridExtent = 128);

/** Generate an indoor-room cloud with an explicit point budget. */
PointCloud makeIndoorScene(std::uint64_t seed, std::size_t points,
                           std::int32_t gridExtent = 400);

/** Generate an outdoor LiDAR-sweep cloud with an explicit point budget. */
PointCloud makeOutdoorScene(std::uint64_t seed, std::size_t points,
                            std::int32_t gridExtent = 2000);

/**
 * Fill a cloud's features with deterministic pseudo-random values in
 * [-1, 1] so functional layers compute on real data.
 */
void randomizeFeatures(PointCloud &cloud, int channels, std::uint64_t seed);

} // namespace pointacc

#endif // POINTACC_DATASETS_SYNTHETIC_HPP
