#include "datasets/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "core/logging.hpp"
#include "core/rng.hpp"

namespace pointacc {

namespace {

const std::vector<DatasetSpec> specs = {
    {DatasetKind::ModelNet40, "ModelNet40", 1024, 0.02, 2.0, true},
    {DatasetKind::ShapeNet, "ShapeNet", 2048, 0.02, 2.0, true},
    {DatasetKind::KITTI, "KITTI", 16384, 0.05, 80.0, false},
    {DatasetKind::S3DIS, "S3DIS", 32768, 0.05, 20.0, false},
    {DatasetKind::SemanticKITTI, "SemanticKITTI", 98304, 0.05, 160.0, false},
};

/** Quantize float coordinates in [-1,1]^3 onto a grid of +-extent/2. */
Coord3
quantizeUnit(double x, double y, double z, std::int32_t extent)
{
    const double half = extent / 2.0;
    const auto q = [&](double v) {
        return static_cast<std::int32_t>(std::lround(v * half));
    };
    return {q(x), q(y), q(z)};
}

void
finalize(PointCloud &cloud)
{
    cloud.sortByCoord();
    cloud.dedupSorted();
    cloud.setTensorStride(1);
}

/** Sample a point on the surface of a unit sphere. */
void
sampleSphere(Rng &rng, double &x, double &y, double &z)
{
    const double u = rng.uniform(-1.0, 1.0);
    const double theta = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    const double r = std::sqrt(std::max(0.0, 1.0 - u * u));
    x = r * std::cos(theta);
    y = r * std::sin(theta);
    z = u;
}

/** Sample a point on the surface of an axis-aligned box. */
void
sampleBox(Rng &rng, double cx, double cy, double cz, double sx, double sy,
          double sz, double &x, double &y, double &z)
{
    // Pick a face proportional to its area.
    const double ax = sy * sz, ay = sx * sz, az = sx * sy;
    const double pick = rng.uniform(0.0, 2.0 * (ax + ay + az));
    x = cx + rng.uniform(-sx / 2, sx / 2);
    y = cy + rng.uniform(-sy / 2, sy / 2);
    z = cz + rng.uniform(-sz / 2, sz / 2);
    if (pick < 2 * ax) {
        x = cx + (pick < ax ? -sx / 2 : sx / 2);
    } else if (pick < 2 * ax + 2 * ay) {
        y = cy + (pick < 2 * ax + ay ? -sy / 2 : sy / 2);
    } else {
        z = cz + (pick < 2 * ax + 2 * ay + az ? -sz / 2 : sz / 2);
    }
}

} // namespace

const DatasetSpec &
datasetSpec(DatasetKind kind)
{
    for (const auto &s : specs) {
        if (s.kind == kind)
            return s;
    }
    panic("unknown dataset kind");
}

const std::vector<DatasetSpec> &
allDatasetSpecs()
{
    return specs;
}

std::string
toString(DatasetKind kind)
{
    return datasetSpec(kind).name;
}

PointCloud
makeObjectCloud(std::uint64_t seed, std::size_t points, std::int32_t gridExtent)
{
    Rng rng(seed);
    std::vector<Coord3> coords;
    coords.reserve(points);

    // An object is a union of 2-4 primitives (spheres + boxes), like the
    // chairs/tables/planes of ModelNet: thin surfaces, no volume fill.
    const int numParts = 2 + static_cast<int>(rng.range(3));
    struct Part
    {
        bool isBox;
        double cx, cy, cz, sx, sy, sz;
    };
    std::vector<Part> parts;
    for (int p = 0; p < numParts; ++p) {
        Part part;
        part.isBox = rng.uniform() < 0.5;
        part.cx = rng.uniform(-0.4, 0.4);
        part.cy = rng.uniform(-0.4, 0.4);
        part.cz = rng.uniform(-0.4, 0.4);
        part.sx = rng.uniform(0.2, 0.9);
        part.sy = rng.uniform(0.2, 0.9);
        part.sz = rng.uniform(0.2, 0.9);
        parts.push_back(part);
    }

    while (coords.size() < points) {
        const auto &part = parts[rng.range(parts.size())];
        double x, y, z;
        if (part.isBox) {
            sampleBox(rng, part.cx, part.cy, part.cz, part.sx, part.sy,
                      part.sz, x, y, z);
        } else {
            sampleSphere(rng, x, y, z);
            x = part.cx + x * part.sx / 2;
            y = part.cy + y * part.sy / 2;
            z = part.cz + z * part.sz / 2;
        }
        coords.push_back(quantizeUnit(std::clamp(x, -1.0, 1.0),
                                      std::clamp(y, -1.0, 1.0),
                                      std::clamp(z, -1.0, 1.0), gridExtent));
    }

    PointCloud cloud(std::move(coords));
    finalize(cloud);
    return cloud;
}

PointCloud
makeIndoorScene(std::uint64_t seed, std::size_t points, std::int32_t gridExtent)
{
    Rng rng(seed);
    std::vector<Coord3> coords;
    coords.reserve(points);

    // Room: floor + ceiling + 4 walls, plus furniture boxes. Coordinates
    // are expressed in the unit cube then scaled onto the grid.
    struct Box
    {
        double cx, cy, cz, sx, sy, sz;
    };
    std::vector<Box> furniture;
    const int numFurniture = 6 + static_cast<int>(rng.range(7));
    for (int i = 0; i < numFurniture; ++i) {
        furniture.push_back({rng.uniform(-0.7, 0.7), rng.uniform(-0.7, 0.7),
                             rng.uniform(-0.9, -0.4), rng.uniform(0.1, 0.4),
                             rng.uniform(0.1, 0.4), rng.uniform(0.1, 0.5)});
    }

    while (coords.size() < points) {
        double x, y, z;
        const double pick = rng.uniform();
        if (pick < 0.30) { // floor (densest surface in indoor scans)
            x = rng.uniform(-1.0, 1.0);
            y = rng.uniform(-1.0, 1.0);
            z = -1.0;
        } else if (pick < 0.40) { // ceiling
            x = rng.uniform(-1.0, 1.0);
            y = rng.uniform(-1.0, 1.0);
            z = 1.0;
        } else if (pick < 0.70) { // walls
            const bool onX = rng.uniform() < 0.5;
            const double sign = rng.uniform() < 0.5 ? -1.0 : 1.0;
            if (onX) {
                x = sign;
                y = rng.uniform(-1.0, 1.0);
            } else {
                y = sign;
                x = rng.uniform(-1.0, 1.0);
            }
            z = rng.uniform(-1.0, 1.0);
        } else { // furniture
            const auto &b = furniture[rng.range(furniture.size())];
            sampleBox(rng, b.cx, b.cy, b.cz, b.sx, b.sy, b.sz, x, y, z);
        }
        coords.push_back(quantizeUnit(x, y, std::clamp(z, -1.0, 1.0),
                                      gridExtent));
    }

    PointCloud cloud(std::move(coords));
    finalize(cloud);
    return cloud;
}

PointCloud
makeOutdoorScene(std::uint64_t seed, std::size_t points,
                 std::int32_t gridExtent)
{
    Rng rng(seed);
    std::vector<Coord3> coords;
    coords.reserve(points);

    // Spinning LiDAR model: 64 beams with fixed elevation angles hit the
    // ground plane or vertical obstacles (building facades, cars). Range
    // samples follow an exponential-ish distribution so density falls
    // off with distance exactly as in KITTI sweeps.
    const double half = gridExtent / 2.0;
    const int numBuildings = 8 + static_cast<int>(rng.range(8));
    struct Facade
    {
        double angle, dist, width, height;
    };
    std::vector<Facade> facades;
    for (int i = 0; i < numBuildings; ++i) {
        facades.push_back({rng.uniform(0.0, 2 * 3.14159265358979323846),
                           rng.uniform(0.2, 0.9), rng.uniform(0.05, 0.3),
                           rng.uniform(0.05, 0.25)});
    }

    while (coords.size() < points) {
        const double azimuth =
            rng.uniform(0.0, 2.0 * 3.14159265358979323846);
        // Beam elevation: mostly near-horizontal (ground far away),
        // matching the -25..+3 degree fan of automotive LiDARs.
        const double elev = rng.uniform(-0.45, 0.05);
        double x, y, z;

        // Check facade hits first (closest object along the ray wins).
        double hitDist = 1.0; // normalized max range
        double hitHeight = -1.0;
        bool facadeHit = false;
        for (const auto &f : facades) {
            double dAng = std::abs(
                std::remainder(azimuth - f.angle,
                               2.0 * 3.14159265358979323846));
            if (dAng < f.width && f.dist < hitDist) {
                const double zAtHit = f.dist * std::tan(elev) + 0.02;
                if (zAtHit < f.height) {
                    hitDist = f.dist;
                    hitHeight = zAtHit;
                    facadeHit = true;
                }
            }
        }

        if (!facadeHit && elev < -0.01) {
            // Ray hits the ground plane (sensor at normalized height .02)
            hitDist = std::min(1.0, 0.02 / std::tan(-elev));
            hitHeight = -0.02;
        } else if (!facadeHit) {
            continue; // upward ray escapes the scene
        }

        // Range noise.
        hitDist *= 1.0 + 0.01 * rng.gauss();
        x = hitDist * std::cos(azimuth);
        y = hitDist * std::sin(azimuth);
        z = hitHeight;
        if (std::abs(x) > 1 || std::abs(y) > 1)
            continue;
        coords.push_back({static_cast<std::int32_t>(std::lround(x * half)),
                          static_cast<std::int32_t>(std::lround(y * half)),
                          static_cast<std::int32_t>(
                              std::lround(z * half * 0.12))});
    }

    PointCloud cloud(std::move(coords));
    finalize(cloud);
    return cloud;
}

PointCloud
generate(DatasetKind kind, std::uint64_t seed, double scale)
{
    const auto &spec = datasetSpec(kind);
    const auto target = static_cast<std::size_t>(
        std::max(16.0, static_cast<double>(spec.numPoints) * scale));
    const auto extent = static_cast<std::int32_t>(spec.extentM /
                                                  spec.voxelSizeM);
    switch (kind) {
      case DatasetKind::ModelNet40:
      case DatasetKind::ShapeNet:
        return makeObjectCloud(seed, target, extent);
      case DatasetKind::S3DIS:
        return makeIndoorScene(seed, target, extent);
      case DatasetKind::KITTI:
      case DatasetKind::SemanticKITTI:
        return makeOutdoorScene(seed, target, extent);
    }
    panic("unreachable dataset kind");
}

void
randomizeFeatures(PointCloud &cloud, int channels, std::uint64_t seed)
{
    cloud.setChannels(channels);
    Rng rng(seed);
    auto &data = cloud.featureData();
    for (auto &v : data)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
}

} // namespace pointacc
