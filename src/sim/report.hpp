/**
 * @file
 * Reporting helpers: render RunResults as human-readable tables and
 * machine-readable CSV, so downstream users can archive and diff
 * simulation outputs (the role of the paper's result dumps).
 */

#ifndef POINTACC_SIM_REPORT_HPP
#define POINTACC_SIM_REPORT_HPP

#include <ostream>
#include <string>

#include "sim/accelerator.hpp"

namespace pointacc {

/** One-paragraph summary: latency, energy, breakdown shares. */
std::string summaryText(const RunResult &result);

/** Per-layer CSV with a header row:
 *  layer,dense,mapping_cycles,compute_cycles,dram_cycles,total_cycles,
 *  dram_read_bytes,dram_write_bytes,macs,maps,cache_miss_rate,
 *  energy_compute_pj,energy_sram_pj,energy_dram_pj */
void writeLayerCsv(std::ostream &os, const RunResult &result);

/** Side-by-side comparison row for two runs of the same network. */
std::string compareText(const RunResult &a, const RunResult &b);

/**
 * Machine-readable JSON dump of a whole run (totals + per-layer array),
 * the format the BENCH_*.json perf-trajectory tooling consumes.
 */
void writeJson(std::ostream &os, const RunResult &result);

} // namespace pointacc

#endif // POINTACC_SIM_REPORT_HPP
