#include "sim/mapping_cost.hpp"

#include <algorithm>

#include "core/logging.hpp"
#include "mpu/sorting_network.hpp"

namespace pointacc {

namespace {

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Cycles and comparisons of an arbitrary-length Sort/TopK through the
 * forwarding-loop merge tree (Fig. 10b/c), computed on run lengths
 * only. Mirrors StreamMerger::sort: initial windows are bitonic-sorted
 * one per cycle, then runs merge pairwise; with TopK every run is
 * truncated to k.
 */
MappingCost
sortCost(std::uint64_t n, std::uint64_t k, const MpuConfig &cfg)
{
    MappingCost c;
    if (n == 0)
        return c;
    const std::uint64_t half = cfg.mergerWidth / 2;

    // Stage ST: one window per cycle through the bitonic sorter.
    std::uint64_t runs = ceilDiv(n, half);
    c.cycles += runs;
    {
        // N/2-sorter: log^2 stages of N/4 comparators per window.
        std::uint64_t logn = 0;
        for (std::size_t s = half; s > 1; s /= 2)
            ++logn;
        c.comparisons += runs * logn * (logn + 1) / 2 * (half / 2);
    }
    c.sramBytes += n * cfg.elementBytes * 2; // read raw + write runs

    // Merge tree with truncation.
    std::vector<std::uint64_t> lens(runs, half);
    lens.back() = n - (runs - 1) * half;
    if (k > 0) {
        for (auto &len : lens)
            len = std::min(len, k);
    }
    while (lens.size() > 1) {
        std::vector<std::uint64_t> next;
        for (std::size_t i = 0; i + 1 < lens.size(); i += 2) {
            // Short runs pack into shared windows (BF buffering); a
            // truncating merge consumes both windows per cycle since
            // the upper output half is discarded.
            const std::uint64_t perCycle =
                k > 0 ? cfg.mergerWidth : half;
            const std::uint64_t windows =
                ceilDiv(lens[i] + lens[i + 1], perCycle);
            c.cycles += windows;
            c.comparisons += windows * mergeNetworkComparators(
                                           cfg.mergerWidth);
            c.sramBytes += windows * 3 * half * cfg.elementBytes;
            std::uint64_t merged = lens[i] + lens[i + 1];
            if (k > 0)
                merged = std::min(merged, k);
            next.push_back(merged);
        }
        if (lens.size() % 2 == 1)
            next.push_back(lens.back());
        lens = std::move(next);
    }
    return c;
}

} // namespace

MappingCost
kernelMapCost(std::uint64_t num_in, std::uint64_t num_out,
              int kernel_volume, const MpuConfig &cfg)
{
    MappingCost c;
    const std::uint64_t half = cfg.mergerWidth / 2;
    const std::uint64_t windows =
        ceilDiv(num_in, half) + ceilDiv(num_out, half);
    const auto volume = static_cast<std::uint64_t>(
        std::max(kernel_volume, 1));

    c.cycles = volume * windows;
    // Merge network plus the log N intersection-detector stages.
    std::uint64_t diStages = 0;
    for (std::size_t s = cfg.mergerWidth; s > 1; s /= 2)
        ++diStages;
    c.comparisons =
        volume * windows *
        (mergeNetworkComparators(cfg.mergerWidth) +
         diStages * cfg.mergerWidth);
    // Each pass streams both clouds through the sorter buffers and
    // writes the merged stream.
    c.sramBytes = volume * windows * 3 * half * cfg.elementBytes;
    return c;
}

MappingCost
fpsCost(std::uint64_t num_points, std::uint64_t num_samples,
        const MpuConfig &cfg)
{
    MappingCost c;
    if (num_samples == 0 || num_points == 0)
        return c;
    const std::uint64_t passes = num_samples > 0 ? num_samples - 1 : 0;
    c.cycles = passes * ceilDiv(num_points, cfg.distanceLanes);
    c.distanceOps = passes * num_points;
    c.comparisons = passes * 2 * num_points;
    c.sramBytes = passes * num_points * cfg.elementBytes * 2;
    return c;
}

MappingCost
knnCost(std::uint64_t num_inputs, std::uint64_t num_queries, int k,
        const MpuConfig &cfg, std::uint64_t survivors,
        std::uint32_t distance_dims)
{
    MappingCost c;
    if (num_inputs == 0 || num_queries == 0)
        return c;
    // Elements that reach the sorting stages: everything for plain
    // kNN; only in-radius candidates for ball query (the radius
    // comparator in stage CD drops the rest before stage ST).
    const std::uint64_t perQuerySorted =
        survivors > 0 ? std::max<std::uint64_t>(
                            1, ceilDiv(survivors, num_queries))
                      : num_inputs;
    const MappingCost sortPart = sortCost(
        perQuerySorted, static_cast<std::uint64_t>(std::max(k, 1)), cfg);
    // CD and the sort stages are consecutive pipeline stages (Fig. 7):
    // while one query's windows sort, the next query's distances
    // compute. Throughput is set by the slower stage.
    const std::uint64_t dimFactor =
        std::max<std::uint32_t>(distance_dims, 3) / 3;
    const std::uint64_t cdCycles =
        ceilDiv(num_inputs * dimFactor, cfg.distanceLanes);
    c.cycles = num_queries * std::max(cdCycles, sortPart.cycles);
    c.comparisons = num_queries * sortPart.comparisons;
    c.distanceOps = num_queries * num_inputs * dimFactor;
    c.sramBytes = num_queries * sortPart.sramBytes;
    return c;
}

MappingCost
quantizeCost(std::uint64_t num_points, const MpuConfig &cfg)
{
    // Bit clearing is free (wiring); constructing the deduplicated
    // output cloud is a full Sort plus an adjacent-equal compaction,
    // which shares the kernel-mapping DI hardware.
    MappingCost c = sortCost(num_points, 0, cfg);
    return c;
}

MappingCost
mappingOpCost(const MappingOpInfo &op, const MpuConfig &cfg)
{
    switch (op.kind) {
      case MappingOpKind::KernelMap:
        return kernelMapCost(op.inputPoints, op.outputPoints,
                             op.kernelVolume, cfg);
      case MappingOpKind::Fps:
        return fpsCost(op.inputPoints, op.outputPoints, cfg);
      case MappingOpKind::BallQuery:
      case MappingOpKind::Knn:
        return knnCost(op.inputPoints, op.outputPoints, op.k, cfg,
                       op.survivors, op.distanceDims);
      case MappingOpKind::Quantize:
        return quantizeCost(op.inputPoints, cfg);
    }
    panic("unreachable mapping op kind");
}

} // namespace pointacc
