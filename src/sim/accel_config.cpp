#include "sim/accel_config.hpp"

namespace pointacc {

AcceleratorConfig
pointAccConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "PointAcc";
    cfg.freqGHz = 1.0;
    cfg.mxu = MxuConfig{64, 64};
    cfg.mpu = MpuConfig{64, 64, 13};
    cfg.inputBufferKB = 256;
    cfg.weightBufferKB = 128;
    cfg.outputBufferKB = 256;
    cfg.sorterBufferKB = 136;
    cfg.dram = hbm2Spec();
    cfg.areaMm2 = 15.7;
    // Leakage + clock tree + HBM2 PHY static power.
    cfg.energy.staticPowerW = 10.0;
    return cfg;
}

AcceleratorConfig
pointAccEdgeConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "PointAcc.Edge";
    cfg.freqGHz = 1.0;
    cfg.mxu = MxuConfig{16, 16};
    cfg.mpu = MpuConfig{32, 32, 13};
    cfg.inputBufferKB = 96;
    cfg.weightBufferKB = 32;
    cfg.outputBufferKB = 96;
    cfg.sorterBufferKB = 50;
    cfg.dram = ddr4Spec();
    cfg.areaMm2 = 3.9;
    cfg.energy.staticPowerW = 1.2;
    return cfg;
}

} // namespace pointacc
