/**
 * @file
 * Accelerator: the top-level PointAcc performance/energy simulator.
 *
 * Orchestrates the three units over a network execution:
 *  - Mapping Unit cost per mapping operation (analytic, validated
 *    against the executed hardware model);
 *  - Memory Management Unit: fetch-on-demand cache for sparse layers,
 *    temporal fusion for dense chains, DRAM timing/energy;
 *  - Matrix Unit: systolic-array cycles for every matrix op.
 *
 * Per layer, DRAM transfers overlap matrix compute (decoupled
 * orchestration); mapping runs ahead of the consuming layer. The
 * result carries the same breakdowns the paper reports (Fig. 21).
 */

#ifndef POINTACC_SIM_ACCELERATOR_HPP
#define POINTACC_SIM_ACCELERATOR_HPP

#include <string>
#include <vector>

#include "nn/executor.hpp"
#include "sim/accel_config.hpp"
#include "sim/energy_model.hpp"

namespace pointacc {

/** Per-layer simulation record. */
struct LayerStats
{
    std::string name;
    bool isDense = false;
    std::uint64_t mappingCycles = 0;
    std::uint64_t computeCycles = 0;
    std::uint64_t dramCycles = 0;   ///< DRAM transfer time (overlapped)
    std::uint64_t totalCycles = 0;  ///< mapping + max(compute, dram)
    std::uint64_t dramReadBytes = 0;
    std::uint64_t dramWriteBytes = 0;
    std::uint64_t macs = 0;
    std::uint64_t maps = 0;
    double cacheMissRate = 0.0;
    EnergyBreakdown energy;
};

/** Whole-network simulation result. */
struct RunResult
{
    std::string network;
    std::string accelerator;
    std::vector<LayerStats> layers;

    std::uint64_t totalCycles = 0;
    std::uint64_t mappingCycles = 0;
    std::uint64_t computeCycles = 0;
    std::uint64_t exposedDramCycles = 0; ///< stalls not hidden by compute
    std::uint64_t dramReadBytes = 0;
    std::uint64_t dramWriteBytes = 0;
    std::uint64_t totalMacs = 0;
    EnergyBreakdown energy;
    double freqGHz = 1.0;

    /**
     * Two-phase decomposition of the run for pipelined serving: the
     * Mapping Unit front-end runs decoupled from the Matrix Unit +
     * memory back-end, so a serving layer may overlap the mapping
     * phase of one inference with the back-end of the previous one.
     * The two phases partition the run exactly:
     *   mapPhaseCycles() + backendPhaseCycles() == totalCycles
     * (per layer, total = mapping + max(compute, dram), so the
     * back-end share is compute + exposed DRAM stalls).
     */
    std::uint64_t mapPhaseCycles() const { return mappingCycles; }

    std::uint64_t
    backendPhaseCycles() const
    {
        return totalCycles > mappingCycles ? totalCycles - mappingCycles
                                           : 0;
    }

    double latencyMs() const
    {
        return static_cast<double>(totalCycles) / (freqGHz * 1e6);
    }

    double energyMJ() const { return energy.totalMJ(); }

    /** Average power in watts (dynamic only). */
    double
    powerW() const
    {
        const double ms = latencyMs();
        return ms > 0.0 ? energyMJ() / ms : 0.0;
    }
};

/** Simulation knobs (ablation switches). */
struct RunOptions
{
    bool useCache = true;    ///< fetch-on-demand with cached inputs
    bool useFusion = true;   ///< temporal fusion of dense chains
    /** Software-controlled cache block size; 0 = auto-tune per layer
     *  (the compiler behavior of Section 4.2.3: candidate block sizes
     *  are simulated and the one minimizing DRAM fills wins). */
    std::uint32_t cacheBlockPoints = 16;
};

/** The PointAcc simulator. */
class Accelerator
{
  public:
    explicit Accelerator(const AcceleratorConfig &cfg);

    const AcceleratorConfig &config() const { return cfg; }

    /** Simulate one inference of `net` on `input`. */
    RunResult run(const Network &net, const PointCloud &input,
                  const RunOptions &options = {}) const;

  private:
    AcceleratorConfig cfg;
};

} // namespace pointacc

#endif // POINTACC_SIM_ACCELERATOR_HPP
