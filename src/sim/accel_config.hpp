/**
 * @file
 * Accelerator configurations (paper Table 3).
 *
 *            PointAcc          PointAcc.Edge
 *  cores     64 x 64 = 4096    16 x 16 = 256
 *  SRAM      776 KB            274 KB
 *  DRAM      HBM2 256 GB/s     DDR4-2133 17 GB/s
 *  freq      1 GHz             1 GHz
 *  peak      8 TOPS            512 GOPS
 */

#ifndef POINTACC_SIM_ACCEL_CONFIG_HPP
#define POINTACC_SIM_ACCEL_CONFIG_HPP

#include <string>

#include "memory/cache.hpp"
#include "memory/dram.hpp"
#include "mpu/mpu.hpp"
#include "mxu/systolic.hpp"
#include "sim/energy_model.hpp"

namespace pointacc {

/** Full static configuration of one PointAcc instance. */
struct AcceleratorConfig
{
    std::string name;
    double freqGHz = 1.0;
    MxuConfig mxu;
    MpuConfig mpu;
    /** On-chip buffer budget split (KB). */
    std::uint32_t inputBufferKB = 256;
    std::uint32_t weightBufferKB = 128;
    std::uint32_t outputBufferKB = 256;
    std::uint32_t sorterBufferKB = 136;
    DramSpec dram;
    EnergyModel energy;
    double areaMm2 = 0.0;

    std::uint32_t
    totalSramKB() const
    {
        return inputBufferKB + weightBufferKB + outputBufferKB +
               sorterBufferKB;
    }

    /** Peak matrix throughput in GOPS (2 ops per MAC). */
    double
    peakGops() const
    {
        return 2.0 * static_cast<double>(mxu.rows) * mxu.cols * freqGHz;
    }

    /** Input-buffer cache geometry for a given block size. */
    CacheConfig
    cacheConfig(std::uint32_t block_points) const
    {
        CacheConfig c;
        c.capacityBytes = inputBufferKB * 1024;
        c.blockPoints = block_points;
        return c;
    }

    /** Feature-buffer budget available to the temporal fusion stack. */
    std::uint64_t
    fusionBufferBytes() const
    {
        return static_cast<std::uint64_t>(inputBufferKB +
                                          outputBufferKB) *
               1024;
    }
};

/** Full-size PointAcc (server class, Table 3). */
AcceleratorConfig pointAccConfig();

/** PointAcc.Edge (edge class, Table 3). */
AcceleratorConfig pointAccEdgeConfig();

} // namespace pointacc

#endif // POINTACC_SIM_ACCEL_CONFIG_HPP
