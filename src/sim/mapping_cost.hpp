/**
 * @file
 * Analytic Mapping Unit cost functions.
 *
 * The MappingUnit class (src/mpu) executes the hardware dataflow
 * element by element, which is exact but too slow to re-run for every
 * layer of every network on every platform sweep. These functions
 * compute the same cycle counts from the structural parameters alone
 * (window counts, merge-tree shapes, pass counts); tests check them
 * against the executed model.
 */

#ifndef POINTACC_SIM_MAPPING_COST_HPP
#define POINTACC_SIM_MAPPING_COST_HPP

#include "mpu/mpu.hpp"
#include "nn/executor.hpp"

namespace pointacc {

/** Cycle and activity estimate for one mapping operation. */
struct MappingCost
{
    std::uint64_t cycles = 0;
    std::uint64_t comparisons = 0;
    std::uint64_t distanceOps = 0;
    std::uint64_t sramBytes = 0;

    MappingCost &
    operator+=(const MappingCost &o)
    {
        cycles += o.cycles;
        comparisons += o.comparisons;
        distanceOps += o.distanceOps;
        sramBytes += o.sramBytes;
        return *this;
    }
};

/** Kernel mapping: one merge pass (+DI) per kernel offset. */
MappingCost kernelMapCost(std::uint64_t num_in, std::uint64_t num_out,
                          int kernel_volume, const MpuConfig &cfg);

/** Farthest point sampling: one CD pass per selected point. */
MappingCost fpsCost(std::uint64_t num_points, std::uint64_t num_samples,
                    const MpuConfig &cfg);

/** kNN / ball query: distance pass pipelined with a truncated
 *  merge-sort per query. `survivors` (total across queries) bounds the
 *  sorted set for radius-filtered ball query; 0 = sort everything. */
MappingCost knnCost(std::uint64_t num_inputs, std::uint64_t num_queries,
                    int k, const MpuConfig &cfg,
                    std::uint64_t survivors = 0,
                    std::uint32_t distance_dims = 3);

/** Coordinate quantization: bit-clear pass + dedup sort. */
MappingCost quantizeCost(std::uint64_t num_points, const MpuConfig &cfg);

/** Dispatch on a MappingOpInfo emitted by the network executor. */
MappingCost mappingOpCost(const MappingOpInfo &op, const MpuConfig &cfg);

} // namespace pointacc

#endif // POINTACC_SIM_MAPPING_COST_HPP
