#include "sim/accelerator.hpp"

#include <algorithm>

#include "core/logging.hpp"
#include "memory/dram.hpp"
#include "memory/flows.hpp"
#include "memory/fusion.hpp"
#include "mxu/systolic.hpp"
#include "sim/mapping_cost.hpp"

namespace pointacc {

namespace {

/** Buffered description of one dense layer inside a fusion chain. */
struct PendingDense
{
    std::string name;
    std::uint64_t rows = 0;
    std::uint32_t cin = 0;
    std::uint32_t cout = 0;
    std::uint64_t macs = 0;
};

/** Mutable simulation context while visiting layers. */
struct SimContext
{
    const AcceleratorConfig *cfg = nullptr;
    const RunOptions *options = nullptr;
    RunResult *result = nullptr;
    MatrixUnit mxu;
    std::vector<PendingDense> chain;
    std::int32_t chainId = -1;

    explicit SimContext(const AcceleratorConfig &c) : mxu(c.mxu) {}
};

/** Convert DRAM bytes to transfer cycles on the configured memory. */
std::uint64_t
dramCyclesFor(const AcceleratorConfig &cfg, std::uint64_t read_bytes,
              std::uint64_t write_bytes)
{
    DramModel dram(cfg.dram);
    dram.readSequential(read_bytes);
    dram.writeSequential(write_bytes);
    return dram.cycles(cfg.freqGHz);
}

double
dramEnergyFor(const AcceleratorConfig &cfg, std::uint64_t bytes)
{
    return static_cast<double>(bytes) * 8.0 * cfg.dram.energyPerBitPJ;
}

void
finishLayer(SimContext &ctx, LayerStats &&ls)
{
    ls.totalCycles = ls.mappingCycles +
                     std::max(ls.computeCycles, ls.dramCycles);
    auto &r = *ctx.result;
    r.totalCycles += ls.totalCycles;
    r.mappingCycles += ls.mappingCycles;
    r.computeCycles += ls.computeCycles;
    if (ls.dramCycles > ls.computeCycles)
        r.exposedDramCycles += ls.dramCycles - ls.computeCycles;
    r.dramReadBytes += ls.dramReadBytes;
    r.dramWriteBytes += ls.dramWriteBytes;
    r.totalMacs += ls.macs;
    r.energy += ls.energy;
    r.layers.push_back(std::move(ls));
}

/** Flush a buffered dense chain through the fusion planner. */
void
flushChain(SimContext &ctx)
{
    if (ctx.chain.empty())
        return;
    const auto &cfg = *ctx.cfg;
    const auto &opt = *ctx.options;

    // Split the chain wherever the row count changes (fusion tiles the
    // point dimension, so fused layers must share it).
    std::size_t start = 0;
    while (start < ctx.chain.size()) {
        std::size_t end = start + 1;
        while (end < ctx.chain.size() &&
               ctx.chain[end].rows == ctx.chain[start].rows) {
            ++end;
        }
        const std::uint64_t rows = ctx.chain[start].rows;

        std::vector<std::uint32_t> channels;
        channels.push_back(ctx.chain[start].cin);
        for (std::size_t i = start; i < end; ++i)
            channels.push_back(ctx.chain[i].cout);

        FusionPlan plan;
        if (opt.useFusion) {
            plan = planFusion(channels,
                              static_cast<std::uint32_t>(std::max<
                                  std::uint64_t>(rows, 1)),
                              cfg.fusionBufferBytes());
        } else {
            for (std::size_t l = 0; l + 1 < channels.size(); ++l)
                plan.groups.push_back({l, 1, 1024});
        }

        // One LayerStats per fusion group (the group is the schedule
        // unit: intermediates stay on chip inside it).
        for (const auto &g : plan.groups) {
            LayerStats ls;
            ls.isDense = true;
            ls.name = ctx.chain[start + g.firstLayer].name;
            if (g.numLayers > 1)
                ls.name += " (+" + std::to_string(g.numLayers - 1) +
                           " fused)";

            MxuStats mxuStats;
            std::uint64_t weightBytes = 0;
            for (std::size_t l = 0; l < g.numLayers; ++l) {
                const auto &pd = ctx.chain[start + g.firstLayer + l];
                mxuStats += ctx.mxu.denseMatmul(pd.rows, pd.cin, pd.cout);
                ls.macs += pd.macs;
                weightBytes += static_cast<std::uint64_t>(pd.cin) *
                               pd.cout * 2;
            }
            ls.computeCycles = mxuStats.cycles;

            const std::uint32_t cinFirst = channels[g.firstLayer];
            const std::uint32_t coutLast =
                channels[g.firstLayer + g.numLayers];
            ls.dramReadBytes = rows * 2ULL * cinFirst + weightBytes;
            ls.dramWriteBytes = rows * 2ULL * coutLast;
            ls.dramCycles = dramCyclesFor(cfg, ls.dramReadBytes,
                                          ls.dramWriteBytes);

            ls.energy.computePJ =
                static_cast<double>(ls.macs) * cfg.energy.macPJ;
            ls.energy.sramPJ =
                static_cast<double>(mxuStats.inputSramBytes +
                                    mxuStats.weightSramBytes +
                                    mxuStats.outputSramBytes) *
                cfg.energy.sramSmallPJPerByte;
            ls.energy.dramPJ = dramEnergyFor(
                cfg, ls.dramReadBytes + ls.dramWriteBytes);
            finishLayer(ctx, std::move(ls));
        }
        start = end;
    }
    ctx.chain.clear();
}

void
simulateSparse(SimContext &ctx, const LayerWork &w)
{
    const auto &cfg = *ctx.cfg;
    const auto &opt = *ctx.options;

    LayerStats ls;
    ls.name = w.name;
    ls.isDense = false;
    ls.macs = w.macs;
    ls.maps = w.maps ? w.maps->size() : 0;

    // --- Mapping Unit ------------------------------------------------
    MappingCost mapCost;
    for (const auto &op : w.mappingOps)
        mapCost += mappingOpCost(op, cfg.mpu);
    ls.mappingCycles = mapCost.cycles;

    // --- Memory Management Unit --------------------------------------
    SparseLayerShape shape;
    shape.numInputs = static_cast<std::uint32_t>(w.numIn);
    shape.numOutputs = static_cast<std::uint32_t>(w.numOut);
    shape.inChannels = w.cin;
    shape.outChannels = w.cout;

    FlowTraffic traffic;
    if (w.maps) {
        if (opt.useCache) {
            FetchOnDemandResult fod;
            if (opt.cacheBlockPoints == 0) {
                // Compiler pass: pick the block size that minimizes
                // DRAM fill traffic for this layer's maps.
                std::uint64_t best = ~0ULL;
                for (std::uint32_t candidate : {4u, 16u, 64u}) {
                    auto trial = fetchOnDemandTraffic(
                        *w.maps, shape, cfg.cacheConfig(candidate),
                        cfg.mxu.rows);
                    if (trial.cache.missBytes < best) {
                        best = trial.cache.missBytes;
                        fod = std::move(trial);
                    }
                }
            } else {
                fod = fetchOnDemandTraffic(
                    *w.maps, shape,
                    cfg.cacheConfig(opt.cacheBlockPoints),
                    cfg.mxu.rows);
            }
            traffic = fod.traffic;
            ls.cacheMissRate = fod.cache.missRate();
        } else {
            traffic = gatherMatMulScatterTraffic(*w.maps, shape);
            ls.cacheMissRate = 1.0;
        }
    }
    ls.dramReadBytes = traffic.inputReadBytes + traffic.scratchReadBytes +
                       traffic.weightReadBytes;
    ls.dramWriteBytes = traffic.outputWriteBytes +
                        traffic.scratchWriteBytes;
    // Map FIFO spill: maps stream to/from DRAM once when they exceed
    // the sorter buffer (12 bytes per map).
    const std::uint64_t mapBytes = ls.maps * 12ULL;
    if (mapBytes > cfg.sorterBufferKB * 1024ULL) {
        ls.dramReadBytes += mapBytes;
        ls.dramWriteBytes += mapBytes;
    }
    ls.dramCycles = dramCyclesFor(cfg, ls.dramReadBytes,
                                  ls.dramWriteBytes);

    // --- Matrix Unit --------------------------------------------------
    MxuStats mxuStats;
    if (w.maps) {
        mxuStats = ctx.mxu.sparseConv(*w.maps, w.cin, w.cout);
    } else {
        mxuStats = ctx.mxu.denseMatmul(w.numOut, w.cin, w.cout);
    }
    ls.computeCycles = mxuStats.cycles;

    // --- Energy --------------------------------------------------------
    ls.energy.computePJ =
        static_cast<double>(ls.macs) * cfg.energy.macPJ +
        static_cast<double>(mapCost.comparisons) *
            cfg.energy.comparatorPJ +
        static_cast<double>(mapCost.distanceOps) * cfg.energy.distancePJ;
    ls.energy.sramPJ =
        static_cast<double>(mxuStats.inputSramBytes +
                            mxuStats.weightSramBytes +
                            mxuStats.outputSramBytes) *
            cfg.energy.sramSmallPJPerByte +
        static_cast<double>(mapCost.sramBytes) *
            cfg.energy.sramSmallPJPerByte;
    ls.energy.dramPJ =
        dramEnergyFor(cfg, ls.dramReadBytes + ls.dramWriteBytes);

    finishLayer(ctx, std::move(ls));
}

} // namespace

Accelerator::Accelerator(const AcceleratorConfig &cfg_) : cfg(cfg_) {}

RunResult
Accelerator::run(const Network &net, const PointCloud &input,
                 const RunOptions &options) const
{
    RunResult result;
    result.network = net.notation;
    result.accelerator = cfg.name;
    result.freqGHz = cfg.freqGHz;

    SimContext ctx(cfg);
    ctx.cfg = &cfg;
    ctx.options = &options;
    ctx.result = &result;

    executeNetwork(net, input, [&](const LayerWork &w) {
        if (w.isDense) {
            if (w.denseChainId != ctx.chainId)
                flushChain(ctx);
            ctx.chainId = w.denseChainId;
            ctx.chain.push_back(
                {w.name, w.numIn, w.cin, w.cout, w.macs});
            return;
        }
        flushChain(ctx);
        ctx.chainId = -1;
        simulateSparse(ctx, w);
    });
    flushChain(ctx);

    // Static power (leakage, clock tree, DRAM PHY) integrates over the
    // whole run, attributed by area/structure: ~70% logic, ~5% SRAM
    // periphery, ~25% DRAM interface PHY.
    const double seconds =
        static_cast<double>(result.totalCycles) / (cfg.freqGHz * 1e9);
    const double staticPJ = cfg.energy.staticPowerW * seconds * 1e12;
    result.energy.computePJ += 0.70 * staticPJ;
    result.energy.sramPJ += 0.05 * staticPJ;
    result.energy.dramPJ += 0.25 * staticPJ;
    return result;
}

} // namespace pointacc
