#include "sim/report.hpp"

#include <iomanip>
#include <sstream>

#include "core/json.hpp"

namespace pointacc {

std::string
summaryText(const RunResult &result)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(3);
    os << result.network << " on " << result.accelerator << ": "
       << result.latencyMs() << " ms, " << result.energyMJ() << " mJ";
    const auto total = static_cast<double>(result.totalCycles);
    if (total > 0) {
        os << std::setprecision(1) << " (matmul "
           << 100.0 * static_cast<double>(result.computeCycles) / total
           << "%, mapping "
           << 100.0 * static_cast<double>(result.mappingCycles) / total
           << "%, exposed DRAM "
           << 100.0 * static_cast<double>(result.exposedDramCycles) /
                  total
           << "%)";
    }
    return os.str();
}

void
writeLayerCsv(std::ostream &os, const RunResult &result)
{
    os << "layer,dense,mapping_cycles,compute_cycles,dram_cycles,"
          "total_cycles,dram_read_bytes,dram_write_bytes,macs,maps,"
          "cache_miss_rate,energy_compute_pj,energy_sram_pj,"
          "energy_dram_pj\n";
    for (const auto &ls : result.layers) {
        os << ls.name << ',' << (ls.isDense ? 1 : 0) << ','
           << ls.mappingCycles << ',' << ls.computeCycles << ','
           << ls.dramCycles << ',' << ls.totalCycles << ','
           << ls.dramReadBytes << ',' << ls.dramWriteBytes << ','
           << ls.macs << ',' << ls.maps << ',' << ls.cacheMissRate
           << ',' << ls.energy.computePJ << ',' << ls.energy.sramPJ
           << ',' << ls.energy.dramPJ << '\n';
    }
}

std::string
compareText(const RunResult &a, const RunResult &b)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    const double speedup = b.latencyMs() / a.latencyMs();
    const double energy = b.energyMJ() / a.energyMJ();
    os << a.accelerator << " vs " << b.accelerator << " on " << a.network
       << ": " << speedup << "x latency, " << energy << "x energy";
    return os.str();
}

void
writeJson(std::ostream &os, const RunResult &result)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("network", result.network);
    w.field("accelerator", result.accelerator);
    w.field("freq_ghz", result.freqGHz);
    w.field("total_cycles", result.totalCycles);
    w.field("mapping_cycles", result.mappingCycles);
    w.field("compute_cycles", result.computeCycles);
    w.field("exposed_dram_cycles", result.exposedDramCycles);
    w.field("map_phase_cycles", result.mapPhaseCycles());
    w.field("backend_phase_cycles", result.backendPhaseCycles());
    w.field("dram_read_bytes", result.dramReadBytes);
    w.field("dram_write_bytes", result.dramWriteBytes);
    w.field("total_macs", result.totalMacs);
    w.field("latency_ms", result.latencyMs());
    w.field("energy_mj", result.energyMJ());
    w.field("energy_compute_pj", result.energy.computePJ);
    w.field("energy_sram_pj", result.energy.sramPJ);
    w.field("energy_dram_pj", result.energy.dramPJ);
    w.key("layers").beginArray();
    for (const auto &ls : result.layers) {
        w.beginObject();
        w.field("name", ls.name);
        w.field("dense", ls.isDense);
        w.field("mapping_cycles", ls.mappingCycles);
        w.field("compute_cycles", ls.computeCycles);
        w.field("dram_cycles", ls.dramCycles);
        w.field("total_cycles", ls.totalCycles);
        w.field("dram_read_bytes", ls.dramReadBytes);
        w.field("dram_write_bytes", ls.dramWriteBytes);
        w.field("macs", ls.macs);
        w.field("maps", ls.maps);
        w.field("cache_miss_rate", ls.cacheMissRate);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace pointacc
