#include "sim/report.hpp"

#include <iomanip>
#include <sstream>

namespace pointacc {

std::string
summaryText(const RunResult &result)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(3);
    os << result.network << " on " << result.accelerator << ": "
       << result.latencyMs() << " ms, " << result.energyMJ() << " mJ";
    const auto total = static_cast<double>(result.totalCycles);
    if (total > 0) {
        os << std::setprecision(1) << " (matmul "
           << 100.0 * static_cast<double>(result.computeCycles) / total
           << "%, mapping "
           << 100.0 * static_cast<double>(result.mappingCycles) / total
           << "%, exposed DRAM "
           << 100.0 * static_cast<double>(result.exposedDramCycles) /
                  total
           << "%)";
    }
    return os.str();
}

void
writeLayerCsv(std::ostream &os, const RunResult &result)
{
    os << "layer,dense,mapping_cycles,compute_cycles,dram_cycles,"
          "total_cycles,dram_read_bytes,dram_write_bytes,macs,maps,"
          "cache_miss_rate,energy_compute_pj,energy_sram_pj,"
          "energy_dram_pj\n";
    for (const auto &ls : result.layers) {
        os << ls.name << ',' << (ls.isDense ? 1 : 0) << ','
           << ls.mappingCycles << ',' << ls.computeCycles << ','
           << ls.dramCycles << ',' << ls.totalCycles << ','
           << ls.dramReadBytes << ',' << ls.dramWriteBytes << ','
           << ls.macs << ',' << ls.maps << ',' << ls.cacheMissRate
           << ',' << ls.energy.computePJ << ',' << ls.energy.sramPJ
           << ',' << ls.energy.dramPJ << '\n';
    }
}

std::string
compareText(const RunResult &a, const RunResult &b)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    const double speedup = b.latencyMs() / a.latencyMs();
    const double energy = b.energyMJ() / a.energyMJ();
    os << a.accelerator << " vs " << b.accelerator << " on " << a.network
       << ": " << speedup << "x latency, " << energy << "x energy";
    return os.str();
}

} // namespace pointacc
