/**
 * @file
 * Energy model (CACTI substitute), 40 nm technology node.
 *
 * The paper derives SRAM energy from CACTI and DRAM energy from the
 * Ramulator command trace; compute energy comes from synthesized-gate
 * switching activity. Here each primitive has a per-operation energy
 * constant at 40 nm, and unit statistics (MAC counts, comparator
 * activations, SRAM/DRAM bytes) multiply through. Constants follow the
 * published 40/45 nm numbers (Horowitz ISSCC'14 scaling): a 16-bit MAC
 * ~1 pJ, small-SRAM access ~0.6 pJ/B, large-SRAM ~1.4 pJ/B.
 */

#ifndef POINTACC_SIM_ENERGY_MODEL_HPP
#define POINTACC_SIM_ENERGY_MODEL_HPP

#include <cstdint>

namespace pointacc {

/** Per-operation energy constants (picojoules). */
struct EnergyModel
{
    double macPJ = 1.0;             ///< 16-bit multiply-accumulate
    double comparatorPJ = 0.15;     ///< 64-bit compare-exchange
    double distancePJ = 3.0;        ///< 3-D squared distance (3 MACs)
    double sramSmallPJPerByte = 0.6;///< <= 64 KB arrays (unit buffers)
    double sramLargePJPerByte = 1.4;///< global buffer
    double staticPowerW = 0.25;     ///< leakage + clock tree
};

/** Fig. 21(b) energy buckets. */
struct EnergyBreakdown
{
    double computePJ = 0.0;
    double sramPJ = 0.0;
    double dramPJ = 0.0;

    double totalPJ() const { return computePJ + sramPJ + dramPJ; }

    double totalMJ() const { return totalPJ() * 1e-9; }

    EnergyBreakdown &
    operator+=(const EnergyBreakdown &o)
    {
        computePJ += o.computePJ;
        sramPJ += o.sramPJ;
        dramPJ += o.dramPJ;
        return *this;
    }
};

} // namespace pointacc

#endif // POINTACC_SIM_ENERGY_MODEL_HPP
