/**
 * @file
 * DRAM traffic models of the two sparse-convolution computation flows
 * (Section 4.2.3, Fig. 11c and Fig. 17 right):
 *
 *  - Gather-MatMul-Scatter (GPU reference): gather input features into
 *    a contiguous matrix, run dense MatMul, scatter-accumulate partial
 *    sums. Input features cross DRAM three times (random read for the
 *    gather, sequential write of the gathered matrix, sequential read
 *    for the MatMul), and partial sums cross twice more.
 *
 *  - Fetch-on-Demand (PointAcc): stream maps, fetch input features
 *    through the configurable cache, keep partial sums on chip
 *    (output-stationary outer loop), write each output exactly once.
 *
 * Both models take the *actual* MapSet of the layer, so traffic ratios
 * (the >= 3x input-feature saving, Fig. 19's 3.5-6.3x total reduction)
 * emerge from real map statistics rather than assumptions.
 */

#ifndef POINTACC_MEMORY_FLOWS_HPP
#define POINTACC_MEMORY_FLOWS_HPP

#include "mapping/maps.hpp"
#include "memory/cache.hpp"

namespace pointacc {

/** Shape of one sparse convolution layer. */
struct SparseLayerShape
{
    std::uint32_t numInputs = 0;   ///< input points
    std::uint32_t numOutputs = 0;  ///< output points
    std::uint32_t inChannels = 0;
    std::uint32_t outChannels = 0;
    std::uint32_t bytesPerFeature = 2; ///< fp16
};

/** DRAM traffic of one layer under a given flow. */
struct FlowTraffic
{
    std::uint64_t inputReadBytes = 0;   ///< input feature reads
    std::uint64_t scratchWriteBytes = 0;///< gathered-matrix / psum writes
    std::uint64_t scratchReadBytes = 0; ///< gathered-matrix / psum reads
    std::uint64_t outputWriteBytes = 0; ///< final output writes
    std::uint64_t weightReadBytes = 0;  ///< weight loads

    std::uint64_t
    totalBytes() const
    {
        return inputReadBytes + scratchWriteBytes + scratchReadBytes +
               outputWriteBytes + weightReadBytes;
    }
};

/** Traffic of the Gather-MatMul-Scatter reference flow. */
FlowTraffic gatherMatMulScatterTraffic(const MapSet &maps,
                                       const SparseLayerShape &shape);

/** Result of the fetch-on-demand flow: traffic plus cache behavior. */
struct FetchOnDemandResult
{
    FlowTraffic traffic;
    CacheStats cache;
};

/**
 * Traffic of PointAcc's Fetch-on-Demand flow with the input buffers in
 * cache mode.
 *
 * The loop nest matches Section 4.2.2: output-stationary outer tiles
 * (sized so one tile's partial sums fit the output buffers), then
 * weight-stationary passes over the maps, then input-channel tiles of
 * the systolic-array height.
 *
 * @param maps        layer maps grouped by weight, output-sorted
 * @param shape       layer dimensions
 * @param cache_cfg   input-buffer cache geometry (blockChannels is
 *                    overridden to the full channel width: one fill
 *                    brings all channels of a point block)
 * @param ic_tile     input-channel tile width (systolic rows)
 * @param out_tile    output-stationary tile size in points (0 = derive
 *                    from cache capacity)
 */
FetchOnDemandResult
fetchOnDemandTraffic(const MapSet &maps, const SparseLayerShape &shape,
                     const CacheConfig &cache_cfg,
                     std::uint32_t ic_tile = 64,
                     std::uint32_t out_tile = 0);

/** Traffic of a dense (FC / 1x1 conv) layer: stream in, stream out. */
FlowTraffic denseLayerTraffic(std::uint32_t num_points,
                              std::uint32_t in_channels,
                              std::uint32_t out_channels,
                              std::uint32_t bytes_per_feature = 2);

} // namespace pointacc

#endif // POINTACC_MEMORY_FLOWS_HPP
