#include "memory/cache.hpp"

#include <algorithm>

namespace pointacc {

FeatureCache::FeatureCache(const CacheConfig &cfg_, std::uint32_t num_points,
                           std::uint32_t num_channels)
    : cfg(cfg_),
      channelBlocks(std::max<std::uint32_t>(
          1, (num_channels + cfg_.blockChannels - 1) / cfg_.blockChannels)),
      bytesPerBlock(cfg_.blockPoints *
                    std::min(cfg_.blockChannels, std::max<std::uint32_t>(
                                                     num_channels, 1)) *
                    cfg_.bytesPerFeature),
      blockCount(std::max<std::uint32_t>(
          1, cfg_.capacityBytes / std::max<std::uint32_t>(bytesPerBlock, 1))),
      tags(blockCount, MirMode::TagArray)
{
    (void)num_points;
}

bool
FeatureCache::access(std::uint32_t point, std::uint32_t channel_base)
{
    ++cacheStats.accesses;
    // Block id: (point block, channel block) flattened. The tag array
    // direct-maps it onto the MIR slots.
    const std::uint32_t pointBlock = point / cfg.blockPoints;
    const std::uint32_t channelBlock = channel_base / cfg.blockChannels;
    const std::int32_t blockId = static_cast<std::int32_t>(
        pointBlock * channelBlocks + channelBlock);

    if (tags.lookup(blockId))
        return true;

    ++cacheStats.misses;
    cacheStats.missBytes += bytesPerBlock;
    Mir mir;
    mir.tileId = blockId;
    mir.capacity = bytesPerBlock;
    mir.occupancy = bytesPerBlock;
    tags.install(mir);
    return false;
}

} // namespace pointacc
