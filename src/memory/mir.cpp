#include "memory/mir.hpp"

namespace pointacc {

MirContainer::MirContainer(std::size_t num_entries, MirMode mode)
    : entries(num_entries), containerMode(mode), slots(num_entries)
{
    simAssert(num_entries > 0, "MIR container needs at least one entry");
}

void
MirContainer::setMode(MirMode mode)
{
    simAssert(live.empty(), "cannot switch MIR mode with live tiles");
    containerMode = mode;
    slots.assign(entries, std::nullopt);
}

std::optional<std::size_t>
MirContainer::lookup(std::int32_t tag) const
{
    simAssert(containerMode == MirMode::TagArray,
              "lookup requires TagArray mode");
    const std::size_t slot = static_cast<std::size_t>(
        static_cast<std::uint32_t>(tag)) % entries;
    if (slots[slot] && slots[slot]->tileId == tag)
        return slot;
    return std::nullopt;
}

std::size_t
MirContainer::install(const Mir &mir)
{
    simAssert(containerMode == MirMode::TagArray,
              "install requires TagArray mode");
    const std::size_t slot = static_cast<std::size_t>(
        static_cast<std::uint32_t>(mir.tileId)) % entries;
    slots[slot] = mir;
    return slot;
}

void
MirContainer::pushBack(const Mir &mir)
{
    simAssert(containerMode == MirMode::Fifo, "pushBack requires Fifo");
    simAssert(!full(), "MIR FIFO overflow");
    live.push_back(mir);
}

Mir
MirContainer::popFront()
{
    simAssert(containerMode == MirMode::Fifo, "popFront requires Fifo");
    simAssert(!live.empty(), "MIR FIFO underflow");
    Mir mir = live.front();
    live.pop_front();
    return mir;
}

void
MirContainer::push(const Mir &mir)
{
    simAssert(containerMode == MirMode::Stack, "push requires Stack");
    simAssert(!full(), "MIR stack overflow");
    live.push_back(mir);
}

Mir
MirContainer::pop()
{
    simAssert(containerMode == MirMode::Stack, "pop requires Stack");
    simAssert(!live.empty(), "MIR stack underflow");
    Mir mir = live.back();
    live.pop_back();
    return mir;
}

Mir &
MirContainer::top()
{
    simAssert(containerMode == MirMode::Stack, "top requires Stack");
    simAssert(!live.empty(), "MIR stack empty");
    return live.back();
}

const Mir &
MirContainer::top() const
{
    simAssert(containerMode == MirMode::Stack, "top requires Stack");
    simAssert(!live.empty(), "MIR stack empty");
    return live.back();
}

} // namespace pointacc
