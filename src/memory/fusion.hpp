/**
 * @file
 * Temporal layer fusion of consecutive dense (FC) layers.
 *
 * Section 4.2.4 / Fig. 12: instead of spatially pipelining fused
 * layers (which fixes their number and requires matched throughput),
 * PointAcc fuses *temporally*: the MIR Container becomes a stack whose
 * top entry is the layer currently computing; intermediate features
 * never travel to DRAM. The point dimension acts as batch, so tiles
 * need no halo. The fusion plan — how many consecutive FCs fuse, and
 * the point-tile size — is decided at compile time with the greedy
 * shrink-until-it-fits algorithm the paper describes.
 */

#ifndef POINTACC_MEMORY_FUSION_HPP
#define POINTACC_MEMORY_FUSION_HPP

#include <cstdint>
#include <vector>

#include "memory/mir.hpp"

namespace pointacc {

/** One group of fused FC layers. */
struct FusionGroup
{
    std::size_t firstLayer = 0; ///< index into the chain's FC list
    std::size_t numLayers = 0;  ///< layers fused together (>= 1)
    std::uint32_t tilePoints = 0; ///< point-tile size chosen
};

/** Complete fusion plan over a chain of consecutive FCs. */
struct FusionPlan
{
    std::vector<FusionGroup> groups;

    std::size_t
    maxGroupSize() const
    {
        std::size_t best = 0;
        for (const auto &g : groups)
            best = std::max(best, g.numLayers);
        return best;
    }
};

/**
 * Plan fusion for a chain of consecutive FC layers.
 *
 * @param channels     channel dims c0..cL: layer l maps c_{l}
 *                     -> c_{l+1}; channels.size() == #layers + 1
 * @param num_points   points flowing through the chain
 * @param buffer_bytes on-chip feature buffer capacity
 * @param bytes_per_feature feature element size
 * @param min_tile     smallest point tile worth scheduling
 */
FusionPlan planFusion(const std::vector<std::uint32_t> &channels,
                      std::uint32_t num_points, std::uint64_t buffer_bytes,
                      std::uint32_t bytes_per_feature = 2,
                      std::uint32_t min_tile = 32);

/** DRAM bytes when running the chain layer by layer (no fusion). */
std::uint64_t
layerByLayerTraffic(const std::vector<std::uint32_t> &channels,
                    std::uint32_t num_points,
                    std::uint32_t bytes_per_feature = 2);

/** DRAM bytes under `plan`: intermediates inside a group stay on chip. */
std::uint64_t fusedTraffic(const std::vector<std::uint32_t> &channels,
                           std::uint32_t num_points, const FusionPlan &plan,
                           std::uint32_t bytes_per_feature = 2);

/**
 * Event-level simulation of one fused group through the MIR stack
 * (Fig. 12b): verifies that tiles push/pop in the documented order and
 * that the stack never exceeds the planned footprint. Returns the peak
 * on-chip bytes observed.
 */
std::uint64_t
simulateFusedExecution(const std::vector<std::uint32_t> &channels,
                       const FusionGroup &group, std::uint32_t num_points,
                       std::uint32_t bytes_per_feature = 2);

} // namespace pointacc

#endif // POINTACC_MEMORY_FUSION_HPP
