#include "memory/dram.hpp"

namespace pointacc {

namespace {

/** Requests whose latency overlaps thanks to bank-level parallelism. */
constexpr std::uint64_t kLatencyBatch = 16;

const DramSpec kHbm2{"HBM2", 256.0, 100.0, 4.0, 64};
const DramSpec kDdr4{"DDR4-2133", 17.0, 80.0, 15.0, 64};
const DramSpec kLpddr3{"LPDDR3-1600", 12.8, 90.0, 22.0, 64};

} // namespace

const DramSpec &hbm2Spec() { return kHbm2; }
const DramSpec &ddr4Spec() { return kDdr4; }
const DramSpec &lpddr3Spec() { return kLpddr3; }

DramModel::DramModel(const DramSpec &spec) : dramSpec(spec) {}

void
DramModel::charge(std::uint64_t bytes, bool sequential,
                  std::uint64_t requests)
{
    ns += static_cast<double>(bytes) / dramSpec.bandwidthGBps;
    if (!sequential) {
        const std::uint64_t stalls =
            (requests + kLatencyBatch - 1) / kLatencyBatch;
        ns += static_cast<double>(stalls) * dramSpec.latencyNs;
    }
}

void
DramModel::readSequential(std::uint64_t bytes)
{
    reads += bytes;
    charge(bytes, true, 1);
}

void
DramModel::writeSequential(std::uint64_t bytes)
{
    writes += bytes;
    charge(bytes, true, 1);
}

void
DramModel::readRandom(std::uint64_t count, std::uint32_t bytes_each)
{
    const std::uint32_t padded =
        (bytes_each + dramSpec.burstBytes - 1) / dramSpec.burstBytes *
        dramSpec.burstBytes;
    const std::uint64_t bytes = count * padded;
    reads += bytes;
    charge(bytes, false, count);
}

void
DramModel::writeRandom(std::uint64_t count, std::uint32_t bytes_each)
{
    const std::uint32_t padded =
        (bytes_each + dramSpec.burstBytes - 1) / dramSpec.burstBytes *
        dramSpec.burstBytes;
    const std::uint64_t bytes = count * padded;
    writes += bytes;
    charge(bytes, false, count);
}

double
DramModel::energyPJ() const
{
    return static_cast<double>(reads + writes) * 8.0 *
           dramSpec.energyPerBitPJ;
}

void
DramModel::reset()
{
    reads = 0;
    writes = 0;
    ns = 0.0;
}

} // namespace pointacc
