/**
 * @file
 * DRAM model (Ramulator substitute).
 *
 * The paper integrates its cycle simulator with Ramulator and derives
 * DRAM energy from the dumped command trace. Every quantity the
 * evaluation actually consumes is an aggregate: total bytes moved,
 * transfer time against peak bandwidth, and pJ/bit. This model
 * reproduces those aggregates for the three memory systems of Table 3
 * (HBM2 for PointAcc, DDR4-2133 for PointAcc.Edge, LPDDR3-1600 for
 * Mesorasi) plus a row-granularity inefficiency factor for small
 * random accesses.
 */

#ifndef POINTACC_MEMORY_DRAM_HPP
#define POINTACC_MEMORY_DRAM_HPP

#include <cstdint>
#include <string>

namespace pointacc {

/** Static parameters of one DRAM technology. */
struct DramSpec
{
    std::string name;
    double bandwidthGBps = 0.0; ///< peak sequential bandwidth
    double latencyNs = 0.0;     ///< first-word access latency
    double energyPerBitPJ = 0.0;///< access energy per bit
    std::uint32_t burstBytes = 64; ///< minimum transfer granularity
};

/** Table 3 memory systems. */
const DramSpec &hbm2Spec();       ///< 256 GB/s (PointAcc)
const DramSpec &ddr4Spec();       ///< 17 GB/s (PointAcc.Edge)
const DramSpec &lpddr3Spec();     ///< 12.8 GB/s (Mesorasi)

/**
 * Accumulating DRAM traffic/energy/time model.
 *
 * Sequential accesses run at peak bandwidth; random accesses are
 * rounded up to bursts and charged one latency per `latencyBatch`
 * outstanding requests (modeling the bank-level parallelism that hides
 * most but not all of the access latency).
 */
class DramModel
{
  public:
    explicit DramModel(const DramSpec &spec);

    const DramSpec &spec() const { return dramSpec; }

    /** Sequential (streaming) read of `bytes`. */
    void readSequential(std::uint64_t bytes);
    /** Sequential (streaming) write of `bytes`. */
    void writeSequential(std::uint64_t bytes);
    /** Random read of `count` requests of `bytes_each` (burst-padded). */
    void readRandom(std::uint64_t count, std::uint32_t bytes_each);
    /** Random write of `count` requests of `bytes_each`. */
    void writeRandom(std::uint64_t count, std::uint32_t bytes_each);

    std::uint64_t readBytes() const { return reads; }
    std::uint64_t writeBytes() const { return writes; }
    std::uint64_t totalBytes() const { return reads + writes; }

    /** Total transfer time in nanoseconds. */
    double timeNs() const { return ns; }
    /** Total cycles at `freq_ghz`. */
    std::uint64_t
    cycles(double freq_ghz) const
    {
        return static_cast<std::uint64_t>(ns * freq_ghz);
    }
    /** Total access energy in picojoules. */
    double energyPJ() const;

    void reset();

  private:
    void charge(std::uint64_t bytes, bool sequential,
                std::uint64_t requests);

    DramSpec dramSpec;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    double ns = 0.0;
};

} // namespace pointacc

#endif // POINTACC_MEMORY_DRAM_HPP
