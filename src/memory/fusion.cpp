#include "memory/fusion.hpp"

#include <algorithm>
#include <functional>

#include "core/logging.hpp"

namespace pointacc {

namespace {

/**
 * On-chip bytes needed to fuse layers [first, first+count) with point
 * tile T: every fused layer's input tile plus the last output tile are
 * simultaneously live in the worst case (stage 2 of Fig. 12b).
 */
std::uint64_t
fusedFootprint(const std::vector<std::uint32_t> &channels,
               std::size_t first, std::size_t count, std::uint32_t tile,
               std::uint32_t bytes_per_feature)
{
    std::uint64_t sum = 0;
    for (std::size_t l = first; l <= first + count; ++l)
        sum += channels[l];
    return sum * static_cast<std::uint64_t>(tile) * bytes_per_feature;
}

} // namespace

FusionPlan
planFusion(const std::vector<std::uint32_t> &channels,
           std::uint32_t num_points, std::uint64_t buffer_bytes,
           std::uint32_t bytes_per_feature, std::uint32_t min_tile)
{
    simAssert(channels.size() >= 2, "FC chain needs at least one layer");
    const std::size_t numLayers = channels.size() - 1;

    FusionPlan plan;
    std::size_t next = 0;
    while (next < numLayers) {
        // Greedy: try to fuse all remaining layers; on overflow for
        // every tiling, drop the last layer and retry (Section 4.2.4).
        std::size_t count = numLayers - next;
        std::uint32_t chosenTile = 0;
        while (count >= 1) {
            // Largest power-of-two tile that fits (capped at #points).
            std::uint32_t tile = 1;
            while (tile < num_points)
                tile *= 2;
            tile = std::min<std::uint32_t>(tile, num_points);
            while (tile >= min_tile &&
                   fusedFootprint(channels, next, count, tile,
                                  bytes_per_feature) > buffer_bytes) {
                tile /= 2;
            }
            if (tile >= min_tile || count == 1) {
                chosenTile = std::max(tile, 1u);
                break;
            }
            --count;
        }
        plan.groups.push_back({next, count, chosenTile});
        next += count;
    }
    return plan;
}

std::uint64_t
layerByLayerTraffic(const std::vector<std::uint32_t> &channels,
                    std::uint32_t num_points,
                    std::uint32_t bytes_per_feature)
{
    std::uint64_t bytes = 0;
    for (std::size_t l = 0; l + 1 < channels.size(); ++l) {
        bytes += static_cast<std::uint64_t>(num_points) * channels[l] *
                 bytes_per_feature;       // read inputs
        bytes += static_cast<std::uint64_t>(num_points) *
                 channels[l + 1] * bytes_per_feature; // write outputs
    }
    return bytes;
}

std::uint64_t
fusedTraffic(const std::vector<std::uint32_t> &channels,
             std::uint32_t num_points, const FusionPlan &plan,
             std::uint32_t bytes_per_feature)
{
    std::uint64_t bytes = 0;
    for (const auto &g : plan.groups) {
        bytes += static_cast<std::uint64_t>(num_points) *
                 channels[g.firstLayer] * bytes_per_feature;
        bytes += static_cast<std::uint64_t>(num_points) *
                 channels[g.firstLayer + g.numLayers] * bytes_per_feature;
    }
    return bytes;
}

std::uint64_t
simulateFusedExecution(const std::vector<std::uint32_t> &channels,
                       const FusionGroup &group, std::uint32_t num_points,
                       std::uint32_t bytes_per_feature)
{
    simAssert(group.numLayers >= 1, "empty fusion group");
    simAssert(group.firstLayer + group.numLayers < channels.size(),
              "fusion group out of range");

    // MIR stack: one entry per live layer tile. Depth-first recursion
    // over layers reproduces Fig. 12b's stage order: compute a tile of
    // layer l, push layer l+1's tile, descend; when the deepest fused
    // layer finishes, pop back to the shallowest layer with remaining
    // capacity.
    MirContainer stack(group.numLayers + 1, MirMode::Stack);
    std::uint64_t peakBytes = 0;
    std::uint64_t liveBytes = 0;

    const std::uint32_t tile = std::max(group.tilePoints, 1u);
    const auto layerTileBytes = [&](std::size_t level,
                                    std::uint32_t points) {
        return static_cast<std::uint64_t>(points) *
               channels[group.firstLayer + level] * bytes_per_feature;
    };

    // Recursive tile walk. `level` 0 is the group's first layer input.
    const std::function<void(std::size_t, std::uint32_t)> run =
        [&](std::size_t level, std::uint32_t points) {
            Mir mir;
            mir.tileId = static_cast<std::int32_t>(level);
            mir.capacity =
                static_cast<std::uint32_t>(layerTileBytes(level, points));
            mir.occupancy = mir.capacity;
            stack.push(mir);
            liveBytes += mir.capacity;
            peakBytes = std::max(peakBytes, liveBytes);

            if (level < group.numLayers) {
                // Each consumed tile of this layer produces the next
                // layer's input tile; process in halves like Fig. 12b
                // when the tile is divisible, else as one chunk.
                const std::uint32_t childPoints = points;
                run(level + 1, childPoints);
            }
            const Mir popped = stack.pop();
            liveBytes -= popped.capacity;
        };

    for (std::uint32_t base = 0; base < num_points; base += tile) {
        const std::uint32_t points =
            std::min<std::uint32_t>(tile, num_points - base);
        run(0, points);
        simAssert(stack.empty(), "fusion stack must drain per tile");
    }
    return peakBytes;
}

} // namespace pointacc
