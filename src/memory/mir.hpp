/**
 * @file
 * Memory-tile Meta Info Registers (MIR) and the MIR Container.
 *
 * Section 4.2.1: the MMU manages on-chip buffers at the granularity of
 * a *tile* — the minimum memory for one computation tile of the tiled
 * matrix multiplication. Each tile's metadata (capacity, starting
 * offset, occupancy, tail pointer) sits in a MIR, and the MIR Container
 * is re-interpreted per workload:
 *
 *  - Tag Array  -> input buffers become a direct-mapped cache (sparse
 *                  computation, fetch-on-demand flow);
 *  - FIFO       -> double-buffered scratchpad (dense layers);
 *  - Stack      -> temporal layer fusion of consecutive FC layers
 *                  (Fig. 12), with the active layer's tile on top.
 */

#ifndef POINTACC_MEMORY_MIR_HPP
#define POINTACC_MEMORY_MIR_HPP

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/logging.hpp"

namespace pointacc {

/** Meta information of one memory tile. */
struct Mir
{
    std::int32_t tileId = -1;     ///< tile identity (tag / layer id)
    std::uint32_t offset = 0;     ///< starting address in the buffer
    std::uint32_t capacity = 0;   ///< allocated bytes
    std::uint32_t occupancy = 0;  ///< valid bytes
    std::uint32_t tailPointer = 0;///< next write position
};

/** Operating mode of the MIR container. */
enum class MirMode
{
    TagArray,
    Fifo,
    Stack,
};

/**
 * The MIR container: a small register file of `num_entries` MIRs with
 * mode-dependent placement/replacement, as in Fig. 11b / Fig. 12a.
 */
class MirContainer
{
  public:
    explicit MirContainer(std::size_t num_entries, MirMode mode);

    MirMode mode() const { return containerMode; }
    std::size_t capacity() const { return entries; }
    std::size_t size() const { return live.size(); }
    bool empty() const { return live.empty(); }
    bool full() const { return live.size() == entries; }

    /** Switch mode between layers; requires the container be drained. */
    void setMode(MirMode mode);

    // --- Tag Array interface (cache) --------------------------------
    /**
     * Look up `tag`; returns the slot index on hit. In tag-array mode
     * the slot is determined by tag % capacity (direct mapping).
     */
    std::optional<std::size_t> lookup(std::int32_t tag) const;

    /** Install `tag` into its direct-mapped slot (evicting silently). */
    std::size_t install(const Mir &mir);

    // --- FIFO interface (scratchpad) ---------------------------------
    void pushBack(const Mir &mir);
    Mir popFront();

    // --- Stack interface (layer fusion) ------------------------------
    void push(const Mir &mir);
    Mir pop();
    Mir &top();
    const Mir &top() const;

    /** Direct access for inspection/tests. */
    const std::deque<Mir> &contents() const { return live; }

  private:
    std::size_t entries;
    MirMode containerMode;
    std::deque<Mir> live;              ///< FIFO/Stack storage
    std::vector<std::optional<Mir>> slots; ///< TagArray storage
};

} // namespace pointacc

#endif // POINTACC_MEMORY_MIR_HPP
