/**
 * @file
 * FeatureCache: the input buffers configured as a direct-mapped cache.
 *
 * Section 4.2.3: under the fetch-on-demand flow the MMU reuses the MIR
 * Container as a shared Tag Array over the input feature buffers.
 * Unlike a conventional cache, the *block size is software
 * controllable*: a block holds `blockPoints` consecutive points by
 * `blockChannels` consecutive channels, and the tag is the (point,
 * channel) index of the block's first feature. Larger blocks exploit
 * the spatial locality of sorted point clouds but raise the miss
 * penalty — Fig. 18 sweeps this trade-off, and the compiler picks a
 * block size per layer.
 */

#ifndef POINTACC_MEMORY_CACHE_HPP
#define POINTACC_MEMORY_CACHE_HPP

#include <cstdint>

#include "memory/mir.hpp"

namespace pointacc {

/** Configuration of the input-buffer cache. */
struct CacheConfig
{
    std::uint32_t capacityBytes = 64 * 1024; ///< input buffer size
    std::uint32_t blockPoints = 16;     ///< points per cache block
    std::uint32_t blockChannels = 64;   ///< channels per cache block
    std::uint32_t bytesPerFeature = 2;  ///< fp16 features
};

/** Hit/miss statistics of one layer's execution. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t missBytes = 0; ///< DRAM fill traffic

    double
    missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }
};

/**
 * Direct-mapped feature cache over (point, channel) blocks, tags held
 * in a MirContainer operating as Tag Array.
 */
class FeatureCache
{
  public:
    /**
     * @param cfg           geometry of the cache
     * @param num_points    points in the input feature map
     * @param num_channels  channels in the input feature map
     */
    FeatureCache(const CacheConfig &cfg, std::uint32_t num_points,
                 std::uint32_t num_channels);

    /**
     * Access the features of `point` for channel tile `channel_base`
     * (one map-driven fetch of blockChannels channels). Updates stats
     * and fills on miss.
     *
     * @return true on hit
     */
    bool access(std::uint32_t point, std::uint32_t channel_base);

    const CacheStats &stats() const { return cacheStats; }
    std::uint32_t blockBytes() const { return bytesPerBlock; }
    std::uint32_t numBlocks() const { return blockCount; }

    void resetStats() { cacheStats = {}; }

  private:
    CacheConfig cfg;
    std::uint32_t channelBlocks; ///< channel tiles per point
    std::uint32_t bytesPerBlock;
    std::uint32_t blockCount;
    MirContainer tags;
    CacheStats cacheStats;
};

} // namespace pointacc

#endif // POINTACC_MEMORY_CACHE_HPP
