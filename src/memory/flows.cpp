#include "memory/flows.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace pointacc {

FlowTraffic
gatherMatMulScatterTraffic(const MapSet &maps, const SparseLayerShape &shape)
{
    FlowTraffic t;
    const std::uint64_t m = maps.size();
    const std::uint64_t inRow =
        static_cast<std::uint64_t>(shape.inChannels) * shape.bytesPerFeature;
    const std::uint64_t outRow =
        static_cast<std::uint64_t>(shape.outChannels) * shape.bytesPerFeature;

    // Gather: one random feature-row read per map, then the gathered
    // matrix is written out contiguously.
    t.inputReadBytes = m * inRow;
    t.scratchWriteBytes = m * inRow;
    // MatMul: reads the gathered matrix back, writes partial sums.
    t.scratchReadBytes = m * inRow;
    t.scratchWriteBytes += m * outRow;
    // Scatter: reads partial sums and accumulates into output rows.
    t.scratchReadBytes += m * outRow;
    t.outputWriteBytes = m * outRow;
    // Weights cross once per layer.
    t.weightReadBytes = static_cast<std::uint64_t>(maps.numWeights()) *
                        shape.inChannels * shape.outChannels *
                        shape.bytesPerFeature;
    return t;
}

FetchOnDemandResult
fetchOnDemandTraffic(const MapSet &maps, const SparseLayerShape &shape,
                     const CacheConfig &cache_cfg, std::uint32_t ic_tile,
                     std::uint32_t out_tile)
{
    simAssert(shape.inChannels > 0 && shape.outChannels > 0,
              "layer must have channels");

    CacheConfig cfg = cache_cfg;
    cfg.blockChannels = std::max<std::uint32_t>(shape.inChannels, 1);

    // Output-stationary tile: big enough to amortize weight passes,
    // small enough that the touched input working set has a chance to
    // stay resident. Default: the number of input feature rows that
    // fit in the cache.
    if (out_tile == 0) {
        const std::uint32_t rowBytes =
            shape.inChannels * shape.bytesPerFeature;
        out_tile = std::max<std::uint32_t>(
            cfg.blockPoints, cfg.capacityBytes / std::max(rowBytes, 1u));
    }

    FeatureCache cache(cfg, shape.numInputs, shape.inChannels);
    const std::uint32_t icTiles =
        (shape.inChannels + ic_tile - 1) / ic_tile;

    // Per-weight cursors: maps inside one weight group are sorted by
    // output index, so each output tile consumes a contiguous run.
    std::vector<std::size_t> cursor(maps.numWeights(), 0);

    for (std::uint32_t base = 0; base < std::max(shape.numOutputs, 1u);
         base += out_tile) {
        const std::uint32_t limit = base + out_tile;
        for (std::int32_t w = 0; w < maps.numWeights(); ++w) {
            const auto &group = maps.forWeight(w);
            std::size_t &pos = cursor[w];
            while (pos < group.size() &&
                   static_cast<std::uint32_t>(group[pos].out) < limit) {
                for (std::uint32_t ict = 0; ict < icTiles; ++ict) {
                    cache.access(
                        static_cast<std::uint32_t>(group[pos].in),
                        ict * ic_tile);
                }
                ++pos;
            }
        }
    }

    FetchOnDemandResult result;
    result.cache = cache.stats();
    result.traffic.inputReadBytes = cache.stats().missBytes;
    // Partial sums never leave the chip; outputs stream out once.
    result.traffic.outputWriteBytes =
        static_cast<std::uint64_t>(shape.numOutputs) * shape.outChannels *
        shape.bytesPerFeature;
    result.traffic.weightReadBytes =
        static_cast<std::uint64_t>(maps.numWeights()) * shape.inChannels *
        shape.outChannels * shape.bytesPerFeature;
    return result;
}

FlowTraffic
denseLayerTraffic(std::uint32_t num_points, std::uint32_t in_channels,
                  std::uint32_t out_channels,
                  std::uint32_t bytes_per_feature)
{
    FlowTraffic t;
    t.inputReadBytes = static_cast<std::uint64_t>(num_points) *
                       in_channels * bytes_per_feature;
    t.outputWriteBytes = static_cast<std::uint64_t>(num_points) *
                         out_channels * bytes_per_feature;
    t.weightReadBytes = static_cast<std::uint64_t>(in_channels) *
                        out_channels * bytes_per_feature;
    return t;
}

} // namespace pointacc
