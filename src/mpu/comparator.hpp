/**
 * @file
 * ComparatorStruct: the element type flowing through the Mapping Unit.
 *
 * Section 4.1.2: "the comparator input element contains the comparator
 * key (coordinates or distance) and the payload (e.g., the point
 * index)." Coordinates are packed into one 64-bit word (packCoord) so a
 * single integer comparison reproduces the hardware's lexicographic
 * comparator tree; distances use the raw 64-bit squared value.
 */

#ifndef POINTACC_MPU_COMPARATOR_HPP
#define POINTACC_MPU_COMPARATOR_HPP

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace pointacc {

/** One element in a sorting/merging network. */
struct ComparatorStruct
{
    std::uint64_t key = 0;     ///< packed coordinate or distance
    std::int32_t payload = 0;  ///< point index (or any tag)
    /** Secondary tag: 0 = "input cloud", 1 = "output cloud" during
     *  kernel mapping; unused otherwise. */
    std::uint8_t source = 0;

    friend constexpr bool
    operator<(const ComparatorStruct &a, const ComparatorStruct &b)
    {
        // Stable tie-break: source then payload, mirroring the hardware
        // comparator which preserves arrival order on key equality.
        if (a.key != b.key)
            return a.key < b.key;
        if (a.source != b.source)
            return a.source < b.source;
        return a.payload < b.payload;
    }

    friend constexpr bool
    operator==(const ComparatorStruct &a, const ComparatorStruct &b)
    {
        return a.key == b.key && a.payload == b.payload &&
               a.source == b.source;
    }
};

using ElementVec = std::vector<ComparatorStruct>;

/** Build a ComparatorStruct keyed by packed coordinate. */
inline ComparatorStruct
coordElement(const Coord3 &c, std::int32_t payload, std::uint8_t source = 0)
{
    return {packCoord(c), payload, source};
}

/** Build a ComparatorStruct keyed by squared distance. */
inline ComparatorStruct
distanceElement(std::int64_t dist2, std::int32_t payload)
{
    return {static_cast<std::uint64_t>(dist2), payload, 0};
}

} // namespace pointacc

#endif // POINTACC_MPU_COMPARATOR_HPP
