#include "mpu/stream_merger.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace pointacc {

StreamMerger::StreamMerger(std::size_t width) : mergerWidth(width)
{
    simAssert(width >= 2 && isPowerOfTwo(width),
              "merger width must be a power of two >= 2");
}

ElementVec
StreamMerger::merge(const ElementVec &a, const ElementVec &b,
                    MergeStats &stats) const
{
    const std::size_t half = windowSize();
    ElementVec out;
    out.reserve(a.size() + b.size());

    std::size_t posA = 0, posB = 0;
    while (posA < a.size() || posB < b.size()) {
        // Present one window per stream (short/empty windows are padded
        // with N/A sentinels in hardware; the sentinel key is +inf so
        // the real last element still decides the threshold).
        const std::size_t endA = std::min(posA + half, a.size());
        const std::size_t endB = std::min(posB + half, b.size());
        const bool hasA = posA < a.size();
        const bool hasB = posB < b.size();

        ++stats.cycles;
        // Each cycle activates the full merge network once.
        stats.comparisons += mergeNetworkComparators(mergerWidth);

        // Window-last comparison decides which stream advances; the
        // smaller last element is also the validity threshold.
        ComparatorStruct lastA = hasA ? a[endA - 1] : padElement();
        ComparatorStruct lastB = hasB ? b[endB - 1] : padElement();
        const bool advanceA = hasA && (!hasB || !(lastB < lastA));
        const ComparatorStruct &threshold = advanceA ? lastA : lastB;

        if (advanceA) {
            // All of window A is <= threshold (it is sorted and the
            // threshold is its own last element): emit it fully,
            // interleaved with the prefix of B's window that is also
            // below the threshold. Those B elements are marked invalid
            // in B's *next* presentation by the replay register; the
            // software equivalent is to advance posB past them.
            std::size_t bCursor = posB;
            for (std::size_t i = posA; i < endA; ++i) {
                while (bCursor < endB && b[bCursor] < a[i]) {
                    out.push_back(b[bCursor]);
                    ++bCursor;
                }
                out.push_back(a[i]);
            }
            while (bCursor < endB && !(threshold < b[bCursor])) {
                out.push_back(b[bCursor]);
                ++bCursor;
            }
            posA = endA;
            posB = bCursor;
        } else {
            std::size_t aCursor = posA;
            for (std::size_t i = posB; i < endB; ++i) {
                while (aCursor < endA && a[aCursor] < b[i]) {
                    out.push_back(a[aCursor]);
                    ++aCursor;
                }
                out.push_back(b[i]);
            }
            while (aCursor < endA && !(threshold < a[aCursor])) {
                out.push_back(a[aCursor]);
                ++aCursor;
            }
            posB = endB;
            posA = aCursor;
        }
    }
    stats.elementsOut += out.size();
    return out;
}

ElementVec
StreamMerger::sort(ElementVec data, MergeStats &stats, std::size_t k) const
{
    const std::size_t half = windowSize();
    if (data.empty())
        return data;

    // Stage ST: split into N/2-wide windows and sort each with the
    // bitonic sorter (one window per cycle through the pipeline).
    std::vector<ElementVec> runs;
    for (std::size_t start = 0; start < data.size(); start += half) {
        const std::size_t end = std::min(start + half, data.size());
        ElementVec run(data.begin() + static_cast<std::ptrdiff_t>(start),
                       data.begin() + static_cast<std::ptrdiff_t>(end));
        // Pad to the window size for the sorting network, then strip.
        const std::size_t orig = run.size();
        while (!isPowerOfTwo(run.size()) || run.size() < 2)
            run.push_back(padElement());
        const auto net = bitonicSort(run);
        stats.comparisons += net.compareExchanges;
        ++stats.cycles;
        run.resize(std::max<std::size_t>(orig, 1));
        while (!run.empty() && isPad(run.back()))
            run.pop_back();
        if (k > 0 && run.size() > k)
            run.resize(k);
        runs.push_back(std::move(run));
    }

    // Stages BF + MS: iteratively merge pairs of runs (classical merge
    // sort in a tree), truncating to k for TopK (Fig. 10c). Runs
    // shorter than a window are packed back-to-back by the BF stage,
    // so merge cycles are charged at element granularity rather than
    // one window per (possibly tiny) run.
    while (runs.size() > 1) {
        std::vector<ElementVec> next;
        for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
            MergeStats local;
            ElementVec merged = merge(runs[i], runs[i + 1], local);
            stats.comparisons += local.comparisons;
            stats.elementsOut += local.elementsOut;
            // A truncating merge (TopK) discards the upper half of
            // the merge network's output, so both input windows are
            // consumed per cycle; a full merge emits N/2 per cycle.
            const std::size_t perCycle = k > 0 ? mergerWidth : half;
            stats.cycles +=
                (runs[i].size() + runs[i + 1].size() + perCycle - 1) /
                perCycle;
            if (k > 0 && merged.size() > k)
                merged.resize(k);
            next.push_back(std::move(merged));
        }
        if (runs.size() % 2 == 1)
            next.push_back(std::move(runs.back()));
        runs = std::move(next);
    }
    return std::move(runs.front());
}

std::vector<std::pair<std::int32_t, std::int32_t>>
detectIntersection(const ElementVec &merged, std::size_t width,
                   MergeStats &stats)
{
    std::vector<std::pair<std::int32_t, std::int32_t>> matches;
    // The detector is spatially pipelined after the merger (no extra
    // cycles); it activates log N comparator stages per window of N
    // elements plus the shift-compaction logic (Fig. 10d).
    if (!merged.empty()) {
        std::uint64_t stages = 0;
        for (std::size_t s = width; s > 1; s /= 2)
            ++stages;
        const std::uint64_t windows =
            (merged.size() + width - 1) / width;
        stats.comparisons += windows * stages * width;
    }

    for (std::size_t i = 0; i + 1 < merged.size(); ++i) {
        const auto &a = merged[i];
        const auto &b = merged[i + 1];
        if (a.key == b.key && a.source != b.source) {
            const auto &inElem = a.source == 0 ? a : b;
            const auto &outElem = a.source == 0 ? b : a;
            matches.emplace_back(inElem.payload, outElem.payload);
        }
    }
    return matches;
}

} // namespace pointacc
