/**
 * @file
 * Bitonic sorting/merging networks, modeled structurally.
 *
 * These functions execute the exact compare-exchange schedule of the
 * hardware networks so that (a) outputs are bit-identical to silicon
 * and (b) comparator counts — the MPU's energy/area driver — fall out
 * of structure instead of curve fits.
 *
 * Sizes must be powers of two; callers pad with +inf sentinels exactly
 * as the hardware feeds N/A elements (Fig. 10a).
 */

#ifndef POINTACC_MPU_SORTING_NETWORK_HPP
#define POINTACC_MPU_SORTING_NETWORK_HPP

#include <cstddef>

#include "mpu/comparator.hpp"

namespace pointacc {

/** Counters accumulated by network executions. */
struct NetworkStats
{
    std::uint64_t compareExchanges = 0; ///< comparator activations
    std::uint64_t stages = 0;           ///< pipeline stages traversed

    NetworkStats &
    operator+=(const NetworkStats &o)
    {
        compareExchanges += o.compareExchanges;
        stages += o.stages;
        return *this;
    }
};

/**
 * Full bitonic sort of `data` (size must be a power of two).
 * For N inputs the network has log N * (log N + 1) / 2 stages of N/2
 * comparators.
 */
NetworkStats bitonicSort(ElementVec &data);

/**
 * Bitonic merge of two sorted halves already concatenated in `data`
 * (size power of two). log N stages of N/2 comparators. The first half
 * must be ascending and the second half ascending as well; the network
 * internally reverses the second half to form the bitonic sequence, as
 * hardware wires do.
 */
NetworkStats bitonicMerge(ElementVec &data);

/** The comparator count of one N-input merge network (static). */
inline std::uint64_t
mergeNetworkComparators(std::size_t n)
{
    std::uint64_t stages = 0;
    for (std::size_t s = n; s > 1; s /= 2)
        ++stages;
    return stages * (n / 2);
}

/** Padding sentinel: sorts after every real key. */
inline ComparatorStruct
padElement()
{
    return {~0ULL, kInvalidIndex, 0xff};
}

/** True if an element is a padding sentinel. */
inline bool
isPad(const ComparatorStruct &e)
{
    return e.payload == kInvalidIndex && e.key == ~0ULL;
}

} // namespace pointacc

#endif // POINTACC_MPU_SORTING_NETWORK_HPP
