/**
 * @file
 * Rival mapping engines used by the paper's ablations.
 *
 * Section 4.1.1 compares the mergesort-based kernel mapping against a
 * specialized *hash-table* unit ("1.4x speedup while saving up to 14x
 * area with the same parallelism"), and Section 4.1.4 compares the
 * MPU's TopK against the *quick-selection* top-k engine of SpAtten
 * ("on average 1.18x faster with the same parallelism"). Both rivals
 * are modeled here so the ablation benches regenerate those numbers.
 */

#ifndef POINTACC_MPU_ALT_ENGINES_HPP
#define POINTACC_MPU_ALT_ENGINES_HPP

#include "core/point_cloud.hpp"
#include "mapping/kernel_map.hpp"
#include "mpu/comparator.hpp"

namespace pointacc {

/** Statistics of the hash-table kernel-mapping engine. */
struct HashEngineStats
{
    std::uint64_t cycles = 0;
    std::uint64_t probes = 0;
    std::uint64_t insertions = 0;
    std::uint64_t bankConflicts = 0;
    std::uint64_t sramReadBytes = 0;
    std::uint64_t sramWriteBytes = 0;
};

/**
 * Hardware model of a parallel on-chip hash-table kernel mapper.
 *
 * `lanes` parallel probe units share a banked SRAM hash table. Banking
 * causes conflicts: two probes landing in the same bank in the same
 * cycle serialize. A parallel random read network across `lanes` banks
 * needs an lanes-by-lanes crossbar, which is where the O(N^2) area goes
 * (Section 4.1.1).
 */
class HashKernelMapper
{
  public:
    /**
     * @param lanes      parallel probe lanes (same parallelism as the
     *                   MPU merger width for fair comparison)
     * @param num_banks  SRAM banks backing the table
     * @param load_factor table occupancy target (entries / slots)
     */
    explicit HashKernelMapper(std::size_t lanes, std::size_t num_banks = 0,
                              double load_factor = 0.5);

    /** Run kernel mapping; results must equal the reference MapSet. */
    MapSet map(const PointCloud &input, const PointCloud &output,
               const KernelMapConfig &kcfg, HashEngineStats &stats) const;

    /**
     * Area estimate in comparator-equivalents. The hash unit pays for
     * (a) the table SRAM sized for the largest supported cloud and
     * (b) the lanes^2 crossbar; the merge-based MPU pays only for
     * N log N comparators plus small stream buffers. The ratio of the
     * two is the paper's ~14x claim.
     */
    double areaUnits(std::size_t max_cloud_points) const;

    std::size_t lanes() const { return numLanes; }

  private:
    std::size_t numLanes;
    std::size_t numBanks;
    double loadFactor;
};

/** Area of the merge-based mapping pipeline, in the same units. */
double mergeSorterAreaUnits(std::size_t merger_width);

/** Statistics of the quick-selection top-k engine. */
struct QuickSelectStats
{
    std::uint64_t cycles = 0;
    std::uint64_t comparisons = 0;
    std::uint64_t passes = 0;
};

/**
 * Model of SpAtten's quick-selection top-k engine: repeatedly pick a
 * pivot, partition the survivors with `lanes` parallel comparators, and
 * recurse into the side containing the k-th element. Expected work is
 * ~2n comparisons but needs a full pass (with buffer write-back) per
 * recursion level.
 */
ElementVec quickSelectTopK(ElementVec data, std::size_t k,
                           std::size_t lanes, QuickSelectStats &stats);

} // namespace pointacc

#endif // POINTACC_MPU_ALT_ENGINES_HPP
