#include "mpu/alt_engines.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "core/logging.hpp"

namespace pointacc {

HashKernelMapper::HashKernelMapper(std::size_t lanes, std::size_t num_banks,
                                   double load_factor)
    : numLanes(lanes), numBanks(num_banks == 0 ? lanes : num_banks),
      loadFactor(load_factor)
{
    simAssert(lanes >= 1, "hash mapper needs at least one lane");
    simAssert(load_factor > 0.0 && load_factor <= 1.0,
              "load factor must be in (0, 1]");
}

MapSet
HashKernelMapper::map(const PointCloud &input, const PointCloud &output,
                      const KernelMapConfig &kcfg,
                      HashEngineStats &stats) const
{
    const auto offsets = kernelOffsets(kcfg.kernelSize, kcfg.inStride);
    MapSet maps(static_cast<std::int32_t>(offsets.size()));

    // Functional part: identical to the software reference.
    std::unordered_map<Coord3, PointIndex, Coord3Hash> table;
    table.reserve(input.size() * 2);

    // --- Build phase -----------------------------------------------
    // `lanes` insertions per cycle; same-bank collisions serialize.
    {
        std::vector<std::uint32_t> bankOfLane(numLanes);
        std::size_t i = 0;
        while (i < input.size()) {
            const std::size_t batch =
                std::min(numLanes, input.size() - i);
            std::uint64_t maxPerBank = 1;
            std::unordered_map<std::uint32_t, std::uint64_t> perBank;
            for (std::size_t l = 0; l < batch; ++l) {
                const auto &c = input.coord(
                    static_cast<PointIndex>(i + l));
                const auto bank = static_cast<std::uint32_t>(
                    Coord3Hash{}(c) % numBanks);
                bankOfLane[l] = bank;
                maxPerBank = std::max(maxPerBank, ++perBank[bank]);
                table.emplace(c, static_cast<PointIndex>(i + l));
            }
            stats.cycles += maxPerBank;
            stats.bankConflicts += maxPerBank - 1;
            stats.insertions += batch;
            stats.sramWriteBytes += batch * 16; // key + index entry
            i += batch;
        }
    }

    // --- Probe phase ------------------------------------------------
    for (std::int32_t w = 0;
         w < static_cast<std::int32_t>(offsets.size()); ++w) {
        const Coord3 &delta = offsets[w];
        std::size_t q = 0;
        while (q < output.size()) {
            const std::size_t batch =
                std::min(numLanes, output.size() - q);
            std::uint64_t maxPerBank = 1;
            std::unordered_map<std::uint32_t, std::uint64_t> perBank;
            for (std::size_t l = 0; l < batch; ++l) {
                const Coord3 probe =
                    output.coord(static_cast<PointIndex>(q + l)) + delta;
                const auto bank = static_cast<std::uint32_t>(
                    Coord3Hash{}(probe) % numBanks);
                maxPerBank = std::max(maxPerBank, ++perBank[bank]);
                const auto it = table.find(probe);
                if (it != table.end()) {
                    maps.add(Map{it->second,
                                 static_cast<PointIndex>(q + l), w});
                }
            }
            stats.cycles += maxPerBank;
            stats.bankConflicts += maxPerBank - 1;
            stats.probes += batch;
            stats.sramReadBytes += batch * 16;
            q += batch;
        }
    }
    return maps;
}

namespace {

/**
 * Area accounting (40 nm, normalized): one 64-bit comparator == 1 unit;
 * SRAM costs ~4 units per KB (bit-cell density vs. standard-cell
 * comparator logic); a radix-`lanes` crossbar port costs 0.05 units per
 * crosspoint.
 */
constexpr double kSramUnitsPerKB = 4.0;
constexpr double kCrossbarUnitsPerCrosspoint = 0.05;

} // namespace

double
HashKernelMapper::areaUnits(std::size_t max_cloud_points) const
{
    // On-chip table sized for the largest tile of the supported cloud
    // (16-byte entries: packed coordinate key + point index).
    const double slots =
        static_cast<double>(max_cloud_points) / loadFactor;
    const double sramKB = slots * 16.0 / 1024.0;
    const double sramArea = sramKB * kSramUnitsPerKB;
    // Parallel random read requires a lanes x banks crossbar.
    const double crossbarArea = static_cast<double>(numLanes) *
                                static_cast<double>(numBanks) *
                                kCrossbarUnitsPerCrosspoint;
    // Probe/insert lanes: hash function + match comparator each.
    const double laneArea = 2.0 * static_cast<double>(numLanes);
    return sramArea + crossbarArea + laneArea;
}

double
mergeSorterAreaUnits(std::size_t merger_width)
{
    // Bitonic sorter on N/2 + merge network on N: ~N log^2 N / 4 +
    // N/2 log N comparators, plus stream buffers of a few N elements
    // (13 bytes each) costed at the same SRAM density.
    const double n = static_cast<double>(merger_width);
    const double logn = std::log2(n);
    const double sorterComparators = (n / 2) * logn * (logn + 1) / 4.0;
    const double mergerComparators = (n / 2) * logn;
    const double bufferKB = 4.0 * n * 13.0 / 1024.0;
    return sorterComparators + mergerComparators +
           bufferKB * kSramUnitsPerKB;
}

ElementVec
quickSelectTopK(ElementVec data, std::size_t k, std::size_t lanes,
                QuickSelectStats &stats)
{
    simAssert(lanes >= 1, "quick-select needs at least one lane");
    if (k >= data.size()) {
        std::sort(data.begin(), data.end());
        return data;
    }

    // Iterative quick-select on the k-th smallest; each pass streams
    // the surviving candidates through `lanes` comparators against the
    // pivot and writes the kept side back to the buffer.
    ElementVec current = std::move(data);
    std::size_t need = k;
    ElementVec result;
    result.reserve(k);

    // Each pass is serially dependent: the partition must complete and
    // the lane-local counts aggregate (log lanes reduction) before the
    // engine can decide which side survives — a pipeline drain plus
    // control decision every pass.
    constexpr std::uint64_t kPassOverheadCycles = 32;

    while (!current.empty()) {
        ++stats.passes;
        stats.cycles += (current.size() + lanes - 1) / lanes +
                        kPassOverheadCycles;
        stats.comparisons += current.size();

        // Hardware pivot choice: middle element of the buffer (cheap,
        // deterministic). Median-of-three costs extra cycles.
        const std::size_t pivotIdx = current.size() / 2;
        const ComparatorStruct pivot = current[pivotIdx];
        ElementVec below, above;
        for (std::size_t i = 0; i < current.size(); ++i) {
            if (i == pivotIdx)
                continue;
            if (current[i] < pivot)
                below.push_back(current[i]);
            else
                above.push_back(current[i]);
        }
        // Write-back of the surviving partition (ping-pong buffers).
        if (below.size() >= need) {
            current = std::move(below);
        } else {
            result.insert(result.end(), below.begin(), below.end());
            result.push_back(pivot);
            need -= below.size() + 1;
            if (need == 0)
                break;
            current = std::move(above);
            if (need >= current.size()) {
                result.insert(result.end(), current.begin(),
                              current.end());
                need = 0;
                break;
            }
        }
    }

    // The selected k elements still need one final sort pass to emit
    // ranked neighbors (kNN consumers require rank order).
    std::sort(result.begin(), result.end());
    result.resize(std::min(result.size(), k));
    stats.cycles += (result.size() + lanes - 1) / lanes;
    return result;
}

} // namespace pointacc
