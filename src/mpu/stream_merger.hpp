/**
 * @file
 * StreamMerger: MergeSort of arbitrary-length inputs (paper Fig. 10a).
 *
 * An N-element bitonic merger can only merge two N/2 arrays, yet point
 * clouds hold 1e3..1e5 elements. The hardware closes the gap with a
 * forwarding loop: each cycle the merger sees one N/2 window from each
 * stream, emits the first N/2 outputs, and *consumes exactly one
 * window* — the one whose last element is smaller. Emitted elements
 * greater than that last element are invalidated (threshold rule) and
 * replayed from a register in the next cycle.
 *
 * This class reproduces that behavior at window granularity: output is
 * the exact merge, and the cycle count equals the number of windows
 * consumed (one per cycle), which is the figure of merit the paper's
 * evaluation relies on.
 */

#ifndef POINTACC_MPU_STREAM_MERGER_HPP
#define POINTACC_MPU_STREAM_MERGER_HPP

#include "mpu/sorting_network.hpp"

namespace pointacc {

/** Cycle/energy statistics of streaming merge operations. */
struct MergeStats
{
    std::uint64_t cycles = 0;        ///< one consumed window per cycle
    std::uint64_t comparisons = 0;   ///< comparator activations
    std::uint64_t elementsOut = 0;   ///< merged elements produced

    MergeStats &
    operator+=(const MergeStats &o)
    {
        cycles += o.cycles;
        comparisons += o.comparisons;
        elementsOut += o.elementsOut;
        return *this;
    }
};

/**
 * Hardware model of the N-merger + forwarding loop.
 *
 * `width` is the merger size N (a power of two, typically 64); each
 * stream contributes N/2-element windows.
 */
class StreamMerger
{
  public:
    explicit StreamMerger(std::size_t width);

    std::size_t width() const { return mergerWidth; }
    std::size_t windowSize() const { return mergerWidth / 2; }

    /**
     * Merge two sorted element sequences.
     *
     * @param a      first sorted stream
     * @param b      second sorted stream
     * @param stats  accumulated cycle/comparison counters
     * @return       the full merge of a and b
     */
    ElementVec merge(const ElementVec &a, const ElementVec &b,
                     MergeStats &stats) const;

    /**
     * Sort an arbitrary-length sequence (paper Fig. 10b): split into
     * N/2 windows, bitonic-sort each (stage ST), then iteratively
     * merge-sort pairs of runs through the forwarding loop (stage MS
     * feeding back to BF).
     *
     * @param k  optional TopK truncation (Fig. 10c): when > 0 every
     *           intermediate run is clipped to its first k elements,
     *           which is how the MPU realizes TopK with the Sort
     *           dataflow. 0 means full sort.
     */
    ElementVec sort(ElementVec data, MergeStats &stats,
                    std::size_t k = 0) const;

  private:
    std::size_t mergerWidth;
};

/**
 * Intersection detector (paper Fig. 10d): find adjacent equal-key pairs
 * in a merged sequence where the two elements come from different
 * sources (shifted-input vs output cloud), compact them, and report the
 * (input payload, output payload) matches. log N comparator stages per
 * N-element window.
 *
 * @param merged  merge result ordered by key; elements tagged source
 *                0 = shifted input cloud, 1 = output cloud
 * @param width   detector window width N (for stats only)
 * @param stats   cycle/comparison counters (detector is spatially
 *                pipelined after the merger, so it adds comparisons
 *                but no extra cycles)
 * @return        vector of (input payload, output payload) pairs
 */
std::vector<std::pair<std::int32_t, std::int32_t>>
detectIntersection(const ElementVec &merged, std::size_t width,
                   MergeStats &stats);

} // namespace pointacc

#endif // POINTACC_MPU_STREAM_MERGER_HPP
