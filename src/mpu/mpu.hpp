/**
 * @file
 * MappingUnit (MPU): the versatile ranking-based mapping engine.
 *
 * Section 4.1: all mapping operations are converted to point-cloud-
 * agnostic ranking operations executed on one sorting-network pipeline
 * with 6 stages — FetchCoords (FS), CalculateDistance (CD), Sort (ST),
 * Buffering (BF), MergeSort (MS), DetectIntersection (DI):
 *
 *  - farthest point sampling: Max over running distances (FS<->CD<->ST
 *    forwarding loop);
 *  - kNN / ball query:        TopK via truncated merge sort (BF<->MS);
 *  - kernel mapping:          shift, MergeSort with the output cloud,
 *                             DetectIntersection (DI enabled).
 *
 * Every operation returns both the functional result (bit-identical to
 * the references in src/mapping, enforced by tests) and MpuStats with
 * cycle and memory-access counts for the performance model.
 */

#ifndef POINTACC_MPU_MPU_HPP
#define POINTACC_MPU_MPU_HPP

#include "core/point_cloud.hpp"
#include "mapping/kernel_map.hpp"
#include "mapping/knn.hpp"
#include "mpu/stream_merger.hpp"

namespace pointacc {

/** Static configuration of the Mapping Unit. */
struct MpuConfig
{
    /** Merger width N: elements the bitonic merger handles per cycle.
     *  The paper's full design uses 64; Edge uses 32. */
    std::size_t mergerWidth = 64;
    /** Distance-calculation lanes in stage CD (parallel point-level
     *  distance evaluations per cycle). */
    std::size_t distanceLanes = 64;
    /** Bytes per ComparatorStruct in the sorter/merger buffers:
     *  63-bit packed key + 32-bit payload + flags = 13 bytes. */
    std::size_t elementBytes = 13;
};

/** Cycle and access statistics for one mapping operation. */
struct MpuStats
{
    std::uint64_t cycles = 0;
    std::uint64_t comparisons = 0;
    std::uint64_t distanceOps = 0;      ///< 3-D squared-distance evals
    std::uint64_t sramReadBytes = 0;    ///< sorter/merger buffer reads
    std::uint64_t sramWriteBytes = 0;   ///< sorter/merger buffer writes
    std::uint64_t mapsEmitted = 0;      ///< maps pushed to the Map FIFO

    MpuStats &
    operator+=(const MpuStats &o)
    {
        cycles += o.cycles;
        comparisons += o.comparisons;
        distanceOps += o.distanceOps;
        sramReadBytes += o.sramReadBytes;
        sramWriteBytes += o.sramWriteBytes;
        mapsEmitted += o.mapsEmitted;
        return *this;
    }
};

/** Result of a kernel-mapping run: maps plus hardware statistics. */
struct KernelMapResult
{
    MapSet maps;
    MpuStats stats;
};

/** Result of an output-cloud construction run. */
struct SamplingResult
{
    std::vector<PointIndex> indices;
    MpuStats stats;
};

/** Result of a neighbor-search run. */
struct NeighborResult
{
    std::vector<NeighborList> lists;
    MpuStats stats;
};

/** The Mapping Unit hardware model. */
class MappingUnit
{
  public:
    explicit MappingUnit(const MpuConfig &cfg = {});

    const MpuConfig &config() const { return cfg; }

    /**
     * Kernel mapping (SparseConv): for every kernel offset, shift the
     * input cloud, stream-merge with the output cloud and detect
     * intersections. Both clouds must be sorted and deduplicated.
     */
    KernelMapResult kernelMap(const PointCloud &input,
                              const PointCloud &output,
                              const KernelMapConfig &kcfg) const;

    /** Farthest point sampling of `num_samples` points. */
    SamplingResult farthestPointSampling(const PointCloud &cloud,
                                         std::size_t num_samples,
                                         PointIndex first = 0) const;

    /** k-nearest-neighbors of each query in `input`. */
    NeighborResult kNearestNeighbors(const PointCloud &input,
                                     const PointCloud &queries,
                                     int k) const;

    /** Ball query: kNN constrained to squared radius `radius2`. */
    NeighborResult ballQuery(const PointCloud &input,
                             const PointCloud &queries, int k,
                             std::int64_t radius2) const;

    /** Standalone Sort of arbitrary length (used by tests/ablations). */
    ElementVec sort(ElementVec data, MpuStats &stats) const;

    /** Standalone TopK of arbitrary length (Fig. 10c dataflow). */
    ElementVec topK(ElementVec data, std::size_t k, MpuStats &stats) const;

  private:
    /** Convert merger-level stats into MPU stats with buffer traffic. */
    void foldMergeStats(const MergeStats &ms, MpuStats &stats) const;

    MpuConfig cfg;
    StreamMerger merger;
};

} // namespace pointacc

#endif // POINTACC_MPU_MPU_HPP
