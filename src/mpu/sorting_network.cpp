#include "mpu/sorting_network.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace pointacc {

namespace {

/**
 * One compare-exchange. The hardware comparator keeps the smaller
 * element on the low wire; ties keep arrival order (stability comes
 * from the source/payload tie-break in operator<).
 */
inline void
compareExchange(ComparatorStruct &lo, ComparatorStruct &hi,
                NetworkStats &stats)
{
    ++stats.compareExchanges;
    if (hi < lo)
        std::swap(lo, hi);
}

} // namespace

NetworkStats
bitonicSort(ElementVec &data)
{
    const std::size_t n = data.size();
    simAssert(isPowerOfTwo(n), "bitonic sort needs power-of-two size");
    NetworkStats stats;
    if (n <= 1)
        return stats;

    // Classic iterative bitonic sorter (ascending). k = size of the
    // bitonic sequences being merged, j = comparator span.
    for (std::size_t k = 2; k <= n; k *= 2) {
        for (std::size_t j = k / 2; j > 0; j /= 2) {
            ++stats.stages;
            for (std::size_t i = 0; i < n; ++i) {
                const std::size_t partner = i ^ j;
                if (partner <= i)
                    continue;
                const bool ascending = (i & k) == 0;
                if (ascending)
                    compareExchange(data[i], data[partner], stats);
                else
                    compareExchange(data[partner], data[i], stats);
            }
        }
    }
    return stats;
}

NetworkStats
bitonicMerge(ElementVec &data)
{
    const std::size_t n = data.size();
    simAssert(isPowerOfTwo(n), "bitonic merge needs power-of-two size");
    NetworkStats stats;
    if (n <= 1)
        return stats;

    // The hardware wires the second (ascending) half in reverse into
    // the merge network, forming a single bitonic sequence.
    std::reverse(data.begin() + static_cast<std::ptrdiff_t>(n / 2),
                 data.end());

    for (std::size_t j = n / 2; j > 0; j /= 2) {
        ++stats.stages;
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t partner = i ^ j;
            if (partner > i)
                compareExchange(data[i], data[partner], stats);
        }
    }
    return stats;
}

} // namespace pointacc
