#include "mpu/mpu.hpp"

#include <algorithm>
#include <limits>

#include "core/logging.hpp"

namespace pointacc {

MappingUnit::MappingUnit(const MpuConfig &cfg_)
    : cfg(cfg_), merger(cfg_.mergerWidth)
{}

void
MappingUnit::foldMergeStats(const MergeStats &ms, MpuStats &stats) const
{
    stats.cycles += ms.cycles;
    stats.comparisons += ms.comparisons;
    // Each merge cycle reads one window from each stream buffer and
    // writes one window of results (double-buffered sorter/merger
    // SRAMs, Fig. 7).
    const std::uint64_t window = cfg.mergerWidth / 2;
    stats.sramReadBytes += ms.cycles * 2 * window * cfg.elementBytes;
    stats.sramWriteBytes += ms.cycles * window * cfg.elementBytes;
}

KernelMapResult
MappingUnit::kernelMap(const PointCloud &input, const PointCloud &output,
                       const KernelMapConfig &kcfg) const
{
    simAssert(input.isSorted(), "MPU kernel map requires sorted input");
    simAssert(output.isSorted(), "MPU kernel map requires sorted output");

    const auto offsets = kernelOffsets(kcfg.kernelSize, kcfg.inStride);
    KernelMapResult result;
    result.maps = MapSet(static_cast<std::int32_t>(offsets.size()));

    // Pre-build the output-cloud element stream once (kept resident in
    // the sorter buffer across all kernel offsets).
    ElementVec outStream;
    outStream.reserve(output.size());
    for (std::size_t q = 0; q < output.size(); ++q) {
        outStream.push_back(
            coordElement(output.coord(static_cast<PointIndex>(q)),
                         static_cast<PointIndex>(q), 1));
    }

    for (std::int32_t w = 0;
         w < static_cast<std::int32_t>(offsets.size()); ++w) {
        const Coord3 delta = offsets[w];

        // Stage FS + CD: stream input coordinates, apply the -delta
        // shift (one adder per lane, fully pipelined with the merge, so
        // it adds no cycles beyond the merge consumption rate).
        ElementVec inStream;
        inStream.reserve(input.size());
        for (std::size_t i = 0; i < input.size(); ++i) {
            const Coord3 shifted =
                input.coord(static_cast<PointIndex>(i)) - delta;
            inStream.push_back(coordElement(
                shifted, static_cast<PointIndex>(i), 0));
        }

        // Stage MS: merge shifted input with the output cloud. Both are
        // already sorted (a constant shift preserves order), so no ST
        // pass is needed — exactly the hardware dataflow in Fig. 9.
        MergeStats ms;
        ElementVec merged = merger.merge(inStream, outStream, ms);
        foldMergeStats(ms, result.stats);

        // Stage DI: adjacent-equal detection (pipelined, no cycles).
        MergeStats di;
        const auto matches =
            detectIntersection(merged, cfg.mergerWidth, di);
        result.stats.comparisons += di.comparisons;

        for (const auto &[inIdx, outIdx] : matches)
            result.maps.add(Map{inIdx, outIdx, w});
        result.stats.mapsEmitted += matches.size();
        // Map FIFO writes: 12 bytes per (in, out, w) tuple.
        result.stats.sramWriteBytes += matches.size() * 12;
    }
    return result;
}

SamplingResult
MappingUnit::farthestPointSampling(const PointCloud &cloud,
                                   std::size_t num_samples,
                                   PointIndex first) const
{
    const std::size_t n = cloud.size();
    num_samples = std::min(num_samples, n);
    SamplingResult result;
    if (num_samples == 0)
        return result;
    simAssert(first >= 0 && static_cast<std::size_t>(first) < n,
              "FPS seed out of range");

    result.indices.reserve(num_samples);
    result.indices.push_back(first);

    // minDist lives in the sorter buffer payload (updated distances are
    // written back from stage CD to FS each pass, Fig. 7 blue path).
    std::vector<std::int64_t> minDist(
        n, std::numeric_limits<std::int64_t>::max());

    PointIndex last = first;
    while (result.indices.size() < num_samples) {
        const Coord3 &lastCoord = cloud.coord(last);
        std::int64_t best = -1;
        PointIndex bestIdx = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const auto d = cloud.coord(static_cast<PointIndex>(i))
                               .distance2(lastCoord);
            if (d < minDist[i])
                minDist[i] = d;
            if (minDist[i] > best) {
                best = minDist[i];
                bestIdx = static_cast<PointIndex>(i);
            }
        }
        result.indices.push_back(bestIdx);
        last = bestIdx;

        // Timing: one full pass of the cloud through the CD lanes; the
        // running max (arg max in stage ST) is pipelined behind it.
        result.stats.cycles += (n + cfg.distanceLanes - 1) /
                               cfg.distanceLanes;
        result.stats.distanceOps += n;
        result.stats.comparisons += 2 * n; // min-update + max-track
        // Each pass reads every element and writes back the updated
        // distance (key + payload).
        result.stats.sramReadBytes += n * cfg.elementBytes;
        result.stats.sramWriteBytes += n * cfg.elementBytes;
    }
    return result;
}

NeighborResult
MappingUnit::kNearestNeighbors(const PointCloud &input,
                               const PointCloud &queries, int k) const
{
    simAssert(k >= 1, "kNN requires k >= 1");
    NeighborResult result;
    result.lists.reserve(queries.size());

    for (std::size_t q = 0; q < queries.size(); ++q) {
        const Coord3 &qc = queries.coord(static_cast<PointIndex>(q));

        // Stage CD: distances from every input point to this query.
        ElementVec dists;
        dists.reserve(input.size());
        for (std::size_t i = 0; i < input.size(); ++i) {
            dists.push_back(distanceElement(
                input.coord(static_cast<PointIndex>(i)).distance2(qc),
                static_cast<PointIndex>(i)));
        }
        result.stats.distanceOps += input.size();
        result.stats.cycles += (input.size() + cfg.distanceLanes - 1) /
                               cfg.distanceLanes;

        // Stages ST/BF/MS: TopK via truncated merge sort (Fig. 10c).
        MergeStats ms;
        ElementVec top = merger.sort(std::move(dists), ms,
                                     static_cast<std::size_t>(k));
        foldMergeStats(ms, result.stats);

        NeighborList list;
        for (const auto &e : top) {
            list.indices.push_back(e.payload);
            list.distances2.push_back(static_cast<std::int64_t>(e.key));
        }
        result.stats.mapsEmitted += list.indices.size();
        result.lists.push_back(std::move(list));
    }
    return result;
}

NeighborResult
MappingUnit::ballQuery(const PointCloud &input, const PointCloud &queries,
                       int k, std::int64_t radius2) const
{
    // Ball query is kNN plus a threshold comparator on the final k
    // elements (Section 2.1.2): same dataflow, same cycles.
    NeighborResult result = kNearestNeighbors(input, queries, k);
    for (auto &list : result.lists) {
        std::size_t keep = 0;
        while (keep < list.distances2.size() &&
               list.distances2[keep] <= radius2) {
            ++keep;
        }
        list.indices.resize(keep);
        list.distances2.resize(keep);
        result.stats.comparisons += static_cast<std::uint64_t>(k);
    }
    return result;
}

ElementVec
MappingUnit::sort(ElementVec data, MpuStats &stats) const
{
    MergeStats ms;
    ElementVec out = merger.sort(std::move(data), ms);
    foldMergeStats(ms, stats);
    return out;
}

ElementVec
MappingUnit::topK(ElementVec data, std::size_t k, MpuStats &stats) const
{
    MergeStats ms;
    ElementVec out = merger.sort(std::move(data), ms, k);
    foldMergeStats(ms, stats);
    return out;
}

} // namespace pointacc
