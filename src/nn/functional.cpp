#include "nn/functional.hpp"

#include <algorithm>
#include <limits>

#include "core/logging.hpp"
#include "core/rng.hpp"

namespace pointacc {

ConvWeights
randomWeights(std::int32_t num_weights, std::uint32_t cin,
              std::uint32_t cout, std::uint64_t seed, float s)
{
    ConvWeights w;
    w.numWeights = num_weights;
    w.cin = cin;
    w.cout = cout;
    w.data.resize(static_cast<std::size_t>(num_weights) * cin * cout);
    Rng rng(seed);
    for (auto &v : w.data)
        v = static_cast<float>(rng.uniform(-s, s));
    return w;
}

ConvWeights
identityWeights(std::int32_t num_weights, std::uint32_t ch)
{
    ConvWeights w;
    w.numWeights = num_weights;
    w.cin = ch;
    w.cout = ch;
    w.data.assign(static_cast<std::size_t>(num_weights) * ch * ch, 0.0f);
    const std::int32_t center = num_weights / 2;
    for (std::uint32_t c = 0; c < ch; ++c)
        w.data[(static_cast<std::size_t>(center) * ch + c) * ch + c] =
            1.0f;
    return w;
}

std::vector<float>
sparseConvForward(const PointCloud &input, const MapSet &maps,
                  const ConvWeights &weights, std::size_t num_outputs)
{
    simAssert(static_cast<std::uint32_t>(input.channels()) == weights.cin,
              "input channel mismatch");
    simAssert(maps.numWeights() == weights.numWeights,
              "kernel volume mismatch");

    std::vector<float> out(num_outputs * weights.cout, 0.0f);
    for (std::int32_t w = 0; w < maps.numWeights(); ++w) {
        for (const auto &m : maps.forWeight(w)) {
            const float *fin =
                input.featureData().data() +
                static_cast<std::size_t>(m.in) * weights.cin;
            float *fout =
                out.data() + static_cast<std::size_t>(m.out) * weights.cout;
            for (std::uint32_t ci = 0; ci < weights.cin; ++ci) {
                const float x = fin[ci];
                if (x == 0.0f)
                    continue;
                const float *wrow =
                    weights.data.data() +
                    (static_cast<std::size_t>(w) * weights.cin + ci) *
                        weights.cout;
                for (std::uint32_t co = 0; co < weights.cout; ++co)
                    fout[co] += x * wrow[co];
            }
        }
    }
    return out;
}

std::vector<float>
denseForward(const std::vector<float> &features, std::size_t num_points,
             const ConvWeights &weights)
{
    simAssert(weights.numWeights == 1, "dense layer has one weight");
    simAssert(features.size() == num_points * weights.cin,
              "feature size mismatch");

    std::vector<float> out(num_points * weights.cout, 0.0f);
    for (std::size_t p = 0; p < num_points; ++p) {
        const float *fin = features.data() + p * weights.cin;
        float *fout = out.data() + p * weights.cout;
        for (std::uint32_t ci = 0; ci < weights.cin; ++ci) {
            const float x = fin[ci];
            if (x == 0.0f)
                continue;
            const float *wrow = weights.data.data() +
                                static_cast<std::size_t>(ci) * weights.cout;
            for (std::uint32_t co = 0; co < weights.cout; ++co)
                fout[co] += x * wrow[co];
        }
    }
    return out;
}

void
reluInPlace(std::vector<float> &features)
{
    for (auto &v : features)
        v = std::max(v, 0.0f);
}

std::vector<float>
maxPoolByOutput(const std::vector<float> &edge_features, const MapSet &maps,
                std::uint32_t channels, std::size_t num_outputs)
{
    std::vector<float> out(num_outputs * channels,
                           -std::numeric_limits<float>::infinity());
    std::vector<bool> touched(num_outputs, false);

    std::size_t row = 0;
    for (std::int32_t w = 0; w < maps.numWeights(); ++w) {
        for (const auto &m : maps.forWeight(w)) {
            const float *fin = edge_features.data() + row * channels;
            float *fout =
                out.data() + static_cast<std::size_t>(m.out) * channels;
            for (std::uint32_t c = 0; c < channels; ++c)
                fout[c] = std::max(fout[c], fin[c]);
            touched[m.out] = true;
            ++row;
        }
    }
    simAssert(row * channels == edge_features.size(),
              "edge feature rows must equal map count");
    for (std::size_t q = 0; q < num_outputs; ++q) {
        if (!touched[q]) {
            std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(
                                          q * channels),
                        channels, 0.0f);
        }
    }
    return out;
}

} // namespace pointacc
