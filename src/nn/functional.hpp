/**
 * @file
 * Functional (value-level) layer computation.
 *
 * The performance models only need shapes, but the library also
 * computes real feature values for the layers that define point cloud
 * convolution semantics: map-driven sparse convolution (gather by
 * weight -> matmul -> scatter-accumulate, Fig. 4) and per-point dense
 * layers. Tests use these to pin down the convolution semantics the
 * hardware accelerates; examples use them to show end-to-end results.
 */

#ifndef POINTACC_NN_FUNCTIONAL_HPP
#define POINTACC_NN_FUNCTIONAL_HPP

#include <vector>

#include "core/point_cloud.hpp"
#include "mapping/maps.hpp"

namespace pointacc {

/**
 * Weights of one sparse convolution: numWeights matrices of
 * cin x cout, row-major (weights[w][ci * cout + co]).
 */
struct ConvWeights
{
    std::int32_t numWeights = 0;
    std::uint32_t cin = 0;
    std::uint32_t cout = 0;
    std::vector<float> data; ///< numWeights * cin * cout

    float
    at(std::int32_t w, std::uint32_t ci, std::uint32_t co) const
    {
        return data[(static_cast<std::size_t>(w) * cin + ci) * cout + co];
    }
};

/** Deterministic pseudo-random weights in [-s, s]. */
ConvWeights randomWeights(std::int32_t num_weights, std::uint32_t cin,
                          std::uint32_t cout, std::uint64_t seed,
                          float s = 0.1f);

/** Identity weights: center weight = I, the rest zero (odd kernels). */
ConvWeights identityWeights(std::int32_t num_weights, std::uint32_t ch);

/**
 * Map-driven sparse convolution: for every map (p, q, w), accumulate
 * f_out[q] += f_in[p] * W_w. Input features come from `input`; output
 * has `num_outputs` points and weights.cout channels.
 */
std::vector<float> sparseConvForward(const PointCloud &input,
                                     const MapSet &maps,
                                     const ConvWeights &weights,
                                     std::size_t num_outputs);

/** Per-point dense layer: out[i] = relu? no — plain linear transform. */
std::vector<float> denseForward(const std::vector<float> &features,
                                std::size_t num_points,
                                const ConvWeights &weights);

/** Elementwise ReLU in place. */
void reluInPlace(std::vector<float> &features);

/** Per-output max-pool over maps (PointNet++ aggregation). */
std::vector<float> maxPoolByOutput(const std::vector<float> &edge_features,
                                   const MapSet &maps,
                                   std::uint32_t channels,
                                   std::size_t num_outputs);

} // namespace pointacc

#endif // POINTACC_NN_FUNCTIONAL_HPP
