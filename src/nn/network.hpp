/**
 * @file
 * Network: a named sequence of layers plus benchmark metadata.
 */

#ifndef POINTACC_NN_NETWORK_HPP
#define POINTACC_NN_NETWORK_HPP

#include <string>
#include <vector>

#include "datasets/synthetic.hpp"
#include "nn/layer.hpp"

namespace pointacc {

/** Table 1 taxonomy of point cloud convolutions. */
enum class ConvClass
{
    PointNetPP, ///< FPS + ball query / kNN (incl. graph-based)
    SparseConv, ///< quantization + kernel mapping
    PointMlp,   ///< per-point MLPs only (PointNet)
};

/** A point cloud network benchmark (Table 2 row). */
struct Network
{
    std::string name;       ///< full name, e.g. "MinkowskiUNet"
    std::string notation;   ///< paper notation, e.g. "MinkNet(o)"
    DatasetKind dataset = DatasetKind::ModelNet40;
    ConvClass convClass = ConvClass::PointNetPP;
    std::uint32_t inputChannels = 3;
    std::vector<LayerDesc> layers;
    /** Paper-reported accuracy (mIoU or overall accuracy, %): carried
     *  as metadata for the co-design experiment (Fig. 16). */
    double paperAccuracy = 0.0;
    /** True when every neighbor shares one weight (Mesorasi's
     *  delayed-aggregation requirement, Section 5.2.2). */
    bool mesorasiCompatible = false;
};

} // namespace pointacc

#endif // POINTACC_NN_NETWORK_HPP
