#include "nn/executor.hpp"

#include <algorithm>

#include "core/logging.hpp"
#include "mapping/fps.hpp"
#include "mapping/kernel_map.hpp"
#include "mapping/knn.hpp"
#include "mapping/quantize.hpp"

namespace pointacc {

namespace {

/** Execution state threaded through the layer walk. */
struct ExecState
{
    PointCloud cloud;          ///< current resolution coordinates
    std::uint32_t channels;    ///< current feature width
    std::int32_t chainId = 0;  ///< next dense-chain id
    bool inDenseChain = false;
    /** Encoder clouds for U-Net upsampling / FP skip levels. */
    std::vector<PointCloud> levelStack;

    const LayerVisitor *visit = nullptr;
};

void
emit(ExecState &st, LayerWork &&work)
{
    if (work.isDense) {
        if (!st.inDenseChain) {
            ++st.chainId;
            st.inDenseChain = true;
        }
        work.denseChainId = st.chainId;
    } else {
        st.inDenseChain = false;
    }
    (*st.visit)(work);
}

/** Emit one per-point (or per-edge) dense layer. */
void
emitDense(ExecState &st, const std::string &name, std::uint64_t rows,
          std::uint32_t cin, std::uint32_t cout)
{
    LayerWork w;
    w.name = name;
    w.isDense = true;
    w.numIn = rows;
    w.numOut = rows;
    w.cin = cin;
    w.cout = cout;
    w.macs = rows * static_cast<std::uint64_t>(cin) * cout;
    emit(st, std::move(w));
}

void
runDense(ExecState &st, const LayerDesc &layer, const DenseDesc &d)
{
    simAssert(d.inChannels == st.channels,
              ("channel mismatch at " + layer.name).c_str());
    emitDense(st, layer.name, st.cloud.size(), d.inChannels,
              d.outChannels);
    st.channels = d.outChannels;
}

void
runSparseConv(ExecState &st, const LayerDesc &layer,
              const SparseConvDesc &d)
{
    simAssert(d.inChannels == st.channels + d.skipChannels,
              ("channel mismatch at " + layer.name).c_str());

    PointCloud output;
    MapSet maps;
    std::vector<MappingOpInfo> mappingOps;

    if (d.transposed) {
        // Upsample back to the finest stashed encoder level: the maps
        // are the transpose of the corresponding downsample's maps.
        simAssert(!st.levelStack.empty(),
                  "transposed conv without a matching downsample");
        output = std::move(st.levelStack.back());
        st.levelStack.pop_back();

        KernelMapConfig kcfg;
        kcfg.kernelSize = d.kernelSize;
        kcfg.inStride = output.tensorStride();
        kcfg.outStride = st.cloud.tensorStride();
        const MapSet down = sortKernelMap(output, st.cloud, kcfg);
        maps = transposeMaps(down, d.kernelSize);
        mappingOps.push_back({MappingOpKind::KernelMap, output.size(),
                              st.cloud.size(), 0,
                              static_cast<int>(maps.numWeights())});
    } else if (d.strideMultiplier > 1) {
        // Strided downsample: quantize then kernel-map.
        const std::int32_t outStride =
            st.cloud.tensorStride() * d.strideMultiplier;
        output = quantizeDownsample(st.cloud, outStride);
        mappingOps.push_back({MappingOpKind::Quantize, st.cloud.size(),
                              output.size(), 0, 0});

        KernelMapConfig kcfg;
        kcfg.kernelSize = d.kernelSize;
        kcfg.inStride = st.cloud.tensorStride();
        kcfg.outStride = outStride;
        maps = sortKernelMap(st.cloud, output, kcfg);
        mappingOps.push_back({MappingOpKind::KernelMap, st.cloud.size(),
                              output.size(), 0,
                              static_cast<int>(maps.numWeights())});

        // Stash the fine cloud for the mirroring transposed conv.
        st.levelStack.push_back(st.cloud);
    } else {
        // Submanifold convolution at the same resolution.
        output = st.cloud;
        KernelMapConfig kcfg;
        kcfg.kernelSize = d.kernelSize;
        kcfg.inStride = st.cloud.tensorStride();
        kcfg.outStride = st.cloud.tensorStride();
        maps = sortKernelMap(st.cloud, output, kcfg);
        mappingOps.push_back({MappingOpKind::KernelMap, st.cloud.size(),
                              output.size(), 0,
                              static_cast<int>(maps.numWeights())});
    }

    LayerWork w;
    w.name = layer.name;
    w.isDense = false;
    w.numIn = st.cloud.size();
    w.numOut = output.size();
    w.cin = d.inChannels;
    w.cout = d.outChannels;
    w.maps = &maps;
    w.mappingOps = std::move(mappingOps);
    w.macs = maps.size() * static_cast<std::uint64_t>(d.inChannels) *
             d.outChannels;
    emit(st, std::move(w));

    st.cloud = std::move(output);
    st.channels = d.outChannels;
}

void
runSetAbstraction(ExecState &st, const LayerDesc &layer,
                  const SetAbstractionDesc &d)
{
    simAssert(d.inChannels == st.channels,
              ("channel mismatch at " + layer.name).c_str());

    if (d.numCenters == 0) {
        // Group-all: one global region, MLP over every point, max-pool.
        std::uint32_t cur = d.inChannels + 3;
        for (std::size_t i = 0; i < d.scales[0].mlp.size(); ++i) {
            emitDense(st, layer.name + ".mlp" + std::to_string(i),
                      st.cloud.size(), cur, d.scales[0].mlp[i]);
            cur = d.scales[0].mlp[i];
        }
        st.levelStack.push_back(st.cloud); // FP layers climb back up
        st.cloud = PointCloud({Coord3{0, 0, 0}});
        st.channels = cur;
        return;
    }

    // Output construction: farthest point sampling.
    const std::size_t centers =
        std::min<std::size_t>(d.numCenters, std::max<std::size_t>(
                                                1, st.cloud.size() / 2));
    const auto selected = farthestPointSampling(st.cloud, centers);
    const PointCloud queryCloud = gatherPoints(st.cloud, selected);

    std::uint32_t outChannels = 0;
    for (std::size_t s = 0; s < d.scales.size(); ++s) {
        const auto &scale = d.scales[s];
        // Neighbor search: ball query (or kNN when radius is 0).
        std::vector<NeighborList> lists;
        MappingOpKind searchKind;
        if (scale.radiusGrid > 0) {
            lists = ballQuery(st.cloud, queryCloud, scale.k,
                              static_cast<std::int64_t>(scale.radiusGrid) *
                                  scale.radiusGrid);
            searchKind = MappingOpKind::BallQuery;
        } else {
            lists = kNearestNeighbors(st.cloud, queryCloud, scale.k);
            searchKind = MappingOpKind::Knn;
        }
        MapSet maps = neighborsToMaps(lists, scale.k);
        std::uint64_t survivors = 0;
        for (const auto &list : lists)
            survivors += list.candidates;

        // First MLP layer runs per gathered neighbor, driven by maps.
        LayerWork w;
        w.name = layer.name + ".s" + std::to_string(s) + ".mlp0";
        w.isDense = false;
        w.numIn = st.cloud.size();
        w.numOut = queryCloud.size();
        w.cin = d.inChannels + 3; // grouped features + relative coords
        w.cout = scale.mlp[0];
        w.maps = &maps;
        w.macs = maps.size() * static_cast<std::uint64_t>(w.cin) * w.cout;
        if (s == 0) {
            w.mappingOps.push_back({MappingOpKind::Fps, st.cloud.size(),
                                    queryCloud.size(), 0, 0});
        }
        w.mappingOps.push_back({searchKind, st.cloud.size(),
                                queryCloud.size(), scale.k, 0,
                                survivors});
        const std::uint64_t edges = maps.size();
        emit(st, std::move(w));

        // Remaining MLP layers act per edge; max-pool follows (free).
        std::uint32_t cur = scale.mlp[0];
        for (std::size_t i = 1; i < scale.mlp.size(); ++i) {
            emitDense(st,
                      layer.name + ".s" + std::to_string(s) + ".mlp" +
                          std::to_string(i),
                      edges, cur, scale.mlp[i]);
            cur = scale.mlp[i];
        }
        outChannels += cur; // MSG concatenates scale outputs
    }

    st.levelStack.push_back(st.cloud); // FP layers climb back up
    st.cloud = queryCloud;
    st.channels = outChannels;
}

void
runFeaturePropagation(ExecState &st, const LayerDesc &layer,
                      const FeaturePropagationDesc &d)
{
    simAssert(!st.levelStack.empty(),
              "feature propagation without a matching abstraction");
    PointCloud fine = std::move(st.levelStack.back());
    st.levelStack.pop_back();

    // 3-NN interpolation: each fine point finds 3 coarse neighbors.
    LayerWork w;
    w.name = layer.name + ".mlp0";
    w.isDense = false;
    w.numIn = st.cloud.size();
    w.numOut = fine.size();
    w.cin = d.inChannels;
    w.cout = d.mlp[0];
    const auto lists = kNearestNeighbors(st.cloud, fine, 3);
    MapSet maps = neighborsToMaps(lists, 3);
    w.maps = &maps;
    w.mappingOps.push_back(
        {MappingOpKind::Knn, st.cloud.size(), fine.size(), 3, 0});
    // Interpolated features are per fine point; the unit MLP runs per
    // fine point.
    w.macs = fine.size() * static_cast<std::uint64_t>(d.inChannels) *
             d.mlp[0];
    emit(st, std::move(w));

    std::uint32_t cur = d.mlp[0];
    for (std::size_t i = 1; i < d.mlp.size(); ++i) {
        emitDense(st, layer.name + ".mlp" + std::to_string(i),
                  fine.size(), cur, d.mlp[i]);
        cur = d.mlp[i];
    }
    st.cloud = std::move(fine);
    st.channels = cur;
}

void
runEdgeConv(ExecState &st, const LayerDesc &layer, const EdgeConvDesc &d)
{
    simAssert(d.inChannels == st.channels,
              ("channel mismatch at " + layer.name).c_str());

    // Feature-space kNN; geometry stands in for the feature metric
    // (identical cost structure — Section 2, graph-based special case).
    const auto lists = kNearestNeighbors(st.cloud, st.cloud, d.k);
    MapSet maps = neighborsToMaps(lists, d.k);

    LayerWork w;
    w.name = layer.name + ".mlp0";
    w.isDense = false;
    w.numIn = st.cloud.size();
    w.numOut = st.cloud.size();
    w.cin = 2 * d.inChannels; // edge features (f_i, f_j - f_i)
    w.cout = d.mlp[0];
    w.maps = &maps;
    MappingOpInfo knnOp{MappingOpKind::Knn, st.cloud.size(),
                        st.cloud.size(), d.k, 0, 0,
                        std::max<std::uint32_t>(3, d.inChannels)};
    w.mappingOps.push_back(knnOp);
    const std::uint64_t edges = maps.size();
    w.macs = edges * static_cast<std::uint64_t>(w.cin) * w.cout;
    emit(st, std::move(w));

    std::uint32_t cur = d.mlp[0];
    for (std::size_t i = 1; i < d.mlp.size(); ++i) {
        emitDense(st, layer.name + ".mlp" + std::to_string(i), edges, cur,
                  d.mlp[i]);
        cur = d.mlp[i];
    }
    st.channels = cur;
}

void
runConcat(ExecState &st, const ConcatDesc &d)
{
    // Concatenation only widens the live feature map; breaks a dense
    // chain because the concatenated source must be re-materialized.
    st.inDenseChain = false;
    st.channels += d.extraChannels;
}

void
runReset(ExecState &st, const ResetDesc &d)
{
    st.inDenseChain = false;
    st.channels = d.channels;
}

void
runGlobalPool(ExecState &st, const LayerDesc &layer, const GlobalPoolDesc &d)
{
    simAssert(d.channels == st.channels,
              ("channel mismatch at " + layer.name).c_str());
    // Max-pool; no MACs, breaks any dense chain. Broadcast mode keeps
    // the cloud (the pooled vector is repeated per point and typically
    // concatenated by a following Concat layer).
    st.inDenseChain = false;
    if (!d.broadcast)
        st.cloud = PointCloud({Coord3{0, 0, 0}});
}

} // namespace

void
executeNetwork(const Network &net, const PointCloud &input,
               const LayerVisitor &visit)
{
    simAssert(input.isSorted(), "executor requires a sorted input cloud");

    ExecState st;
    st.cloud = input;
    st.channels = net.inputChannels;
    st.visit = &visit;

    for (const auto &layer : net.layers) {
        std::visit(
            [&](const auto &desc) {
                using T = std::decay_t<decltype(desc)>;
                if constexpr (std::is_same_v<T, DenseDesc>)
                    runDense(st, layer, desc);
                else if constexpr (std::is_same_v<T, SparseConvDesc>)
                    runSparseConv(st, layer, desc);
                else if constexpr (std::is_same_v<T, SetAbstractionDesc>)
                    runSetAbstraction(st, layer, desc);
                else if constexpr (std::is_same_v<T,
                                                  FeaturePropagationDesc>)
                    runFeaturePropagation(st, layer, desc);
                else if constexpr (std::is_same_v<T, EdgeConvDesc>)
                    runEdgeConv(st, layer, desc);
                else if constexpr (std::is_same_v<T, ConcatDesc>)
                    runConcat(st, desc);
                else if constexpr (std::is_same_v<T, ResetDesc>)
                    runReset(st, desc);
                else
                    runGlobalPool(st, layer, desc);
            },
            layer.desc);
    }
}

WorkloadSummary
summarizeWorkload(const Network &net, const PointCloud &input)
{
    WorkloadSummary s;
    s.inputPoints = input.size();

    executeNetwork(net, input, [&](const LayerWork &w) {
        ++s.numMatrixOps;
        s.totalMacs += w.macs;
        if (w.isDense)
            s.denseMacs += w.macs;
        else
            s.sparseMacs += w.macs;
        s.weightBytes += static_cast<std::uint64_t>(w.cin) * w.cout * 2 *
                         (w.maps ? w.maps->numWeights() : 1);

        const std::uint64_t rows = w.maps ? w.maps->size() : w.numIn;
        s.totalMaps += w.maps ? w.maps->size() : 0;
        // GPU gather-matmul-scatter traffic: features cross DRAM on
        // gather read + gathered write + matmul read, psums written and
        // scattered (fp16).
        if (w.maps) {
            s.gatherScatterBytes +=
                rows * 2ULL * (3ULL * w.cin + 2ULL * w.cout);
        } else {
            s.gatherScatterBytes += rows * 2ULL * (w.cin + w.cout);
        }

        s.numMappingOps += w.mappingOps.size();
        for (const auto &op : w.mappingOps) {
            switch (op.kind) {
              case MappingOpKind::Fps:
                s.fpsWork += op.inputPoints * op.outputPoints;
                break;
              case MappingOpKind::BallQuery:
              case MappingOpKind::Knn:
                // Feature-space search costs dims/3 geometric evals.
                s.neighborWork += op.inputPoints * op.outputPoints *
                                  std::max<std::uint32_t>(
                                      op.distanceDims, 3) / 3;
                break;
              case MappingOpKind::KernelMap:
                s.kernelMapWork += (op.inputPoints + op.outputPoints) *
                                   static_cast<std::uint64_t>(
                                       std::max(op.kernelVolume, 1));
                break;
              case MappingOpKind::Quantize:
                s.kernelMapWork += op.inputPoints;
                break;
            }
        }

        const std::uint64_t inBytes = w.numIn * 2 * w.cin;
        const std::uint64_t outBytes = w.numOut * 2 * w.cout;
        s.peakFeatureBytes =
            std::max(s.peakFeatureBytes, std::max(inBytes, outBytes));
    });
    return s;
}

NetworkCharacteristics
characterize(const Network &net, const PointCloud &input)
{
    const auto s = summarizeWorkload(net, input);
    NetworkCharacteristics c;
    c.macsPerPoint = input.empty() ? 0 : s.totalMacs / input.size();
    c.featureBytesPerPoint =
        input.empty() ? 0.0
                      : static_cast<double>(s.peakFeatureBytes) /
                            static_cast<double>(input.size());
    c.params = s.weightBytes / 2;
    return c;
}

} // namespace pointacc
