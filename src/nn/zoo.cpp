#include "nn/zoo.hpp"

namespace pointacc {

namespace {

/** Append a per-point MLP as a chain of dense layers. */
void
appendMlp(std::vector<LayerDesc> &layers, const std::string &prefix,
          std::uint32_t in, const std::vector<std::uint32_t> &dims)
{
    std::uint32_t cur = in;
    for (std::size_t i = 0; i < dims.size(); ++i) {
        layers.push_back(makeDense(prefix + ".fc" + std::to_string(i),
                                   cur, dims[i]));
        cur = dims[i];
    }
}

/**
 * Append one MinkowskiUNet residual stage: an optional strided conv
 * (k=2, stride 2) followed by `blocks` residual blocks of two k=3
 * convolutions each.
 */
void
appendMinkStage(std::vector<LayerDesc> &layers, const std::string &prefix,
                std::uint32_t in, std::uint32_t out, int blocks,
                bool downsample)
{
    std::uint32_t cur = in;
    if (downsample) {
        layers.push_back(makeSparseConv(prefix + ".down", cur, out, 2, 2));
        cur = out;
    } else if (cur != out) {
        layers.push_back(makeSparseConv(prefix + ".proj", cur, out, 3, 1));
        cur = out;
    }
    for (int b = 0; b < blocks; ++b) {
        const std::string blk = prefix + ".block" + std::to_string(b);
        layers.push_back(makeSparseConv(blk + ".conv0", cur, out, 3, 1));
        layers.push_back(
            makeSparseConv(blk + ".conv1", out, out, 3, 1, false, true));
    }
}

/** Append one MinkowskiUNet decoder stage: transposed conv + blocks. */
void
appendMinkUpStage(std::vector<LayerDesc> &layers, const std::string &prefix,
                  std::uint32_t in, std::uint32_t skip, std::uint32_t out,
                  int blocks)
{
    layers.push_back(makeSparseConv(prefix + ".up", in, out, 2, 2, true));
    // Concatenated skip features enter the first block.
    std::uint32_t cur = out + skip;
    std::uint32_t pendingSkip = skip;
    for (int b = 0; b < blocks; ++b) {
        const std::string blk = prefix + ".block" + std::to_string(b);
        layers.push_back(makeSparseConv(blk + ".conv0", cur, out, 3, 1,
                                        false, false, pendingSkip));
        layers.push_back(
            makeSparseConv(blk + ".conv1", out, out, 3, 1, false, true));
        cur = out;
        pendingSkip = 0;
    }
}

Network
minkowskiUNet(const std::string &notation, DatasetKind dataset,
              std::uint32_t classes, double accuracy)
{
    Network net;
    net.name = "MinkowskiUNet";
    net.notation = notation;
    net.dataset = dataset;
    net.convClass = ConvClass::SparseConv;
    net.inputChannels = 4;
    net.paperAccuracy = accuracy;
    net.mesorasiCompatible = false;

    auto &L = net.layers;
    // Stem at full resolution.
    L.push_back(makeSparseConv("stem.conv0", 4, 32, 3, 1));
    L.push_back(makeSparseConv("stem.conv1", 32, 32, 3, 1));
    // Encoder: 4 downsampling stages (MinkUNet-34 style widths).
    appendMinkStage(L, "enc1", 32, 32, 2, true);
    appendMinkStage(L, "enc2", 32, 64, 2, true);
    appendMinkStage(L, "enc3", 64, 128, 2, true);
    appendMinkStage(L, "enc4", 128, 256, 2, true);
    // Decoder: 4 upsampling stages with encoder skips.
    appendMinkUpStage(L, "dec1", 256, 128, 256, 2);
    appendMinkUpStage(L, "dec2", 256, 64, 128, 2);
    appendMinkUpStage(L, "dec3", 128, 32, 96, 2);
    appendMinkUpStage(L, "dec4", 96, 32, 96, 2);
    // Classifier head (1x1 conv == dense).
    L.push_back(makeDense("head.fc", 96, classes));
    return net;
}

} // namespace

Network
pointNet()
{
    Network net;
    net.name = "PointNet";
    net.notation = "PointNet";
    net.dataset = DatasetKind::ModelNet40;
    net.convClass = ConvClass::PointMlp;
    net.inputChannels = 3;
    net.paperAccuracy = 89.2;
    net.mesorasiCompatible = true;

    auto &L = net.layers;
    appendMlp(L, "mlp1", 3, {64, 64});
    appendMlp(L, "mlp2", 64, {64, 128, 1024});
    L.push_back(makeGlobalPool("gpool", 1024));
    appendMlp(L, "cls", 1024, {512, 256, 40});
    return net;
}

Network
pointNetPPClass()
{
    Network net;
    net.name = "PointNet++ (SSG)";
    net.notation = "PointNet++(c)";
    net.dataset = DatasetKind::ModelNet40;
    net.convClass = ConvClass::PointNetPP;
    net.inputChannels = 3;
    net.paperAccuracy = 90.7;
    net.mesorasiCompatible = true;

    auto &L = net.layers;
    // Object grid extent is 128 (2 m at 2 cm voxels): radii 0.2 / 0.4
    // of the normalized object map to 13 / 26 grid units.
    L.push_back(makeSetAbstraction("sa1", 512, 3,
                                   {SaScale{13, 32, {64, 64, 128}}}));
    L.push_back(makeSetAbstraction("sa2", 128, 128,
                                   {SaScale{26, 64, {128, 128, 256}}}));
    L.push_back(makeSetAbstraction("sa3", 0, 256,
                                   {SaScale{0, 128, {256, 512, 1024}}}));
    appendMlp(L, "cls", 1024, {512, 256, 40});
    return net;
}

Network
pointNetPPPartSeg()
{
    Network net;
    net.name = "PointNet++ (MSG)";
    net.notation = "PointNet++(ps)";
    net.dataset = DatasetKind::ShapeNet;
    net.convClass = ConvClass::PointNetPP;
    net.inputChannels = 3;
    net.paperAccuracy = 85.1;
    net.mesorasiCompatible = true;

    auto &L = net.layers;
    L.push_back(makeSetAbstraction(
        "sa1", 512, 3,
        {SaScale{7, 16, {32, 32, 64}}, SaScale{13, 32, {64, 64, 128}},
         SaScale{26, 64, {64, 96, 128}}}));
    L.push_back(makeSetAbstraction(
        "sa2", 128, 320,
        {SaScale{26, 32, {128, 128, 256}},
         SaScale{51, 64, {128, 196, 256}}}));
    L.push_back(makeSetAbstraction("sa3", 0, 512,
                                   {SaScale{0, 128, {256, 512, 1024}}}));
    L.push_back(makeFeaturePropagation("fp3", 1024 + 512, {256, 256}));
    L.push_back(makeFeaturePropagation("fp2", 256 + 320, {256, 128}));
    L.push_back(makeFeaturePropagation("fp1", 128 + 3, {128, 128}));
    appendMlp(L, "seg", 128, {128, 50});
    return net;
}

Network
dgcnn()
{
    Network net;
    net.name = "DGCNN";
    net.notation = "DGCNN";
    net.dataset = DatasetKind::ShapeNet;
    net.convClass = ConvClass::PointNetPP; // graph-based special case
    net.inputChannels = 3;
    net.paperAccuracy = 85.2;
    net.mesorasiCompatible = true;

    auto &L = net.layers;
    L.push_back(makeEdgeConv("edge1", 3, 20, {64}));
    L.push_back(makeEdgeConv("edge2", 64, 20, {64}));
    L.push_back(makeEdgeConv("edge3", 64, 20, {64}));
    L.push_back(makeConcat("cat123", 128)); // edge1 + edge2 outputs
    L.push_back(makeDense("agg", 192, 1024));
    L.push_back(makeGlobalPool("gpool", 1024, true));
    // Per-point 192-ch stack concatenated under the global feature.
    L.push_back(makeConcat("catseg", 192));
    appendMlp(L, "seg", 1024 + 192, {256, 256, 128, 50});
    return net;
}

Network
fPointNetPP()
{
    Network net;
    net.name = "Frustum PointNet++";
    net.notation = "F-PointNet++";
    net.dataset = DatasetKind::KITTI;
    net.convClass = ConvClass::PointNetPP;
    net.inputChannels = 4;
    net.paperAccuracy = 70.9;
    net.mesorasiCompatible = true;

    // Instance segmentation net on the frustum points (KITTI grid is
    // 5 cm voxels: radii 0.2/0.4/0.8 m -> 4/8/16 units), followed by
    // the box-estimation PointNet.
    auto &L = net.layers;
    L.push_back(makeSetAbstraction("seg.sa1", 2048, 4,
                                   {SaScale{4, 32, {32, 32, 64}}}));
    L.push_back(makeSetAbstraction("seg.sa2", 512, 64,
                                   {SaScale{8, 32, {64, 64, 128}}}));
    L.push_back(makeSetAbstraction("seg.sa3", 128, 128,
                                   {SaScale{16, 32, {128, 128, 256}}}));
    L.push_back(makeFeaturePropagation("seg.fp2", 256 + 128, {128, 128}));
    L.push_back(makeFeaturePropagation("seg.fp1", 128 + 64, {128, 128}));
    appendMlp(L, "seg.head", 128, {128, 2});
    // T-Net + box net restart from the masked object points' xyz.
    L.push_back(makeReset("tnet.input", 3));
    appendMlp(L, "tnet", 3, {128, 256, 512});
    L.push_back(makeGlobalPool("tnet.pool", 512));
    appendMlp(L, "tnet.fc", 512, {256, 128, 3});
    L.push_back(makeReset("box.input", 3));
    appendMlp(L, "box", 3, {128, 128, 256, 512});
    L.push_back(makeGlobalPool("box.pool", 512));
    appendMlp(L, "box.fc", 512, {512, 256, 59});
    return net;
}

Network
pointNetPPSemSeg()
{
    Network net;
    net.name = "PointNet++ (SSG)";
    net.notation = "PointNet++(s)";
    net.dataset = DatasetKind::S3DIS;
    net.convClass = ConvClass::PointNetPP;
    net.inputChannels = 6; // xyz + rgb
    net.paperAccuracy = 53.5;
    net.mesorasiCompatible = true;

    // S3DIS grid: 5 cm voxels, radii 0.1/0.2/0.4/0.8 m -> 2/4/8/16.
    auto &L = net.layers;
    L.push_back(makeSetAbstraction("sa1", 1024, 6,
                                   {SaScale{2, 32, {32, 32, 64}}}));
    L.push_back(makeSetAbstraction("sa2", 256, 64,
                                   {SaScale{4, 32, {64, 64, 128}}}));
    L.push_back(makeSetAbstraction("sa3", 64, 128,
                                   {SaScale{8, 32, {128, 128, 256}}}));
    L.push_back(makeSetAbstraction("sa4", 16, 256,
                                   {SaScale{16, 32, {256, 256, 512}}}));
    L.push_back(makeFeaturePropagation("fp4", 512 + 256, {256, 256}));
    L.push_back(makeFeaturePropagation("fp3", 256 + 128, {256, 256}));
    L.push_back(makeFeaturePropagation("fp2", 256 + 64, {256, 128}));
    L.push_back(makeFeaturePropagation("fp1", 128 + 6, {128, 128, 128}));
    appendMlp(L, "seg", 128, {128, 13});
    return net;
}

Network
minkowskiUNetIndoor()
{
    return minkowskiUNet("MinkNet(i)", DatasetKind::S3DIS, 13, 65.4);
}

Network
minkowskiUNetOutdoor()
{
    return minkowskiUNet("MinkNet(o)", DatasetKind::SemanticKITTI, 19,
                         61.1);
}

Network
miniMinkowskiUNet()
{
    Network net;
    net.name = "Mini-MinkowskiUNet";
    net.notation = "Mini-MinkNet";
    net.dataset = DatasetKind::S3DIS;
    net.convClass = ConvClass::SparseConv;
    net.inputChannels = 4;
    // Paper Fig. 16: 9.1% higher mIoU than Mesorasi's PointNet++SSG
    // (53.5 + 9.1).
    net.paperAccuracy = 62.6;
    net.mesorasiCompatible = false;

    auto &L = net.layers;
    L.push_back(makeSparseConv("stem.conv0", 4, 16, 3, 1));
    appendMinkStage(L, "enc1", 16, 16, 1, true);
    appendMinkStage(L, "enc2", 16, 32, 1, true);
    appendMinkStage(L, "enc3", 32, 64, 1, true);
    appendMinkUpStage(L, "dec3", 64, 32, 48, 1);
    appendMinkUpStage(L, "dec2", 48, 16, 32, 1);
    appendMinkUpStage(L, "dec1", 32, 16, 24, 1);
    L.push_back(makeDense("head.fc", 24, 13));
    return net;
}

std::vector<Network>
allBenchmarks()
{
    return {pointNet(),       pointNetPPClass(), pointNetPPPartSeg(),
            dgcnn(),          fPointNetPP(),     pointNetPPSemSeg(),
            minkowskiUNetIndoor(), minkowskiUNetOutdoor()};
}

const std::vector<CnnReference> &
cnnReferences()
{
    static const std::vector<CnnReference> refs = {
        {"MobileNetV2", 0.30, 3.5, 224 * 224, 0.15},
        {"ResNet50", 4.1, 25.6, 224 * 224, 0.16},
    };
    return refs;
}

} // namespace pointacc
