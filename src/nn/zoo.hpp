/**
 * @file
 * The network zoo: the paper's 8 benchmarks (Table 2), the co-designed
 * Mini-MinkowskiUNet (Fig. 16), and 2-D CNN reference points (Fig. 5).
 */

#ifndef POINTACC_NN_ZOO_HPP
#define POINTACC_NN_ZOO_HPP

#include "nn/network.hpp"

namespace pointacc {

Network pointNet();          ///< PointNet, ModelNet40 classification
Network pointNetPPClass();   ///< PointNet++ SSG, ModelNet40 — (c)
Network pointNetPPPartSeg(); ///< PointNet++ MSG, ShapeNet — (ps)
Network dgcnn();             ///< DGCNN, ShapeNet part segmentation
Network fPointNetPP();       ///< Frustum PointNet++, KITTI detection
Network pointNetPPSemSeg();  ///< PointNet++ SSG, S3DIS — (s)
Network minkowskiUNetIndoor();  ///< MinkowskiUNet, S3DIS — MinkNet(i)
Network minkowskiUNetOutdoor(); ///< MinkowskiUNet, SemKITTI — MinkNet(o)

/** Co-designed shallow/narrow MinkowskiUNet for S3DIS (Fig. 16). */
Network miniMinkowskiUNet();

/** All 8 paper benchmarks, in Figure 13/14 order. */
std::vector<Network> allBenchmarks();

/** Static reference numbers for 2-D CNNs (Fig. 5 comparison). */
struct CnnReference
{
    std::string name;
    double gmacs;          ///< forward pass multiply-accumulates (G)
    double mparams;        ///< parameters (M)
    std::uint32_t pixels;  ///< input resolution (elements)
    double featureKB;      ///< peak feature bytes per pixel / 1024
};

const std::vector<CnnReference> &cnnReferences();

} // namespace pointacc

#endif // POINTACC_NN_ZOO_HPP
