#include "nn/layer.hpp"

namespace pointacc {

LayerDesc
makeDense(const std::string &name, std::uint32_t in, std::uint32_t out)
{
    return {name, DenseDesc{in, out}};
}

LayerDesc
makeSparseConv(const std::string &name, std::uint32_t in, std::uint32_t out,
               int kernel, int stride_mult, bool transposed, bool residual,
               std::uint32_t skip_channels)
{
    SparseConvDesc d;
    d.inChannels = in;
    d.outChannels = out;
    d.kernelSize = kernel;
    d.strideMultiplier = stride_mult;
    d.transposed = transposed;
    d.residual = residual;
    d.skipChannels = skip_channels;
    return {name, d};
}

LayerDesc
makeSetAbstraction(const std::string &name, std::uint32_t centers,
                   std::uint32_t in, std::vector<SaScale> scales)
{
    SetAbstractionDesc d;
    d.numCenters = centers;
    d.inChannels = in;
    d.scales = std::move(scales);
    return {name, d};
}

LayerDesc
makeFeaturePropagation(const std::string &name, std::uint32_t in,
                       std::vector<std::uint32_t> mlp)
{
    FeaturePropagationDesc d;
    d.inChannels = in;
    d.mlp = std::move(mlp);
    return {name, d};
}

LayerDesc
makeEdgeConv(const std::string &name, std::uint32_t in, int k,
             std::vector<std::uint32_t> mlp)
{
    EdgeConvDesc d;
    d.inChannels = in;
    d.k = k;
    d.mlp = std::move(mlp);
    return {name, d};
}

LayerDesc
makeGlobalPool(const std::string &name, std::uint32_t channels,
               bool broadcast)
{
    return {name, GlobalPoolDesc{channels, broadcast}};
}

LayerDesc
makeConcat(const std::string &name, std::uint32_t extra_channels)
{
    return {name, ConcatDesc{extra_channels}};
}

LayerDesc
makeReset(const std::string &name, std::uint32_t channels)
{
    return {name, ResetDesc{channels}};
}

} // namespace pointacc
