/**
 * @file
 * Layer descriptors for point cloud networks.
 *
 * Networks are described as lists of layer descriptors (a static graph
 * in execution order, with U-Net skip connections expressed by level
 * tags). Table 1 of the paper dictates the taxonomy:
 *
 *  - PointNet++-based convolution = output construction (FPS) +
 *    neighbor search (ball query / kNN) + per-neighbor MLPs + max-pool;
 *  - SparseConv-based convolution = coordinate quantization + kernel
 *    mapping + per-weight accumulation;
 *  - dense layers (FC / 1x1 conv) act per point.
 */

#ifndef POINTACC_NN_LAYER_HPP
#define POINTACC_NN_LAYER_HPP

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace pointacc {

/** Fully-connected layer applied per point (also 1x1x1 SparseConv). */
struct DenseDesc
{
    std::uint32_t inChannels = 0;
    std::uint32_t outChannels = 0;
};

/** Sparse 3-D convolution (MinkowskiNet style). */
struct SparseConvDesc
{
    std::uint32_t inChannels = 0;
    std::uint32_t outChannels = 0;
    int kernelSize = 3;
    /** Output stride multiplier: 1 = same resolution, 2 = downsample. */
    int strideMultiplier = 1;
    /** Transposed (upsampling) convolution: inverse of a downsample. */
    bool transposed = false;
    /** Residual skip from this layer's input added to its output. */
    bool residual = false;
    /** Channels concatenated from a U-Net encoder skip before this
     *  layer (inChannels already includes them). */
    std::uint32_t skipChannels = 0;
};

/** One scale of a PointNet++ set-abstraction (grouping) layer. */
struct SaScale
{
    std::int32_t radiusGrid = 0; ///< ball radius in grid units (0=kNN)
    int k = 32;                  ///< neighbors per center
    std::vector<std::uint32_t> mlp; ///< MLP channel dims after grouping
};

/** PointNet++ set abstraction: FPS + grouping + MLP + max-pool. */
struct SetAbstractionDesc
{
    std::uint32_t numCenters = 0; ///< FPS sample count (0 = group all)
    std::uint32_t inChannels = 0;
    std::vector<SaScale> scales;  ///< >1 scale = MSG
};

/** PointNet++ feature propagation: 3-NN interpolation + unit MLP. */
struct FeaturePropagationDesc
{
    std::uint32_t inChannels = 0;  ///< coarse features + skip features
    std::vector<std::uint32_t> mlp;
};

/** DGCNN edge convolution: feature-space kNN + edge MLP + max-pool. */
struct EdgeConvDesc
{
    std::uint32_t inChannels = 0;
    int k = 20;
    std::vector<std::uint32_t> mlp;
};

/** Global max-pool collapsing the cloud to one feature vector. */
struct GlobalPoolDesc
{
    std::uint32_t channels = 0;
    /** Broadcast the pooled vector back to every point (segmentation
     *  heads) instead of collapsing the cloud. */
    bool broadcast = false;
};

/** Restart the feature stream from raw per-point inputs (cascaded
 *  networks, e.g. Frustum PointNet's T-Net consuming masked xyz). */
struct ResetDesc
{
    std::uint32_t channels = 0;
};

/** Concatenate previously-saved features: widens the channel count
 *  without a matrix op (DGCNN multi-layer aggregation, global-feature
 *  broadcast in segmentation heads). */
struct ConcatDesc
{
    std::uint32_t extraChannels = 0;
};

/** One layer: a tagged union of the descriptor kinds. */
struct LayerDesc
{
    std::string name;
    std::variant<DenseDesc, SparseConvDesc, SetAbstractionDesc,
                 FeaturePropagationDesc, EdgeConvDesc, GlobalPoolDesc,
                 ConcatDesc, ResetDesc>
        desc;
};

/** Convenience constructors used by the network zoo. */
LayerDesc makeDense(const std::string &name, std::uint32_t in,
                    std::uint32_t out);
LayerDesc makeSparseConv(const std::string &name, std::uint32_t in,
                         std::uint32_t out, int kernel = 3,
                         int stride_mult = 1, bool transposed = false,
                         bool residual = false,
                         std::uint32_t skip_channels = 0);
LayerDesc makeSetAbstraction(const std::string &name,
                             std::uint32_t centers, std::uint32_t in,
                             std::vector<SaScale> scales);
LayerDesc makeFeaturePropagation(const std::string &name, std::uint32_t in,
                                 std::vector<std::uint32_t> mlp);
LayerDesc makeEdgeConv(const std::string &name, std::uint32_t in, int k,
                       std::vector<std::uint32_t> mlp);
LayerDesc makeGlobalPool(const std::string &name, std::uint32_t channels,
                         bool broadcast = false);
LayerDesc makeConcat(const std::string &name, std::uint32_t extra_channels);
LayerDesc makeReset(const std::string &name, std::uint32_t channels);

} // namespace pointacc

#endif // POINTACC_NN_LAYER_HPP
