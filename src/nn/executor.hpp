/**
 * @file
 * Network executor: walks a network over a concrete point cloud and
 * emits one LayerWork per matrix operation, with real MapSets built by
 * the functional mapping references.
 *
 * Both the PointAcc simulator and the baseline platform models consume
 * LayerWork. Emitting through a visitor keeps memory bounded: maps of
 * a full-scale MinkowskiUNet level are tens of MB and only one layer's
 * maps are alive at a time.
 */

#ifndef POINTACC_NN_EXECUTOR_HPP
#define POINTACC_NN_EXECUTOR_HPP

#include <functional>

#include "core/point_cloud.hpp"
#include "mapping/maps.hpp"
#include "nn/network.hpp"

namespace pointacc {

/** Mapping operations a layer performs before its matrix op. */
enum class MappingOpKind
{
    Quantize,  ///< coordinate quantization (output construction)
    KernelMap, ///< SparseConv neighbor search
    Fps,       ///< farthest point sampling (output construction)
    BallQuery, ///< PointNet++ neighbor search
    Knn,       ///< kNN neighbor search (DGCNN / FP interpolation)
};

/** Cost-relevant parameters of one mapping operation. */
struct MappingOpInfo
{
    MappingOpKind kind = MappingOpKind::KernelMap;
    std::uint64_t inputPoints = 0;  ///< searched cloud size
    std::uint64_t outputPoints = 0; ///< constructed/query cloud size
    int k = 0;                      ///< neighbors (TopK) if applicable
    int kernelVolume = 0;           ///< offsets for kernel mapping
    /** Total TopK candidates across queries (ball query pre-filters by
     *  radius in stage CD, so only in-ball elements reach the sorter);
     *  0 means "all inputPoints per query". */
    std::uint64_t survivors = 0;
    /** Dimensionality of the distance metric: 3 for geometric search,
     *  the feature width for graph-based (feature-space) kNN, which
     *  multiplies distance-evaluation cost on every engine. */
    std::uint32_t distanceDims = 3;
};

/** One matrix operation plus the mapping work that precedes it. */
struct LayerWork
{
    std::string name;
    /** True for FC / per-point (or per-edge) MLP layers. */
    bool isDense = false;
    /** Rows streamed through the matrix unit (points, maps or edges). */
    std::uint64_t numIn = 0;  ///< input points (gather domain)
    std::uint64_t numOut = 0; ///< output points (scatter domain)
    std::uint32_t cin = 0;
    std::uint32_t cout = 0;
    /** Maps of sparse layers; nullptr for dense layers. */
    const MapSet *maps = nullptr;
    /** Mapping operations executed before this matrix op. */
    std::vector<MappingOpInfo> mappingOps;
    /** Useful multiply-accumulates of the matrix op. */
    std::uint64_t macs = 0;
    /** Consecutive dense layers share a chain id (fusion candidates);
     *  -1 for sparse layers. */
    std::int32_t denseChainId = -1;
};

using LayerVisitor = std::function<void(const LayerWork &)>;

/**
 * Execute `net` on `input`, invoking `visit` once per matrix op in
 * order. The input cloud must be sorted and deduplicated with tensor
 * stride 1.
 */
void executeNetwork(const Network &net, const PointCloud &input,
                    const LayerVisitor &visit);

/** Aggregate counts used by the analytical baseline models. */
struct WorkloadSummary
{
    std::uint64_t inputPoints = 0;
    std::uint64_t numMatrixOps = 0;
    std::uint64_t numMappingOps = 0;
    std::uint64_t totalMacs = 0;
    std::uint64_t denseMacs = 0;
    std::uint64_t sparseMacs = 0;
    std::uint64_t totalMaps = 0;        ///< gather/scatter rows
    std::uint64_t gatherScatterBytes = 0; ///< GPU-flow DRAM traffic
    std::uint64_t fpsWork = 0;          ///< sum of n*m distance evals
    std::uint64_t neighborWork = 0;     ///< sum of n*q distance evals
    std::uint64_t kernelMapWork = 0;    ///< sum of (nIn+nOut)*volume
    std::uint64_t peakFeatureBytes = 0; ///< largest layer feature map
    std::uint64_t weightBytes = 0;      ///< total parameter bytes
};

/** Run the executor with an aggregating visitor. */
WorkloadSummary summarizeWorkload(const Network &net,
                                  const PointCloud &input);

/** Paper Fig. 5 per-network characterization. */
struct NetworkCharacteristics
{
    std::uint64_t macsPerPoint = 0;
    double featureBytesPerPoint = 0.0;
    std::uint64_t params = 0;
};

NetworkCharacteristics characterize(const Network &net,
                                    const PointCloud &input);

} // namespace pointacc

#endif // POINTACC_NN_EXECUTOR_HPP
