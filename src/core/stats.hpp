/**
 * @file
 * Lightweight counter/accumulator statistics used by every hardware model.
 *
 * Each unit owns its own stats struct; this header only provides the
 * shared primitives (a named-counter registry used by integration tests
 * and a streaming histogram used by the DRAM-distribution experiment,
 * Fig. 19).
 */

#ifndef POINTACC_CORE_STATS_HPP
#define POINTACC_CORE_STATS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pointacc {

/** A simple named 64-bit counter registry. */
class StatRegistry
{
  public:
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters[name] += delta;
    }

    std::uint64_t
    get(const std::string &name) const
    {
        const auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    void clear() { counters.clear(); }

    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters;
    }

  private:
    std::map<std::string, std::uint64_t> counters;
};

/**
 * Streaming scalar summary: count / sum / min / max / mean, plus the raw
 * samples so distribution plots (violin-style, Fig. 19) can be rebuilt.
 */
class Summary
{
  public:
    void
    record(double v)
    {
        samples.push_back(v);
        total += v;
        scratchStale = true;
        if (samples.size() == 1) {
            lo = hi = v;
        } else {
            if (v < lo) lo = v;
            if (v > hi) hi = v;
        }
    }

    /** Fold another summary into this one, as if every sample of
     *  `other` had been record()ed here (append order: ours first,
     *  then other's — percentiles are permutation-invariant, so the
     *  merged summary equals a single-summary run over the union).
     *  The shard-merge primitive behind bench_simperf's per-shard
     *  event loops. */
    void merge(const Summary &other);

    /** Reset to the freshly constructed state (capacity retained). */
    void clear();

    /** Pre-size the sample buffer (million-request runs would otherwise
     *  pay log2(n) reallocations; the values recorded are unchanged). */
    void
    reserve(std::size_t n)
    {
        samples.reserve(n);
        scratch.reserve(n);
    }

    std::size_t count() const { return samples.size(); }
    double sum() const { return total; }
    double min() const { return lo; }
    double max() const { return hi; }

    double
    mean() const
    {
        return samples.empty() ? 0.0
                               : total / static_cast<double>(samples.size());
    }

    /** p in [0,1]; nearest-rank percentile over recorded samples.
     *  Selection (nth_element) over a reused scratch buffer — O(n) per
     *  call instead of the former copy + full sort per call, and byte-
     *  identical: the element at a given sorted rank is the same
     *  whichever algorithm places it there. */
    double percentile(double p) const;

    const std::vector<double> &data() const { return samples; }

  private:
    std::vector<double> samples;
    /** Selection workspace, refreshed lazily whenever the sample set
     *  changed (the explicit dirty flag below — a size comparison
     *  would miss same-size mutations such as clear()+re-record or a
     *  merge() that lands back on a previous size). Its ordering
     *  between calls is irrelevant (rank selection over a multiset of
     *  values is permutation-invariant). */
    mutable std::vector<double> scratch;
    /** True whenever `samples` changed since scratch last mirrored
     *  it; every mutation path must set it. */
    mutable bool scratchStale = true;
    double total = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Geometric mean of a vector of strictly positive values (0 when
 * empty). Zero or negative samples throw std::invalid_argument: a
 * zero would silently collapse the mean to 0 through log(0) = -inf
 * and a negative would poison it with NaN, so a non-positive ratio
 * reaching this function is always a caller bug worth failing loudly.
 */
double geomean(const std::vector<double> &values);

} // namespace pointacc

#endif // POINTACC_CORE_STATS_HPP
