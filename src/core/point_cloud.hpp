/**
 * @file
 * PointCloud container.
 *
 * A point cloud is a set of (coordinate, feature-vector) pairs. The
 * simulator only ever needs feature *shapes* (channel counts) to model
 * timing and energy, but features are carried as real data so that the
 * functional layers (used as oracles in tests) compute real values.
 */

#ifndef POINTACC_CORE_POINT_CLOUD_HPP
#define POINTACC_CORE_POINT_CLOUD_HPP

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace pointacc {

/** Axis-aligned integer bounding box. */
struct BoundingBox
{
    Coord3 lo{0, 0, 0};
    Coord3 hi{0, 0, 0};

    /** Number of grid cells covered per axis (inclusive extent). */
    std::int64_t
    volume() const
    {
        const std::int64_t ex = static_cast<std::int64_t>(hi.x) - lo.x + 1;
        const std::int64_t ey = static_cast<std::int64_t>(hi.y) - lo.y + 1;
        const std::int64_t ez = static_cast<std::int64_t>(hi.z) - lo.z + 1;
        return ex * ey * ez;
    }
};

/**
 * A point cloud with an optional dense feature matrix.
 *
 * Features are stored row-major: feature(i, c) is channel c of point i.
 * `tensorStride` follows the MinkowskiEngine convention: after k strided
 * downsamplings the coordinates live on a grid of pitch 2^k.
 */
class PointCloud
{
  public:
    PointCloud() = default;

    /** Construct from coordinates with `channels` zero-filled features. */
    explicit PointCloud(std::vector<Coord3> coords_, int channels = 0)
        : coords(std::move(coords_)), numChannels(channels)
    {
        features.assign(coords.size() * static_cast<std::size_t>(channels),
                        0.0f);
    }

    std::size_t size() const { return coords.size(); }
    bool empty() const { return coords.empty(); }
    int channels() const { return numChannels; }

    const std::vector<Coord3> &coordinates() const { return coords; }
    std::vector<Coord3> &coordinates() { return coords; }

    const Coord3 &coord(PointIndex i) const { return coords[i]; }

    float
    feature(PointIndex i, int c) const
    {
        return features[static_cast<std::size_t>(i) * numChannels + c];
    }

    void
    setFeature(PointIndex i, int c, float v)
    {
        features[static_cast<std::size_t>(i) * numChannels + c] = v;
    }

    /** Raw feature storage (row-major, size() * channels()). */
    const std::vector<float> &featureData() const { return features; }
    std::vector<float> &featureData() { return features; }

    /** Resize the feature matrix to `channels` per point (zero fill). */
    void
    setChannels(int channels)
    {
        numChannels = channels;
        features.assign(coords.size() * static_cast<std::size_t>(channels),
                        0.0f);
    }

    int tensorStride() const { return stride; }
    void setTensorStride(int s) { stride = s; }

    void
    append(const Coord3 &c)
    {
        coords.push_back(c);
        features.resize(coords.size() * static_cast<std::size_t>(numChannels),
                        0.0f);
    }

    /** Bounding box of all coordinates; zero box when empty. */
    BoundingBox boundingBox() const;

    /**
     * Occupancy density: #points / #grid cells in the bounding box.
     * This is the quantity Fig. 5 (left) of the paper plots per dataset.
     */
    double density() const;

    /** Sort points lexicographically by coordinate (features follow). */
    void sortByCoord();

    /** True when coordinates are lexicographically sorted. */
    bool isSorted() const;

    /**
     * Remove duplicate coordinates (keeping the first occurrence).
     * Requires the cloud to be sorted. Returns the number removed.
     */
    std::size_t dedupSorted();

  private:
    std::vector<Coord3> coords;
    std::vector<float> features;
    int numChannels = 0;
    int stride = 1;
};

} // namespace pointacc

#endif // POINTACC_CORE_POINT_CLOUD_HPP
