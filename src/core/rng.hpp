/**
 * @file
 * Deterministic random number generation.
 *
 * Everything in the repository that needs randomness takes an explicit
 * seed and goes through Xoshiro256** so results are identical across
 * standard libraries and platforms (std::mt19937 distributions are not
 * portable). This matters: every benchmark table must be reproducible
 * run-to-run and machine-to-machine.
 */

#ifndef POINTACC_CORE_RNG_HPP
#define POINTACC_CORE_RNG_HPP

#include <cstdint>

namespace pointacc {

/** SplitMix64: seeds the main generator, one 64-bit state word. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * Xoshiro256** deterministic generator.
 *
 * Satisfies UniformRandomBitGenerator, but prefer the member helpers
 * (uniform / range / gauss) which are themselves portable.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9d1acc0ULL)
    {
        SplitMix64 sm(seed);
        for (auto &w : s)
            w = sm.next();
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). n must be > 0. */
    std::uint64_t
    range(std::uint64_t n)
    {
        // Lemire's nearly-divisionless method, biased by < 2^-64.
        const unsigned __int128 m =
            static_cast<unsigned __int128>((*this)()) * n;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Standard normal via Box-Muller (portable, no std::distribution). */
    double
    gauss()
    {
        if (hasSpare) {
            hasSpare = false;
            return spare;
        }
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        const double r = __builtin_sqrt(-2.0 * __builtin_log(u1));
        const double theta = 2.0 * 3.14159265358979323846 * u2;
        spare = r * __builtin_sin(theta);
        hasSpare = true;
        return r * __builtin_cos(theta);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::uint64_t s[4] = {};
    bool hasSpare = false;
    double spare = 0.0;
};

} // namespace pointacc

#endif // POINTACC_CORE_RNG_HPP
