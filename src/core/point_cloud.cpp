#include "core/point_cloud.hpp"

#include <algorithm>
#include <numeric>

#include "core/logging.hpp"

namespace pointacc {

BoundingBox
PointCloud::boundingBox() const
{
    BoundingBox box;
    if (coords.empty())
        return box;
    box.lo = box.hi = coords.front();
    for (const auto &c : coords) {
        box.lo.x = std::min(box.lo.x, c.x);
        box.lo.y = std::min(box.lo.y, c.y);
        box.lo.z = std::min(box.lo.z, c.z);
        box.hi.x = std::max(box.hi.x, c.x);
        box.hi.y = std::max(box.hi.y, c.y);
        box.hi.z = std::max(box.hi.z, c.z);
    }
    return box;
}

double
PointCloud::density() const
{
    if (coords.empty())
        return 0.0;
    const auto box = boundingBox();
    return static_cast<double>(coords.size()) /
           static_cast<double>(box.volume());
}

void
PointCloud::sortByCoord()
{
    std::vector<std::size_t> perm(coords.size());
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
        return coords[a] < coords[b];
    });

    std::vector<Coord3> newCoords(coords.size());
    std::vector<float> newFeatures(features.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
        newCoords[i] = coords[perm[i]];
        if (numChannels > 0) {
            std::copy_n(features.begin() +
                            static_cast<std::ptrdiff_t>(perm[i]) * numChannels,
                        numChannels,
                        newFeatures.begin() +
                            static_cast<std::ptrdiff_t>(i) * numChannels);
        }
    }
    coords = std::move(newCoords);
    features = std::move(newFeatures);
}

bool
PointCloud::isSorted() const
{
    return std::is_sorted(coords.begin(), coords.end());
}

std::size_t
PointCloud::dedupSorted()
{
    simAssert(isSorted(), "dedupSorted requires a sorted cloud");
    if (coords.empty())
        return 0;

    std::size_t write = 0;
    for (std::size_t read = 0; read < coords.size(); ++read) {
        if (read > 0 && coords[read] == coords[write - 1])
            continue;
        coords[write] = coords[read];
        if (numChannels > 0 && write != read) {
            std::copy_n(features.begin() +
                            static_cast<std::ptrdiff_t>(read) * numChannels,
                        numChannels,
                        features.begin() +
                            static_cast<std::ptrdiff_t>(write) * numChannels);
        }
        ++write;
    }
    const std::size_t removed = coords.size() - write;
    coords.resize(write);
    features.resize(write * static_cast<std::size_t>(numChannels));
    return removed;
}

} // namespace pointacc
