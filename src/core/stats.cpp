#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pointacc {

double
Summary::percentile(double p) const
{
    if (samples.empty())
        return 0.0;
    if (scratchStale || scratch.size() != samples.size()) {
        scratch = samples;
        scratchStale = false;
    }
    const double clamped = std::clamp(p, 0.0, 1.0);
    const auto rank = static_cast<std::size_t>(
        clamped * static_cast<double>(scratch.size() - 1) + 0.5);
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(rank),
                     scratch.end());
    return scratch[rank];
}

void
Summary::merge(const Summary &other)
{
    if (other.samples.empty())
        return;
    const bool wasEmpty = samples.empty();
    samples.insert(samples.end(), other.samples.begin(),
                   other.samples.end());
    total += other.total;
    if (wasEmpty) {
        lo = other.lo;
        hi = other.hi;
    } else {
        lo = std::min(lo, other.lo);
        hi = std::max(hi, other.hi);
    }
    scratchStale = true;
}

void
Summary::clear()
{
    samples.clear();
    total = 0.0;
    lo = 0.0;
    hi = 0.0;
    scratchStale = true;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            throw std::invalid_argument(
                "geomean: non-positive sample (geometric means are "
                "defined over strictly positive values)");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

} // namespace pointacc
