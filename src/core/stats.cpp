#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pointacc {

double
Summary::percentile(double p) const
{
    if (samples.empty())
        return 0.0;
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::clamp(p, 0.0, 1.0);
    const auto rank = static_cast<std::size_t>(
        clamped * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[rank];
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

} // namespace pointacc
