#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pointacc {

double
Summary::percentile(double p) const
{
    if (samples.empty())
        return 0.0;
    if (scratch.size() != samples.size())
        scratch = samples;
    const double clamped = std::clamp(p, 0.0, 1.0);
    const auto rank = static_cast<std::size_t>(
        clamped * static_cast<double>(scratch.size() - 1) + 0.5);
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(rank),
                     scratch.end());
    return scratch[rank];
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

} // namespace pointacc
