/**
 * @file
 * Minimal streaming JSON writer.
 *
 * The simulator's reports (RunResult dumps, serving-runtime summaries)
 * need machine-readable output for the BENCH_*.json perf trajectory.
 * A full JSON library is overkill — outputs are write-only trees of
 * objects/arrays of numbers and short strings — so this header provides
 * a tiny comma-tracking writer with no dependencies.
 */

#ifndef POINTACC_CORE_JSON_HPP
#define POINTACC_CORE_JSON_HPP

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace pointacc {

/** Streaming JSON writer with automatic comma placement. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os_) : os(os_) {}

    JsonWriter &
    beginObject()
    {
        element();
        os << '{';
        needComma.push_back(false);
        return *this;
    }

    JsonWriter &
    endObject()
    {
        needComma.pop_back();
        os << '}';
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        element();
        os << '[';
        needComma.push_back(false);
        return *this;
    }

    JsonWriter &
    endArray()
    {
        needComma.pop_back();
        os << ']';
        return *this;
    }

    /** Emit an object key; follow with exactly one value/container. */
    JsonWriter &
    key(const std::string &name)
    {
        element();
        writeString(name);
        os << ':';
        pendingValue = true;
        return *this;
    }

    JsonWriter &
    value(const std::string &v)
    {
        element();
        writeString(v);
        return *this;
    }

    JsonWriter &
    value(const char *v)
    {
        return value(std::string(v));
    }

    JsonWriter &
    value(double v)
    {
        element();
        if (std::isfinite(v)) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.6g", v);
            os << buf;
        } else {
            os << "null";
        }
        return *this;
    }

    JsonWriter &
    value(std::uint64_t v)
    {
        element();
        os << v;
        return *this;
    }

    JsonWriter &
    value(std::int64_t v)
    {
        element();
        os << v;
        return *this;
    }

    JsonWriter &
    value(std::uint32_t v)
    {
        return value(static_cast<std::uint64_t>(v));
    }

    JsonWriter &
    value(int v)
    {
        return value(static_cast<std::int64_t>(v));
    }

    JsonWriter &
    value(bool v)
    {
        element();
        os << (v ? "true" : "false");
        return *this;
    }

    /** key + scalar value in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

  private:
    /** Comma bookkeeping before every element at the current depth. */
    void
    element()
    {
        if (pendingValue) {
            // Value directly follows its key: no comma.
            pendingValue = false;
            return;
        }
        if (!needComma.empty()) {
            if (needComma.back())
                os << ',';
            needComma.back() = true;
        }
    }

    void
    writeString(const std::string &s)
    {
        os << '"';
        for (const char c : s) {
            switch (c) {
              case '"': os << "\\\""; break;
              case '\\': os << "\\\\"; break;
              case '\n': os << "\\n"; break;
              case '\t': os << "\\t"; break;
              case '\r': os << "\\r"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
            }
        }
        os << '"';
    }

    std::ostream &os;
    std::vector<bool> needComma;
    bool pendingValue = false;
};

} // namespace pointacc

#endif // POINTACC_CORE_JSON_HPP
