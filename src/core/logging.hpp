/**
 * @file
 * Minimal gem5-style status/error helpers.
 *
 * fatal()  — the *user's* fault (bad configuration); exits cleanly.
 * panic()  — the *simulator's* fault (internal invariant broken); aborts.
 * warn()   — something works but is suspicious.
 * inform() — status messages.
 */

#ifndef POINTACC_CORE_LOGGING_HPP
#define POINTACC_CORE_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pointacc {

[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

inline void
inform(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

/** panic() unless a simulator invariant holds. */
inline void
simAssert(bool cond, const char *what)
{
    if (!cond)
        panic(std::string("assertion failed: ") + what);
}

} // namespace pointacc

#endif // POINTACC_CORE_LOGGING_HPP
