/**
 * @file
 * Fundamental geometric types shared by every PointAcc subsystem.
 *
 * Point cloud coordinates are signed 32-bit integers: SparseConv-based
 * networks quantize points onto an integer voxel grid, and PointNet++-
 * based networks operate on metric coordinates which we store in fixed
 * point (see FixedPoint below) so that hardware models stay bit-exact
 * and deterministic across platforms.
 */

#ifndef POINTACC_CORE_TYPES_HPP
#define POINTACC_CORE_TYPES_HPP

#include <array>
#include <cmath>
#include <cstdint>
#include <functional>
#include <ostream>

namespace pointacc {

/** Index of a point inside a point cloud. */
using PointIndex = std::int32_t;

/** True when v is a power of two (C++17 stand-in for std::has_single_bit). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Sentinel index meaning "no point". */
inline constexpr PointIndex kInvalidIndex = -1;

/** Number of fractional bits used when embedding metric coordinates. */
inline constexpr int kFixedPointFracBits = 8;

/** Convert a metric (float) coordinate to the fixed-point grid. */
inline std::int32_t
toFixed(float v)
{
    return static_cast<std::int32_t>(
        std::lround(static_cast<double>(v) * (1 << kFixedPointFracBits)));
}

/** Convert a fixed-point coordinate back to metric space. */
inline float
fromFixed(std::int32_t v)
{
    return static_cast<float>(v) / static_cast<float>(1 << kFixedPointFracBits);
}

/**
 * A 3-D integer coordinate.
 *
 * Ordering is lexicographic on (x, y, z); this is the order the Mapping
 * Unit's sorting networks use, so *every* algorithm in the repository
 * must agree with it.
 */
struct Coord3
{
    std::int32_t x = 0;
    std::int32_t y = 0;
    std::int32_t z = 0;

    constexpr Coord3() = default;
    constexpr Coord3(std::int32_t x_, std::int32_t y_, std::int32_t z_)
        : x(x_), y(y_), z(z_)
    {}

    friend constexpr bool
    operator==(const Coord3 &a, const Coord3 &b)
    {
        return a.x == b.x && a.y == b.y && a.z == b.z;
    }

    friend constexpr bool
    operator!=(const Coord3 &a, const Coord3 &b)
    {
        return !(a == b);
    }

    /** Lexicographic (x, y, z) order — the Mapping Unit's sort order. */
    friend constexpr bool
    operator<(const Coord3 &a, const Coord3 &b)
    {
        if (a.x != b.x) return a.x < b.x;
        if (a.y != b.y) return a.y < b.y;
        return a.z < b.z;
    }

    friend constexpr bool
    operator>(const Coord3 &a, const Coord3 &b)
    {
        return b < a;
    }

    friend constexpr bool
    operator<=(const Coord3 &a, const Coord3 &b)
    {
        return !(b < a);
    }

    friend constexpr bool
    operator>=(const Coord3 &a, const Coord3 &b)
    {
        return !(a < b);
    }

    constexpr Coord3
    operator+(const Coord3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }

    constexpr Coord3
    operator-(const Coord3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }

    constexpr Coord3
    operator*(std::int32_t s) const
    {
        return {x * s, y * s, z * s};
    }

    /** Squared Euclidean distance to another coordinate (64-bit safe). */
    constexpr std::int64_t
    distance2(const Coord3 &o) const
    {
        const std::int64_t dx = x - o.x;
        const std::int64_t dy = y - o.y;
        const std::int64_t dz = z - o.z;
        return dx * dx + dy * dy + dz * dz;
    }

    /** Chebyshev (L-inf) distance, used by kernel-neighborhood checks. */
    constexpr std::int32_t
    chebyshev(const Coord3 &o) const
    {
        const std::int32_t dx = std::abs(x - o.x);
        const std::int32_t dy = std::abs(y - o.y);
        const std::int32_t dz = std::abs(z - o.z);
        return std::max(dx, std::max(dy, dz));
    }
};

inline std::ostream &
operator<<(std::ostream &os, const Coord3 &c)
{
    return os << '(' << c.x << ',' << c.y << ',' << c.z << ')';
}

/**
 * 64-bit mixing hash for coordinates.
 *
 * Used by the (baseline) hash-table kernel-mapping implementation and by
 * containers in tests. The constants are the SplitMix64 finalizer.
 */
struct Coord3Hash
{
    std::size_t
    operator()(const Coord3 &c) const noexcept
    {
        std::uint64_t h = 0x9e3779b97f4a7c15ULL;
        const auto mix = [&](std::uint64_t v) {
            h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
            h *= 0xbf58476d1ce4e5b9ULL;
            h ^= h >> 27;
        };
        mix(static_cast<std::uint32_t>(c.x));
        mix(static_cast<std::uint32_t>(c.y));
        mix(static_cast<std::uint32_t>(c.z));
        return static_cast<std::size_t>(h);
    }
};

/**
 * Pack a coordinate into a single 64-bit sort key (21 bits per axis,
 * offset binary so negative coordinates order correctly).
 *
 * The packed key preserves lexicographic (x, y, z) order, which lets the
 * hardware comparator models compare one 64-bit word per element exactly
 * as a real 63-bit comparator tree would.
 */
inline std::uint64_t
packCoord(const Coord3 &c)
{
    constexpr std::uint64_t bias = 1ULL << 20;
    const std::uint64_t ux = (static_cast<std::uint64_t>(
        static_cast<std::int64_t>(c.x) + bias)) & 0x1fffff;
    const std::uint64_t uy = (static_cast<std::uint64_t>(
        static_cast<std::int64_t>(c.y) + bias)) & 0x1fffff;
    const std::uint64_t uz = (static_cast<std::uint64_t>(
        static_cast<std::int64_t>(c.z) + bias)) & 0x1fffff;
    return (ux << 42) | (uy << 21) | uz;
}

/** Inverse of packCoord. */
inline Coord3
unpackCoord(std::uint64_t key)
{
    constexpr std::int64_t bias = 1LL << 20;
    const auto ux = static_cast<std::int64_t>((key >> 42) & 0x1fffff);
    const auto uy = static_cast<std::int64_t>((key >> 21) & 0x1fffff);
    const auto uz = static_cast<std::int64_t>(key & 0x1fffff);
    return {static_cast<std::int32_t>(ux - bias),
            static_cast<std::int32_t>(uy - bias),
            static_cast<std::int32_t>(uz - bias)};
}

} // namespace pointacc

template <>
struct std::hash<pointacc::Coord3>
{
    std::size_t
    operator()(const pointacc::Coord3 &c) const noexcept
    {
        return pointacc::Coord3Hash{}(c);
    }
};

#endif // POINTACC_CORE_TYPES_HPP
