#include "mxu/systolic.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace pointacc {

MatrixUnit::MatrixUnit(const MxuConfig &cfg_) : cfg(cfg_)
{
    simAssert(cfg.rows > 0 && cfg.cols > 0, "MXU needs a non-empty array");
}

MxuStats
MatrixUnit::tiledPass(std::uint64_t stream_len, std::uint32_t in_ch,
                      std::uint32_t out_ch,
                      std::uint32_t bytes_per_feature) const
{
    MxuStats s;
    if (stream_len == 0 || in_ch == 0 || out_ch == 0)
        return s;

    const std::uint32_t icTiles = (in_ch + cfg.rows - 1) / cfg.rows;
    const std::uint32_t ocTiles = (out_ch + cfg.cols - 1) / cfg.cols;

    for (std::uint32_t it = 0; it < icTiles; ++it) {
        const std::uint32_t icw =
            std::min<std::uint32_t>(cfg.rows, in_ch - it * cfg.rows);
        for (std::uint32_t ot = 0; ot < ocTiles; ++ot) {
            const std::uint32_t ocw =
                std::min<std::uint32_t>(cfg.cols, out_ch - ot * cfg.cols);

            // Weight fill: one column per cycle (rows deep).
            s.cycles += cfg.rows;
            s.weightSramBytes += static_cast<std::uint64_t>(icw) * ocw *
                                 bytes_per_feature;

            // Stream: one point per cycle, plus array drain.
            s.cycles += stream_len + cfg.rows + cfg.cols;
            s.peActivations +=
                (stream_len + cfg.rows + cfg.cols) * peakMacsPerCycle();
            s.macs += stream_len * icw * ocw;
            s.inputSramBytes +=
                stream_len * icw * bytes_per_feature;
            // Each streamed point updates one psum row in the output
            // buffer (read-modify-write).
            s.outputSramBytes +=
                2 * stream_len * ocw * bytes_per_feature;
        }
    }
    return s;
}

MxuStats
MatrixUnit::denseMatmul(std::uint64_t points, std::uint32_t in_ch,
                        std::uint32_t out_ch,
                        std::uint32_t bytes_per_feature) const
{
    return tiledPass(points, in_ch, out_ch, bytes_per_feature);
}

MxuStats
MatrixUnit::sparseConv(const MapSet &maps, std::uint32_t in_ch,
                       std::uint32_t out_ch,
                       std::uint32_t bytes_per_feature) const
{
    MxuStats s;
    for (std::int32_t w = 0; w < maps.numWeights(); ++w) {
        const auto &group = maps.forWeight(w);
        if (group.empty())
            continue;
        s += tiledPass(group.size(), in_ch, out_ch, bytes_per_feature);
    }
    return s;
}

} // namespace pointacc
