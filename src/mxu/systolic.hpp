/**
 * @file
 * Matrix Unit (MXU): systolic-array cycle model.
 *
 * Section 4.3: a classic systolic array parallelized over input
 * channels (rows) and output channels (columns). Because each cycle
 * touches the features of exactly *one* point (one map), partial sums
 * for one output accumulate inside the array / output buffer and no
 * on-chip scatter crossbar is needed.
 *
 * Dataflow (Section 4.2.2): weight-stationary inner loops — weights
 * for one (ic-tile, oc-tile, kernel-offset) stay in the array while
 * all points stream through — and output-stationary outer loops, so
 * partial sums never spill to DRAM.
 */

#ifndef POINTACC_MXU_SYSTOLIC_HPP
#define POINTACC_MXU_SYSTOLIC_HPP

#include <cstdint>

#include "mapping/maps.hpp"

namespace pointacc {

/** Static configuration of the Matrix Unit. */
struct MxuConfig
{
    std::uint32_t rows = 64; ///< PEs along input channels
    std::uint32_t cols = 64; ///< PEs along output channels
};

/** Cycle/energy statistics of matrix computations. */
struct MxuStats
{
    std::uint64_t cycles = 0;
    std::uint64_t macs = 0;           ///< useful multiply-accumulates
    std::uint64_t peActivations = 0;  ///< rows*cols per active cycle
    std::uint64_t inputSramBytes = 0; ///< feature reads into the array
    std::uint64_t weightSramBytes = 0;///< weight loads into the array
    std::uint64_t outputSramBytes = 0;///< psum/output buffer traffic

    /** Fraction of PE activations doing useful MACs. */
    double
    utilization() const
    {
        return peActivations == 0
                   ? 0.0
                   : static_cast<double>(macs) /
                         static_cast<double>(peActivations);
    }

    MxuStats &
    operator+=(const MxuStats &o)
    {
        cycles += o.cycles;
        macs += o.macs;
        peActivations += o.peActivations;
        inputSramBytes += o.inputSramBytes;
        weightSramBytes += o.weightSramBytes;
        outputSramBytes += o.outputSramBytes;
        return *this;
    }
};

/** The systolic-array hardware model. */
class MatrixUnit
{
  public:
    explicit MatrixUnit(const MxuConfig &cfg = {});

    const MxuConfig &config() const { return cfg; }

    /** Peak MACs per cycle. */
    std::uint64_t
    peakMacsPerCycle() const
    {
        return static_cast<std::uint64_t>(cfg.rows) * cfg.cols;
    }

    /**
     * Dense matrix multiply: (points x in_ch) * (in_ch x out_ch).
     * Weight-stationary: each (rows x cols) weight tile is loaded once
     * (rows cycles of fill) and all points stream through it.
     */
    MxuStats denseMatmul(std::uint64_t points, std::uint32_t in_ch,
                         std::uint32_t out_ch,
                         std::uint32_t bytes_per_feature = 2) const;

    /**
     * Sparse convolution compute: for each kernel offset w, the maps of
     * w stream through the array with w's weight tile resident. One map
     * (one input point's feature row) enters per cycle per ic-tile.
     */
    MxuStats sparseConv(const MapSet &maps, std::uint32_t in_ch,
                        std::uint32_t out_ch,
                        std::uint32_t bytes_per_feature = 2) const;

  private:
    MxuStats tiledPass(std::uint64_t stream_len, std::uint32_t in_ch,
                       std::uint32_t out_ch,
                       std::uint32_t bytes_per_feature) const;

    MxuConfig cfg;
};

} // namespace pointacc

#endif // POINTACC_MXU_SYSTOLIC_HPP
