/**
 * @file
 * k-nearest-neighbors and ball query: neighbor search for
 * PointNet++-based convolutions (Section 2.1.2).
 *
 * For every output (query) point, the k closest input points are
 * selected; ball query additionally requires them to lie inside a
 * sphere of radius r. Weight index n is the neighbor's rank (0..k-1),
 * since PointNet++-style aggregation treats each neighbor slot
 * uniformly but the MapSet still needs a stable grouping.
 */

#ifndef POINTACC_MAPPING_KNN_HPP
#define POINTACC_MAPPING_KNN_HPP

#include <vector>

#include "core/point_cloud.hpp"
#include "mapping/maps.hpp"

namespace pointacc {

/** One query's neighbor list: input indices sorted by distance. */
struct NeighborList
{
    std::vector<PointIndex> indices;
    std::vector<std::int64_t> distances2;
    /** Candidates examined by the selection (before top-k truncation):
     *  the whole cloud for kNN, the in-radius subset for ball query.
     *  Drives the hardware TopK cost model. */
    std::uint64_t candidates = 0;
};

/**
 * Brute-force kNN of each `queries` point in `input`.
 *
 * Ties on distance break toward the lower input index so results are
 * bit-identical to the hardware sorter (stable comparisons).
 *
 * @param input    searched cloud
 * @param queries  query cloud
 * @param k        neighbors per query (clamped to input size)
 */
std::vector<NeighborList> kNearestNeighbors(const PointCloud &input,
                                            const PointCloud &queries,
                                            int k);

/**
 * Ball query: kNN constrained to squared radius `radius2`. Queries with
 * fewer than k in-ball neighbors return short lists (the functional
 * convolution layers then re-use the closest neighbor for padding, as
 * PointNet++ does).
 */
std::vector<NeighborList> ballQuery(const PointCloud &input,
                                    const PointCloud &queries, int k,
                                    std::int64_t radius2);

/** Convert neighbor lists to a MapSet with weight = neighbor rank. */
MapSet neighborsToMaps(const std::vector<NeighborList> &lists, int k);

} // namespace pointacc

#endif // POINTACC_MAPPING_KNN_HPP
