#include "mapping/quantize.hpp"

#include "core/logging.hpp"

namespace pointacc {

PointCloud
quantizeDownsample(const PointCloud &input, std::int32_t out_stride)
{
    simAssert(out_stride >= 1, "output stride must be positive");
    simAssert(isPowerOfTwo(static_cast<std::uint32_t>(out_stride)),
              "tensor stride must be a power of two");
    simAssert(out_stride % input.tensorStride() == 0,
              "output stride must be a multiple of the input stride");

    std::vector<Coord3> coords;
    coords.reserve(input.size());
    for (const auto &p : input.coordinates())
        coords.push_back(quantizeCoord(p, out_stride));

    PointCloud out(std::move(coords));
    out.sortByCoord();
    out.dedupSorted();
    out.setTensorStride(out_stride);
    return out;
}

} // namespace pointacc
