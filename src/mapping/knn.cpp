#include "mapping/knn.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace pointacc {

namespace {

/**
 * Select the k smallest (distance, index) pairs with stable tie-break
 * on index. Partial sort keeps this O(n log k).
 */
NeighborList
selectK(std::vector<std::pair<std::int64_t, PointIndex>> &cands,
        std::size_t k)
{
    k = std::min(k, cands.size());
    std::partial_sort(cands.begin(),
                      cands.begin() + static_cast<std::ptrdiff_t>(k),
                      cands.end());
    NeighborList list;
    list.indices.reserve(k);
    list.distances2.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
        list.distances2.push_back(cands[i].first);
        list.indices.push_back(cands[i].second);
    }
    return list;
}

} // namespace

std::vector<NeighborList>
kNearestNeighbors(const PointCloud &input, const PointCloud &queries, int k)
{
    simAssert(k >= 1, "kNN requires k >= 1");
    std::vector<NeighborList> result;
    result.reserve(queries.size());

    std::vector<std::pair<std::int64_t, PointIndex>> cands;
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const Coord3 &qc = queries.coord(static_cast<PointIndex>(q));
        cands.clear();
        cands.reserve(input.size());
        for (std::size_t i = 0; i < input.size(); ++i) {
            cands.emplace_back(
                input.coord(static_cast<PointIndex>(i)).distance2(qc),
                static_cast<PointIndex>(i));
        }
        auto list = selectK(cands, static_cast<std::size_t>(k));
        list.candidates = cands.size();
        result.push_back(std::move(list));
    }
    return result;
}

std::vector<NeighborList>
ballQuery(const PointCloud &input, const PointCloud &queries, int k,
          std::int64_t radius2)
{
    simAssert(k >= 1, "ball query requires k >= 1");
    std::vector<NeighborList> result;
    result.reserve(queries.size());

    std::vector<std::pair<std::int64_t, PointIndex>> cands;
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const Coord3 &qc = queries.coord(static_cast<PointIndex>(q));
        cands.clear();
        for (std::size_t i = 0; i < input.size(); ++i) {
            const auto d = input.coord(static_cast<PointIndex>(i))
                               .distance2(qc);
            if (d <= radius2)
                cands.emplace_back(d, static_cast<PointIndex>(i));
        }
        auto list = selectK(cands, static_cast<std::size_t>(k));
        list.candidates = cands.size();
        result.push_back(std::move(list));
    }
    return result;
}

MapSet
neighborsToMaps(const std::vector<NeighborList> &lists, int k)
{
    MapSet maps(k);
    for (std::size_t q = 0; q < lists.size(); ++q) {
        const auto &list = lists[q];
        for (std::size_t n = 0; n < list.indices.size(); ++n) {
            maps.add(Map{list.indices[n], static_cast<PointIndex>(q),
                         static_cast<std::int32_t>(n)});
        }
    }
    return maps;
}

} // namespace pointacc
