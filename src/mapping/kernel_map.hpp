/**
 * @file
 * Kernel mapping: neighbor search for SparseConv-based convolutions.
 *
 * For each kernel offset delta, find every (input p, output q) pair
 * with p == q + delta (Section 2.1.2). Two reference implementations
 * are provided:
 *
 *  - hashKernelMap:  the state-of-the-art software approach
 *    (MinkowskiEngine): hash all input coordinates, then probe
 *    q + delta for every output q and offset delta.
 *  - sortKernelMap:  PointAcc's approach (Fig. 9): shift the input
 *    cloud by -delta, mergesort it with the output cloud, and detect
 *    coordinate intersections between adjacent elements.
 *
 * Both must produce identical MapSets; tests enforce this, and the MPU
 * hardware model is checked against sortKernelMap.
 */

#ifndef POINTACC_MAPPING_KERNEL_MAP_HPP
#define POINTACC_MAPPING_KERNEL_MAP_HPP

#include "core/point_cloud.hpp"
#include "mapping/maps.hpp"

namespace pointacc {

/** Parameters of one sparse convolution's kernel mapping. */
struct KernelMapConfig
{
    int kernelSize = 3;  ///< cubic kernel edge (2 for strided downsample)
    int inStride = 1;    ///< input tensor stride
    int outStride = 1;   ///< output tensor stride (= inStride, or 2x)
};

/** Hash-table-based kernel mapping (software baseline). */
MapSet hashKernelMap(const PointCloud &input, const PointCloud &output,
                     const KernelMapConfig &cfg);

/** Mergesort-based kernel mapping (PointAcc algorithm). Requires both
 *  clouds sorted and duplicate-free. */
MapSet sortKernelMap(const PointCloud &input, const PointCloud &output,
                     const KernelMapConfig &cfg);

/**
 * Inverse maps for transposed (upsampling) convolution: swap in/out of
 * the corresponding downsampling layer's maps and mirror the weight
 * index (delta -> -delta).
 */
MapSet transposeMaps(const MapSet &maps, int kernel_size);

} // namespace pointacc

#endif // POINTACC_MAPPING_KERNEL_MAP_HPP
