/**
 * @file
 * Input-output maps: the common currency of point cloud convolution.
 *
 * A map is a tuple (input point index, output point index, weight
 * index): "input j contributes to output k through kernel weight n"
 * (Section 2 of the paper). Every mapping operation — kernel mapping,
 * kNN, ball query — ultimately produces a MapSet, and the Memory
 * Management Unit consumes MapSets to drive gather/scatter-free matrix
 * computation.
 */

#ifndef POINTACC_MAPPING_MAPS_HPP
#define POINTACC_MAPPING_MAPS_HPP

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace pointacc {

/** One (input, output, weight) map tuple. */
struct Map
{
    PointIndex in = kInvalidIndex;
    PointIndex out = kInvalidIndex;
    std::int32_t weight = 0;

    friend constexpr bool
    operator==(const Map &a, const Map &b)
    {
        return a.in == b.in && a.out == b.out && a.weight == b.weight;
    }

    friend constexpr bool
    operator!=(const Map &a, const Map &b)
    {
        return !(a == b);
    }

    friend constexpr bool
    operator<(const Map &a, const Map &b)
    {
        if (a.in != b.in) return a.in < b.in;
        if (a.out != b.out) return a.out < b.out;
        return a.weight < b.weight;
    }
};

/**
 * All maps of one point cloud convolution layer, grouped by weight
 * index ("gather by weight" order, which is how both the GPU reference
 * flow and PointAcc iterate).
 */
class MapSet
{
  public:
    MapSet() = default;
    explicit MapSet(std::int32_t num_weights) : groups(num_weights) {}

    std::int32_t numWeights() const
    {
        return static_cast<std::int32_t>(groups.size());
    }

    void
    add(const Map &m)
    {
        groups[m.weight].push_back(m);
        count += 1;
    }

    /** Pre-size every weight group. Producers that know an upper-ish
     *  bound on matches per offset (kernel mapping: at most
     *  min(|input|, |output|)) use this to avoid the per-group
     *  doubling reallocations that otherwise churn the mapping hot
     *  path; over-reservation is released by the consumer copying or
     *  the set being short-lived. */
    void
    reservePerWeight(std::size_t expected)
    {
        for (auto &g : groups)
            g.reserve(expected);
    }

    /** Pre-size one weight group exactly (e.g. map transposition,
     *  where each output group's size is a source group's). */
    void
    reserveWeight(std::int32_t w, std::size_t expected)
    {
        groups[w].reserve(expected);
    }

    const std::vector<Map> &forWeight(std::int32_t w) const
    {
        return groups[w];
    }

    /** Total number of maps across all weights. */
    std::size_t size() const { return count; }

    /** Flatten to one weight-major vector (stable inside each weight). */
    std::vector<Map> flattened() const;

    /** Canonical ordering inside each weight group, for comparisons. */
    void sortGroups();

  private:
    std::vector<std::vector<Map>> groups;
    std::size_t count = 0;
};

/**
 * Enumerate kernel offsets for a cubic kernel of size k in D=3, in
 * weight-index order: offset delta in {-(k-1)/2 .. +(k-1)/2}^3 scaled by
 * the input tensor stride. Even kernels (k=2, used by strided
 * downsampling convolutions) use offsets {0, 1}^3.
 */
std::vector<Coord3> kernelOffsets(int kernel_size, int tensor_stride);

} // namespace pointacc

#endif // POINTACC_MAPPING_MAPS_HPP
