#include "mapping/maps.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace pointacc {

std::vector<Map>
MapSet::flattened() const
{
    std::vector<Map> flat;
    flat.reserve(count);
    for (const auto &g : groups)
        flat.insert(flat.end(), g.begin(), g.end());
    return flat;
}

void
MapSet::sortGroups()
{
    for (auto &g : groups)
        std::sort(g.begin(), g.end());
}

std::vector<Coord3>
kernelOffsets(int kernel_size, int tensor_stride)
{
    simAssert(kernel_size >= 1, "kernel size must be positive");
    simAssert(tensor_stride >= 1, "tensor stride must be positive");

    const int lo = kernel_size % 2 == 1 ? -(kernel_size - 1) / 2 : 0;
    const int hi = kernel_size % 2 == 1 ? (kernel_size - 1) / 2
                                        : kernel_size - 1;
    std::vector<Coord3> offsets;
    offsets.reserve(static_cast<std::size_t>(kernel_size) * kernel_size *
                    kernel_size);
    for (int dx = lo; dx <= hi; ++dx) {
        for (int dy = lo; dy <= hi; ++dy) {
            for (int dz = lo; dz <= hi; ++dz) {
                offsets.push_back(Coord3{dx, dy, dz} * tensor_stride);
            }
        }
    }
    return offsets;
}

} // namespace pointacc
