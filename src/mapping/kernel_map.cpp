#include "mapping/kernel_map.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/logging.hpp"

namespace pointacc {

MapSet
hashKernelMap(const PointCloud &input, const PointCloud &output,
              const KernelMapConfig &cfg)
{
    const auto offsets = kernelOffsets(cfg.kernelSize, cfg.inStride);
    MapSet maps(static_cast<std::int32_t>(offsets.size()));
    // Matches per offset are bounded by the smaller cloud; reserving a
    // slice of that up front absorbs the early doubling reallocations
    // without committing the full worst case for every offset.
    maps.reservePerWeight(
        std::min(input.size(), output.size()) / 8 + 8);

    std::unordered_map<Coord3, PointIndex, Coord3Hash> table;
    table.reserve(input.size() * 2);
    for (std::size_t i = 0; i < input.size(); ++i)
        table.emplace(input.coord(static_cast<PointIndex>(i)),
                      static_cast<PointIndex>(i));

    for (std::int32_t w = 0; w < maps.numWeights(); ++w) {
        const Coord3 &delta = offsets[w];
        for (std::size_t q = 0; q < output.size(); ++q) {
            const Coord3 probe =
                output.coord(static_cast<PointIndex>(q)) + delta;
            const auto it = table.find(probe);
            if (it != table.end()) {
                maps.add(Map{it->second, static_cast<PointIndex>(q), w});
            }
        }
    }
    return maps;
}

MapSet
sortKernelMap(const PointCloud &input, const PointCloud &output,
              const KernelMapConfig &cfg)
{
    simAssert(input.isSorted(), "sortKernelMap requires sorted input");
    simAssert(output.isSorted(), "sortKernelMap requires sorted output");

    const auto offsets = kernelOffsets(cfg.kernelSize, cfg.inStride);
    MapSet maps(static_cast<std::int32_t>(offsets.size()));
    maps.reservePerWeight(
        std::min(input.size(), output.size()) / 8 + 8);

    // For each weight: shift input by -delta, then walk both sorted
    // sequences simultaneously (the software analogue of the hardware
    // mergesort + intersection detection, Fig. 9). Because shifting by
    // a constant preserves lexicographic order, no re-sort is needed in
    // the functional model; the hardware model pays the merge cycles.
    for (std::int32_t w = 0; w < maps.numWeights(); ++w) {
        const Coord3 &delta = offsets[w];
        std::size_t i = 0, q = 0;
        while (i < input.size() && q < output.size()) {
            const Coord3 shifted =
                input.coord(static_cast<PointIndex>(i)) - delta;
            const Coord3 &qc = output.coord(static_cast<PointIndex>(q));
            if (shifted == qc) {
                maps.add(Map{static_cast<PointIndex>(i),
                             static_cast<PointIndex>(q), w});
                ++i;
                ++q;
            } else if (shifted < qc) {
                ++i;
            } else {
                ++q;
            }
        }
    }
    return maps;
}

MapSet
transposeMaps(const MapSet &maps, int kernel_size)
{
    const std::int32_t volume = maps.numWeights();
    MapSet out(volume);
    // Odd cubic kernels are centro-symmetric: weight w's offset delta
    // maps to volume-1-w's offset -delta. For even kernels the offsets
    // {0..k-1}^3 have no mirror inside the set, so the transposed layer
    // keeps the same weight index (the upsampling layer owns its own
    // weights anyway; only grouping matters for the simulator).
    const bool odd = kernel_size % 2 == 1;
    // Transposition permutes whole groups, so each output group's
    // exact size is the source group's — reserve it precisely.
    for (std::int32_t w = 0; w < volume; ++w) {
        const std::int32_t tw = odd ? volume - 1 - w : w;
        out.reserveWeight(tw, maps.forWeight(w).size());
        for (const auto &m : maps.forWeight(w))
            out.add(Map{m.out, m.in, tw});
    }
    return out;
}

} // namespace pointacc
