/**
 * @file
 * Farthest point sampling (FPS): output cloud construction for
 * PointNet++-based convolutions (Section 2.1.1).
 *
 * Output points are chosen one at a time; each iteration picks the
 * input point with the largest distance to the already-selected set.
 * The classic O(n * m) incremental-minimum formulation is used — it is
 * exactly the dataflow the Mapping Unit executes (distance update
 * forwarded from stage CD to FS, running max in stage ST), so this
 * functional version doubles as the oracle for the hardware model.
 */

#ifndef POINTACC_MAPPING_FPS_HPP
#define POINTACC_MAPPING_FPS_HPP

#include <vector>

#include "core/point_cloud.hpp"

namespace pointacc {

/**
 * Select `num_samples` points by farthest point sampling.
 *
 * @param cloud        input cloud
 * @param num_samples  number of points to select (clamped to cloud size)
 * @param first        index of the seed point (paper picks the first)
 * @return             indices into `cloud`, in selection order
 */
std::vector<PointIndex> farthestPointSampling(const PointCloud &cloud,
                                              std::size_t num_samples,
                                              PointIndex first = 0);

/** Random sampling baseline (used by RandLA-style nets; deterministic). */
std::vector<PointIndex> randomSampling(const PointCloud &cloud,
                                       std::size_t num_samples,
                                       std::uint64_t seed);

/** Materialize a subset of `cloud` given selected indices. */
PointCloud gatherPoints(const PointCloud &cloud,
                        const std::vector<PointIndex> &indices);

} // namespace pointacc

#endif // POINTACC_MAPPING_FPS_HPP
