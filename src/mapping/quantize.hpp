/**
 * @file
 * Coordinate quantization: output cloud construction for SparseConv.
 *
 * Downsampling reduces resolution by snapping each coordinate to the
 * coarser grid: q = floor(p / ts) * ts where ts is the *output* tensor
 * stride (Section 2.1.1). Because strides are powers of two, hardware
 * implements this by clearing the low log2(ts) bits; the software
 * reference here must match that bit-clearing semantics exactly,
 * including for negative coordinates (arithmetic shift, i.e. floor).
 */

#ifndef POINTACC_MAPPING_QUANTIZE_HPP
#define POINTACC_MAPPING_QUANTIZE_HPP

#include "core/point_cloud.hpp"

namespace pointacc {

/**
 * Snap one coordinate onto the grid of pitch `ts` (power of two).
 * Two's-complement masking gives floor semantics for negatives, e.g.
 * -3 & ~3 == -4, which matches floor(-3/4)*4.
 */
inline Coord3
quantizeCoord(const Coord3 &p, std::int32_t ts)
{
    const std::int32_t mask = ~(ts - 1);
    return {p.x & mask, p.y & mask, p.z & mask};
}

/**
 * Construct the downsampled output cloud: quantize every input point to
 * the target tensor stride and deduplicate. The result is sorted.
 *
 * @param input      input cloud (any tensor stride)
 * @param out_stride target tensor stride, a power of two that is a
 *                   multiple of the input stride
 */
PointCloud quantizeDownsample(const PointCloud &input,
                              std::int32_t out_stride);

} // namespace pointacc

#endif // POINTACC_MAPPING_QUANTIZE_HPP
