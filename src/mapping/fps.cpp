#include "mapping/fps.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/logging.hpp"
#include "core/rng.hpp"

namespace pointacc {

std::vector<PointIndex>
farthestPointSampling(const PointCloud &cloud, std::size_t num_samples,
                      PointIndex first)
{
    const std::size_t n = cloud.size();
    num_samples = std::min(num_samples, n);
    std::vector<PointIndex> selected;
    if (num_samples == 0)
        return selected;
    simAssert(first >= 0 && static_cast<std::size_t>(first) < n,
              "FPS seed point out of range");

    selected.reserve(num_samples);
    selected.push_back(first);

    // minDist[i] = squared distance from point i to the selected set.
    std::vector<std::int64_t> minDist(
        n, std::numeric_limits<std::int64_t>::max());

    PointIndex last = first;
    while (selected.size() < num_samples) {
        std::int64_t best = -1;
        PointIndex bestIdx = 0;
        const Coord3 &lastCoord = cloud.coord(last);
        for (std::size_t i = 0; i < n; ++i) {
            const auto d = cloud.coord(static_cast<PointIndex>(i))
                               .distance2(lastCoord);
            if (d < minDist[i])
                minDist[i] = d;
            // Ties break toward the lower index, matching the hardware
            // comparator which keeps the earlier element on equality.
            if (minDist[i] > best) {
                best = minDist[i];
                bestIdx = static_cast<PointIndex>(i);
            }
        }
        selected.push_back(bestIdx);
        last = bestIdx;
    }
    return selected;
}

std::vector<PointIndex>
randomSampling(const PointCloud &cloud, std::size_t num_samples,
               std::uint64_t seed)
{
    const std::size_t n = cloud.size();
    num_samples = std::min(num_samples, n);
    std::vector<PointIndex> indices(n);
    std::iota(indices.begin(), indices.end(), 0);
    Rng rng(seed);
    // Fisher-Yates prefix shuffle: only the first num_samples slots.
    for (std::size_t i = 0; i < num_samples; ++i) {
        const std::size_t j = i + rng.range(n - i);
        std::swap(indices[i], indices[j]);
    }
    indices.resize(num_samples);
    return indices;
}

PointCloud
gatherPoints(const PointCloud &cloud, const std::vector<PointIndex> &indices)
{
    std::vector<Coord3> coords;
    coords.reserve(indices.size());
    for (const auto idx : indices)
        coords.push_back(cloud.coord(idx));
    PointCloud out(std::move(coords), cloud.channels());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        for (int c = 0; c < cloud.channels(); ++c) {
            out.setFeature(static_cast<PointIndex>(i), c,
                           cloud.feature(indices[i], c));
        }
    }
    out.setTensorStride(cloud.tensorStride());
    return out;
}

} // namespace pointacc
