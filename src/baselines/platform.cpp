#include "baselines/platform.hpp"

namespace pointacc {

namespace {

// Calibration notes.
//
// matmulGmacs: achieved (not peak) MAC rate on the small, fragmented
// matrices of point cloud layers. GPUs reach ~20-35% of peak fp16 on
// these shapes; CPUs ~25% of AVX-512 peak; TPU sustains high matmul
// rates but only on the gathered matrices it receives.
//
// mappingGops: throughput of neighbor-search primitives (distance
// evaluations, hash probes, sort steps). CPUs do these at a few ops
// per cycle per core; GPUs are bound by irregular memory access, not
// FLOPs.
//
// powerW: average power attributable to the inference (RAPL-style
// package/board draw while the fragmented point-cloud kernels run),
// NOT the device TDP — utilization on these workloads is low.

const PlatformSpec kRtx2080Ti = {
    "RTX 2080Ti", 1400.0, 100.0, 15.0, 0.0, false, 0.0, 70.0, 8.0,
};

const PlatformSpec kXeon6130 = {
    "Xeon Gold 6130", 60.0, 3.5, 0.45, 0.0, false, 0.0, 25.0, 2.0,
};

// TPU-v3 with Skylake host: matmuls are fast once data arrives, but
// mapping runs on the host and gathered matrices cross PCIe 3.0 x16
// (~10 GB/s effective) in both directions.
const PlatformSpec kTpuV3 = {
    "TPU-v3 (+host)", 20000.0, 300.0, 0.0, 4.8, true, 1.2, 50.0, 60.0,
};

const PlatformSpec kJetsonNX = {
    "Jetson Xavier NX", 170.0, 13.0, 4.0, 0.0, false, 0.0, 7.5, 15.0,
};

const PlatformSpec kJetsonNano = {
    "Jetson Nano", 36.0, 7.0, 0.7, 0.0, false, 0.0, 4.0, 25.0,
};

const PlatformSpec kRaspberryPi4 = {
    "Raspberry Pi 4B", 1.9, 1.3, 0.06, 0.0, false, 0.0, 2.5, 10.0,
};

const PlatformSpec kMobileGpu = {
    "Mobile GPU", 90.0, 6.0, 1.0, 0.0, false, 0.0, 5.0, 20.0,
};

} // namespace

const PlatformSpec &rtx2080Ti() { return kRtx2080Ti; }
const PlatformSpec &xeonGold6130() { return kXeon6130; }
const PlatformSpec &tpuV3() { return kTpuV3; }
const PlatformSpec &jetsonXavierNX() { return kJetsonNX; }
const PlatformSpec &jetsonNano() { return kJetsonNano; }
const PlatformSpec &raspberryPi4() { return kRaspberryPi4; }
const PlatformSpec &mobileGpu() { return kMobileGpu; }

PlatformResult
estimatePlatform(const PlatformSpec &spec, const std::string &network_name,
                 const WorkloadSummary &w)
{
    PlatformResult r;
    r.platform = spec.name;
    r.network = network_name;

    // MatMul: total useful MACs at the achieved rate.
    r.matmulMs = static_cast<double>(w.totalMacs) /
                 (spec.matmulGmacs * 1e6);

    // Mapping: FPS + neighbor search + kernel mapping primitive work.
    const double mappingWork =
        static_cast<double>(w.fpsWork + w.neighborWork + w.kernelMapWork);
    const double mappingRate =
        spec.mappingOnHost ? spec.hostMappingGops : spec.mappingGops;
    r.mappingMs = mappingRate > 0.0 ? mappingWork / (mappingRate * 1e6)
                                    : 0.0;

    // Data movement: explicit gather/scatter traffic over the memory
    // system; co-processors add the host link round trip (features out
    // to the device, partial sums back).
    r.dataMovementMs = static_cast<double>(w.gatherScatterBytes) /
                       (spec.memBwGBps * 1e6);
    if (spec.hostLinkGBps > 0.0) {
        r.dataMovementMs += 2.0 *
                            static_cast<double>(w.gatherScatterBytes) /
                            (spec.hostLinkGBps * 1e6);
    }

    // Kernel dispatch overhead: every matrix op fragments into gather,
    // matmul and scatter kernels; mapping ops dispatch separately.
    const double overheadMs = spec.launchOverheadUs * 1e-3;
    r.matmulMs += static_cast<double>(w.numMatrixOps) * overheadMs;
    r.dataMovementMs +=
        2.0 * static_cast<double>(w.numMatrixOps) * overheadMs;
    r.mappingMs += static_cast<double>(w.numMappingOps) * overheadMs;

    r.energyMJ = spec.powerW * r.totalMs();
    return r;
}

} // namespace pointacc
