/**
 * @file
 * Analytical performance models of the baseline hardware platforms
 * (Section 5.1): server products (Xeon 6130, RTX 2080Ti, TPU-v3) and
 * edge devices (Jetson Xavier NX, Jetson Nano, Raspberry Pi 4).
 *
 * Each platform is described by its *achieved* throughputs on point
 * cloud workloads — effective matmul rate, effective memory bandwidth
 * for the gather-matmul-scatter flow, and mapping-operation throughput
 * — calibrated once against the paper's measured breakdowns (Fig. 6)
 * and then held fixed for every experiment. The TPU additionally pays
 * the host round trip of Section 3, Bottleneck I: mapping runs on the
 * host CPU and gathered matrices cross PCIe in both directions.
 */

#ifndef POINTACC_BASELINES_PLATFORM_HPP
#define POINTACC_BASELINES_PLATFORM_HPP

#include <string>
#include <vector>

#include "nn/executor.hpp"

namespace pointacc {

/** Calibrated description of one baseline platform. */
struct PlatformSpec
{
    std::string name;
    /** Achieved matmul throughput on point-cloud matrices (GMAC/s). */
    double matmulGmacs = 0.0;
    /** Effective DRAM bandwidth for gather/scatter traffic (GB/s). */
    double memBwGBps = 0.0;
    /** Mapping-op throughput: distance evals / probes per second (G). */
    double mappingGops = 0.0;
    /** Host link bandwidth for co-processor round trips (GB/s);
     *  0 = unified memory, no round trip. */
    double hostLinkGBps = 0.0;
    /** Mapping executes on the host CPU (TPU case). */
    bool mappingOnHost = false;
    /** Host CPU mapping throughput when mappingOnHost (Gops). */
    double hostMappingGops = 0.0;
    /** Average board power while busy (W). */
    double powerW = 0.0;
    /** Fixed per-kernel dispatch overhead (us): point cloud layers
     *  fragment into hundreds of small kernels, so launch/dispatch
     *  overhead is a first-order cost on real devices. */
    double launchOverheadUs = 0.0;
};

/** Latency breakdown in the Fig. 6 categories. */
struct PlatformResult
{
    std::string platform;
    std::string network;
    double matmulMs = 0.0;
    double mappingMs = 0.0;
    double dataMovementMs = 0.0;

    double
    totalMs() const
    {
        return matmulMs + mappingMs + dataMovementMs;
    }

    double energyMJ = 0.0;
};

// Server-class platforms (Fig. 13 baselines).
const PlatformSpec &rtx2080Ti();
const PlatformSpec &xeonGold6130();
const PlatformSpec &tpuV3();

// Edge platforms (Fig. 14 baselines).
const PlatformSpec &jetsonXavierNX();
const PlatformSpec &jetsonNano();
const PlatformSpec &raspberryPi4();

/** Mobile GPU used in the Fig. 6 motivation breakdown. */
const PlatformSpec &mobileGpu();

/** Estimate one network inference on `spec`. */
PlatformResult estimatePlatform(const PlatformSpec &spec,
                                const std::string &network_name,
                                const WorkloadSummary &workload);

} // namespace pointacc

#endif // POINTACC_BASELINES_PLATFORM_HPP
