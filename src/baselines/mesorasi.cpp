#include "baselines/mesorasi.hpp"

#include "core/logging.hpp"

namespace pointacc {

namespace {

/**
 * Workload after the delayed-aggregation rewrite: map-driven MLPs
 * (maps x cin x cout MACs) become per-point MLPs (numIn x cin x cout),
 * and each original map contributes one AU reduction element.
 */
struct DelayedWorkload
{
    std::uint64_t npuMacs = 0;
    std::uint64_t auElements = 0;  ///< neighbor features reduced
    std::uint64_t mappingWork = 0; ///< host distance evals
    std::uint64_t trafficBytes = 0;
};

DelayedWorkload
delayedAggregationWorkload(const Network &net, const PointCloud &input)
{
    DelayedWorkload d;
    executeNetwork(net, input, [&](const LayerWork &w) {
        if (w.maps != nullptr) {
            // Delayed aggregation: MLP on the input points once.
            d.npuMacs += w.numIn * static_cast<std::uint64_t>(w.cin) *
                         w.cout;
            d.auElements += w.maps->size() * w.cout;
            // Neighbor features still gather once for the reduction.
            d.trafficBytes += w.maps->size() * 2ULL * w.cout;
        } else {
            d.npuMacs += w.macs;
            d.trafficBytes += w.numIn * 2ULL * (w.cin + w.cout);
        }
        for (const auto &op : w.mappingOps) {
            switch (op.kind) {
              case MappingOpKind::Fps:
              case MappingOpKind::BallQuery:
              case MappingOpKind::Knn:
                d.mappingWork += op.inputPoints * op.outputPoints;
                break;
              default:
                break;
            }
        }
    });
    return d;
}

} // namespace

MesorasiResult
runMesorasi(const Network &net, const PointCloud &input,
            const MesorasiConfig &cfg)
{
    MesorasiResult r;
    r.network = net.notation;
    if (!net.mesorasiCompatible) {
        r.supported = false;
        return r;
    }
    r.supported = true;

    const auto d = delayedAggregationWorkload(net, input);

    const double npuMacsPerSec = static_cast<double>(cfg.npuRows) *
                                 cfg.npuCols * cfg.freqGHz * 1e9;
    // NPU utilization on small point-cloud MLP matrices (~70%,
    // delayed aggregation feeds it contiguous per-point matrices).
    r.matmulMs = static_cast<double>(d.npuMacs) /
                 (npuMacsPerSec * 0.70) * 1e3;
    r.aggregationMs = static_cast<double>(d.auElements) /
                      (static_cast<double>(cfg.auLanes) * cfg.freqGHz *
                       1e9) *
                      1e3;
    r.mappingMs = static_cast<double>(d.mappingWork) /
                  (cfg.hostMappingGops * 1e6);
    r.dataMovementMs = static_cast<double>(d.trafficBytes) /
                       (cfg.dramBwGBps * 1e6);
    r.energyMJ = cfg.powerW * r.totalMs();
    return r;
}

PlatformResult
runMesorasiSW(const PlatformSpec &platform, const Network &net,
              const PointCloud &input)
{
    simAssert(net.mesorasiCompatible,
              "Mesorasi-SW requires a PointNet++-based network");
    const auto d = delayedAggregationWorkload(net, input);

    PlatformResult r;
    r.platform = platform.name + " (Mesorasi-SW)";
    r.network = net.notation;
    r.matmulMs = static_cast<double>(d.npuMacs + d.auElements) /
                 (platform.matmulGmacs * 1e6);
    r.mappingMs = static_cast<double>(d.mappingWork) /
                  (platform.mappingGops * 1e6);
    r.dataMovementMs = static_cast<double>(d.trafficBytes) /
                       (platform.memBwGBps * 1e6);
    r.energyMJ = platform.powerW * r.totalMs();
    return r;
}

} // namespace pointacc
