/**
 * @file
 * Mesorasi accelerator model (Feng et al., MICRO 2020) — the prior
 * point cloud accelerator PointAcc compares against (Section 5.2.2).
 *
 * Mesorasi's delayed aggregation rewrites PointNet++-style blocks so
 * the MLP runs once per *point* instead of once per *neighbor*; an
 * Aggregation Unit (AU) then max-reduces neighbor features. This works
 * only when every neighbor shares the same weights — SparseConv-based
 * networks (and PointNet++ variants with per-neighbor weights) are
 * unsupported, which is the co-design argument of Fig. 16.
 *
 * Hardware: a 16x16 systolic NPU (512 GOPS) plus the AU, backed by
 * LPDDR3-1600 (Table 3). Neighbor search (FPS + kNN/ball query) is not
 * accelerated; it runs on the host mobile SoC.
 */

#ifndef POINTACC_BASELINES_MESORASI_HPP
#define POINTACC_BASELINES_MESORASI_HPP

#include "baselines/platform.hpp"
#include "nn/network.hpp"

namespace pointacc {

/** Mesorasi hardware parameters (Table 3 column 1). */
struct MesorasiConfig
{
    std::uint32_t npuRows = 16;
    std::uint32_t npuCols = 16;
    double freqGHz = 1.0;
    double dramBwGBps = 12.8;  ///< LPDDR3-1600
    /** Host mapping throughput (mobile SoC, Gops). */
    double hostMappingGops = 1.0;
    /** AU reduction throughput (elements/cycle). */
    std::uint32_t auLanes = 64;
    double powerW = 6.0;
};

/** Result of running a network on the Mesorasi model. */
struct MesorasiResult
{
    std::string network;
    bool supported = false; ///< false for SparseConv-based networks
    double mappingMs = 0.0;
    double matmulMs = 0.0;       ///< delayed-aggregation MLPs on NPU
    double aggregationMs = 0.0;  ///< AU reductions
    double dataMovementMs = 0.0;
    double energyMJ = 0.0;

    double
    totalMs() const
    {
        return mappingMs + matmulMs + aggregationMs + dataMovementMs;
    }
};

/**
 * Simulate one inference on the Mesorasi model. For unsupported
 * networks the result has supported == false and zero times.
 */
MesorasiResult runMesorasi(const Network &net, const PointCloud &input,
                           const MesorasiConfig &cfg = {});

/**
 * Mesorasi-SW: the delayed-aggregation *algorithm* on a general
 * platform (Fig. 15's Mesorasi-SW bars): same MAC reduction, no AU,
 * platform-rate mapping.
 */
PlatformResult runMesorasiSW(const PlatformSpec &platform,
                             const Network &net, const PointCloud &input);

} // namespace pointacc

#endif // POINTACC_BASELINES_MESORASI_HPP
