/**
 * @file
 * Serving-level metrics: what a fleet operator reads off a dashboard.
 *
 * The per-inference simulator answers "how many cycles does one run
 * take"; the serving runtime answers "what latency distribution do
 * users see at this offered load with this fleet". This header holds
 * the report every FleetScheduler::run produces: tail latencies
 * (p50/p95/p99), throughput, per-accelerator utilization, drop and
 * deadline-miss accounting, and the conservation counters the runtime
 * tests check (generated = admitted + dropped; admitted = completed +
 * still queued at end of simulation).
 *
 * Latency aggregation reuses core/stats' Summary (nearest-rank
 * percentiles over raw samples) rather than inventing a new histogram.
 *
 * Invariants (fuzzed by test_runtime_properties): generated ==
 * admitted + dropped; admitted == completed + leftoverQueued with
 * leftoverQueued == 0 after a drained run; completionCycles is
 * non-decreasing with exactly one entry per completion; per-stage busy
 * cycles never exceed horizonCycles (so every utilization is <= 1);
 * mapCache.hits + mapCache.misses equals the requests priced against
 * the cache. writeServingJson's key set is pinned by
 * tests/test_report_golden.cpp and documented in docs/SERVING_JSON.md
 * (scripts/ci.sh greps that the two never drift apart).
 */

#ifndef POINTACC_RUNTIME_SERVING_STATS_HPP
#define POINTACC_RUNTIME_SERVING_STATS_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "runtime/autoscaler.hpp"
#include "runtime/faults.hpp"
#include "runtime/map_cache.hpp"
#include "runtime/traffic.hpp"

namespace pointacc {

/** Per-accelerator service accounting. The busy counters are ticks on
 *  the global ns event axis (equal to this instance's cycles only at
 *  1 GHz; multiply by freqGHz for actual clock cycles) — the *Cycles
 *  field names survive the time-domain migration so the frozen
 *  reference engine and its differential gates stay untouched. */
struct AcceleratorUsage
{
    std::string name;
    /** This instance's clock, for converting its busy ns to cycles. */
    double freqGHz = 1.0;
    /** Event-axis ns during which >= 1 batch was somewhere on the
     *  instance (union of per-batch residency intervals, so overlapped
     *  phases are not double-counted and utilization stays <= 1). */
    std::uint64_t busyCycles = 0;
    /** Event-axis ns the Mapping Unit front-end stage spent mapping. */
    std::uint64_t mapBusyCycles = 0;
    /** Event-axis ns the Matrix Unit + memory back-end stage spent
     *  serving. */
    std::uint64_t backendBusyCycles = 0;
    std::uint64_t batches = 0;
    std::uint64_t requests = 0;

    /** Busy fraction of the simulated span; always <= 1. */
    double
    utilization(std::uint64_t horizon_cycles) const
    {
        return horizon_cycles == 0
                   ? 0.0
                   : static_cast<double>(busyCycles) /
                         static_cast<double>(horizon_cycles);
    }

    /** Front-end (mapping) stage busy fraction; always <= 1. */
    double
    mapUtilization(std::uint64_t horizon_cycles) const
    {
        return horizon_cycles == 0
                   ? 0.0
                   : static_cast<double>(mapBusyCycles) /
                         static_cast<double>(horizon_cycles);
    }

    /** Back-end (matrix + memory) stage busy fraction; always <= 1. */
    double
    backendUtilization(std::uint64_t horizon_cycles) const
    {
        return horizon_cycles == 0
                   ? 0.0
                   : static_cast<double>(backendBusyCycles) /
                         static_cast<double>(horizon_cycles);
    }
};

/** Result of one serving simulation. Every timestamp, latency and
 *  span below is measured on the global wall-clock event axis in
 *  nanoseconds; the *Cycles field and key names are kept (they are
 *  numerically identical at the 1 GHz configs both Table 3 parts use,
 *  and renaming them would churn the frozen reference engine), with
 *  honest *_ns keys emitted alongside in writeServingJson. */
struct ServingReport
{
    /** Lead (first) instance's clock — informational; conversions
     *  below are frequency-free because the axis is already ns. */
    double freqGHz = 1.0;
    /** Simulated span: max(last arrival, last completion) ns. */
    std::uint64_t horizonCycles = 0;
    /** Occupancy model the scheduler ran ("monolithic"/"pipelined"). */
    std::string occupancy;
    /** Wait-for-K hold episodes: distinct batch leaders the batcher
     *  held hoping for more compatible requests (one per episode — a
     *  leader's id leaves the dedup set when it dispatches, so the
     *  set is bounded by queue depth and a later re-queued request
     *  starts a fresh episode). */
    std::uint64_t batchHolds = 0;
    /** Main-loop iterations (distinct event times processed). Not
     *  serialized — a wall-clock denominator for bench_simperf's
     *  events-per-second metric, identical across the production and
     *  reference engines. */
    std::uint64_t loopEvents = 0;
    /** Peak size of the scheduler's hold-dedup set. Not serialized —
     *  the --scale tier asserts it stays bounded by queue depth on
     *  10^5-request wait-for-K traces (the set must never grow with
     *  trace length). */
    std::uint64_t holdTrackingPeak = 0;

    // Run-ahead buffer telemetry (SchedulerConfig::runAheadDepth).
    // The run_ahead_* JSON block is emitted only at depth != 1, so
    // default-depth reports stay byte-identical to pre-run-ahead
    // output.
    /** Echo of SchedulerConfig::runAheadDepth. */
    std::uint32_t runAheadDepth = 1;
    /** Mapped batches parked in the staging FIFO because the back-end
     *  was still busy (each park is one batch the blocking handoff
     *  would have stalled the front-end on). */
    std::uint64_t runAheadStaged = 0;
    /** Peak staging-FIFO occupancy across the fleet; <= depth - 1. */
    std::uint64_t runAheadPeakStaged = 0;

    // Cost-aware dispatch telemetry (BatcherConfig::costAware). The
    // cost_aware_* JSON block is emitted only when the mode is on.
    /** Echo of BatcherConfig::costAware. */
    bool costAware = false;
    /** Hold decisions where the priced amortization gain beat the
     *  forfeited overlap (one per dispatch-pass evaluation). */
    std::uint64_t costHolds = 0;
    /** Batches the cost model released undersized (below target K)
     *  because waiting longer no longer paid. */
    std::uint64_t costDispatches = 0;

    // Conservation counters. With fault injection the admitted side
    // extends to a three-way split: admitted = completed + failed +
    // leftoverQueued (failed is always 0 on a fault-free run, so the
    // legacy two-way identity is the same equation).
    std::uint64_t generated = 0; ///< requests offered by the workload
    std::uint64_t admitted = 0;  ///< accepted into the queue
    std::uint64_t dropped = 0;   ///< rejected at admission (queue full)
    std::uint64_t completed = 0; ///< served to completion
    /** Terminal failures: crash victims whose retries were exhausted,
     *  shed at re-admission, or timed out (runtime/faults). */
    std::uint64_t failed = 0;
    std::uint64_t leftoverQueued = 0; ///< still queued when sim ended
    std::uint64_t deadlineMisses = 0; ///< completed after their deadline

    Summary latencyCycles;  ///< arrival -> completion, per request
    Summary queueWaitCycles;///< arrival -> dispatch, per request
    Summary batchSize;      ///< requests per dispatch

    /** Kernel-map cache counters (all zero when the cache is off). */
    MapCacheStats mapCache;

    /** Completion timestamp of every served request, in completion
     *  order (non-decreasing by construction; the property tests
     *  assert it). Parallels latencyCycles' samples. */
    std::vector<std::uint64_t> completionCycles;

    std::vector<AcceleratorUsage> accelerators;

    /** Autoscaler outcome; default-disabled. The autoscaler_* JSON
     *  block is emitted only when enabled, so unscaled reports stay
     *  byte-identical to pre-autoscaler output. */
    AutoscalerStats autoscaler;

    /** Fault/retry counters (runtime/faults); default-disabled. The
     *  fault_* / retry_* JSON block is emitted only when the run
     *  materialized fault events or had retries enabled, so
     *  fault-free reports stay byte-identical to pre-fault output. */
    FaultStats faults;

    /** Traffic-program shape the run served, when the caller drove a
     *  TrafficStream (filled by the bench/example harnesses, not the
     *  scheduler — the scheduler only sees a RequestSource). The
     *  traffic_* JSON block is emitted only when present. */
    TrafficTelemetry traffic;

    /** Event-axis ns -> milliseconds. Frequency-free: the axis is
     *  wall time, so a mixed-frequency fleet needs no per-instance
     *  bookkeeping here (and at 1 GHz this is bit-identical to the
     *  pre-migration cycles/(freq*1e6) conversion). */
    double
    cyclesToMs(double ns) const
    {
        return ns / 1e6;
    }

    double p50Ms() const { return cyclesToMs(latencyCycles.percentile(0.50)); }
    double p95Ms() const { return cyclesToMs(latencyCycles.percentile(0.95)); }
    double p99Ms() const { return cyclesToMs(latencyCycles.percentile(0.99)); }
    double meanMs() const { return cyclesToMs(latencyCycles.mean()); }

    /** p99 latency in event-axis ns — the unit SLOs are written in
     *  (the capacity planner compares it against SloSpec::maxP99Cycles
     *  without any conversion). */
    double p99Cycles() const { return latencyCycles.percentile(0.99); }

    /** Completed requests per second of simulated wall time. */
    double
    throughputRps() const
    {
        if (horizonCycles == 0)
            return 0.0;
        const double seconds =
            static_cast<double>(horizonCycles) / 1e9;
        return static_cast<double>(completed) / seconds;
    }

    /** Useful completions per second: requests that finished within
     *  their deadline. Deadline misses are counted among completions,
     *  so goodput <= throughput always (the property suite pins the
     *  invariant); on a best-effort mix the two are equal. */
    double
    goodputRps() const
    {
        if (horizonCycles == 0)
            return 0.0;
        const double seconds =
            static_cast<double>(horizonCycles) / 1e9;
        return static_cast<double>(completed - deadlineMisses) /
               seconds;
    }

    double
    dropRate() const
    {
        return generated == 0 ? 0.0
                              : static_cast<double>(dropped) /
                                    static_cast<double>(generated);
    }
};

/**
 * Merge per-shard reports from a sharded simulation (bench_simperf's
 * parallel tier: disjoint sub-fleets each serving a slice of the
 * offered load) into one fleet-level report. Deterministic: shards are
 * folded in vector order whatever order they were simulated in, so a
 * sharded run's report is a pure function of the shard list —
 * independent of thread count.
 *
 * Semantics: counters and busy cycles sum; latency/wait/batch
 * summaries merge (Summary::merge); completionCycles are merged as
 * sorted sequences so the fleet-level stream stays non-decreasing;
 * horizon is the max over shards (the fleet's span is its slowest
 * shard's span); accelerators concatenate in shard order; freqGHz and
 * occupancy are taken from the first shard (shards are homogeneous by
 * construction — the caller splits one fleet, it does not mix
 * configs). Autoscaler and traffic telemetry stay default: the sharded
 * tier drives neither.
 */
ServingReport mergeShardReports(const std::vector<ServingReport> &shards);

/** One-paragraph operator summary. */
std::string servingSummaryText(const ServingReport &report);

/** Machine-readable dump for the BENCH_*.json perf trajectory. */
void writeServingJson(std::ostream &os, const ServingReport &report);

} // namespace pointacc

#endif // POINTACC_RUNTIME_SERVING_STATS_HPP
