#include "runtime/serving_stats.hpp"

#include <iomanip>
#include <sstream>

#include "core/json.hpp"

namespace pointacc {

std::string
servingSummaryText(const ServingReport &report)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(3);
    os << report.completed << " completed / " << report.generated
       << " offered (" << report.dropped << " dropped, "
       << report.deadlineMisses << " deadline misses), "
       << std::setprecision(1) << report.throughputRps() << " req/s, "
       << std::setprecision(3) << "latency p50 " << report.p50Ms()
       << " / p95 " << report.p95Ms() << " / p99 " << report.p99Ms()
       << " ms";
    if (report.mapCache.hits + report.mapCache.misses > 0) {
        os << ", map cache " << std::setprecision(0)
           << 100.0 * report.mapCache.hitRate() << "% hits ("
           << report.mapCache.evictions << " evictions)"
           << std::setprecision(3);
    }
    if (!report.accelerators.empty()) {
        os << ", util";
        for (const auto &acc : report.accelerators) {
            os << ' ' << acc.name << ' ' << std::setprecision(2)
               << acc.utilization(report.horizonCycles);
        }
    }
    return os.str();
}

void
writeServingJson(std::ostream &os, const ServingReport &report)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("freq_ghz", report.freqGHz);
    w.field("horizon_cycles", report.horizonCycles);
    w.field("occupancy",
            report.occupancy.empty() ? "monolithic" : report.occupancy);
    w.field("batch_holds", report.batchHolds);
    w.field("generated", report.generated);
    w.field("admitted", report.admitted);
    w.field("dropped", report.dropped);
    w.field("completed", report.completed);
    w.field("leftover_queued", report.leftoverQueued);
    w.field("deadline_misses", report.deadlineMisses);
    w.field("throughput_rps", report.throughputRps());
    w.field("drop_rate", report.dropRate());
    w.field("latency_ms_mean", report.meanMs());
    w.field("latency_ms_p50", report.p50Ms());
    w.field("latency_ms_p95", report.p95Ms());
    w.field("latency_ms_p99", report.p99Ms());
    w.field("queue_wait_cycles_mean", report.queueWaitCycles.mean());
    w.field("batch_size_mean", report.batchSize.mean());
    w.field("map_cache_hits", report.mapCache.hits);
    w.field("map_cache_misses", report.mapCache.misses);
    w.field("map_cache_insertions", report.mapCache.insertions);
    w.field("map_cache_evictions", report.mapCache.evictions);
    w.field("map_cache_bytes_saved", report.mapCache.bytesSaved);
    w.field("map_cache_cycles_saved", report.mapCache.cyclesSaved);
    w.field("map_cache_hit_rate", report.mapCache.hitRate());
    w.key("accelerators").beginArray();
    for (const auto &acc : report.accelerators) {
        w.beginObject();
        w.field("name", acc.name);
        w.field("busy_cycles", acc.busyCycles);
        w.field("map_busy_cycles", acc.mapBusyCycles);
        w.field("backend_busy_cycles", acc.backendBusyCycles);
        w.field("batches", acc.batches);
        w.field("requests", acc.requests);
        w.field("utilization", acc.utilization(report.horizonCycles));
        w.field("map_utilization",
                acc.mapUtilization(report.horizonCycles));
        w.field("backend_utilization",
                acc.backendUtilization(report.horizonCycles));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace pointacc
