#include "runtime/serving_stats.hpp"

#include <algorithm>
#include <iomanip>
#include <iterator>
#include <sstream>

#include "core/json.hpp"
#include "core/logging.hpp"

namespace pointacc {

ServingReport
mergeShardReports(const std::vector<ServingReport> &shards)
{
    simAssert(!shards.empty(), "mergeShardReports needs >= 1 shard");
    ServingReport merged;
    merged.freqGHz = shards.front().freqGHz;
    merged.occupancy = shards.front().occupancy;
    for (const ServingReport &shard : shards) {
        merged.horizonCycles =
            std::max(merged.horizonCycles, shard.horizonCycles);
        merged.batchHolds += shard.batchHolds;
        merged.loopEvents += shard.loopEvents;
        merged.holdTrackingPeak =
            std::max(merged.holdTrackingPeak, shard.holdTrackingPeak);
        // Shards run one scheduler config, so the depth/mode echoes
        // agree across them; counters sum, the peak is a max.
        merged.runAheadDepth = shard.runAheadDepth;
        merged.runAheadStaged += shard.runAheadStaged;
        merged.runAheadPeakStaged = std::max(merged.runAheadPeakStaged,
                                             shard.runAheadPeakStaged);
        merged.costAware = merged.costAware || shard.costAware;
        merged.costHolds += shard.costHolds;
        merged.costDispatches += shard.costDispatches;
        merged.generated += shard.generated;
        merged.admitted += shard.admitted;
        merged.dropped += shard.dropped;
        merged.completed += shard.completed;
        merged.failed += shard.failed;
        merged.leftoverQueued += shard.leftoverQueued;
        merged.deadlineMisses += shard.deadlineMisses;
        merged.faults.enabled =
            merged.faults.enabled || shard.faults.enabled;
        merged.faults.crashes += shard.faults.crashes;
        merged.faults.recoveries += shard.faults.recoveries;
        merged.faults.stragglerWindows += shard.faults.stragglerWindows;
        merged.faults.inflightFailed += shard.faults.inflightFailed;
        merged.faults.failedBatches += shard.faults.failedBatches;
        merged.faults.failovers += shard.faults.failovers;
        merged.faults.retryAttempts += shard.faults.retryAttempts;
        merged.faults.retryShed += shard.faults.retryShed;
        merged.faults.retryExhausted += shard.faults.retryExhausted;
        merged.faults.retryTimeouts += shard.faults.retryTimeouts;
        merged.faults.retryBackoffNsTotal +=
            shard.faults.retryBackoffNsTotal;
        merged.faults.hedges += shard.faults.hedges;
        merged.faults.hedgesWon += shard.faults.hedgesWon;
        merged.faults.hedgesLost += shard.faults.hedgesLost;
        merged.latencyCycles.merge(shard.latencyCycles);
        merged.queueWaitCycles.merge(shard.queueWaitCycles);
        merged.batchSize.merge(shard.batchSize);
        merged.mapCache.hits += shard.mapCache.hits;
        merged.mapCache.misses += shard.mapCache.misses;
        merged.mapCache.insertions += shard.mapCache.insertions;
        merged.mapCache.evictions += shard.mapCache.evictions;
        merged.mapCache.bytesSaved += shard.mapCache.bytesSaved;
        merged.mapCache.cyclesSaved += shard.mapCache.cyclesSaved;
        // Each shard's completion stream is non-decreasing; a sorted
        // merge keeps the fleet-level stream non-decreasing too (the
        // invariant the property suite checks on every report).
        std::vector<std::uint64_t> completions;
        completions.reserve(merged.completionCycles.size() +
                            shard.completionCycles.size());
        std::merge(merged.completionCycles.begin(),
                   merged.completionCycles.end(),
                   shard.completionCycles.begin(),
                   shard.completionCycles.end(),
                   std::back_inserter(completions));
        merged.completionCycles = std::move(completions);
        merged.accelerators.insert(merged.accelerators.end(),
                                   shard.accelerators.begin(),
                                   shard.accelerators.end());
    }
    return merged;
}

std::string
servingSummaryText(const ServingReport &report)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(3);
    os << report.completed << " completed / " << report.generated
       << " offered (" << report.dropped << " dropped, ";
    if (report.faults.enabled)
        os << report.failed << " failed, ";
    os << report.deadlineMisses << " deadline misses), "
       << std::setprecision(1) << report.throughputRps() << " req/s, "
       << std::setprecision(3) << "latency p50 " << report.p50Ms()
       << " / p95 " << report.p95Ms() << " / p99 " << report.p99Ms()
       << " ms";
    if (report.mapCache.hits + report.mapCache.misses > 0) {
        os << ", map cache " << std::setprecision(0)
           << 100.0 * report.mapCache.hitRate() << "% hits ("
           << report.mapCache.evictions << " evictions)"
           << std::setprecision(3);
    }
    if (report.autoscaler.enabled) {
        os << ", autoscaler " << report.autoscaler.scaleUps << " up / "
           << report.autoscaler.scaleDowns << " down (peak "
           << report.autoscaler.peakProvisioned << ", final "
           << report.autoscaler.finalProvisioned << ")";
    }
    if (report.faults.enabled) {
        os << ", faults " << report.faults.crashes << " crashes / "
           << report.faults.recoveries << " recoveries ("
           << report.faults.retryAttempts << " retries, "
           << report.faults.failovers << " failovers)";
    }
    if (!report.accelerators.empty()) {
        os << ", util";
        for (const auto &acc : report.accelerators) {
            os << ' ' << acc.name << ' ' << std::setprecision(2)
               << acc.utilization(report.horizonCycles);
        }
    }
    return os.str();
}

void
writeServingJson(std::ostream &os, const ServingReport &report)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("freq_ghz", report.freqGHz);
    // The event axis is wall time: horizon_ns is the honest name,
    // horizon_cycles the legacy alias (equal ticks; cycles only at
    // 1 GHz). Both are kept so archived BENCH_*.json diffs cleanly.
    w.field("horizon_cycles", report.horizonCycles);
    w.field("horizon_ns", report.horizonCycles);
    w.field("occupancy",
            report.occupancy.empty() ? "monolithic" : report.occupancy);
    w.field("batch_holds", report.batchHolds);
    w.field("generated", report.generated);
    w.field("admitted", report.admitted);
    w.field("dropped", report.dropped);
    w.field("completed", report.completed);
    w.field("failed", report.failed);
    w.field("leftover_queued", report.leftoverQueued);
    w.field("deadline_misses", report.deadlineMisses);
    w.field("throughput_rps", report.throughputRps());
    w.field("goodput_rps", report.goodputRps());
    w.field("drop_rate", report.dropRate());
    w.field("latency_ms_mean", report.meanMs());
    w.field("latency_ms_p50", report.p50Ms());
    w.field("latency_ms_p95", report.p95Ms());
    w.field("latency_ms_p99", report.p99Ms());
    w.field("latency_ns_p50", report.latencyCycles.percentile(0.50));
    w.field("latency_ns_p95", report.latencyCycles.percentile(0.95));
    w.field("latency_ns_p99", report.latencyCycles.percentile(0.99));
    w.field("queue_wait_cycles_mean", report.queueWaitCycles.mean());
    w.field("queue_wait_ns_mean", report.queueWaitCycles.mean());
    w.field("batch_size_mean", report.batchSize.mean());
    w.field("map_cache_hits", report.mapCache.hits);
    w.field("map_cache_misses", report.mapCache.misses);
    w.field("map_cache_insertions", report.mapCache.insertions);
    w.field("map_cache_evictions", report.mapCache.evictions);
    w.field("map_cache_bytes_saved", report.mapCache.bytesSaved);
    w.field("map_cache_cycles_saved", report.mapCache.cyclesSaved);
    w.field("map_cache_hit_rate", report.mapCache.hitRate());
    // Conditional blocks: a run without a traffic program, an
    // autoscaler, a deepened run-ahead buffer or cost-aware dispatch
    // emits none of them, keeping stationary fixed-fleet output
    // byte-identical to earlier builds (golden + differential fuzz
    // both pin that).
    if (report.runAheadDepth != 1) {
        w.field("run_ahead_depth", report.runAheadDepth);
        w.field("run_ahead_staged", report.runAheadStaged);
        w.field("run_ahead_peak_staged", report.runAheadPeakStaged);
    }
    if (report.costAware) {
        w.field("cost_aware_holds", report.costHolds);
        w.field("cost_aware_dispatches", report.costDispatches);
    }
    if (report.traffic.present) {
        w.field("traffic_program", report.traffic.program);
        w.field("traffic_segments", report.traffic.segments);
        w.field("traffic_base_per_mcycle", report.traffic.basePerMCycle);
        w.field("traffic_peak_per_mcycle", report.traffic.peakPerMCycle);
        w.field("traffic_churn_interval_cycles",
                report.traffic.churnIntervalCycles);
        w.field("traffic_churn_events", report.traffic.churnEvents);
    }
    if (report.autoscaler.enabled) {
        const AutoscalerStats &as = report.autoscaler;
        w.field("autoscaler_min_instances", as.minInstances);
        w.field("autoscaler_max_instances", as.maxInstances);
        w.field("autoscaler_evals", as.evals);
        w.field("autoscaler_scale_ups", as.scaleUps);
        w.field("autoscaler_scale_downs", as.scaleDowns);
        w.field("autoscaler_instance_cycles", as.instanceCycles);
        w.field("autoscaler_peak_provisioned", as.peakProvisioned);
        w.field("autoscaler_final_provisioned", as.finalProvisioned);
        w.field("autoscaler_drained_batches", as.drainedBatches);
        w.field("autoscaler_timeline_bucket_cycles",
                as.timeline.bucketCycles);
        w.key("autoscaler_timeline").beginArray();
        for (const auto &s : as.timeline.samples) {
            w.beginObject();
            w.field("cycle", s.cycle);
            w.field("queue_depth", s.queueDepth);
            w.field("window_p99_cycles", s.windowP99Cycles);
            w.field("provisioned", s.provisioned);
            w.field("action", s.action);
            w.endObject();
        }
        w.endArray();
    }
    if (report.faults.enabled) {
        const FaultStats &f = report.faults;
        w.field("fault_crashes", f.crashes);
        w.field("fault_recoveries", f.recoveries);
        w.field("fault_straggler_windows", f.stragglerWindows);
        w.field("fault_inflight_failed", f.inflightFailed);
        w.field("fault_failed_batches", f.failedBatches);
        w.field("fault_failovers", f.failovers);
        w.field("retry_attempts", f.retryAttempts);
        w.field("retry_shed", f.retryShed);
        w.field("retry_exhausted", f.retryExhausted);
        w.field("retry_timeouts", f.retryTimeouts);
        w.field("retry_backoff_ns_total", f.retryBackoffNsTotal);
        w.field("retry_hedges", f.hedges);
        w.field("retry_hedges_won", f.hedgesWon);
        w.field("retry_hedges_lost", f.hedgesLost);
    }
    w.key("accelerators").beginArray();
    for (const auto &acc : report.accelerators) {
        w.beginObject();
        w.field("name", acc.name);
        w.field("freq_ghz", acc.freqGHz);
        w.field("busy_cycles", acc.busyCycles);
        w.field("busy_ns", acc.busyCycles);
        w.field("map_busy_cycles", acc.mapBusyCycles);
        w.field("map_busy_ns", acc.mapBusyCycles);
        w.field("backend_busy_cycles", acc.backendBusyCycles);
        w.field("backend_busy_ns", acc.backendBusyCycles);
        w.field("batches", acc.batches);
        w.field("requests", acc.requests);
        w.field("utilization", acc.utilization(report.horizonCycles));
        w.field("map_utilization",
                acc.mapUtilization(report.horizonCycles));
        w.field("backend_utilization",
                acc.backendUtilization(report.horizonCycles));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace pointacc
