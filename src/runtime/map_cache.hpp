/**
 * @file
 * Content-addressed kernel-map cache shared across serving requests.
 *
 * PointAcc's Mapping Unit exists because kernel-map construction
 * (neighbor search, sorting, kernel mapping) dominates point cloud
 * inference — yet in a serving setting, repeated frames of one LiDAR
 * stream recompute identical maps on every request. Kernel maps are a
 * pure function of (cloud geometry, network layer configuration), so
 * the runtime can content-address them: a cache hit lets the two-stage
 * scheduler collapse the whole Mapping Unit front-end phase of a
 * dispatch into a (modelled) cache-read cost, and the back-end starts
 * as soon as that read completes. This is the serving-level analogue
 * of Mesorasi's delayed aggregation (decouple neighbor-map work from
 * MAC work so it can be hidden or skipped).
 *
 * Contract and invariants (fuzzed by test_runtime_properties):
 *  - keys are value-identities: equal MapCacheKey => identical kernel
 *    maps; the cache never compares geometry itself;
 *  - a hit is never slower than a miss: the scheduler clamps the
 *    modelled read cost into the full map phase (see
 *    FleetScheduler::run), so enabling the cache can only shorten a
 *    dispatch, never lengthen it;
 *  - capacity is enforced on every insert: size() <= capacityEntries
 *    always, with deterministic LRU/LFU victim selection (ties broken
 *    by insertion order) so equal seeds give byte-identical stats;
 *  - counters are conserved: every lookup the scheduler prices is
 *    counted exactly once as a hit or a miss, and every eviction is
 *    counted exactly once.
 */

#ifndef POINTACC_RUNTIME_MAP_CACHE_HPP
#define POINTACC_RUNTIME_MAP_CACHE_HPP

#include <cstdint>
#include <map>
#include <string>
#include <tuple>

namespace pointacc {

/**
 * Content address of one request's kernel maps: the cloud identity
 * (equal cloudId => identical geometry, e.g. a repeated frame of one
 * stream), the network, and a hash of the network's layer
 * configuration (two networks sharing an id across catalogs — or one
 * network whose layer stack changed — must not share map entries).
 * cloudId 0 is the "no content identity" default of hand-built
 * Requests: the scheduler counts such requests as misses but never
 * publishes their maps, so distinct geometries cannot alias one entry.
 */
struct MapCacheKey
{
    std::uint64_t cloudId = 0;
    std::uint32_t networkId = 0;
    std::uint64_t layerHash = 0;

    bool
    operator<(const MapCacheKey &o) const
    {
        return std::tie(cloudId, networkId, layerHash) <
               std::tie(o.cloudId, o.networkId, o.layerHash);
    }

    bool
    operator==(const MapCacheKey &o) const
    {
        return cloudId == o.cloudId && networkId == o.networkId &&
               layerHash == o.layerHash;
    }
};

/** Victim-selection policies. */
enum class MapCacheEviction
{
    Lru, ///< evict the least recently used entry
    Lfu, ///< evict the least frequently used entry (ties: LRU)
};

std::string toString(MapCacheEviction policy);

/** Cache knobs (SchedulerConfig::mapCache). */
struct MapCacheConfig
{
    bool enabled = false;
    /** Maximum resident entries (one entry = one (cloud, network)
     *  kernel-map set); inserts beyond it evict. */
    std::size_t capacityEntries = 4096;
    MapCacheEviction eviction = MapCacheEviction::Lru;
    /** Modelled front-end cost of reading one request's cached maps
     *  back from the map store (per batch member). The scheduler
     *  clamps this into the full map phase, so a hit can never cost
     *  more than the mapping it replaces. */
    std::uint64_t hitReadCycles = 0;
};

/** What one cached kernel-map set is worth. */
struct MapCacheEntry
{
    /** Mapping-phase event-axis ns the inserting miss paid for these
     *  maps (informational; a hit's actual saving is priced against
     *  the instance it dispatches to — see recordHit). */
    std::uint64_t mapCycles = 0;
    /** Modelled size of the stored maps in bytes. */
    std::uint64_t mapBytes = 0;
};

/** Operator-facing counters, surfaced in ServingReport / JSON. */
struct MapCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    /** Kernel-map bytes whose recomputation a hit avoided. */
    std::uint64_t bytesSaved = 0;
    /** Mapping-phase event-axis ns hits actually removed from the
     *  schedule: the scheduler credits, once per hit batch, exactly
     *  the batch-level mapping it skipped net of the clamped read
     *  cost (see creditSavedCycles) — so this counter matches the
     *  simulated schedule, not a per-request approximation. */
    std::uint64_t cyclesSaved = 0;

    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0
                   ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/**
 * Bounded content-addressed store of kernel-map entries.
 *
 * Pure bookkeeping: the cache stores *costs*, not the maps themselves
 * (the serving simulator prices work, it does not execute it). The
 * scheduler drives it with the lookup/insert protocol:
 *   contains() -> price the dispatch -> recordHit()/recordMiss() ->
 *   insert() when the miss's mapping phase completes.
 * contains() is a pure query (no recency/counter mutation) so batch
 * formation may classify freely without skewing LRU order.
 */
class MapCache
{
  public:
    explicit MapCache(MapCacheConfig config);

    const MapCacheConfig &config() const { return cfg; }
    bool enabled() const { return cfg.enabled; }
    std::size_t size() const { return entries.size(); }
    const MapCacheStats &stats() const { return counters; }

    /** Pure lookup: does the key currently reside in the cache? */
    bool contains(const MapCacheKey &key) const;

    /**
     * Count a priced hit on `key` (which must be resident): bumps
     * recency/frequency and the hits / bytesSaved counters. Cycle
     * savings are *not* booked here — hits batch together, and the
     * schedule skips mapping at batch granularity, so the scheduler
     * credits the batch-level saving once via creditSavedCycles.
     */
    void recordHit(const MapCacheKey &key);

    /**
     * Credit `saved` event-axis ns to cyclesSaved: the batch-level
     * mapping a hit dispatch skipped, net of the clamped read cost,
     * priced against the instance it dispatched to (a heterogeneous
     * fleet prices mapping differently per class, so the saving is
     * known only at dispatch time, not at insertion). Called once per
     * hit batch so the counter equals what the simulation actually
     * removed from the schedule.
     */
    void creditSavedCycles(std::uint64_t saved);

    /** Count a priced miss (no key state changes; insertion happens
     *  later, when the mapping phase actually completes). */
    void recordMiss();

    /**
     * Insert (or refresh) `key`. A new key may evict the policy's
     * victim; re-inserting a resident key only refreshes its entry
     * and recency (idempotent — concurrent in-flight misses of one
     * key must not double-count insertions).
     */
    void insert(const MapCacheKey &key, const MapCacheEntry &entry);

  private:
    struct Node
    {
        MapCacheEntry entry;
        std::uint64_t lastUse = 0;  ///< logical tick of last touch
        std::uint64_t uses = 0;     ///< touches since insertion
        std::uint64_t insertedAt = 0; ///< logical tick of insertion
    };

    void evictOne();

    MapCacheConfig cfg;
    std::map<MapCacheKey, Node> entries;
    MapCacheStats counters;
    /** Logical use clock: advanced per touch/insert; deterministic. */
    std::uint64_t tick = 0;
};

} // namespace pointacc

#endif // POINTACC_RUNTIME_MAP_CACHE_HPP
