/**
 * @file
 * Reference (seed-semantics) serving engine, kept for differential
 * testing and baseline measurement.
 *
 * The production discrete-event core (runtime/scheduler + runtime/queue)
 * was rebuilt around O(log n) data structures with a hard
 * behavioral-equivalence requirement: every report it produces must be
 * byte-identical to the original linear-scan implementation. This file
 * preserves that original implementation verbatim in behavior:
 *
 *  - LinearRequestQueue: the seed AdmissionQueue — a flat vector with a
 *    full O(depth) ranking scan per peek/pop and erase-in-the-middle
 *    batch formation;
 *  - runServingReference: the seed FleetScheduler::run — a main loop
 *    that rescans every accelerator and the pending timer to find the
 *    next event time, O(fleet) per event.
 *
 * Two consumers:
 *
 *  - tests/test_runtime_properties.cpp runs the production engine and
 *    this one over the same fuzzed scenarios and asserts the serving
 *    JSON matches byte for byte (a far stronger equivalence check than
 *    the golden files alone);
 *  - bench/bench_simperf.cpp measures both engines' wall-clock
 *    simulated-requests-per-second on identical rows, so the reported
 *    speedup of the O(log n) core is a live measurement, not a stored
 *    claim.
 *
 * This code is intentionally frozen: do not "improve" it. Its value is
 * that it stays the seed loop. It assumes a fleet that FleetScheduler's
 * constructor would accept (same clock frequency, consistent names).
 */

#ifndef POINTACC_RUNTIME_REFERENCE_HPP
#define POINTACC_RUNTIME_REFERENCE_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/queue.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/serving_stats.hpp"
#include "runtime/workload.hpp"

namespace pointacc {

/**
 * The seed admission queue: a flat vector scanned linearly per
 * selection, with mid-vector erases. Same contract as AdmissionQueue
 * (which the production queue must match pop-for-pop); exposed so the
 * equivalence tests can drive both side by side.
 */
class LinearRequestQueue
{
  public:
    explicit LinearRequestQueue(std::size_t max_depth)
        : maxDepth(max_depth)
    {
    }

    bool
    push(const Request &r)
    {
        if (items.size() >= maxDepth) {
            numDropped += 1;
            return false;
        }
        items.push_back(r);
        numAdmitted += 1;
        return true;
    }

    bool empty() const { return items.empty(); }
    std::size_t size() const { return items.size(); }

    const Request &peek(QueuePolicy policy) const;

    const Request *
    peekEligible(QueuePolicy policy,
                 const std::function<bool(const Request &)> &excluded)
        const;

    Request pop(QueuePolicy policy);

    std::vector<Request>
    popLedBy(const Request &head, QueuePolicy policy,
             const std::function<bool(const Request &, const Request &)>
                 &compatible,
             std::size_t max_count,
             const std::function<bool(const Request &)> &excluded);

    std::uint64_t admitted() const { return numAdmitted; }
    std::uint64_t dropped() const { return numDropped; }

    const std::vector<Request> &pending() const { return items; }

  private:
    std::size_t
    selectIndex(QueuePolicy policy,
                const std::function<bool(const Request &)> &excluded =
                    nullptr) const;

    std::vector<Request> items;
    std::size_t maxDepth;
    std::uint64_t numAdmitted = 0;
    std::uint64_t numDropped = 0;
};

/**
 * The seed FleetScheduler::run loop over LinearRequestQueue: per
 * iteration, a linear rescan of every instance and the timer for the
 * next event time, then the same service/dispatch/admit sequence as
 * the production engine. `arrivals` may be in any order (sorted
 * internally, like the seed).
 */
ServingReport
runServingReference(const std::vector<AcceleratorConfig> &fleet,
                    const ServiceModel &model,
                    const std::vector<double> &bucket_scales,
                    const SchedulerConfig &cfg,
                    std::vector<Request> arrivals);

} // namespace pointacc

#endif // POINTACC_RUNTIME_REFERENCE_HPP
