#include "runtime/faults.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/rng.hpp"
#include "runtime/workload.hpp"

namespace pointacc {

namespace {

[[noreturn]] void
reject(const std::string &what)
{
    throw std::invalid_argument("FaultProgram: " + what);
}

[[noreturn]] void
rejectRetry(const std::string &what)
{
    throw std::invalid_argument("RetryPolicy: " + what);
}

} // namespace

void
validateFaultProgram(const FaultProgram &program)
{
    if (!program.enabled)
        return;
    if (program.mtbfNs > 0 && program.mttrNs == 0)
        reject("stochastic faults need a positive mean time to "
               "recover (mttrNs) alongside mtbfNs");
    if (program.mtbfNs == 0 && program.mttrNs > 0)
        reject("mttrNs without mtbfNs names no stochastic process; "
               "set both or neither");
    if (program.mtbfNs > 0 && program.horizonNs == 0)
        reject("stochastic faults need a positive horizonNs to "
               "generate into");
    for (const CrashWindow &c : program.crashes) {
        if (program.horizonNs > 0 && c.atNs > program.horizonNs)
            reject("crash scheduled at " + std::to_string(c.atNs) +
                   " ns, beyond the " +
                   std::to_string(program.horizonNs) + " ns horizon");
    }
    // Straggler windows: each must be a real slowdown over a real
    // window, and two windows on one instance must not overlap (the
    // per-instance factor would be ambiguous at the overlap).
    std::map<std::uint32_t, std::vector<std::pair<std::uint64_t,
                                                  std::uint64_t>>>
        perInstance;
    for (const StragglerWindow &s : program.stragglers) {
        if (!(std::isfinite(s.slowdown)) || s.slowdown <= 1.0)
            reject("straggler slowdown must be a finite factor > 1");
        if (s.durationNs == 0)
            reject("straggler windows need a positive duration");
        if (program.horizonNs > 0 && s.atNs > program.horizonNs)
            reject("straggler scheduled at " + std::to_string(s.atNs) +
                   " ns, beyond the " +
                   std::to_string(program.horizonNs) + " ns horizon");
        perInstance[s.instance].emplace_back(s.atNs,
                                             s.atNs + s.durationNs);
    }
    for (auto &entry : perInstance) {
        auto &windows = entry.second;
        std::sort(windows.begin(), windows.end());
        for (std::size_t i = 1; i < windows.size(); ++i)
            if (windows[i].first < windows[i - 1].second)
                reject("straggler windows overlap on instance " +
                       std::to_string(entry.first));
    }
}

void
validateRetryPolicy(const RetryPolicy &policy)
{
    if (!policy.enabled)
        return;
    if (policy.backoffBaseNs < 1)
        rejectRetry("backoff base must be >= 1 ns");
    if (!(std::isfinite(policy.backoffMult)) || policy.backoffMult < 1.0)
        rejectRetry("backoff multiplier must be finite and >= 1");
    if (policy.maxBackoffNs > 0 &&
        policy.maxBackoffNs < policy.backoffBaseNs)
        rejectRetry("backoff cap below the backoff base");
}

std::uint64_t
retryBackoffNs(const RetryPolicy &policy, std::uint32_t attempt)
{
    const double cap =
        policy.maxBackoffNs > 0
            ? static_cast<double>(policy.maxBackoffNs)
            : static_cast<double>(std::numeric_limits<std::int64_t>::max());
    double wait = static_cast<double>(policy.backoffBaseNs);
    for (std::uint32_t k = 0; k < attempt && wait < cap; ++k)
        wait *= policy.backoffMult;
    wait = std::min(wait, cap);
    return static_cast<std::uint64_t>(std::llround(wait));
}

std::vector<FaultEvent>
materializeFaultEvents(const FaultProgram &program, std::size_t fleet_size)
{
    std::vector<FaultEvent> events;
    if (!program.enabled)
        return events;
    validateFaultProgram(program);

    for (const CrashWindow &c : program.crashes) {
        if (c.instance >= fleet_size)
            continue;
        events.push_back(
            FaultEvent{c.atNs, FaultEventKind::Crash, c.instance, 1.0});
        if (c.downForNs > 0)
            events.push_back(FaultEvent{c.atNs + c.downForNs,
                                        FaultEventKind::Recover,
                                        c.instance, 1.0});
    }
    for (const StragglerWindow &s : program.stragglers) {
        if (s.instance >= fleet_size)
            continue;
        events.push_back(FaultEvent{s.atNs,
                                    FaultEventKind::StragglerStart,
                                    s.instance, s.slowdown});
        events.push_back(FaultEvent{s.atNs + s.durationNs,
                                    FaultEventKind::StragglerEnd,
                                    s.instance, 1.0});
    }

    if (program.mtbfNs > 0) {
        // One independent crash/recover sequence per instance, each
        // from its own seed-derived stream, so the trace for instance
        // i is stable however many instances the fleet fields (the
        // capacity planner probes one program at many fleet sizes).
        for (std::size_t i = 0; i < fleet_size; ++i) {
            Rng rng(program.seed + 0x9e3779b97f4a7c15ULL *
                                       (static_cast<std::uint64_t>(i) + 1));
            double t = detail::exponentialDraw(
                rng, static_cast<double>(program.mtbfNs));
            while (t < static_cast<double>(program.horizonNs)) {
                const std::uint64_t at =
                    static_cast<std::uint64_t>(std::llround(t));
                const double down = std::max(
                    1.0, detail::exponentialDraw(
                             rng, static_cast<double>(program.mttrNs)));
                events.push_back(
                    FaultEvent{at, FaultEventKind::Crash,
                               static_cast<std::uint32_t>(i), 1.0});
                events.push_back(FaultEvent{
                    at + static_cast<std::uint64_t>(std::llround(down)),
                    FaultEventKind::Recover,
                    static_cast<std::uint32_t>(i), 1.0});
                t += down + detail::exponentialDraw(
                                rng, static_cast<double>(program.mtbfNs));
            }
        }
    }

    // Ties keep expansion order (scheduled before stochastic, windows
    // in program order), so the list is a pure function of the
    // (program, fleet_size) pair — the determinism every byte-identity
    // gate downstream leans on.
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.atNs < b.atNs;
                     });
    return events;
}

} // namespace pointacc
