/**
 * @file
 * Reactive fleet autoscaler for the serving runtime.
 *
 * The capacity planner (runtime/planner) answers the static question:
 * how many instances does this SLO need at peak? The autoscaler
 * answers the dynamic one: what does it cost to *not* pre-provision
 * that peak — to start from a floor and chase the load reactively?
 * The serving event loop grows one new event kind (ScaleEval): every
 * evalIntervalCycles the policy looks at two windowed signals — the
 * admission-queue depth right now and the p99 latency of completions
 * since the last evaluation — and votes to add an instance, retire
 * one, or hold:
 *
 *  - scale UP when the queue depth reaches queueHighDepth, or the
 *    window p99 exceeds p99HighCycles (if set). A new instance is not
 *    instantly useful: it spends spinUpCycles powering on (model
 *    load, memory init) before accepting work — the gap between
 *    "decided" and "helping" is exactly what makes flash crowds hurt
 *    reactive fleets and is the headroom static planning buys.
 *  - scale DOWN when the queue has drained to queueLowDepth and the
 *    p99 signal is quiet. Retirement is *graceful*: the instance
 *    stops accepting new batches but finishes everything in flight
 *    (its MapDone/RunDone events stay valid), then powers off. A
 *    drain can be cancelled — a scale-up resurrects the draining
 *    instance instantly, no spin-up, because nothing was torn down.
 *  - cooldownCycles after any decision the policy holds, so one
 *    burst cannot trigger an up/down/up oscillation.
 *
 * Accounting: instanceCycles integrates (powered instances) x cycles
 * — spin-up and drain both count (they burn power) — so
 * fleetSize x horizon minus instanceCycles is the exact instance-cycle
 * saving vs static provisioning, the number the traffic gate reports.
 * Every evaluation appends a ScalingSample to the ScalingTimeline
 * (cycle, observed signals, provisioned count, action), serialized as
 * autoscaler_timeline in the serving JSON — the plottable trace of
 * the closed loop.
 *
 * Determinism: decisions depend only on simulated state, never on
 * host time or iteration order, so an autoscaled run is byte-identical
 * across repeats (pinned by test_runtime_properties). With
 * enabled=false nothing changes at all: no events are scheduled and
 * the scheduler's output stays byte-identical to the frozen reference
 * engine.
 */

#ifndef POINTACC_RUNTIME_AUTOSCALER_HPP
#define POINTACC_RUNTIME_AUTOSCALER_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pointacc {

/** Policy knobs for the reactive autoscaler. Default-constructed =
 *  disabled: the scheduler behaves exactly as before (byte-identical
 *  output, no scaling events). */
struct AutoscalerConfig
{
    bool enabled = false;
    /** Floor: never fewer powered instances than this (>= 1). */
    std::uint32_t minInstances = 1;
    /** Ceiling: never more than this; 0 = the whole configured fleet. */
    std::uint32_t maxInstances = 0;
    /** Instances powered at cycle 0; 0 = start at the floor. */
    std::uint32_t initialInstances = 0;
    /** Cycles between policy evaluations (> 0). */
    std::uint64_t evalIntervalCycles = 1'000'000;
    /** Scale up when the admission queue reaches this depth. */
    std::uint64_t queueHighDepth = 64;
    /** Scale down when the queue is at or below this depth (must be
     *  < queueHighDepth). */
    std::uint64_t queueLowDepth = 4;
    /** Scale up when the window p99 latency exceeds this; 0 = queue
     *  depth only. */
    std::uint64_t p99HighCycles = 0;
    /** Cycles a newly powered instance takes before accepting work
     *  (model load, memory init); 0 = instantly useful. */
    std::uint64_t spinUpCycles = 0;
    /** Cycles after any scale decision during which the policy holds
     *  (oscillation damper); 0 = decide every evaluation. */
    std::uint64_t cooldownCycles = 0;
};

/**
 * Validate `cfg` against a concrete fleet size and return the resolved
 * copy (maxInstances/initialInstances defaults filled in). Throws
 * std::invalid_argument on: minInstances == 0, maxInstances larger
 * than the fleet, max < min, initialInstances outside [min, max], a
 * zero evalIntervalCycles, or queueLowDepth >= queueHighDepth.
 */
AutoscalerConfig resolveAutoscalerConfig(const AutoscalerConfig &cfg,
                                         std::size_t fleet_size);

/**
 * The decision function, pulled out of the scheduler so it is testable
 * in isolation: +1 (scale up), -1 (scale down) or 0 (hold) from the
 * windowed signals. Pure state machine over simulated time — the only
 * state is the last decision cycle (cooldown).
 */
class AutoscalerPolicy
{
  public:
    /** `cfg` must already be resolved (see resolveAutoscalerConfig). */
    explicit AutoscalerPolicy(const AutoscalerConfig &cfg) : asCfg(cfg) {}

    /** Evaluate at `now`: queue_depth is the instantaneous admission
     *  queue depth, window_p99 the p99 latency (cycles) of completions
     *  since the previous evaluation (0 when none completed),
     *  provisioned the count of instances currently powered and not
     *  draining. Returns the clamped decision. */
    int decide(std::uint64_t now, std::uint64_t queue_depth,
               std::uint64_t window_p99, std::uint32_t provisioned);

    const AutoscalerConfig &config() const { return asCfg; }

  private:
    AutoscalerConfig asCfg;
    std::uint64_t lastActionAt = 0;
    bool everActed = false;
};

/** One policy evaluation as recorded in the timeline. */
struct ScalingSample
{
    std::uint64_t cycle = 0;
    std::uint64_t queueDepth = 0;
    std::uint64_t windowP99Cycles = 0;
    /** Powered, non-draining instances *after* this decision. */
    std::uint32_t provisioned = 0;
    /** +1 scale-up, -1 scale-down, 0 hold. */
    std::int64_t action = 0;
};

/** Time-bucketed trace of the closed loop: one sample per policy
 *  evaluation (bucketCycles = evalIntervalCycles). */
struct ScalingTimeline
{
    std::uint64_t bucketCycles = 0;
    std::vector<ScalingSample> samples;
};

/** Autoscaler outcome, carried on ServingReport and serialized as the
 *  autoscaler_* JSON block (emitted only when enabled, so unscaled
 *  reports stay byte-identical to pre-autoscaler output). */
struct AutoscalerStats
{
    bool enabled = false;
    std::uint32_t minInstances = 0;
    std::uint32_t maxInstances = 0;
    std::uint64_t evals = 0;
    std::uint64_t scaleUps = 0;
    std::uint64_t scaleDowns = 0;
    /** Integral of powered instances over the run: the energy/cost
     *  proxy the traffic gate compares against static provisioning. */
    std::uint64_t instanceCycles = 0;
    std::uint32_t peakProvisioned = 0;
    std::uint32_t finalProvisioned = 0;
    /** Batches completed by instances that were draining — the
     *  graceful-drain guarantee made countable. */
    std::uint64_t drainedBatches = 0;
    ScalingTimeline timeline;
};

} // namespace pointacc

#endif // POINTACC_RUNTIME_AUTOSCALER_HPP
