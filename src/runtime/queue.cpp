#include "runtime/queue.hpp"

#include "core/logging.hpp"

namespace pointacc {

std::string
toString(QueuePolicy policy)
{
    switch (policy) {
      case QueuePolicy::Fifo: return "fifo";
      case QueuePolicy::Sjf: return "sjf";
      case QueuePolicy::Edf: return "edf";
    }
    return "?";
}

bool
AdmissionQueue::ranksBefore(QueuePolicy policy, const Request &a,
                            const Request &b)
{
    switch (policy) {
      case QueuePolicy::Fifo:
        break; // arrival order == id order (ids are assigned in order)
      case QueuePolicy::Sjf:
        if (a.estimatedCycles != b.estimatedCycles)
            return a.estimatedCycles < b.estimatedCycles;
        break;
      case QueuePolicy::Edf: {
        // 0 means best-effort: rank behind every deadlined request.
        const std::uint64_t da = a.deadlineCycle == 0 ? ~0ULL : a.deadlineCycle;
        const std::uint64_t db = b.deadlineCycle == 0 ? ~0ULL : b.deadlineCycle;
        if (da != db)
            return da < db;
        break;
      }
    }
    // All policies tie-break on arrival, then id, so ordering is total
    // and deterministic.
    if (a.arrivalCycle != b.arrivalCycle)
        return a.arrivalCycle < b.arrivalCycle;
    return a.id < b.id;
}

std::size_t
AdmissionQueue::selectIndex(
    QueuePolicy policy,
    const std::function<bool(const Request &)> &excluded) const
{
    std::size_t best = items.size();
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (excluded && excluded(items[i]))
            continue;
        if (best == items.size() ||
            ranksBefore(policy, items[i], items[best]))
            best = i;
    }
    return best;
}

const Request &
AdmissionQueue::peek(QueuePolicy policy) const
{
    const std::size_t idx = selectIndex(policy);
    simAssert(idx < items.size(), "peek on empty queue");
    return items[idx];
}

const Request *
AdmissionQueue::peekEligible(
    QueuePolicy policy,
    const std::function<bool(const Request &)> &excluded) const
{
    const std::size_t idx = selectIndex(policy, excluded);
    return idx < items.size() ? &items[idx] : nullptr;
}

Request
AdmissionQueue::pop(QueuePolicy policy)
{
    const std::size_t idx = selectIndex(policy);
    simAssert(idx < items.size(), "pop on empty queue");
    Request r = items[idx];
    items.erase(items.begin() + static_cast<std::ptrdiff_t>(idx));
    return r;
}

std::vector<Request>
AdmissionQueue::popCompatible(
    QueuePolicy policy,
    const std::function<bool(const Request &, const Request &)> &compatible,
    std::size_t max_count)
{
    simAssert(!items.empty(), "popCompatible on empty queue");
    return popLedBy(peek(policy), policy, compatible, max_count, nullptr);
}

std::vector<Request>
AdmissionQueue::popLedBy(
    const Request &head, QueuePolicy policy,
    const std::function<bool(const Request &, const Request &)> &compatible,
    std::size_t max_count,
    const std::function<bool(const Request &)> &excluded)
{
    simAssert(max_count >= 1, "popLedBy needs max_count >= 1");
    const Request lead = head; // copy: `head` may point into items
    std::vector<Request> out;
    // Mark selections and compact once at the end: erasing inside the
    // selection loop made batch formation quadratic in queue depth
    // (each erase shifts the vector tail).
    std::vector<char> taken(items.size(), 0);
    std::size_t headIdx = items.size();
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (items[i].id == lead.id) {
            headIdx = i;
            break;
        }
    }
    simAssert(headIdx < items.size(), "popLedBy head is not queued");
    taken[headIdx] = 1;
    out.push_back(items[headIdx]);
    while (out.size() < max_count) {
        // Scan for the best-ranked compatible, non-excluded follower.
        std::size_t best = items.size();
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (taken[i])
                continue;
            if (!compatible(lead, items[i]))
                continue;
            if (excluded && excluded(items[i]))
                continue;
            if (best == items.size() ||
                ranksBefore(policy, items[i], items[best]))
                best = i;
        }
        if (best == items.size())
            break;
        taken[best] = 1;
        out.push_back(items[best]);
    }
    std::size_t w = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (!taken[i]) {
            if (w != i)
                items[w] = std::move(items[i]);
            ++w;
        }
    }
    items.resize(w);
    return out;
}

} // namespace pointacc
