#include "runtime/queue.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "core/logging.hpp"

namespace pointacc {

std::string
toString(QueuePolicy policy)
{
    switch (policy) {
      case QueuePolicy::Fifo: return "fifo";
      case QueuePolicy::Sjf: return "sjf";
      case QueuePolicy::Edf: return "edf";
    }
    return "?";
}

namespace {

/** Primary ranking key per policy; ties always break on (arrival, id),
 *  exactly the seed's ranksBefore order. */
std::uint64_t
policyKey(QueuePolicy policy, const Request &r)
{
    switch (policy) {
      case QueuePolicy::Fifo:
        return 0; // arrival order == (arrival, id) order
      case QueuePolicy::Sjf:
        return r.estimatedCycles;
      case QueuePolicy::Edf:
        // 0 means best-effort: rank behind every deadlined request.
        return r.deadlineCycle == 0 ? ~0ULL : r.deadlineCycle;
    }
    return 0;
}

/** One index entry. `seq` is the push sequence number: an entry is
 *  stale (lazily deleted) when the id is gone from the live table or
 *  was re-enqueued with a newer sequence number. */
struct Entry
{
    std::uint64_t key = 0;
    std::uint64_t arrival = 0;
    std::uint64_t id = 0;
    std::uint64_t seq = 0;

    std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>
    rank() const
    {
        return {key, arrival, id};
    }
};

struct RankLess
{
    bool
    operator()(const Entry &a, const Entry &b) const
    {
        return a.rank() < b.rank();
    }
};

/**
 * Policy-ranked index over queued entries, in one of two shapes:
 *
 *  - ring (FIFO): a rank-sorted deque with lazy tombstones. On the
 *    scheduler's path pushes arrive in nondecreasing (arrival, id)
 *    order, so insertion is an O(1) append and the head is the front;
 *    mid-queue removals (batch followers) just die in the live table
 *    and are skipped — and periodically compacted away — when the
 *    front reaches them. Out-of-order pushes (unit tests) fall back to
 *    a sorted insert.
 *  - tree (SJF/EDF): an ordered set keyed (policy key, arrival, id)
 *    with O(log depth) insert/erase and eager deletion (no
 *    tombstones). Chosen over a d-ary heap because batch formation
 *    and eligibility must traverse entries *in rank order under
 *    per-item predicates* — a heap only exposes its top.
 */
struct OrderIndex
{
    bool treeMode = false;
    std::deque<Entry> ring;
    std::set<Entry, RankLess> tree;
    std::size_t liveCount = 0;

    void
    reset(bool tree_mode)
    {
        treeMode = tree_mode;
        ring.clear();
        tree.clear();
        liveCount = 0;
    }
};

} // namespace

struct AdmissionQueue::Impl
{
    struct Stored
    {
        Request r;
        std::uint64_t seq = 0;
    };

    std::unordered_map<std::uint64_t, Stored> live;
    QueuePolicy indexedPolicy = QueuePolicy::Fifo;
    std::uint64_t seqCounter = 0;

    OrderIndex global;
    std::map<std::pair<std::uint32_t, std::uint32_t>, OrderIndex> classes;

    bool
    alive(const Entry &e) const
    {
        const auto it = live.find(e.id);
        return it != live.end() && it->second.seq == e.seq;
    }

    Entry
    entryOf(const Stored &s) const
    {
        return Entry{policyKey(indexedPolicy, s.r), s.r.arrivalCycle,
                     s.r.id, s.seq};
    }

    OrderIndex &
    classOf(const Request &r)
    {
        auto it = classes.find({r.networkId, r.sizeBucket});
        if (it == classes.end())
            it = classes
                     .emplace(std::make_pair(r.networkId, r.sizeBucket),
                              OrderIndex{})
                     .first;
        if (it->second.ring.empty() && it->second.tree.empty())
            it->second.treeMode = global.treeMode;
        return it->second;
    }

    void
    indexInsert(OrderIndex &ix, const Entry &e)
    {
        if (ix.treeMode) {
            ix.tree.insert(e);
        } else {
            if (ix.ring.empty() || !(e.rank() < ix.ring.back().rank())) {
                ix.ring.push_back(e);
            } else {
                // Out-of-order push (tests): sorted insert keeps the
                // ring a valid rank order at O(depth) for this push.
                const auto pos = std::lower_bound(
                    ix.ring.begin(), ix.ring.end(), e, RankLess{});
                ix.ring.insert(pos, e);
            }
        }
        ix.liveCount += 1;
        maybeCompact(ix);
    }

    /** Remove one live entry from an index. Ring mode is lazy: the
     *  entry dies in the live table and is skipped/compacted later. */
    void
    indexErase(OrderIndex &ix, const Entry &e)
    {
        if (ix.treeMode)
            ix.tree.erase(e);
        simAssert(ix.liveCount > 0, "index liveCount underflow");
        ix.liveCount -= 1;
    }

    /** Bound tombstone buildup: rebuild a ring once more than half of
     *  it is dead. Runs only from push paths, never while a traversal
     *  holds ring positions. */
    void
    maybeCompact(OrderIndex &ix)
    {
        if (ix.treeMode || ix.ring.size() < 2 * ix.liveCount + 64)
            return;
        std::deque<Entry> keep;
        for (const auto &e : ix.ring)
            if (alive(e))
                keep.push_back(e);
        ix.ring.swap(keep);
    }

    /** Drop the index keys and rebuild under a new policy. Only unit
     *  tests mix policies on one queue; the scheduler's single policy
     *  never triggers this after the first call. */
    void
    ensureIndexed(QueuePolicy policy)
    {
        if (policy == indexedPolicy && ranked)
            return;
        indexedPolicy = policy;
        ranked = true;
        const bool tree_mode = policy != QueuePolicy::Fifo;
        global.reset(tree_mode);
        classes.clear();
        std::vector<Entry> entries;
        entries.reserve(live.size());
        for (const auto &kv : live)
            entries.push_back(entryOf(kv.second));
        std::sort(entries.begin(), entries.end(), RankLess{});
        for (const Entry &e : entries) {
            indexInsert(global, e);
            indexInsert(classOf(live.at(e.id).r), e);
        }
    }

    void
    insertItem(const Request &r)
    {
        const std::uint64_t seq = ++seqCounter;
        const auto ins = live.emplace(r.id, Stored{r, seq});
        simAssert(ins.second,
                  "admission queue requires unique request ids");
        const Entry e = entryOf(ins.first->second);
        indexInsert(global, e);
        indexInsert(classOf(r), e);
    }

    /** Full removal (live table + both indexes) by id. */
    void
    removeById(std::uint64_t id)
    {
        const auto it = live.find(id);
        simAssert(it != live.end(), "removal of unqueued request");
        const Entry e = entryOf(it->second);
        indexErase(global, e);
        indexErase(classOf(it->second.r), e);
        live.erase(it);
    }

    /** Physically drop dead entries at a ring's front so the head
     *  stays an O(1) read (every FIFO pop tombstones the front; batch
     *  followers leave interior tombstones for compaction). */
    static void
    pruneFront(OrderIndex &ix, const Impl &impl)
    {
        if (ix.treeMode)
            return;
        while (!ix.ring.empty() && !impl.alive(ix.ring.front()))
            ix.ring.pop_front();
    }

    /** First live entry in global rank order passing `pass`, or
     *  nullptr. Interior ring tombstones are skipped in place. */
    const Request *
    firstEligible(const std::function<bool(const Request &)> &pass)
    {
        if (global.treeMode) {
            for (const Entry &e : global.tree) {
                const Request &r = live.at(e.id).r;
                if (!pass || pass(r))
                    return &r;
            }
            return nullptr;
        }
        pruneFront(global, *this);
        for (const Entry &e : global.ring) {
            if (!alive(e))
                continue;
            const Request &r = live.at(e.id).r;
            if (!pass || pass(r))
                return &r;
        }
        return nullptr;
    }

    bool ranked = false; ///< indexes valid for indexedPolicy
};

AdmissionQueue::AdmissionQueue(std::size_t max_depth)
    : impl(std::make_unique<Impl>()), maxDepth(max_depth)
{
}

AdmissionQueue::~AdmissionQueue() = default;
AdmissionQueue::AdmissionQueue(AdmissionQueue &&) noexcept = default;
AdmissionQueue &
AdmissionQueue::operator=(AdmissionQueue &&) noexcept = default;

std::size_t
AdmissionQueue::size() const
{
    return impl->live.size();
}

bool
AdmissionQueue::push(const Request &r)
{
    if (impl->live.size() >= maxDepth) {
        numDropped += 1;
        return false;
    }
    if (!impl->ranked)
        impl->ensureIndexed(impl->indexedPolicy);
    impl->insertItem(r);
    numAdmitted += 1;
    return true;
}

bool
AdmissionQueue::pushUncounted(const Request &r)
{
    if (impl->live.size() >= maxDepth)
        return false; // shed, but never a second `dropped`
    if (!impl->ranked)
        impl->ensureIndexed(impl->indexedPolicy);
    impl->insertItem(r);
    return true;
}

const Request &
AdmissionQueue::peek(QueuePolicy policy) const
{
    impl->ensureIndexed(policy);
    const Request *r = impl->firstEligible(nullptr);
    simAssert(r != nullptr, "peek on empty queue");
    return *r;
}

const Request *
AdmissionQueue::peekEligible(
    QueuePolicy policy,
    const std::function<bool(const Request &)> &excluded) const
{
    impl->ensureIndexed(policy);
    if (!excluded)
        return impl->firstEligible(nullptr);
    return impl->firstEligible(
        [&](const Request &r) { return !excluded(r); });
}

Request
AdmissionQueue::pop(QueuePolicy policy)
{
    impl->ensureIndexed(policy);
    const Request *r = impl->firstEligible(nullptr);
    simAssert(r != nullptr, "pop on empty queue");
    const Request out = *r;
    impl->removeById(out.id);
    return out;
}

std::vector<Request>
AdmissionQueue::popCompatible(
    QueuePolicy policy,
    const std::function<bool(const Request &, const Request &)> &compatible,
    std::size_t max_count)
{
    simAssert(!empty(), "popCompatible on empty queue");
    return popLedBy(peek(policy), policy, compatible, max_count, nullptr);
}

std::vector<Request>
AdmissionQueue::popLedBy(
    const Request &head, QueuePolicy policy,
    const std::function<bool(const Request &, const Request &)> &compatible,
    std::size_t max_count,
    const std::function<bool(const Request &)> &excluded)
{
    simAssert(max_count >= 1, "popLedBy needs max_count >= 1");
    impl->ensureIndexed(policy);
    const Request lead = head; // copy: `head` may point into the queue
    const auto stored = impl->live.find(lead.id);
    simAssert(stored != impl->live.end(), "popLedBy head is not queued");

    std::vector<Request> out;
    out.reserve(std::min<std::size_t>(max_count, impl->live.size()));
    out.push_back(stored->second.r);
    impl->removeById(lead.id);

    // Followers in global rank order. Predicates are fixed for the
    // duration of the call, so one ordered pass taking the first
    // max_count - 1 passers selects exactly what the seed's repeated
    // best-of-scan did.
    const auto wanted = [&](const Request &r) {
        return compatible(lead, r) && !(excluded && excluded(r));
    };
    if (impl->global.treeMode) {
        auto it = impl->global.tree.begin();
        while (it != impl->global.tree.end() && out.size() < max_count) {
            const Request &r = impl->live.at(it->id).r;
            if (wanted(r)) {
                const Entry e = *it;
                out.push_back(r);
                it = impl->global.tree.erase(it);
                impl->global.liveCount -= 1;
                impl->indexErase(impl->classOf(out.back()), e);
                impl->live.erase(e.id);
            } else {
                ++it;
            }
        }
    } else {
        Impl::pruneFront(impl->global, *impl);
        for (const Entry &e : impl->global.ring) {
            if (out.size() >= max_count)
                break;
            if (!impl->alive(e))
                continue;
            const Request &r = impl->live.at(e.id).r;
            if (!wanted(r))
                continue;
            out.push_back(r);
            impl->global.liveCount -= 1;
            impl->indexErase(impl->classOf(out.back()), e);
            impl->live.erase(e.id);
        }
    }
    return out;
}

std::vector<Request>
AdmissionQueue::popLedByBuckets(
    const Request &head, QueuePolicy policy,
    const std::vector<std::uint32_t> &buckets,
    const std::function<bool(const Request &, const Request &)> &extra,
    std::size_t max_count,
    const std::function<bool(const Request &)> &excluded)
{
    simAssert(max_count >= 1, "popLedByBuckets needs max_count >= 1");
    impl->ensureIndexed(policy);
    const Request lead = head;
    const auto stored = impl->live.find(lead.id);
    simAssert(stored != impl->live.end(),
              "popLedByBuckets head is not queued");

    std::vector<Request> out;
    out.reserve(max_count);
    out.push_back(stored->second.r);
    impl->removeById(lead.id);

    const auto wanted = [&](const Request &r) {
        return (!extra || extra(lead, r)) &&
               !(excluded && excluded(r));
    };

    // Candidate class sub-queues: (lead's network) x allowed buckets.
    // Deduplicated — two cursors over one sub-queue would invalidate
    // each other's iterators on erase.
    std::vector<OrderIndex *> cand;
    for (const std::uint32_t b : buckets) {
        const auto it = impl->classes.find({lead.networkId, b});
        if (it == impl->classes.end())
            continue;
        if (std::find(cand.begin(), cand.end(), &it->second) ==
            cand.end())
            cand.push_back(&it->second);
    }

    // K-way merge across the candidate classes in rank order. A
    // cursor only moves forward: entries it passes are dead, already
    // taken, or predicate-rejected — and predicates are fixed for the
    // call, so a rejected entry never becomes eligible again.
    struct Cursor
    {
        OrderIndex *ix;
        std::set<Entry, RankLess>::iterator ti;
        std::size_t ri = 0;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(cand.size());
    for (OrderIndex *ix : cand)
        cursors.push_back(Cursor{ix, ix->tree.begin(), 0});

    while (out.size() < max_count) {
        Cursor *best = nullptr;
        for (auto &c : cursors) {
            // Advance to the cursor's next live entry.
            if (c.ix->treeMode) {
                if (c.ti == c.ix->tree.end())
                    continue;
            } else {
                while (c.ri < c.ix->ring.size() &&
                       !impl->alive(c.ix->ring[c.ri]))
                    c.ri += 1;
                if (c.ri >= c.ix->ring.size())
                    continue;
            }
            const Entry &e =
                c.ix->treeMode ? *c.ti : c.ix->ring[c.ri];
            if (best == nullptr) {
                best = &c;
                continue;
            }
            const Entry &b = best->ix->treeMode
                                 ? *best->ti
                                 : best->ix->ring[best->ri];
            if (e.rank() < b.rank())
                best = &c;
        }
        if (best == nullptr)
            break;
        const Entry e =
            best->ix->treeMode ? *best->ti : best->ix->ring[best->ri];
        const Request &r = impl->live.at(e.id).r;
        if (!wanted(r)) {
            if (best->ix->treeMode)
                ++best->ti;
            else
                best->ri += 1;
            continue;
        }
        out.push_back(r);
        if (best->ix->treeMode) {
            best->ti = best->ix->tree.erase(best->ti);
            best->ix->liveCount -= 1;
        } else {
            best->ix->liveCount -= 1;
            best->ri += 1;
        }
        // Global index: eager erase in tree mode, tombstone in ring.
        if (impl->global.treeMode)
            impl->global.tree.erase(e);
        impl->global.liveCount -= 1;
        impl->live.erase(e.id);
    }
    return out;
}

void
AdmissionQueue::visitClass(
    std::uint32_t network_id, std::uint32_t bucket,
    const std::function<bool(const Request &)> &fn) const
{
    if (!impl->ranked)
        impl->ensureIndexed(impl->indexedPolicy);
    const auto it = impl->classes.find({network_id, bucket});
    if (it == impl->classes.end())
        return;
    OrderIndex &ix = it->second;
    Impl::pruneFront(ix, *impl);
    if (ix.treeMode) {
        for (const Entry &e : ix.tree)
            if (!fn(impl->live.at(e.id).r))
                return;
    } else {
        for (const Entry &e : ix.ring) {
            if (!impl->alive(e))
                continue;
            if (!fn(impl->live.at(e.id).r))
                return;
        }
    }
}

} // namespace pointacc
