/**
 * @file
 * Capacity planner: SLO-driven fleet sizing over the serving simulator.
 *
 * Every component below this layer answers a *measurement* question —
 * "what latency does THIS fleet deliver?". Operators ask the inverse,
 * *sizing* question: "what is the cheapest fleet that meets a latency
 * SLO for this workload?". The O(log n) discrete-event core makes a
 * single probe (one FleetScheduler run over the workload's trace)
 * cheap enough to search over fleet configurations instead of
 * hand-picking 1/2/4, the way PointAcc's server-class comparison
 * (Fig. 13) and Mesorasi's latency-vs-resource analysis hand-pick
 * design points.
 *
 * The search space is a numeric lattice times a small categorical
 * cross-product:
 *
 *  - the fleet lattice: either the legacy homogeneous axis (fleet
 *    size in [minFleetSize, maxFleetSize], copies of one instance
 *    config, cost == instance count) or — when PlanSearchSpace::kinds
 *    is non-empty — a composition lattice over heterogeneous instance
 *    kinds (e.g. PointAcc server + PointAcc.Edge, the paper's Table 3
 *    split): a composition is a per-kind count vector, its cost the
 *    count-weighted sum of unit costs under the configured objective
 *    (instances, nominal watts through the EnergyModel constants, or
 *    price), optionally capped by a cost budget;
 *  - admission policy (FIFO / SJF / EDF);
 *  - batcher discipline (enabled, targetK, maxWaitCycles, cost-aware);
 *  - kernel-map cache on/off;
 *  - run-ahead depth (SchedulerConfig::runAheadDepth — how far the
 *    Mapping Unit runs ahead of the back-end).
 *
 * Search strategy: the categorical axes are enumerated exhaustively
 * (they are small by construction). The lattice is decomposed into
 * axis-parallel *rays*: fix the counts of every kind but the first
 * (one ray per such tuple; the homogeneous axis is the one ray of the
 * one-kind lattice), then search the kind-0 count along each ray with
 * monotone galloping + bisection. At a fixed offered load, p99 and
 * throughput are empirically monotone in instance count — more
 * instances never hurt the tail — and cost is strictly increasing
 * along the ray, so the cheapest passing composition on a ray is the
 * smallest passing kind-0 count, bracketed in O(log axis) probes. The
 * assumption is *verified*, not trusted: after bisection lands on a
 * candidate, up to PlannerConfig::spotProbes not-yet-probed counts
 * below it are probed — and when the gallop found no passing count at
 * all, the same spot check runs over the whole ray before it is
 * declared infeasible. If any spot probe passes (non-monotone tail,
 * e.g. a bounded queue shedding the slow tail at small fleets), the
 * planner falls back to a linear scan of that ray and records the
 * violation in PlanReport::monotoneFleetAxis. Probe results are
 * memoized per (combination, composition), every probe is logged, and
 * probe order is deterministic — equal inputs give byte-identical
 * PlanReports.
 *
 * "Cheapest" means: smallest objective cost over every ray's minimum,
 * ties broken by total instance count and then enumeration order
 * (categorical combination — policies, then batcher points, then
 * cache options — then ray order). planExhaustive runs the full grid
 * with the same tie-break, so the two agree whenever the per-ray
 * monotonicity assumption holds; bench_serving's plan and hetero
 * sweeps gate on exactly that agreement plus a probe budget.
 *
 * Invariants (fuzzed by test_runtime_properties): the chosen
 * configuration meets the SLO when re-simulated; no logged probe with
 * a smaller fleet size met the SLO; writePlanJson output is
 * byte-identical across runs; probesSpent never exceeds the exhaustive
 * grid size. Each probe goes through the virtual probe() hook — the
 * exact call path plan() uses — so the differential tests can compare
 * it byte-for-byte against the preserved seed engine
 * (runtime/reference), and unit tests can inject synthetic
 * (non-monotone) probe outcomes.
 */

#ifndef POINTACC_RUNTIME_PLANNER_HPP
#define POINTACC_RUNTIME_PLANNER_HPP

#include <cstdint>
#include <ostream>
#include <vector>

#include "core/json.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/serving_stats.hpp"
#include "runtime/workload.hpp"
#include "sim/accel_config.hpp"

namespace pointacc {

/** Service-level objective a candidate fleet must meet. Constraints
 *  set to 0 are unconstrained; with no constraint at all every config
 *  passes and the planner returns the cheapest grid point. */
struct SloSpec
{
    /** p99 arrival->completion latency bound in cycles (0 = none). */
    std::uint64_t maxP99Cycles = 0;
    /** Minimum completed-requests-per-second throughput (0 = none). */
    double minThroughputRps = 0.0;
};

/** Does `report` satisfy `slo`? (The planner's pass/fail predicate;
 *  exposed so tests re-simulate the chosen config and re-judge it.) */
bool meetsSlo(const ServingReport &report, const SloSpec &slo);

/** One point on the batcher axis of the search space. */
struct BatcherAxisPoint
{
    bool enabled = false;
    std::uint32_t targetK = 1;
    std::uint64_t maxWaitCycles = 0;
    /** Priced hold-vs-dispatch instead of the blind wait timer
     *  (BatcherConfig::costAware). */
    bool costAware = false;
};

/** What the lattice search minimizes. Instances is the legacy cost
 *  (every instance counts 1); Watts and Price weight each kind by its
 *  unit cost and require a non-empty kind list. */
enum class PlanObjective
{
    Instances,
    Watts,
    Price,
};

std::string toString(PlanObjective objective);

/**
 * Nominal power draw of one instance in watts, priced through the
 * config's EnergyModel constants: static leakage plus the MAC array
 * at full issue — macPJ pJ/MAC x rows x cols MACs/cycle x freqGHz
 * cycles/ns = pJ/ns = mW, so x 1e-3 watts. The default unit cost of
 * the Watts objective (Table 3: the server-class part draws an order
 * of magnitude more than the edge part).
 */
double nominalWatts(const AcceleratorConfig &config);

/** One instance kind on the heterogeneous composition lattice. */
struct InstanceKindSpec
{
    AcceleratorConfig config;
    /** Unit cost under PlanObjective::Watts; 0 (the default) derives
     *  it from the config via nominalWatts(). */
    double watts = 0.0;
    /** Unit cost under PlanObjective::Price (any currency; must be
     *  positive when the Price objective is active). */
    double price = 1.0;
    /** Instance-count range of this kind on the lattice. */
    std::size_t minCount = 0;
    std::size_t maxCount = 4;
};

/** The planner's search space: fleet-size range x categorical axes.
 *  `base` supplies every SchedulerConfig field not on an axis
 *  (occupancy, queue depth, maxBatchSize, map-cache parameters). */
struct PlanSearchSpace
{
    std::size_t minFleetSize = 1;
    std::size_t maxFleetSize = 8;
    std::vector<QueuePolicy> policies = {QueuePolicy::Fifo};
    std::vector<BatcherAxisPoint> batchers = {BatcherAxisPoint{}};
    std::vector<bool> mapCacheOptions = {false};
    /** Run-ahead buffer depths to search (SchedulerConfig::
     *  runAheadDepth; every entry must be >= 1). The default {1} is
     *  the blocking handoff, so legacy spaces enumerate exactly the
     *  grid they always did. */
    std::vector<std::uint32_t> runAheadDepths = {1};
    SchedulerConfig base;

    /** Availability mode: when enabled, every candidate is probed
     *  under this fault program (and retry policy below), so the
     *  search returns the cheapest fleet whose SLO survives the
     *  faults — N+1 sizing falls out naturally: a fleet that meets
     *  the SLO only with all instances healthy fails its probe and
     *  the planner pays for the spare. Default-disabled: the plan is
     *  then identical to the fault-free search (golden-pinned). */
    FaultProgram faults;
    /** Retry policy paired with `faults` in availability mode. */
    RetryPolicy retry;

    /** Heterogeneous composition lattice. Empty (the default) keeps
     *  the legacy homogeneous axis: [minFleetSize, maxFleetSize]
     *  copies of the planner's instance config. Non-empty replaces
     *  that axis with count vectors over these kinds (min/maxFleetSize
     *  are then ignored); a composition must field >= 1 instance. */
    std::vector<InstanceKindSpec> kinds;

    /** Cost the search minimizes. Watts/Price require `kinds`. */
    PlanObjective objective = PlanObjective::Instances;

    /** Composition cost ceiling in objective units ("the watt
     *  budget"); compositions costing more are excluded from the
     *  lattice entirely. 0 = unbounded. Lattice only. */
    double maxCostBudget = 0.0;

    /** Categorical combinations (policies x batchers x cache x
     *  run-ahead depths). */
    std::size_t
    comboCount() const
    {
        return policies.size() * batchers.size() *
               mapCacheOptions.size() * runAheadDepths.size();
    }

    /** Lattice points: fleet sizes on the homogeneous axis, or valid
     *  (in-range, non-empty, within-budget) compositions. */
    std::uint64_t compositionCount() const;

    /** Size of the exhaustive grid: combos x lattice points. */
    std::uint64_t
    gridSize() const
    {
        return static_cast<std::uint64_t>(comboCount()) *
               compositionCount();
    }
};

/** The concrete fleet a lattice composition describes: count_k copies
 *  of each kind's config, in kind order — the exact fleet-expansion
 *  rule every lattice probe prices through. */
std::vector<AcceleratorConfig>
fleetFor(const PlanSearchSpace &space,
         const std::vector<std::size_t> &composition);

/** One logged probe: a full config plus its headline outcome. */
struct PlanProbe
{
    /** Total instances fielded (== sum of `composition` on the
     *  lattice). */
    std::size_t fleetSize = 0;
    /** Per-kind instance counts in space.kinds order; empty on the
     *  legacy homogeneous axis (fleetSize carries the count). */
    std::vector<std::size_t> composition;
    /** Objective cost of this fleet (== fleetSize under Instances). */
    double cost = 0.0;
    QueuePolicy policy = QueuePolicy::Fifo;
    bool batching = false;
    std::uint32_t targetK = 1;
    std::uint64_t maxWaitCycles = 0;
    bool costAware = false;
    bool mapCacheOn = false;
    /** Run-ahead buffer depth (1 = blocking handoff). */
    std::uint32_t runAheadDepth = 1;
    double p99Cycles = 0.0;
    double throughputRps = 0.0;
    double dropRate = 0.0;
    bool meetsSlo = false;
};

/** Outcome of one planning run. */
struct PlanReport
{
    SloSpec slo;
    /** The objective the search minimized (echoed from the space). */
    PlanObjective objective = PlanObjective::Instances;
    /** The space's composition cost ceiling (0 = unbounded). */
    double costBudget = 0.0;
    /** At least one grid point met the SLO. */
    bool feasible = false;
    /** The cheapest passing configuration (zeroed when infeasible). */
    PlanProbe chosen;
    /** Every probe actually simulated, in probe order — the search's
     *  frontier log. Memoized re-evaluations are not re-logged. */
    std::vector<PlanProbe> probes;
    /** == probes.size(); kept explicit for the JSON surface. */
    std::uint64_t probesSpent = 0;
    /** Full grid size — what exhaustive search would have spent. */
    std::uint64_t exhaustiveProbes = 0;
    /** False when a verification probe (or the exhaustive grid)
     *  observed, along some lattice ray, a smaller fleet passing where
     *  a larger one failed. */
    bool monotoneFleetAxis = true;
    /** SLO headroom of the chosen config (0 when the corresponding
     *  constraint is absent or the plan is infeasible). */
    double p99MarginCycles = 0.0;
    double throughputMarginRps = 0.0;
};

/** The SchedulerConfig a probe describes: `space.base` with the
 *  probe's categorical-axis values applied — the exact mapping the
 *  planner prices configurations through, exposed so callers can
 *  re-simulate a chosen configuration without mirroring the field
 *  list by hand. */
SchedulerConfig schedulerConfigFor(const PlanSearchSpace &space,
                                   const PlanProbe &probe);

/** Serialize a PlanReport (single line + '\n'; schema documented in
 *  docs/SERVING_JSON.md, pinned by tests/test_report_golden.cpp). */
void writePlanJson(std::ostream &os, const PlanReport &report);

/** Emit the PlanReport object body into an open writer — the shared
 *  core of writePlanJson, exposed so bench_serving can embed a plan
 *  under a key of its own BENCH_serving.json envelope. */
void writePlanObject(JsonWriter &w, const PlanReport &report);

/** Planner knobs. */
struct PlannerConfig
{
    /** Monotonicity verification: up to this many not-yet-probed fleet
     *  sizes below the bisection candidate are probed; any passing one
     *  triggers the linear-scan fallback. 0 trusts monotonicity. */
    std::size_t spotProbes = 2;
    /** Probe parallelism: 1 = serial (the default, and the reference
     *  behavior), 0 = one worker per hardware thread, N = N workers.
     *  Parallel plans issue *speculative* probes ahead of the serial
     *  search (gallop chains, bisection brackets, spot picks) on a
     *  work-stealing ProbeExecutor, but the search consumes results in
     *  serial order and logs only the probes the serial search asks
     *  for — the PlanReport is byte-identical to threads == 1
     *  (enforced by bench_serving's differential gate and
     *  PlannerProperties.ParallelPlanIsByteIdenticalToSerial). */
    std::size_t threads = 1;
};

/**
 * Searches PlanSearchSpace for the cheapest fleet meeting an SLO.
 * With an empty kind list, fleets are homogeneous (`fleet_size`
 * copies of one instance config); with kinds, fleets are the
 * compositions fleetFor expands.
 */
class CapacityPlanner
{
  public:
    /**
     * @param instance       config replicated per fleet member
     * @param model          service-time oracle (outlives the planner)
     * @param bucket_scales  the catalog's size buckets (batcher rule)
     * @param config         search-verification knobs
     */
    CapacityPlanner(AcceleratorConfig instance, const ServiceModel &model,
                    std::vector<double> bucket_scales,
                    PlannerConfig config = {});

    virtual ~CapacityPlanner() = default;

    const PlannerConfig &config() const { return cfg; }

    /** Gallop + bisect + verify (see file header). Deterministic:
     *  equal inputs give byte-identical reports. */
    PlanReport plan(const WorkloadSpec &workload, const SloSpec &slo,
                    const PlanSearchSpace &space) const;

    /** Same search over a non-stationary traffic program
     *  (runtime/traffic): the program's trace is materialized once and
     *  shared across every probe, so the planner sizes the fleet for
     *  the program's *peak* — "does this fleet survive Monday
     *  morning?" asked as a sizing question. */
    PlanReport plan(const TrafficProgram &program, const SloSpec &slo,
                    const PlanSearchSpace &space) const;

    /** Probe every grid point (probesSpent == gridSize()) with the
     *  same tie-break — the oracle the plan sweep gates against. */
    PlanReport planExhaustive(const WorkloadSpec &workload,
                              const SloSpec &slo,
                              const PlanSearchSpace &space) const;

    /**
     * One probe: serve `trace` on `fleet_size` copies of the instance
     * config under `scfg`. This is the exact call path plan() prices
     * configurations through; virtual so tests can (a) compare it
     * against runServingReference byte-for-byte and (b) inject
     * synthetic outcomes to exercise the non-monotone fallback.
     */
    virtual ServingReport probe(std::size_t fleet_size,
                                const SchedulerConfig &scfg,
                                const std::vector<Request> &trace) const;

    /**
     * One lattice probe: serve `trace` on the fleet `composition`
     * expands to (fleetFor) under `scfg`. Every heterogeneous plan
     * prices compositions through this hook — virtual for the same
     * differential / fault-injection reasons as probe(), which stays
     * the hook for kinds-empty spaces so legacy overrides keep
     * working unchanged.
     */
    virtual ServingReport
    probeComposition(const PlanSearchSpace &space,
                     const std::vector<std::size_t> &composition,
                     const SchedulerConfig &scfg,
                     const std::vector<Request> &trace) const;

  private:
    struct Search;

    AcceleratorConfig instance;
    const ServiceModel &model;
    std::vector<double> bucketScales;
    PlannerConfig cfg;
};

} // namespace pointacc

#endif // POINTACC_RUNTIME_PLANNER_HPP
