#include "runtime/reference.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "core/logging.hpp"
#include "runtime/batcher.hpp"
#include "runtime/map_cache.hpp"

namespace pointacc {

// ---------------------------------------------------------------- //
//                       LinearRequestQueue                          //
//          (the seed AdmissionQueue, preserved verbatim)            //
// ---------------------------------------------------------------- //

namespace {

bool
refRanksBefore(QueuePolicy policy, const Request &a, const Request &b)
{
    switch (policy) {
      case QueuePolicy::Fifo:
        break;
      case QueuePolicy::Sjf:
        if (a.estimatedCycles != b.estimatedCycles)
            return a.estimatedCycles < b.estimatedCycles;
        break;
      case QueuePolicy::Edf: {
        const std::uint64_t da =
            a.deadlineCycle == 0 ? ~0ULL : a.deadlineCycle;
        const std::uint64_t db =
            b.deadlineCycle == 0 ? ~0ULL : b.deadlineCycle;
        if (da != db)
            return da < db;
        break;
      }
    }
    if (a.arrivalCycle != b.arrivalCycle)
        return a.arrivalCycle < b.arrivalCycle;
    return a.id < b.id;
}

} // namespace

std::size_t
LinearRequestQueue::selectIndex(
    QueuePolicy policy,
    const std::function<bool(const Request &)> &excluded) const
{
    std::size_t best = items.size();
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (excluded && excluded(items[i]))
            continue;
        if (best == items.size() ||
            refRanksBefore(policy, items[i], items[best]))
            best = i;
    }
    return best;
}

const Request &
LinearRequestQueue::peek(QueuePolicy policy) const
{
    const std::size_t idx = selectIndex(policy);
    simAssert(idx < items.size(), "peek on empty queue");
    return items[idx];
}

const Request *
LinearRequestQueue::peekEligible(
    QueuePolicy policy,
    const std::function<bool(const Request &)> &excluded) const
{
    const std::size_t idx = selectIndex(policy, excluded);
    return idx < items.size() ? &items[idx] : nullptr;
}

Request
LinearRequestQueue::pop(QueuePolicy policy)
{
    const std::size_t idx = selectIndex(policy);
    simAssert(idx < items.size(), "pop on empty queue");
    Request r = items[idx];
    items.erase(items.begin() + static_cast<std::ptrdiff_t>(idx));
    return r;
}

std::vector<Request>
LinearRequestQueue::popLedBy(
    const Request &head, QueuePolicy policy,
    const std::function<bool(const Request &, const Request &)> &compatible,
    std::size_t max_count,
    const std::function<bool(const Request &)> &excluded)
{
    simAssert(max_count >= 1, "popLedBy needs max_count >= 1");
    const Request lead = head; // copy: `head` may point into items
    std::vector<Request> out;
    bool found = false;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (items[i].id == lead.id) {
            out.push_back(items[i]);
            items.erase(items.begin() + static_cast<std::ptrdiff_t>(i));
            found = true;
            break;
        }
    }
    simAssert(found, "popLedBy head is not queued");
    while (out.size() < max_count) {
        // Scan for the best-ranked compatible, non-excluded follower
        // and erase it in place (the seed's quadratic compaction).
        std::size_t best = items.size();
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (!compatible(lead, items[i]))
                continue;
            if (excluded && excluded(items[i]))
                continue;
            if (best == items.size() ||
                refRanksBefore(policy, items[i], items[best]))
                best = i;
        }
        if (best == items.size())
            break;
        out.push_back(items[best]);
        items.erase(items.begin() + static_cast<std::ptrdiff_t>(best));
    }
    return out;
}

// ---------------------------------------------------------------- //
//                      runServingReference                          //
//        (the seed FleetScheduler::run, preserved verbatim)         //
// ---------------------------------------------------------------- //

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

struct RefInFlight
{
    Batch batch;
    PhaseProfile phases;
    std::uint64_t dispatchedAt = 0;
    std::uint64_t mapDoneAt = 0;
    std::uint64_t doneAt = 0;
    bool mapped = false;
    std::vector<std::pair<MapCacheKey, MapCacheEntry>> inserts;
};

struct RefAccelState
{
    std::optional<RefInFlight> front;
    std::optional<RefInFlight> back;
    std::uint64_t coveredUntil = 0;
    AcceleratorUsage usage;

    bool
    canAccept(OccupancyModel model) const
    {
        return model == OccupancyModel::Pipelined
                   ? !front.has_value()
                   : !front.has_value() && !back.has_value();
    }
};

/** Seed holdForHead: a linear scan over everything pending. */
BatchHold
refHoldForHead(const Batcher &batcher, const LinearRequestQueue &queue,
               const Request &head, std::uint64_t now,
               const std::function<bool(const Request &)> &excluded)
{
    BatchHold decision;
    const BatcherConfig &bcfg = batcher.config();
    if (!bcfg.enabled || bcfg.targetK <= 1 || bcfg.maxWaitCycles == 0)
        return decision;

    const std::size_t want =
        std::min<std::size_t>(bcfg.targetK, bcfg.maxBatchSize);
    std::size_t have = 0;
    std::uint64_t oldest = head.arrivalCycle;
    for (const auto &r : queue.pending()) {
        if (r.id == head.id ||
            (batcher.compatible(head, r) &&
             !(excluded && excluded(r)))) {
            have += 1;
            oldest = std::min(oldest, r.arrivalCycle);
            if (have >= want)
                return decision;
        }
    }

    const std::uint64_t deadline = oldest + bcfg.maxWaitCycles;
    if (now >= deadline)
        return decision;

    decision.hold = true;
    decision.until = deadline;
    return decision;
}

/** Seed formLedBy against the linear queue. */
Batch
refFormLedBy(const Batcher &batcher, LinearRequestQueue &queue,
             const Request &head, QueuePolicy policy,
             const std::function<bool(const Request &)> &excluded)
{
    Batch batch;
    const std::size_t limit =
        !batcher.config().enabled ? 1 : batcher.config().maxBatchSize;
    batch.requests = queue.popLedBy(
        head, policy,
        [&batcher](const Request &a, const Request &b) {
            return batcher.compatible(a, b);
        },
        limit, excluded);
    return batch;
}

} // namespace

ServingReport
runServingReference(const std::vector<AcceleratorConfig> &fleet,
                    const ServiceModel &model,
                    const std::vector<double> &bucket_scales,
                    const SchedulerConfig &cfg,
                    std::vector<Request> arrivals)
{
    std::stable_sort(arrivals.begin(), arrivals.end(), arrivalOrderBefore);

    ServingReport report;
    report.freqGHz = fleet.front().freqGHz;
    report.occupancy = toString(cfg.occupancy);
    report.generated = arrivals.size();

    LinearRequestQueue queue(cfg.queueDepth);
    Batcher batcher(cfg.batcher, bucket_scales);

    MapCache mapCache(cfg.mapCache);
    std::map<std::uint32_t, std::uint64_t> layerHashes;
    const auto keyOf = [&](const Request &r) {
        auto it = layerHashes.find(r.networkId);
        if (it == layerHashes.end())
            it = layerHashes
                     .emplace(r.networkId,
                              model.layerConfigHash(r.networkId))
                     .first;
        return MapCacheKey{r.cloudId, r.networkId, it->second};
    };
    if (mapCache.enabled()) {
        batcher.setExtraCompatibility(
            [&](const Request &a, const Request &b) {
                return mapCache.contains(keyOf(a)) ==
                       mapCache.contains(keyOf(b));
            });
    }

    std::vector<RefAccelState> accels(fleet.size());
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        accels[i].usage.name =
            fleet[i].name + "#" + std::to_string(i);
        // Schema plumbing only (AcceleratorUsage grew the field for
        // the ns-axis JSON): the engine's arithmetic stays the frozen
        // cycle-domain seed loop.
        accels[i].usage.freqGHz = fleet[i].freqGHz;
    }

    const AcceleratorConfig &reference = fleet.front();

    std::uint64_t timerAt = kNever;
    std::set<std::uint64_t> countedHolds;

    const auto completeBack = [&](RefAccelState &acc) {
        const RefInFlight &unit = *acc.back;
        if (cfg.occupancy == OccupancyModel::Monolithic)
            for (const auto &ins : unit.inserts)
                mapCache.insert(ins.first, ins.second);
        for (const auto &r : unit.batch.requests) {
            report.latencyCycles.record(
                static_cast<double>(unit.doneAt - r.arrivalCycle));
            report.completionCycles.push_back(unit.doneAt);
            if (r.deadlineCycle > 0 && unit.doneAt > r.deadlineCycle)
                report.deadlineMisses += 1;
            report.completed += 1;
        }
        const std::uint64_t start =
            std::max(unit.dispatchedAt, acc.coveredUntil);
        if (unit.doneAt > start)
            acc.usage.busyCycles += unit.doneAt - start;
        acc.coveredUntil = std::max(acc.coveredUntil, unit.doneAt);
        acc.back.reset();
    };

    const auto service = [&](RefAccelState &acc, std::uint64_t now) {
        for (;;) {
            if (acc.back && acc.back->doneAt <= now) {
                completeBack(acc);
                continue;
            }
            if (acc.front && acc.front->mapDoneAt <= now) {
                if (!acc.front->mapped &&
                    cfg.occupancy == OccupancyModel::Pipelined)
                    for (const auto &ins : acc.front->inserts)
                        mapCache.insert(ins.first, ins.second);
                acc.front->mapped = true;
                if (!acc.back) {
                    RefInFlight unit = std::move(*acc.front);
                    acc.front.reset();
                    unit.doneAt = now + unit.phases.backendCycles;
                    acc.usage.backendBusyCycles +=
                        unit.phases.backendCycles;
                    acc.back.emplace(std::move(unit));
                    continue;
                }
            }
            break;
        }
    };

    const auto estimateDone = [](const RefAccelState &acc,
                                 const PhaseProfile &ph,
                                 std::uint64_t now) {
        const std::uint64_t mapDone = now + ph.mapCycles;
        const std::uint64_t backStart =
            std::max(mapDone, acc.back ? acc.back->doneAt : now);
        return backStart + ph.backendCycles;
    };

    const auto dispatch = [&](std::uint64_t now) {
        timerAt = kNever;
        std::vector<Request> heldLeaders;
        const auto inHeldGroup = [&](const Request &r) {
            for (const auto &h : heldLeaders)
                if (h.id == r.id || batcher.compatible(h, r))
                    return true;
            return false;
        };
        while (!queue.empty()) {
            bool anyAccept = false;
            for (const auto &acc : accels)
                anyAccept = anyAccept || acc.canAccept(cfg.occupancy);
            if (!anyAccept)
                return;

            const Request *head =
                queue.peekEligible(cfg.policy, inHeldGroup);
            if (head == nullptr)
                return;

            const BatchHold hold =
                refHoldForHead(batcher, queue, *head, now, inHeldGroup);
            if (hold.hold) {
                if (countedHolds.insert(head->id).second)
                    report.batchHolds += 1;
                timerAt = std::min(timerAt, hold.until);
                heldLeaders.push_back(*head);
                continue;
            }

            Batch batch = refFormLedBy(batcher, queue, *head,
                                       cfg.policy, inHeldGroup);

            bool hitBatch = mapCache.enabled();
            if (mapCache.enabled())
                for (const auto &r : batch.requests)
                    hitBatch = hitBatch && mapCache.contains(keyOf(r));
            const std::uint64_t readCost =
                cfg.mapCache.hitReadCycles *
                static_cast<std::uint64_t>(batch.size());

            std::map<std::string, PhaseProfile> classPhases;
            std::size_t best = accels.size();
            std::uint64_t bestDone = kNever;
            PhaseProfile bestPhases;
            for (std::size_t i = 0; i < accels.size(); ++i) {
                if (!accels[i].canAccept(cfg.occupancy))
                    continue;
                auto it = classPhases.find(fleet[i].name);
                if (it == classPhases.end()) {
                    const PhaseProfile full =
                        model.batchPhases(fleet[i], batch);
                    PhaseProfile ph;
                    if (cfg.occupancy == OccupancyModel::Pipelined) {
                        ph = full;
                        if (hitBatch)
                            ph.mapCycles =
                                std::min(ph.mapCycles, readCost);
                    } else {
                        ph.backendCycles = full.total();
                        if (hitBatch)
                            ph.backendCycles -=
                                full.mapCycles -
                                std::min(full.mapCycles, readCost);
                    }
                    it = classPhases.emplace(fleet[i].name, ph).first;
                }
                const PhaseProfile &ph = it->second;
                const std::uint64_t done =
                    estimateDone(accels[i], ph, now);
                if (done < bestDone) {
                    bestDone = done;
                    best = i;
                    bestPhases = ph;
                }
            }

            RefAccelState &acc = accels[best];
            RefInFlight unit;
            unit.phases = bestPhases;
            unit.dispatchedAt = now;
            unit.mapDoneAt = now + bestPhases.mapCycles;
            if (mapCache.enabled()) {
                if (hitBatch) {
                    // Counter-accounting fix in lockstep with the
                    // production engine (MapCache::recordHit lost its
                    // savings argument; the batch-level net credit
                    // moved to creditSavedCycles): the engine's
                    // timing arithmetic stays the frozen cycle-domain
                    // seed loop.
                    for (const auto &r : batch.requests)
                        mapCache.recordHit(keyOf(r));
                    const std::uint64_t batchMap =
                        model.batchPhases(fleet[best], batch)
                            .mapCycles;
                    mapCache.creditSavedCycles(
                        batchMap - std::min(batchMap, readCost));
                } else {
                    for (const auto &r : batch.requests) {
                        mapCache.recordMiss();
                        if (r.cloudId == 0)
                            continue;
                        const auto p = model.profile(
                            fleet[best], r.networkId, r.sizeBucket);
                        unit.inserts.emplace_back(
                            keyOf(r),
                            MapCacheEntry{p.phases().mapCycles,
                                          p.mapBytes});
                    }
                }
            }
            acc.usage.mapBusyCycles += bestPhases.mapCycles;
            acc.usage.batches += 1;
            acc.usage.requests += batch.size();
            report.batchSize.record(static_cast<double>(batch.size()));
            for (const auto &r : batch.requests)
                report.queueWaitCycles.record(
                    static_cast<double>(now - r.arrivalCycle));
            unit.batch = std::move(batch);
            acc.front.emplace(std::move(unit));
            service(acc, now);
        }
    };

    std::size_t next = 0;
    std::uint64_t clock = 0;
    while (true) {
        const std::uint64_t tArrival =
            next < arrivals.size() ? arrivals[next].arrivalCycle : kNever;
        std::uint64_t tStage = kNever;
        for (const auto &acc : accels) {
            if (acc.front && !acc.front->mapped)
                tStage = std::min(tStage, acc.front->mapDoneAt);
            if (acc.back)
                tStage = std::min(tStage, acc.back->doneAt);
        }
        if (tArrival == kNever && tStage == kNever && timerAt == kNever)
            break;

        clock = std::min(tArrival, std::min(tStage, timerAt));
        report.loopEvents += 1;

        for (auto &acc : accels)
            service(acc, clock);

        dispatch(clock);

        while (next < arrivals.size() &&
               arrivals[next].arrivalCycle <= clock) {
            Request r = arrivals[next++];
            r.estimatedCycles =
                model.profile(reference, r.networkId, r.sizeBucket)
                    .totalCycles;
            queue.push(r);
        }

        dispatch(clock);
    }

    report.horizonCycles = clock;
    report.admitted = queue.admitted();
    report.dropped = queue.dropped();
    report.leftoverQueued = queue.size();
    report.mapCache = mapCache.stats();
    for (auto &acc : accels)
        report.accelerators.push_back(acc.usage);
    return report;
}

} // namespace pointacc
