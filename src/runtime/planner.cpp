#include "runtime/planner.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "core/logging.hpp"
#include "runtime/executor.hpp"
#include "runtime/traffic.hpp"

namespace pointacc {

bool
meetsSlo(const ServingReport &report, const SloSpec &slo)
{
    if (slo.maxP99Cycles > 0 &&
        report.p99Cycles() > static_cast<double>(slo.maxP99Cycles))
        return false;
    if (slo.minThroughputRps > 0.0 &&
        report.throughputRps() < slo.minThroughputRps)
        return false;
    return true;
}

SchedulerConfig
schedulerConfigFor(const PlanSearchSpace &space, const PlanProbe &probe)
{
    SchedulerConfig scfg = space.base;
    scfg.policy = probe.policy;
    scfg.batcher.enabled = probe.batching;
    scfg.batcher.targetK = probe.targetK;
    scfg.batcher.maxWaitCycles = probe.maxWaitCycles;
    scfg.mapCache.enabled = probe.mapCacheOn;
    return scfg;
}

namespace {

/** One categorical grid point (everything but the fleet size). */
struct Combo
{
    QueuePolicy policy = QueuePolicy::Fifo;
    BatcherAxisPoint batcher;
    bool cacheOn = false;
};

/** Axis order is the tie-break order: policies outermost, then
 *  batcher points, then cache options — "first combo wins a fleet-size
 *  tie" means first in this enumeration. */
std::vector<Combo>
enumerateCombos(const PlanSearchSpace &space)
{
    std::vector<Combo> combos;
    combos.reserve(space.comboCount());
    for (const QueuePolicy policy : space.policies)
        for (const BatcherAxisPoint &batcher : space.batchers)
            for (const bool cacheOn : space.mapCacheOptions)
                combos.push_back(Combo{policy, batcher, cacheOn});
    return combos;
}

/** A combo's axis values as a (metrics-free) PlanProbe, so the combo
 *  and probe config paths share one field mapping. */
PlanProbe
probeOf(const Combo &combo)
{
    PlanProbe p;
    p.policy = combo.policy;
    p.batching = combo.batcher.enabled;
    p.targetK = combo.batcher.targetK;
    p.maxWaitCycles = combo.batcher.maxWaitCycles;
    p.mapCacheOn = combo.cacheOn;
    return p;
}

void
validate(const SloSpec &, const PlanSearchSpace &space)
{
    if (space.minFleetSize == 0)
        fatal("plan search space needs minFleetSize >= 1");
    if (space.maxFleetSize < space.minFleetSize)
        fatal("plan search space needs maxFleetSize >= minFleetSize");
    if (space.policies.empty() || space.batchers.empty() ||
        space.mapCacheOptions.empty())
        fatal("plan search space axes must be non-empty");
}

} // namespace

// ---------------------------------------------------------------- //
//                         Search context                            //
// ---------------------------------------------------------------- //

/** Per-plan() state: the shared trace, the probe log and the
 *  (combo, fleet size) -> log index memo that makes re-evaluations
 *  free (and keeps probesSpent an honest count of simulations).
 *
 *  Parallelism (PlannerConfig::threads > 1) is pure *speculation*: the
 *  search pre-submits probes it expects to need (gallop chains for
 *  every combo, bisection brackets, spot picks, scan ranges) to a
 *  work-stealing executor, then runs the exact serial search logic,
 *  which consumes a finished future when one exists and simulates
 *  inline when not. Only serially-requested probes enter the log, in
 *  serial order — speculative misses burn cycles, never bytes — so
 *  the PlanReport is byte-identical to a serial plan. In inline mode
 *  (threads resolves to 0) speculation is skipped entirely and the
 *  probe set is exactly the pre-executor planner's. */
struct CapacityPlanner::Search
{
    /** Headline metrics of one simulated probe — what a speculative
     *  task computes; pure function of (combo, fleet size). */
    struct ProbeMetrics
    {
        double p99Cycles = 0.0;
        double throughputRps = 0.0;
        double dropRate = 0.0;
        bool meetsSlo = false;
    };

    const CapacityPlanner &planner;
    const SloSpec &slo;
    const PlanSearchSpace &space;
    std::vector<Combo> combos;
    std::vector<Request> trace;
    // Declared before `inflight` so outstanding futures are destroyed
    // before the pool they reference.
    ProbeExecutor executor;
    std::vector<PlanProbe> log;
    std::map<std::pair<std::size_t, std::size_t>, std::size_t> memo;
    /** Speculative probes in flight, keyed like the memo. */
    std::map<std::pair<std::size_t, std::size_t>,
             ProbeExecutor::Future<ProbeMetrics>>
        inflight;

    Search(const CapacityPlanner &planner_, const WorkloadSpec &workload,
           const SloSpec &slo_, const PlanSearchSpace &space_)
        : planner(planner_), slo(slo_), space(space_),
          combos(enumerateCombos(space_)),
          trace(WorkloadGenerator(workload).generate()),
          executor(ProbeExecutor::resolveThreads(planner_.cfg.threads))
    {
    }

    /** Same search over a pre-materialized trace (the traffic-program
     *  entry point shares one trace across every probe). */
    Search(const CapacityPlanner &planner_, std::vector<Request> trace_,
           const SloSpec &slo_, const PlanSearchSpace &space_)
        : planner(planner_), slo(slo_), space(space_),
          combos(enumerateCombos(space_)), trace(std::move(trace_)),
          executor(ProbeExecutor::resolveThreads(planner_.cfg.threads))
    {
    }

    bool
    probed(std::size_t combo_index, std::size_t fleet_size) const
    {
        return memo.count({combo_index, fleet_size}) != 0;
    }

    /** Simulate one probe and distill the headline metrics. Safe to
     *  call from worker threads: planner.probe is const over shared
     *  immutable state and the service model memo is internally
     *  synchronized (scheduler.hpp). */
    ProbeMetrics
    computeMetrics(std::size_t combo_index, std::size_t fleet_size) const
    {
        PlanProbe p = probeOf(combos[combo_index]);
        p.fleetSize = fleet_size;
        const ServingReport report = planner.probe(
            fleet_size, schedulerConfigFor(space, p), trace);
        ProbeMetrics m;
        m.p99Cycles = report.p99Cycles();
        m.throughputRps = report.throughputRps();
        m.dropRate = report.dropRate();
        m.meetsSlo = meetsSlo(report, slo);
        return m;
    }

    /** Pre-submit (combo, fleet size) to the executor if it is not
     *  already probed or in flight. No-op in inline mode: serial plans
     *  must execute exactly the serial probe set. */
    void
    speculate(std::size_t combo_index, std::size_t fleet_size)
    {
        if (executor.threadCount() == 0)
            return;
        const auto key = std::make_pair(combo_index, fleet_size);
        if (memo.count(key) != 0 || inflight.count(key) != 0)
            return;
        inflight.emplace(
            key, executor.submit([this, combo_index, fleet_size] {
                return computeMetrics(combo_index, fleet_size);
            }));
    }

    /** Speculate the gallop chain (min, 2*min, ... ceil) — the sizes
     *  the serial gallop probes until its first pass. */
    void
    speculateGallop(std::size_t combo_index)
    {
        std::size_t n = space.minFleetSize;
        while (true) {
            speculate(combo_index, n);
            if (n == space.maxFleetSize)
                break;
            n = std::min(space.maxFleetSize, n * 2);
        }
    }

    void
    speculateRange(std::size_t combo_index, std::size_t from,
                   std::size_t to)
    {
        for (std::size_t s = from; s <= to; ++s)
            speculate(combo_index, s);
    }

    const PlanProbe &
    probeAt(std::size_t combo_index, std::size_t fleet_size)
    {
        const auto key = std::make_pair(combo_index, fleet_size);
        const auto it = memo.find(key);
        if (it != memo.end())
            return log[it->second];

        PlanProbe p = probeOf(combos[combo_index]);
        p.fleetSize = fleet_size;
        ProbeMetrics m;
        const auto fit = inflight.find(key);
        if (fit != inflight.end()) {
            m = fit->second.get();
            inflight.erase(fit);
        } else {
            m = computeMetrics(combo_index, fleet_size);
        }
        p.p99Cycles = m.p99Cycles;
        p.throughputRps = m.throughputRps;
        p.dropRate = m.dropRate;
        p.meetsSlo = m.meetsSlo;
        memo.emplace(key, log.size());
        log.push_back(p);
        return log.back();
    }

    /**
     * Monotonicity spot check: probe up to spotProbes not-yet-probed
     * sizes in [from, to], evenly spaced; true when any passes.
     * Galloping + bisection can only ever observe fails-below-passes
     * (they never probe above a known pass), so a violation is
     * detectable *only* by these extra probes.
     */
    bool
    spotCheckFindsPass(std::size_t combo_index, std::size_t from,
                       std::size_t to)
    {
        if (to < from || planner.cfg.spotProbes == 0)
            return false;
        std::vector<std::size_t> unprobed;
        for (std::size_t s = from; s <= to; ++s)
            if (!probed(combo_index, s))
                unprobed.push_back(s);
        const std::size_t k =
            std::min(planner.cfg.spotProbes, unprobed.size());
        std::vector<std::size_t> picks;
        for (std::size_t i = 0; i < k; ++i)
            picks.push_back(unprobed[(i + 1) * unprobed.size() / (k + 1)]);
        std::sort(picks.begin(), picks.end());
        picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
        // Every pick is consumed, so speculating all of them up front
        // is pure win (and cannot change the probe set).
        for (const std::size_t s : picks)
            speculate(combo_index, s);
        bool pass = false;
        for (const std::size_t s : picks)
            pass = probeAt(combo_index, s).meetsSlo || pass;
        return pass;
    }

    /** The exact fallback: first passing size over the whole axis
     *  (memoized probes are free), whatever the pass/fail shape. */
    std::optional<std::size_t>
    linearScan(std::size_t combo_index)
    {
        speculateRange(combo_index, space.minFleetSize,
                       space.maxFleetSize);
        for (std::size_t s = space.minFleetSize; s <= space.maxFleetSize;
             ++s)
            if (probeAt(combo_index, s).meetsSlo)
                return s;
        return std::nullopt;
    }

    /**
     * Cheapest passing fleet size for one combo: gallop up from
     * minFleetSize doubling until a size passes (or maxFleetSize
     * fails), bisect the (last fail, first pass] bracket, then spot-
     * verify monotonicity below the candidate — and, when the gallop
     * found no pass at all, over the whole axis before concluding
     * infeasibility. A passing spot probe demotes the combo to a
     * linear scan and clears `monotone`.
     */
    std::optional<std::size_t>
    cheapestFleet(std::size_t combo_index, bool &monotone)
    {
        const std::size_t floorSize = space.minFleetSize;
        const std::size_t ceilSize = space.maxFleetSize;

        std::size_t n = floorSize;
        std::optional<std::size_t> firstPass;
        std::size_t lastFail = 0;
        bool haveFail = false;
        while (true) {
            if (probeAt(combo_index, n).meetsSlo) {
                firstPass = n;
                break;
            }
            haveFail = true;
            lastFail = n;
            if (n == ceilSize)
                break;
            n = std::min(ceilSize, n * 2);
        }
        // Under the monotone assumption, maxFleetSize failing means
        // every size fails — but that conclusion deserves the same
        // verification a candidate gets: a non-monotone axis can pass
        // only at sizes the gallop skipped.
        if (!firstPass) {
            if (spotCheckFindsPass(combo_index, floorSize, ceilSize)) {
                monotone = false;
                return linearScan(combo_index);
            }
            return std::nullopt;
        }

        std::size_t candidate = *firstPass;
        if (haveFail) {
            std::size_t lo = lastFail; // fails
            std::size_t hi = candidate; // passes
            // Bisection probes depend on each other, so parallelism
            // comes from speculating the whole bracket interior: at
            // most gallop-gap-sized, and every midpoint the bisection
            // can visit lies inside it.
            if (hi - lo > 1)
                speculateRange(combo_index, lo + 1, hi - 1);
            while (hi - lo > 1) {
                const std::size_t mid = lo + (hi - lo) / 2;
                if (probeAt(combo_index, mid).meetsSlo)
                    hi = mid;
                else
                    lo = mid;
            }
            candidate = hi;
        }

        // Verify the candidate: a pass below it means the monotone
        // shortcut was unsound for this combo.
        if (candidate > floorSize &&
            spotCheckFindsPass(combo_index, floorSize, candidate - 1)) {
            monotone = false;
            return linearScan(combo_index); // a pass exists: non-empty
        }
        return candidate;
    }

    /** Assemble the report: cheapest fleet wins, ties to the earliest
     *  combo; margins against the active constraints. */
    PlanReport
    finish(const std::vector<std::optional<std::size_t>> &per_combo,
           bool monotone)
    {
        PlanReport report;
        report.slo = slo;
        report.exhaustiveProbes = space.gridSize();
        report.monotoneFleetAxis = monotone;

        std::optional<std::size_t> bestCombo;
        for (std::size_t ci = 0; ci < per_combo.size(); ++ci) {
            if (!per_combo[ci])
                continue;
            if (!bestCombo || *per_combo[ci] < *per_combo[*bestCombo])
                bestCombo = ci;
        }
        if (bestCombo) {
            report.feasible = true;
            report.chosen =
                probeAt(*bestCombo, *per_combo[*bestCombo]);
            if (slo.maxP99Cycles > 0)
                report.p99MarginCycles =
                    static_cast<double>(slo.maxP99Cycles) -
                    report.chosen.p99Cycles;
            if (slo.minThroughputRps > 0.0)
                report.throughputMarginRps =
                    report.chosen.throughputRps - slo.minThroughputRps;
        }
        report.probes = log;
        report.probesSpent = log.size();
        return report;
    }
};

// ---------------------------------------------------------------- //
//                         CapacityPlanner                           //
// ---------------------------------------------------------------- //

CapacityPlanner::CapacityPlanner(AcceleratorConfig instance_,
                                 const ServiceModel &model_,
                                 std::vector<double> bucket_scales,
                                 PlannerConfig config)
    : instance(std::move(instance_)), model(model_),
      bucketScales(std::move(bucket_scales)), cfg(config)
{
}

ServingReport
CapacityPlanner::probe(std::size_t fleet_size,
                       const SchedulerConfig &scfg,
                       const std::vector<Request> &trace) const
{
    simAssert(fleet_size > 0, "probe needs a non-empty fleet");
    const std::vector<AcceleratorConfig> fleet(fleet_size, instance);
    FleetScheduler sched(fleet, model, bucketScales, scfg);
    return sched.run(trace);
}

PlanReport
CapacityPlanner::plan(const WorkloadSpec &workload, const SloSpec &slo,
                      const PlanSearchSpace &space) const
{
    validate(slo, space);
    Search search(*this, workload, slo, space);
    // Every combo's gallop chain is known before any probe runs —
    // prefetch them all so the combos' searches overlap on the pool.
    for (std::size_t ci = 0; ci < search.combos.size(); ++ci)
        search.speculateGallop(ci);
    bool monotone = true;
    std::vector<std::optional<std::size_t>> perCombo;
    perCombo.reserve(search.combos.size());
    for (std::size_t ci = 0; ci < search.combos.size(); ++ci)
        perCombo.push_back(search.cheapestFleet(ci, monotone));
    return search.finish(perCombo, monotone);
}

PlanReport
CapacityPlanner::plan(const TrafficProgram &program, const SloSpec &slo,
                      const PlanSearchSpace &space) const
{
    validate(slo, space);
    Search search(*this, materialize(program), slo, space);
    for (std::size_t ci = 0; ci < search.combos.size(); ++ci)
        search.speculateGallop(ci);
    bool monotone = true;
    std::vector<std::optional<std::size_t>> perCombo;
    perCombo.reserve(search.combos.size());
    for (std::size_t ci = 0; ci < search.combos.size(); ++ci)
        perCombo.push_back(search.cheapestFleet(ci, monotone));
    return search.finish(perCombo, monotone);
}

PlanReport
CapacityPlanner::planExhaustive(const WorkloadSpec &workload,
                                const SloSpec &slo,
                                const PlanSearchSpace &space) const
{
    validate(slo, space);
    Search search(*this, workload, slo, space);
    // The exhaustive grid is fully known up front: speculate all of it.
    for (std::size_t ci = 0; ci < search.combos.size(); ++ci)
        search.speculateRange(ci, space.minFleetSize, space.maxFleetSize);
    bool monotone = true;
    std::vector<std::optional<std::size_t>> perCombo;
    perCombo.reserve(search.combos.size());
    for (std::size_t ci = 0; ci < search.combos.size(); ++ci) {
        std::optional<std::size_t> cheapest;
        bool seenPass = false;
        for (std::size_t s = space.minFleetSize; s <= space.maxFleetSize;
             ++s) {
            const bool pass = search.probeAt(ci, s).meetsSlo;
            if (pass && !cheapest)
                cheapest = s;
            // The exhaustive grid judges monotonicity exactly: a fail
            // above any pass is a violation.
            if (seenPass && !pass)
                monotone = false;
            seenPass = seenPass || pass;
        }
        perCombo.push_back(cheapest);
    }
    return search.finish(perCombo, monotone);
}

// ---------------------------------------------------------------- //
//                         JSON surface                              //
// ---------------------------------------------------------------- //

namespace {

void
writeProbeObject(JsonWriter &w, const PlanProbe &p)
{
    w.beginObject();
    w.field("fleet_size", static_cast<std::uint64_t>(p.fleetSize));
    w.field("policy", toString(p.policy));
    w.field("batching", p.batching);
    w.field("target_k", p.targetK);
    w.field("max_wait_cycles", p.maxWaitCycles);
    w.field("map_cache", p.mapCacheOn);
    w.field("p99_cycles", p.p99Cycles);
    w.field("throughput_rps", p.throughputRps);
    w.field("drop_rate", p.dropRate);
    w.field("meets_slo", p.meetsSlo);
    w.endObject();
}

} // namespace

void
writePlanObject(JsonWriter &w, const PlanReport &report)
{
    w.beginObject();
    w.field("planner", "capacity");
    w.field("slo_max_p99_cycles", report.slo.maxP99Cycles);
    w.field("slo_min_throughput_rps", report.slo.minThroughputRps);
    w.field("feasible", report.feasible);
    w.field("monotone_fleet_axis", report.monotoneFleetAxis);
    w.field("probes_spent", report.probesSpent);
    w.field("exhaustive_probes", report.exhaustiveProbes);
    w.field("p99_margin_cycles", report.p99MarginCycles);
    w.field("throughput_margin_rps", report.throughputMarginRps);
    w.key("chosen");
    writeProbeObject(w, report.chosen);
    w.key("probes").beginArray();
    for (const PlanProbe &p : report.probes)
        writeProbeObject(w, p);
    w.endArray();
    w.endObject();
}

void
writePlanJson(std::ostream &os, const PlanReport &report)
{
    JsonWriter w(os);
    writePlanObject(w, report);
    os << '\n';
}

} // namespace pointacc
