#include "runtime/planner.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <tuple>
#include <utility>

#include "core/logging.hpp"
#include "runtime/executor.hpp"
#include "runtime/traffic.hpp"

namespace pointacc {

std::string
toString(PlanObjective objective)
{
    switch (objective) {
      case PlanObjective::Instances: return "instances";
      case PlanObjective::Watts: return "watts";
      case PlanObjective::Price: return "price";
    }
    return "?";
}

double
nominalWatts(const AcceleratorConfig &config)
{
    // pJ/MAC x MACs/cycle x cycles/ns = pJ/ns = mW; 1e-3 -> W.
    const double macsPerCycle = static_cast<double>(config.mxu.rows) *
                                static_cast<double>(config.mxu.cols);
    return config.energy.staticPowerW +
           config.energy.macPJ * macsPerCycle * config.freqGHz * 1e-3;
}

std::vector<AcceleratorConfig>
fleetFor(const PlanSearchSpace &space,
         const std::vector<std::size_t> &composition)
{
    simAssert(composition.size() == space.kinds.size(),
              "composition must have one count per kind");
    std::vector<AcceleratorConfig> fleet;
    for (std::size_t k = 0; k < composition.size(); ++k)
        fleet.insert(fleet.end(), composition[k], space.kinds[k].config);
    return fleet;
}

bool
meetsSlo(const ServingReport &report, const SloSpec &slo)
{
    if (slo.maxP99Cycles > 0 &&
        report.p99Cycles() > static_cast<double>(slo.maxP99Cycles))
        return false;
    if (slo.minThroughputRps > 0.0 &&
        report.throughputRps() < slo.minThroughputRps)
        return false;
    return true;
}

SchedulerConfig
schedulerConfigFor(const PlanSearchSpace &space, const PlanProbe &probe)
{
    SchedulerConfig scfg = space.base;
    scfg.policy = probe.policy;
    scfg.batcher.enabled = probe.batching;
    scfg.batcher.targetK = probe.targetK;
    scfg.batcher.maxWaitCycles = probe.maxWaitCycles;
    scfg.batcher.costAware = probe.costAware;
    scfg.mapCache.enabled = probe.mapCacheOn;
    scfg.runAheadDepth = probe.runAheadDepth;
    // Availability mode: probe every candidate under the fault
    // program, so only fleets that survive it count as meeting the
    // SLO. Disabled programs leave the probe config untouched (and
    // the resulting plan byte-identical to the fault-free search).
    if (space.faults.enabled)
        scfg.faults = space.faults;
    if (space.retry.enabled)
        scfg.retry = space.retry;
    return scfg;
}

namespace {

/** One categorical grid point (everything but the fleet size). */
struct Combo
{
    QueuePolicy policy = QueuePolicy::Fifo;
    BatcherAxisPoint batcher;
    bool cacheOn = false;
    std::uint32_t runAheadDepth = 1;
};

/** Axis order is the tie-break order: policies outermost, then
 *  batcher points, then cache options, then run-ahead depths — "first
 *  combo wins a fleet-size tie" means first in this enumeration. */
std::vector<Combo>
enumerateCombos(const PlanSearchSpace &space)
{
    std::vector<Combo> combos;
    combos.reserve(space.comboCount());
    for (const QueuePolicy policy : space.policies)
        for (const BatcherAxisPoint &batcher : space.batchers)
            for (const bool cacheOn : space.mapCacheOptions)
                for (const std::uint32_t depth : space.runAheadDepths)
                    combos.push_back(
                        Combo{policy, batcher, cacheOn, depth});
    return combos;
}

/** A combo's axis values as a (metrics-free) PlanProbe, so the combo
 *  and probe config paths share one field mapping. */
PlanProbe
probeOf(const Combo &combo)
{
    PlanProbe p;
    p.policy = combo.policy;
    p.batching = combo.batcher.enabled;
    p.targetK = combo.batcher.targetK;
    p.maxWaitCycles = combo.batcher.maxWaitCycles;
    p.costAware = combo.batcher.costAware;
    p.mapCacheOn = combo.cacheOn;
    p.runAheadDepth = combo.runAheadDepth;
    return p;
}

/** Unit objective cost of one instance of kind `kind_index` (1.0 on
 *  the legacy homogeneous axis, where cost == instance count). */
double
unitCost(const PlanSearchSpace &space, std::size_t kind_index)
{
    if (space.kinds.empty())
        return 1.0;
    const InstanceKindSpec &kind = space.kinds[kind_index];
    switch (space.objective) {
      case PlanObjective::Instances:
        return 1.0;
      case PlanObjective::Watts:
        return kind.watts > 0.0 ? kind.watts : nominalWatts(kind.config);
      case PlanObjective::Price:
        return kind.price;
    }
    return 0.0;
}

/**
 * One axis-parallel ray of the composition lattice: the counts of
 * kinds 1..K-1 are fixed (`rest`), the kind-0 count runs over the
 * inclusive [lo, hi] axis. The legacy homogeneous space is the single
 * ray with empty `rest` and [minFleetSize, maxFleetSize]; cost along a
 * ray is restCost + n * unit0, strictly increasing in n because every
 * active unit cost is validated positive.
 */
struct LatticeRay
{
    std::vector<std::size_t> rest;
    std::size_t lo = 1;
    std::size_t hi = 1;
    double restCost = 0.0;
};

/** Enumerate the lattice's rays in deterministic lex order over the
 *  fixed kinds (kind 1 most significant). Rays the cost budget rules
 *  out entirely — or whose only composition would field zero
 *  instances — are dropped here, so compositionCount(), the searches
 *  and the exhaustive oracle all agree on the valid lattice. */
std::vector<LatticeRay>
enumerateRays(const PlanSearchSpace &space)
{
    std::vector<LatticeRay> rays;
    if (space.kinds.empty()) {
        if (space.maxFleetSize < space.minFleetSize)
            return rays;
        LatticeRay ray;
        ray.lo = space.minFleetSize;
        ray.hi = space.maxFleetSize;
        rays.push_back(ray);
        return rays;
    }
    const double unit0 = unitCost(space, 0);
    const std::size_t fixedKinds = space.kinds.size() - 1;
    std::vector<std::size_t> rest;
    rest.reserve(fixedKinds);
    for (std::size_t k = 1; k < space.kinds.size(); ++k)
        rest.push_back(space.kinds[k].minCount);
    while (true) {
        LatticeRay ray;
        ray.rest = rest;
        std::size_t restSum = 0;
        for (std::size_t k = 0; k < fixedKinds; ++k) {
            restSum += rest[k];
            ray.restCost +=
                static_cast<double>(rest[k]) * unitCost(space, k + 1);
        }
        ray.lo = space.kinds[0].minCount;
        ray.hi = space.kinds[0].maxCount;
        // A composition must field >= 1 instance: on the all-zero ray
        // the kind-0 axis starts at 1.
        if (restSum == 0 && ray.lo == 0)
            ray.lo = 1;
        if (space.maxCostBudget > 0.0) {
            const double slack = space.maxCostBudget - ray.restCost;
            const double maxN = std::floor(slack / unit0 + 1e-9);
            if (maxN < static_cast<double>(ray.lo)) {
                ray.hi = 0;
                ray.lo = 1; // empty: skip below
            } else {
                ray.hi = std::min(
                    ray.hi, static_cast<std::size_t>(maxN));
            }
        }
        if (ray.lo <= ray.hi)
            rays.push_back(std::move(ray));
        // Odometer increment, last fixed kind fastest.
        std::size_t k = fixedKinds;
        while (k > 0) {
            --k;
            if (rest[k] < space.kinds[k + 1].maxCount) {
                ++rest[k];
                for (std::size_t j = k + 1; j < fixedKinds; ++j)
                    rest[j] = space.kinds[j + 1].minCount;
                break;
            }
            if (k == 0)
                return rays;
        }
        if (fixedKinds == 0)
            return rays;
    }
}

void
validate(const SloSpec &, const PlanSearchSpace &space)
{
    if (space.policies.empty() || space.batchers.empty() ||
        space.mapCacheOptions.empty() || space.runAheadDepths.empty())
        fatal("plan search space axes must be non-empty");
    for (const std::uint32_t depth : space.runAheadDepths)
        if (depth < 1)
            fatal("plan run-ahead depths must be >= 1");
    if (space.kinds.empty()) {
        if (space.minFleetSize == 0)
            fatal("plan search space needs minFleetSize >= 1");
        if (space.maxFleetSize < space.minFleetSize)
            fatal("plan search space needs maxFleetSize >= minFleetSize");
        if (space.objective != PlanObjective::Instances)
            fatal("watts/price objectives need a non-empty kind list");
        if (space.maxCostBudget > 0.0)
            fatal("a cost budget needs a non-empty kind list");
        return;
    }
    std::size_t sumMax = 0;
    for (std::size_t k = 0; k < space.kinds.size(); ++k) {
        const InstanceKindSpec &kind = space.kinds[k];
        if (kind.maxCount < kind.minCount)
            fatal("plan kind needs maxCount >= minCount");
        sumMax += kind.maxCount;
        if (!(unitCost(space, k) > 0.0))
            fatal("plan kinds need a positive unit cost under the "
                  "active objective");
    }
    if (sumMax == 0)
        fatal("plan kind lattice cannot field any instance");
}

} // namespace

std::uint64_t
PlanSearchSpace::compositionCount() const
{
    std::uint64_t count = 0;
    for (const LatticeRay &ray : enumerateRays(*this))
        count += static_cast<std::uint64_t>(ray.hi - ray.lo + 1);
    return count;
}

// ---------------------------------------------------------------- //
//                         Search context                            //
// ---------------------------------------------------------------- //

/** Per-plan() state: the shared trace, the probe log and the
 *  (combo, ray, kind-0 count) -> log index memo that makes
 *  re-evaluations free (and keeps probesSpent an honest count of
 *  simulations).
 *
 *  Parallelism (PlannerConfig::threads > 1) is pure *speculation*: the
 *  search pre-submits probes it expects to need (gallop chains for
 *  every combo, bisection brackets, spot picks, scan ranges) to a
 *  work-stealing executor, then runs the exact serial search logic,
 *  which consumes a finished future when one exists and simulates
 *  inline when not. Only serially-requested probes enter the log, in
 *  serial order — speculative misses burn cycles, never bytes — so
 *  the PlanReport is byte-identical to a serial plan. In inline mode
 *  (threads resolves to 0) speculation is skipped entirely and the
 *  probe set is exactly the pre-executor planner's. */
struct CapacityPlanner::Search
{
    /** Headline metrics of one simulated probe — what a speculative
     *  task computes; pure function of (combo, fleet size). */
    struct ProbeMetrics
    {
        double p99Cycles = 0.0;
        double throughputRps = 0.0;
        double dropRate = 0.0;
        bool meetsSlo = false;
    };

    using Key = std::tuple<std::size_t, std::size_t, std::size_t>;

    const CapacityPlanner &planner;
    const SloSpec &slo;
    const PlanSearchSpace &space;
    std::vector<Combo> combos;
    std::vector<LatticeRay> rays;
    /** Kind-0 unit cost (1.0 on the homogeneous axis). */
    double unit0 = 1.0;
    std::vector<Request> trace;
    // Declared before `inflight` so outstanding futures are destroyed
    // before the pool they reference.
    ProbeExecutor executor;
    std::vector<PlanProbe> log;
    std::map<Key, std::size_t> memo;
    /** Speculative probes in flight, keyed like the memo. */
    std::map<Key, ProbeExecutor::Future<ProbeMetrics>> inflight;

    Search(const CapacityPlanner &planner_, const WorkloadSpec &workload,
           const SloSpec &slo_, const PlanSearchSpace &space_)
        : planner(planner_), slo(slo_), space(space_),
          combos(enumerateCombos(space_)), rays(enumerateRays(space_)),
          unit0(unitCost(space_, 0)),
          trace(WorkloadGenerator(workload).generate()),
          executor(ProbeExecutor::resolveThreads(planner_.cfg.threads))
    {
    }

    /** Same search over a pre-materialized trace (the traffic-program
     *  entry point shares one trace across every probe). */
    Search(const CapacityPlanner &planner_, std::vector<Request> trace_,
           const SloSpec &slo_, const PlanSearchSpace &space_)
        : planner(planner_), slo(slo_), space(space_),
          combos(enumerateCombos(space_)), rays(enumerateRays(space_)),
          unit0(unitCost(space_, 0)), trace(std::move(trace_)),
          executor(ProbeExecutor::resolveThreads(planner_.cfg.threads))
    {
    }

    /** The composition (count vector) of lattice point n on a ray;
     *  empty on the legacy homogeneous axis. */
    std::vector<std::size_t>
    compositionOf(const LatticeRay &ray, std::size_t n) const
    {
        if (space.kinds.empty())
            return {};
        std::vector<std::size_t> c;
        c.reserve(space.kinds.size());
        c.push_back(n);
        c.insert(c.end(), ray.rest.begin(), ray.rest.end());
        return c;
    }

    std::size_t
    fleetSizeOf(const LatticeRay &ray, std::size_t n) const
    {
        std::size_t total = n;
        for (const std::size_t count : ray.rest)
            total += count;
        return total;
    }

    double
    costOf(const LatticeRay &ray, std::size_t n) const
    {
        return ray.restCost + static_cast<double>(n) * unit0;
    }

    bool
    probed(std::size_t combo_index, std::size_t ray_index,
           std::size_t n) const
    {
        return memo.count({combo_index, ray_index, n}) != 0;
    }

    /** Simulate one probe and distill the headline metrics. Safe to
     *  call from worker threads: planner.probe is const over shared
     *  immutable state and the service model memo is internally
     *  synchronized (scheduler.hpp). */
    ProbeMetrics
    computeMetrics(std::size_t combo_index, std::size_t ray_index,
                   std::size_t n) const
    {
        const LatticeRay &ray = rays[ray_index];
        PlanProbe p = probeOf(combos[combo_index]);
        p.fleetSize = fleetSizeOf(ray, n);
        const SchedulerConfig scfg = schedulerConfigFor(space, p);
        // kinds-empty plans go through the legacy probe() hook so
        // existing overrides (differential gates, fault injection)
        // keep intercepting every homogeneous probe.
        const ServingReport report =
            space.kinds.empty()
                ? planner.probe(n, scfg, trace)
                : planner.probeComposition(space, compositionOf(ray, n),
                                           scfg, trace);
        ProbeMetrics m;
        m.p99Cycles = report.p99Cycles();
        m.throughputRps = report.throughputRps();
        m.dropRate = report.dropRate();
        m.meetsSlo = meetsSlo(report, slo);
        return m;
    }

    /** Pre-submit (combo, ray, n) to the executor if it is not
     *  already probed or in flight. No-op in inline mode: serial plans
     *  must execute exactly the serial probe set. */
    void
    speculate(std::size_t combo_index, std::size_t ray_index,
              std::size_t n)
    {
        if (executor.threadCount() == 0)
            return;
        const Key key{combo_index, ray_index, n};
        if (memo.count(key) != 0 || inflight.count(key) != 0)
            return;
        inflight.emplace(
            key, executor.submit([this, combo_index, ray_index, n] {
                return computeMetrics(combo_index, ray_index, n);
            }));
    }

    /** Speculate a ray's gallop chain (lo, then doubling to hi) — the
     *  lattice points the serial gallop probes until its first pass. */
    void
    speculateGallop(std::size_t combo_index, std::size_t ray_index)
    {
        const LatticeRay &ray = rays[ray_index];
        std::size_t n = ray.lo;
        while (true) {
            speculate(combo_index, ray_index, n);
            if (n >= ray.hi)
                break;
            n = n == 0 ? 1 : std::min(ray.hi, n * 2);
        }
    }

    void
    speculateRange(std::size_t combo_index, std::size_t ray_index,
                   std::size_t from, std::size_t to)
    {
        for (std::size_t s = from; s <= to; ++s)
            speculate(combo_index, ray_index, s);
    }

    const PlanProbe &
    probeAt(std::size_t combo_index, std::size_t ray_index,
            std::size_t n)
    {
        const Key key{combo_index, ray_index, n};
        const auto it = memo.find(key);
        if (it != memo.end())
            return log[it->second];

        const LatticeRay &ray = rays[ray_index];
        PlanProbe p = probeOf(combos[combo_index]);
        p.fleetSize = fleetSizeOf(ray, n);
        p.composition = compositionOf(ray, n);
        p.cost = costOf(ray, n);
        ProbeMetrics m;
        const auto fit = inflight.find(key);
        if (fit != inflight.end()) {
            m = fit->second.get();
            inflight.erase(fit);
        } else {
            m = computeMetrics(combo_index, ray_index, n);
        }
        p.p99Cycles = m.p99Cycles;
        p.throughputRps = m.throughputRps;
        p.dropRate = m.dropRate;
        p.meetsSlo = m.meetsSlo;
        memo.emplace(key, log.size());
        log.push_back(p);
        return log.back();
    }

    /**
     * Monotonicity spot check: probe up to spotProbes not-yet-probed
     * lattice points in [from, to] on one ray, evenly spaced; true
     * when any passes. Galloping + bisection can only ever observe
     * fails-below-passes (they never probe above a known pass), so a
     * violation is detectable *only* by these extra probes.
     */
    bool
    spotCheckFindsPass(std::size_t combo_index, std::size_t ray_index,
                       std::size_t from, std::size_t to)
    {
        if (to < from || planner.cfg.spotProbes == 0)
            return false;
        std::vector<std::size_t> unprobed;
        for (std::size_t s = from; s <= to; ++s)
            if (!probed(combo_index, ray_index, s))
                unprobed.push_back(s);
        const std::size_t k =
            std::min(planner.cfg.spotProbes, unprobed.size());
        std::vector<std::size_t> picks;
        for (std::size_t i = 0; i < k; ++i)
            picks.push_back(unprobed[(i + 1) * unprobed.size() / (k + 1)]);
        std::sort(picks.begin(), picks.end());
        picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
        // Every pick is consumed, so speculating all of them up front
        // is pure win (and cannot change the probe set).
        for (const std::size_t s : picks)
            speculate(combo_index, ray_index, s);
        bool pass = false;
        for (const std::size_t s : picks)
            pass = probeAt(combo_index, ray_index, s).meetsSlo || pass;
        return pass;
    }

    /** The exact fallback: first (cheapest) passing point over the
     *  whole ray (memoized probes are free), whatever the pass/fail
     *  shape. */
    std::optional<std::size_t>
    linearScan(std::size_t combo_index, std::size_t ray_index)
    {
        const LatticeRay &ray = rays[ray_index];
        speculateRange(combo_index, ray_index, ray.lo, ray.hi);
        for (std::size_t s = ray.lo; s <= ray.hi; ++s)
            if (probeAt(combo_index, ray_index, s).meetsSlo)
                return s;
        return std::nullopt;
    }

    /**
     * Cheapest passing lattice point on one (combo, ray): gallop up
     * from the ray's floor doubling until a point passes (or the
     * ceiling fails), bisect the (last fail, first pass] bracket, then
     * spot-verify monotonicity below the candidate — and, when the
     * gallop found no pass at all, over the whole ray before
     * concluding infeasibility. A passing spot probe demotes the ray
     * to a linear scan and clears `monotone`.
     */
    std::optional<std::size_t>
    cheapestOnRay(std::size_t combo_index, std::size_t ray_index,
                  bool &monotone)
    {
        const LatticeRay &ray = rays[ray_index];
        const std::size_t floorN = ray.lo;
        const std::size_t ceilN = ray.hi;

        std::size_t n = floorN;
        std::optional<std::size_t> firstPass;
        std::size_t lastFail = 0;
        bool haveFail = false;
        while (true) {
            if (probeAt(combo_index, ray_index, n).meetsSlo) {
                firstPass = n;
                break;
            }
            haveFail = true;
            lastFail = n;
            if (n >= ceilN)
                break;
            n = n == 0 ? 1 : std::min(ceilN, n * 2);
        }
        // Under the monotone assumption, the ceiling failing means
        // every point fails — but that conclusion deserves the same
        // verification a candidate gets: a non-monotone ray can pass
        // only at points the gallop skipped.
        if (!firstPass) {
            if (spotCheckFindsPass(combo_index, ray_index, floorN,
                                   ceilN)) {
                monotone = false;
                return linearScan(combo_index, ray_index);
            }
            return std::nullopt;
        }

        std::size_t candidate = *firstPass;
        if (haveFail) {
            std::size_t lo = lastFail; // fails
            std::size_t hi = candidate; // passes
            // Bisection probes depend on each other, so parallelism
            // comes from speculating the whole bracket interior: at
            // most gallop-gap-sized, and every midpoint the bisection
            // can visit lies inside it.
            if (hi - lo > 1)
                speculateRange(combo_index, ray_index, lo + 1, hi - 1);
            while (hi - lo > 1) {
                const std::size_t mid = lo + (hi - lo) / 2;
                if (probeAt(combo_index, ray_index, mid).meetsSlo)
                    hi = mid;
                else
                    lo = mid;
            }
            candidate = hi;
        }

        // Verify the candidate: a pass below it means the monotone
        // shortcut was unsound for this ray.
        if (candidate > floorN &&
            spotCheckFindsPass(combo_index, ray_index, floorN,
                               candidate - 1)) {
            monotone = false;
            // A pass exists, so the scan is non-empty.
            return linearScan(combo_index, ray_index);
        }
        return candidate;
    }

    /** Assemble the report: smallest objective cost wins, ties broken
     *  by total instance count and then enumeration order (combo-major,
     *  then ray); margins against the active constraints. */
    PlanReport
    finish(const std::vector<std::vector<std::optional<std::size_t>>>
               &per_combo_ray,
           bool monotone)
    {
        PlanReport report;
        report.slo = slo;
        report.objective = space.objective;
        report.costBudget = space.maxCostBudget;
        report.exhaustiveProbes = space.gridSize();
        report.monotoneFleetAxis = monotone;

        bool haveBest = false;
        std::size_t bestCi = 0, bestRi = 0, bestN = 0;
        double bestCost = 0.0;
        std::size_t bestFleet = 0;
        for (std::size_t ci = 0; ci < per_combo_ray.size(); ++ci) {
            for (std::size_t ri = 0; ri < per_combo_ray[ci].size();
                 ++ri) {
                if (!per_combo_ray[ci][ri])
                    continue;
                const std::size_t n = *per_combo_ray[ci][ri];
                const double cost = costOf(rays[ri], n);
                const std::size_t fleet = fleetSizeOf(rays[ri], n);
                const bool better =
                    !haveBest || cost < bestCost ||
                    (cost == bestCost && fleet < bestFleet);
                if (better) {
                    haveBest = true;
                    bestCi = ci;
                    bestRi = ri;
                    bestN = n;
                    bestCost = cost;
                    bestFleet = fleet;
                }
            }
        }
        if (haveBest) {
            report.feasible = true;
            report.chosen = probeAt(bestCi, bestRi, bestN);
            if (slo.maxP99Cycles > 0)
                report.p99MarginCycles =
                    static_cast<double>(slo.maxP99Cycles) -
                    report.chosen.p99Cycles;
            if (slo.minThroughputRps > 0.0)
                report.throughputMarginRps =
                    report.chosen.throughputRps - slo.minThroughputRps;
        }
        report.probes = log;
        report.probesSpent = log.size();
        return report;
    }
};

// ---------------------------------------------------------------- //
//                         CapacityPlanner                           //
// ---------------------------------------------------------------- //

CapacityPlanner::CapacityPlanner(AcceleratorConfig instance_,
                                 const ServiceModel &model_,
                                 std::vector<double> bucket_scales,
                                 PlannerConfig config)
    : instance(std::move(instance_)), model(model_),
      bucketScales(std::move(bucket_scales)), cfg(config)
{
}

ServingReport
CapacityPlanner::probe(std::size_t fleet_size,
                       const SchedulerConfig &scfg,
                       const std::vector<Request> &trace) const
{
    simAssert(fleet_size > 0, "probe needs a non-empty fleet");
    const std::vector<AcceleratorConfig> fleet(fleet_size, instance);
    FleetScheduler sched(fleet, model, bucketScales, scfg);
    return sched.run(trace);
}

ServingReport
CapacityPlanner::probeComposition(
    const PlanSearchSpace &space,
    const std::vector<std::size_t> &composition,
    const SchedulerConfig &scfg, const std::vector<Request> &trace) const
{
    const std::vector<AcceleratorConfig> fleet =
        fleetFor(space, composition);
    simAssert(!fleet.empty(), "probeComposition needs a non-empty fleet");
    FleetScheduler sched(fleet, model, bucketScales, scfg);
    return sched.run(trace);
}

PlanReport
CapacityPlanner::plan(const WorkloadSpec &workload, const SloSpec &slo,
                      const PlanSearchSpace &space) const
{
    validate(slo, space);
    Search search(*this, workload, slo, space);
    // Every (combo, ray) gallop chain is known before any probe runs —
    // prefetch them all so the per-ray searches overlap on the pool.
    for (std::size_t ci = 0; ci < search.combos.size(); ++ci)
        for (std::size_t ri = 0; ri < search.rays.size(); ++ri)
            search.speculateGallop(ci, ri);
    bool monotone = true;
    std::vector<std::vector<std::optional<std::size_t>>> perComboRay(
        search.combos.size());
    for (std::size_t ci = 0; ci < search.combos.size(); ++ci) {
        perComboRay[ci].reserve(search.rays.size());
        for (std::size_t ri = 0; ri < search.rays.size(); ++ri)
            perComboRay[ci].push_back(
                search.cheapestOnRay(ci, ri, monotone));
    }
    return search.finish(perComboRay, monotone);
}

PlanReport
CapacityPlanner::plan(const TrafficProgram &program, const SloSpec &slo,
                      const PlanSearchSpace &space) const
{
    validate(slo, space);
    Search search(*this, materialize(program), slo, space);
    for (std::size_t ci = 0; ci < search.combos.size(); ++ci)
        for (std::size_t ri = 0; ri < search.rays.size(); ++ri)
            search.speculateGallop(ci, ri);
    bool monotone = true;
    std::vector<std::vector<std::optional<std::size_t>>> perComboRay(
        search.combos.size());
    for (std::size_t ci = 0; ci < search.combos.size(); ++ci) {
        perComboRay[ci].reserve(search.rays.size());
        for (std::size_t ri = 0; ri < search.rays.size(); ++ri)
            perComboRay[ci].push_back(
                search.cheapestOnRay(ci, ri, monotone));
    }
    return search.finish(perComboRay, monotone);
}

PlanReport
CapacityPlanner::planExhaustive(const WorkloadSpec &workload,
                                const SloSpec &slo,
                                const PlanSearchSpace &space) const
{
    validate(slo, space);
    Search search(*this, workload, slo, space);
    // The exhaustive grid is fully known up front: speculate all of it.
    for (std::size_t ci = 0; ci < search.combos.size(); ++ci)
        for (std::size_t ri = 0; ri < search.rays.size(); ++ri)
            search.speculateRange(ci, ri, search.rays[ri].lo,
                                  search.rays[ri].hi);
    bool monotone = true;
    std::vector<std::vector<std::optional<std::size_t>>> perComboRay(
        search.combos.size());
    for (std::size_t ci = 0; ci < search.combos.size(); ++ci) {
        perComboRay[ci].reserve(search.rays.size());
        for (std::size_t ri = 0; ri < search.rays.size(); ++ri) {
            const LatticeRay &ray = search.rays[ri];
            std::optional<std::size_t> cheapest;
            bool seenPass = false;
            for (std::size_t s = ray.lo; s <= ray.hi; ++s) {
                const bool pass = search.probeAt(ci, ri, s).meetsSlo;
                if (pass && !cheapest)
                    cheapest = s;
                // The exhaustive grid judges (per-ray) monotonicity
                // exactly: a fail above any pass is a violation.
                if (seenPass && !pass)
                    monotone = false;
                seenPass = seenPass || pass;
            }
            perComboRay[ci].push_back(cheapest);
        }
    }
    return search.finish(perComboRay, monotone);
}

// ---------------------------------------------------------------- //
//                         JSON surface                              //
// ---------------------------------------------------------------- //

namespace {

void
writeProbeObject(JsonWriter &w, const PlanProbe &p)
{
    w.beginObject();
    w.field("fleet_size", static_cast<std::uint64_t>(p.fleetSize));
    // Lattice probes carry their count vector; homogeneous probes
    // omit it (fleet_size is the whole story), keeping legacy plan
    // output shaped as before modulo the cost field.
    if (!p.composition.empty()) {
        w.key("composition").beginArray();
        for (const std::size_t count : p.composition)
            w.value(static_cast<std::uint64_t>(count));
        w.endArray();
    }
    w.field("cost", p.cost);
    w.field("policy", toString(p.policy));
    w.field("batching", p.batching);
    w.field("target_k", p.targetK);
    w.field("max_wait_cycles", p.maxWaitCycles);
    // Conditional keys: legacy probes (blind timer, blocking handoff)
    // serialize exactly as before these axes existed, so archived plan
    // JSON and the golden tests diff cleanly.
    if (p.costAware)
        w.field("cost_aware", p.costAware);
    w.field("map_cache", p.mapCacheOn);
    if (p.runAheadDepth != 1)
        w.field("run_ahead_depth", p.runAheadDepth);
    w.field("p99_cycles", p.p99Cycles);
    w.field("throughput_rps", p.throughputRps);
    w.field("drop_rate", p.dropRate);
    w.field("meets_slo", p.meetsSlo);
    w.endObject();
}

} // namespace

void
writePlanObject(JsonWriter &w, const PlanReport &report)
{
    w.beginObject();
    w.field("planner", "capacity");
    w.field("objective", toString(report.objective));
    w.field("cost_budget", report.costBudget);
    w.field("slo_max_p99_cycles", report.slo.maxP99Cycles);
    w.field("slo_min_throughput_rps", report.slo.minThroughputRps);
    w.field("feasible", report.feasible);
    w.field("monotone_fleet_axis", report.monotoneFleetAxis);
    w.field("probes_spent", report.probesSpent);
    w.field("exhaustive_probes", report.exhaustiveProbes);
    w.field("p99_margin_cycles", report.p99MarginCycles);
    w.field("throughput_margin_rps", report.throughputMarginRps);
    w.key("chosen");
    writeProbeObject(w, report.chosen);
    w.key("probes").beginArray();
    for (const PlanProbe &p : report.probes)
        writeProbeObject(w, p);
    w.endArray();
    w.endObject();
}

void
writePlanJson(std::ostream &os, const PlanReport &report)
{
    JsonWriter w(os);
    writePlanObject(w, report);
    os << '\n';
}

} // namespace pointacc
