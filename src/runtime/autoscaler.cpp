#include "runtime/autoscaler.hpp"

#include <stdexcept>
#include <string>

namespace pointacc {

AutoscalerConfig
resolveAutoscalerConfig(const AutoscalerConfig &cfg,
                        std::size_t fleet_size)
{
    AutoscalerConfig r = cfg;
    if (r.minInstances == 0)
        throw std::invalid_argument(
            "autoscaler floor (minInstances) must be >= 1");
    if (r.maxInstances == 0)
        r.maxInstances = static_cast<std::uint32_t>(fleet_size);
    if (r.maxInstances > fleet_size)
        throw std::invalid_argument(
            "autoscaler ceiling (" + std::to_string(r.maxInstances) +
            ") exceeds the configured fleet (" +
            std::to_string(fleet_size) + ")");
    if (r.maxInstances < r.minInstances)
        throw std::invalid_argument(
            "autoscaler ceiling must be >= its floor");
    if (r.initialInstances == 0)
        r.initialInstances = r.minInstances;
    if (r.initialInstances < r.minInstances ||
        r.initialInstances > r.maxInstances)
        throw std::invalid_argument(
            "autoscaler initialInstances must lie in [min, max]");
    if (r.evalIntervalCycles == 0)
        throw std::invalid_argument(
            "autoscaler evalIntervalCycles must be > 0");
    if (r.queueLowDepth >= r.queueHighDepth)
        throw std::invalid_argument(
            "autoscaler queueLowDepth must be < queueHighDepth");
    return r;
}

int
AutoscalerPolicy::decide(std::uint64_t now, std::uint64_t queue_depth,
                         std::uint64_t window_p99,
                         std::uint32_t provisioned)
{
    // Cooldown: hold for cooldownCycles after any decision so one
    // burst cannot trigger an up/down/up oscillation.
    if (everActed && asCfg.cooldownCycles > 0 &&
        now < lastActionAt + asCfg.cooldownCycles)
        return 0;
    const bool pressure =
        queue_depth >= asCfg.queueHighDepth ||
        (asCfg.p99HighCycles > 0 && window_p99 > asCfg.p99HighCycles);
    int action = 0;
    if (pressure && provisioned < asCfg.maxInstances)
        action = +1;
    else if (!pressure && queue_depth <= asCfg.queueLowDepth &&
             provisioned > asCfg.minInstances)
        action = -1;
    if (action != 0) {
        lastActionAt = now;
        everActed = true;
    }
    return action;
}

} // namespace pointacc
