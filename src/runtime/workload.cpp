#include "runtime/workload.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/logging.hpp"
#include "core/rng.hpp"

namespace pointacc {

std::string
toString(ArrivalProcess process)
{
    switch (process) {
      case ArrivalProcess::Poisson: return "poisson";
      case ArrivalProcess::Bursty: return "bursty";
    }
    return "?";
}

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec) : wspec(std::move(spec))
{
    if (wspec.mix.empty())
        fatal("workload mix must not be empty");
    if (wspec.requestsPerMCycle <= 0.0)
        fatal("offered load must be positive");
    if (wspec.arrivals == ArrivalProcess::Bursty && wspec.meanBurstSize < 1)
        fatal("mean burst size must be >= 1");
    double total = 0.0;
    for (const auto &cls : wspec.mix) {
        if (cls.weight < 0.0)
            fatal("mix weights must be non-negative");
        if (cls.mapReuseProb < 0.0 || cls.mapReuseProb > 1.0)
            fatal("mapReuseProb must be in [0, 1]");
        total += cls.weight;
    }
    if (total <= 0.0)
        fatal("mix weights must sum to a positive value");
}

namespace {

/** Exponential variate with the given mean (inverse-CDF, portable). */
double
exponential(Rng &rng, double mean)
{
    double u = rng.uniform();
    if (u > 1.0 - 1e-12)
        u = 1.0 - 1e-12;
    return -std::log(1.0 - u) * mean;
}

/** Weighted class pick. */
std::size_t
pickClass(Rng &rng, const std::vector<RequestClass> &mix, double totalWeight)
{
    double r = rng.uniform() * totalWeight;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        r -= mix[i].weight;
        if (r <= 0.0)
            return i;
    }
    return mix.size() - 1;
}

} // namespace

std::vector<Request>
WorkloadGenerator::generate() const
{
    Rng rng(wspec.seed);
    double totalWeight = 0.0;
    for (const auto &cls : wspec.mix)
        totalWeight += cls.weight;

    // Bursty traffic keeps the same mean rate by thinning the event
    // process: events arrive at rate/meanBurst, each carrying on
    // average meanBurst requests.
    const bool bursty = wspec.arrivals == ArrivalProcess::Bursty;
    const double perEvent =
        bursty ? static_cast<double>(wspec.meanBurstSize) : 1.0;
    const double eventRatePerCycle =
        wspec.requestsPerMCycle / 1e6 / perEvent;
    const double meanGap = 1.0 / eventRatePerCycle;

    std::vector<Request> out;
    double clock = 0.0;
    std::uint64_t id = 0;
    // Stream state: each stream's most recent frame, so classes with a
    // mapReuseProb can emit repeated-frame traffic. Fresh frames draw
    // from one global counter, so cloudIds never collide across
    // streams. Ids start at 1 (0 is the "no identity" default).
    std::map<std::uint32_t, std::uint64_t> lastFrame;
    std::uint64_t nextCloudId = 1;
    while (true) {
        clock += exponential(rng, meanGap);
        const auto cycle = static_cast<std::uint64_t>(clock);
        if (cycle >= wspec.horizonCycles)
            break;

        // One event = one burst; the whole burst shares one class (a
        // client uploads several clouds of the same kind in a row).
        std::uint64_t count = 1;
        if (bursty && wspec.meanBurstSize > 1)
            count = 1 + rng.range(2 * wspec.meanBurstSize - 1);
        const auto &cls = wspec.mix[pickClass(rng, wspec.mix, totalWeight)];
        for (std::uint64_t i = 0; i < count; ++i) {
            Request r;
            r.id = id++;
            r.networkId = cls.networkId;
            r.sizeBucket = cls.sizeBucket;
            // Repeated frame? The Rng draw is gated on mapReuseProb > 0
            // so traces without stream semantics stay byte-identical to
            // pre-stream generators with the same seed. Burst members
            // decide independently: a sweep burst can mix repeats of
            // the previous frame with fresh geometry.
            const auto last = lastFrame.find(cls.streamId);
            const bool repeat = cls.mapReuseProb > 0.0 &&
                                last != lastFrame.end() &&
                                rng.uniform() < cls.mapReuseProb;
            r.cloudId = repeat ? last->second : nextCloudId++;
            lastFrame[cls.streamId] = r.cloudId;
            // Back-to-back burst members, one cycle apart: they hit the
            // admission queue as a clump but keep unique timestamps.
            r.arrivalCycle = cycle + i;
            if (cls.deadlineCycles > 0)
                r.deadlineCycle = r.arrivalCycle + cls.deadlineCycles;
            out.push_back(r);
        }
    }
    // Burst members can straddle the next event's arrival; restore the
    // global arrival order.
    std::stable_sort(out.begin(), out.end(), arrivalOrderBefore);
    return out;
}

} // namespace pointacc
