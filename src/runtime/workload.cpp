#include "runtime/workload.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "core/rng.hpp"

namespace pointacc {

std::string
toString(ArrivalProcess process)
{
    switch (process) {
      case ArrivalProcess::Poisson: return "poisson";
      case ArrivalProcess::Bursty: return "bursty";
    }
    return "?";
}

void
validateWorkloadSpec(const WorkloadSpec &spec)
{
    if (spec.mix.empty())
        throw std::invalid_argument("workload mix must not be empty");
    if (!std::isfinite(spec.requestsPerMCycle) ||
        spec.requestsPerMCycle <= 0.0)
        throw std::invalid_argument(
            "offered load (requestsPerMCycle) must be positive and "
            "finite");
    if (spec.arrivals == ArrivalProcess::Bursty && spec.meanBurstSize < 1)
        throw std::invalid_argument("mean burst size must be >= 1");
    double total = 0.0;
    for (const auto &cls : spec.mix) {
        if (!std::isfinite(cls.weight) || cls.weight < 0.0)
            throw std::invalid_argument(
                "mix weights must be non-negative and finite");
        if (!(cls.mapReuseProb >= 0.0 && cls.mapReuseProb <= 1.0))
            throw std::invalid_argument(
                "mapReuseProb must be in [0, 1]");
        total += cls.weight;
    }
    if (total <= 0.0)
        throw std::invalid_argument(
            "mix weights must sum to a positive value");
}

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec) : wspec(std::move(spec))
{
    validateWorkloadSpec(wspec);
}

namespace detail {

double
exponentialDraw(Rng &rng, double mean)
{
    double u = rng.uniform();
    if (u > 1.0 - 1e-12)
        u = 1.0 - 1e-12;
    return -std::log(1.0 - u) * mean;
}

std::size_t
pickWeightedClass(Rng &rng, const std::vector<RequestClass> &mix,
                  double total_weight)
{
    double r = rng.uniform() * total_weight;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        r -= mix[i].weight;
        if (r <= 0.0)
            return i;
    }
    return mix.size() - 1;
}

} // namespace detail

WorkloadStream::WorkloadStream(const WorkloadSpec &spec)
    : wspec(spec), rng(spec.seed)
{
    validateWorkloadSpec(wspec);
    for (const auto &cls : wspec.mix)
        totalWeight += cls.weight;
    // Bursty traffic keeps the same mean rate by thinning the event
    // process: events arrive at rate/meanBurst, each carrying on
    // average meanBurst requests. Computed with the seed's exact
    // expression — an algebraically equal rearrangement could round
    // differently and shift every arrival cycle.
    const bool bursty = wspec.arrivals == ArrivalProcess::Bursty;
    const double perEvent =
        bursty ? static_cast<double>(wspec.meanBurstSize) : 1.0;
    const double eventRatePerCycle =
        wspec.requestsPerMCycle / 1e6 / perEvent;
    meanGap = 1.0 / eventRatePerCycle;
    // First inter-event gap (the seed loop's first draw).
    clock = detail::exponentialDraw(rng, meanGap);
    nextEventCycle = static_cast<std::uint64_t>(clock);
    exhausted = nextEventCycle >= wspec.horizonCycles;
}

void
WorkloadStream::refill()
{
    const bool bursty = wspec.arrivals == ArrivalProcess::Bursty;

    // A buffered request is releasable once no unmaterialized event
    // can rank before it: future members arrive at cycles >= the next
    // event's cycle with strictly larger ids, so the heap top is safe
    // exactly when top.arrivalCycle <= nextEventCycle (or the horizon
    // has been reached and nothing more will ever be drawn).
    while (!exhausted &&
           (pending.empty() ||
            pending.top().arrivalCycle > nextEventCycle)) {
        const std::uint64_t cycle = nextEventCycle;

        // One event = one burst; the whole burst shares one class (a
        // client uploads several clouds of the same kind in a row).
        std::uint64_t count = 1;
        if (bursty && wspec.meanBurstSize > 1)
            count = 1 + rng.range(2 * wspec.meanBurstSize - 1);
        const auto &cls = wspec.mix[detail::pickWeightedClass(
            rng, wspec.mix, totalWeight)];
        for (std::uint64_t i = 0; i < count; ++i) {
            Request r;
            r.id = nextId++;
            r.networkId = cls.networkId;
            r.sizeBucket = cls.sizeBucket;
            // Repeated frame? The Rng draw is gated on mapReuseProb > 0
            // so traces without stream semantics stay byte-identical to
            // pre-stream generators with the same seed. Burst members
            // decide independently: a sweep burst can mix repeats of
            // the previous frame with fresh geometry.
            const auto last = lastFrame.find(cls.streamId);
            const bool repeat = cls.mapReuseProb > 0.0 &&
                                last != lastFrame.end() &&
                                rng.uniform() < cls.mapReuseProb;
            r.cloudId = repeat ? last->second : nextCloudId++;
            lastFrame[cls.streamId] = r.cloudId;
            // Back-to-back burst members, one cycle apart: they hit the
            // admission queue as a clump but keep unique timestamps.
            r.arrivalCycle = cycle + i;
            if (cls.deadlineCycles > 0)
                r.deadlineCycle = r.arrivalCycle + cls.deadlineCycles;
            pending.push(r);
        }
        peak = std::max(peak,
                        pending.size() + (lookahead.has_value() ? 1 : 0));

        // Draw the next event's gap now: its cycle is the release
        // threshold for everything buffered so far. Same position in
        // the RNG sequence as the seed loop's next iteration.
        clock += detail::exponentialDraw(rng, meanGap);
        const auto next = static_cast<std::uint64_t>(clock);
        if (next >= wspec.horizonCycles)
            exhausted = true;
        else
            nextEventCycle = next;
    }
}

std::optional<Request>
WorkloadStream::nextInternal()
{
    refill();
    if (pending.empty())
        return std::nullopt;
    Request r = pending.top();
    pending.pop();
    numEmitted += 1;
    return r;
}

const Request *
WorkloadStream::peek()
{
    if (!lookahead)
        lookahead = nextInternal();
    return lookahead ? &*lookahead : nullptr;
}

Request
WorkloadStream::take()
{
    if (!lookahead)
        lookahead = nextInternal();
    Request r = *lookahead;
    lookahead.reset();
    return r;
}

std::vector<Request>
WorkloadGenerator::generate() const
{
    // Same trace the seed's materialize-then-stable_sort produced: the
    // stream emits in (arrivalCycle, id) order, which is exactly that
    // sort's total order.
    std::vector<Request> out;
    WorkloadStream s(wspec);
    while (s.peek() != nullptr)
        out.push_back(s.take());
    return out;
}

} // namespace pointacc
