#include "runtime/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace pointacc {

double
TrafficProgram::peakRequestsPerMCycle() const
{
    double peak = base.requestsPerMCycle;
    for (const auto &ph : phases)
        peak = std::max(peak, ph.requestsPerMCycle);
    return peak;
}

void
validateTrafficProgram(const TrafficProgram &program)
{
    validateWorkloadSpec(program.base);
    std::uint64_t prev = 0;
    bool first = true;
    for (const auto &ph : program.phases) {
        if (!std::isfinite(ph.requestsPerMCycle) ||
            ph.requestsPerMCycle <= 0.0)
            throw std::invalid_argument(
                "traffic phase rate must be positive and finite");
        if (!first && ph.startCycle <= prev)
            throw std::invalid_argument(
                "traffic phases must have strictly increasing "
                "startCycle");
        prev = ph.startCycle;
        first = false;
    }
}

TrafficProgram
flashCrowdProgram(const WorkloadSpec &base, double multiplier,
                  double start_frac, double duration_frac)
{
    if (!std::isfinite(multiplier) || multiplier <= 0.0)
        throw std::invalid_argument(
            "flash-crowd multiplier must be positive and finite");
    if (!(start_frac > 0.0 && start_frac < 1.0) ||
        !(duration_frac > 0.0 && start_frac + duration_frac <= 1.0))
        throw std::invalid_argument(
            "flash-crowd window must lie strictly inside the horizon");
    TrafficProgram program;
    program.name = "flash_crowd";
    program.base = base;
    const double horizon = static_cast<double>(base.horizonCycles);
    const auto start =
        static_cast<std::uint64_t>(horizon * start_frac);
    const auto end = static_cast<std::uint64_t>(
        horizon * (start_frac + duration_frac));
    program.phases.push_back(
        {start, base.requestsPerMCycle * multiplier});
    if (end > start && end < base.horizonCycles)
        program.phases.push_back({end, base.requestsPerMCycle});
    validateTrafficProgram(program);
    return program;
}

TrafficProgram
diurnalProgram(const WorkloadSpec &base, std::uint64_t period_cycles,
               double peak_factor, std::uint32_t steps_per_period)
{
    if (!std::isfinite(peak_factor) || peak_factor < 1.0)
        throw std::invalid_argument("diurnal peak factor must be >= 1");
    if (period_cycles == 0)
        throw std::invalid_argument("diurnal period must be nonzero");
    if (steps_per_period < 2)
        throw std::invalid_argument(
            "diurnal profile needs at least 2 steps per period");
    TrafficProgram program;
    program.name = "diurnal";
    program.base = base;
    const double pi = 3.14159265358979323846;
    // Raised cosine from trough (step 0) to peak (mid-period) and
    // back; step 0 of every period is the base rate itself, so only
    // steps 1.. need phase entries and boundaries stay strictly
    // increasing.
    for (std::uint64_t start = 0; start < base.horizonCycles;
         start += period_cycles) {
        for (std::uint32_t k = 0; k < steps_per_period; ++k) {
            const std::uint64_t at =
                start + period_cycles * k / steps_per_period;
            if (at >= base.horizonCycles)
                break;
            if (start == 0 && k == 0)
                continue; // base rate already covers [0, first phase)
            const double shape =
                0.5 * (1.0 - std::cos(2.0 * pi * k / steps_per_period));
            const double mult = 1.0 + (peak_factor - 1.0) * shape;
            program.phases.push_back(
                {at, base.requestsPerMCycle * mult});
        }
    }
    validateTrafficProgram(program);
    return program;
}

TrafficStream::TrafficStream(const TrafficProgram &program)
    : prog(program), rng(program.base.seed)
{
    validateTrafficProgram(prog);
    for (const auto &cls : prog.base.mix)
        totalWeight += cls.weight;
    // Resolve the rate schedule into segments. The event process
    // (bursty thinning) and meanGap use the stationary stream's exact
    // expressions per segment, so a phase-free program draws the
    // byte-identical gap sequence WorkloadStream draws.
    const bool bursty = prog.base.arrivals == ArrivalProcess::Bursty;
    const double perEvent =
        bursty ? static_cast<double>(prog.base.meanBurstSize) : 1.0;
    auto segmentOf = [&](std::uint64_t start, double rate) {
        Segment s;
        s.startCycle = static_cast<double>(start);
        s.ratePerMCycle = rate;
        s.meanGap = 1.0 / (rate / 1e6 / perEvent);
        return s;
    };
    segments.push_back(segmentOf(0, prog.base.requestsPerMCycle));
    for (const auto &ph : prog.phases) {
        if (ph.startCycle == 0)
            segments.back() = segmentOf(0, ph.requestsPerMCycle);
        else
            segments.push_back(
                segmentOf(ph.startCycle, ph.requestsPerMCycle));
    }
    clock = drawNextEventTime(0.0);
    nextEventCycle = static_cast<std::uint64_t>(clock);
    exhausted = nextEventCycle >= prog.base.horizonCycles;
}

double
TrafficStream::drawNextEventTime(double from)
{
    // Piecewise-exponential simulation: draw a gap at the current
    // segment's mean; a draw that crosses the next rate boundary is
    // discarded and restarted *at* the boundary under the new rate —
    // exact for a piecewise-constant-rate Poisson process by
    // memorylessness. With one segment this is a single draw, the
    // stationary stream's sequence.
    double t = from;
    std::size_t seg = segments.size() - 1;
    while (seg > 0 && t < segments[seg].startCycle)
        --seg;
    for (;;) {
        const double gap =
            detail::exponentialDraw(rng, segments[seg].meanGap);
        if (seg + 1 == segments.size())
            return t + gap;
        const double boundary = segments[seg + 1].startCycle;
        if (t + gap < boundary)
            return t + gap;
        t = boundary;
        ++seg;
    }
}

void
TrafficStream::refill()
{
    const bool bursty = prog.base.arrivals == ArrivalProcess::Bursty;
    const std::uint64_t churnInterval = prog.churn.intervalCycles;

    // Same release rule as WorkloadStream::refill: the heap top is
    // safe once no unmaterialized event can rank before it.
    while (!exhausted &&
           (pending.empty() ||
            pending.top().arrivalCycle > nextEventCycle)) {
        const std::uint64_t cycle = nextEventCycle;

        // Stream churn: crossing an interval boundary retires every
        // stream's frame history, so the next frame of each stream is
        // fresh geometry with a new cloudId (map-cache cold misses),
        // the way a rotated client population looks to the fleet.
        if (churnInterval > 0) {
            const std::uint64_t epoch = cycle / churnInterval;
            if (epoch > churnEpoch) {
                churnEvents += epoch - churnEpoch;
                churnEpoch = epoch;
                lastFrame.clear();
            }
        }

        std::uint64_t count = 1;
        if (bursty && prog.base.meanBurstSize > 1)
            count = 1 + rng.range(2 * prog.base.meanBurstSize - 1);
        const auto &cls = prog.base.mix[detail::pickWeightedClass(
            rng, prog.base.mix, totalWeight)];
        for (std::uint64_t i = 0; i < count; ++i) {
            Request r;
            r.id = nextId++;
            r.networkId = cls.networkId;
            r.sizeBucket = cls.sizeBucket;
            const auto last = lastFrame.find(cls.streamId);
            const bool repeat = cls.mapReuseProb > 0.0 &&
                                last != lastFrame.end() &&
                                rng.uniform() < cls.mapReuseProb;
            r.cloudId = repeat ? last->second : nextCloudId++;
            lastFrame[cls.streamId] = r.cloudId;
            r.arrivalCycle = cycle + i;
            if (cls.deadlineCycles > 0)
                r.deadlineCycle = r.arrivalCycle + cls.deadlineCycles;
            pending.push(r);
        }
        peak = std::max(peak,
                        pending.size() + (lookahead.has_value() ? 1 : 0));

        clock = drawNextEventTime(clock);
        const auto next = static_cast<std::uint64_t>(clock);
        if (next >= prog.base.horizonCycles)
            exhausted = true;
        else
            nextEventCycle = next;
    }
}

std::optional<Request>
TrafficStream::nextInternal()
{
    refill();
    if (pending.empty())
        return std::nullopt;
    Request r = pending.top();
    pending.pop();
    numEmitted += 1;
    return r;
}

const Request *
TrafficStream::peek()
{
    if (!lookahead)
        lookahead = nextInternal();
    return lookahead ? &*lookahead : nullptr;
}

Request
TrafficStream::take()
{
    if (!lookahead)
        lookahead = nextInternal();
    Request r = *lookahead;
    lookahead.reset();
    return r;
}

TrafficTelemetry
TrafficStream::telemetry() const
{
    TrafficTelemetry t;
    t.present = true;
    t.program = prog.name;
    t.segments = segments.size();
    t.basePerMCycle = prog.base.requestsPerMCycle;
    t.peakPerMCycle = prog.peakRequestsPerMCycle();
    t.churnIntervalCycles = prog.churn.intervalCycles;
    t.churnEvents = churnEvents;
    return t;
}

std::vector<Request>
materialize(const TrafficProgram &program, TrafficTelemetry *telemetry)
{
    std::vector<Request> out;
    TrafficStream s(program);
    while (s.peek() != nullptr)
        out.push_back(s.take());
    if (telemetry != nullptr)
        *telemetry = s.telemetry();
    return out;
}

namespace {
constexpr const char *kScheduleMagic = "pointacc-schedule";
constexpr int kScheduleVersion = 1;
} // namespace

void
writeSchedule(std::ostream &os, const std::vector<Request> &trace)
{
    os << kScheduleMagic << " v" << kScheduleVersion << ' '
       << trace.size() << '\n';
    for (const auto &r : trace)
        os << r.id << ' ' << r.networkId << ' ' << r.sizeBucket << ' '
           << r.cloudId << ' ' << r.arrivalCycle << ' '
           << r.deadlineCycle << '\n';
}

std::vector<Request>
readSchedule(std::istream &is)
{
    std::string magic, version;
    std::uint64_t count = 0;
    if (!(is >> magic >> version >> count) || magic != kScheduleMagic)
        throw std::invalid_argument(
            "not a pointacc schedule (bad magic)");
    if (version != "v1")
        throw std::invalid_argument(
            "unsupported schedule version: " + version);
    std::vector<Request> out;
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        Request r;
        if (!(is >> r.id >> r.networkId >> r.sizeBucket >> r.cloudId >>
              r.arrivalCycle >> r.deadlineCycle))
            throw std::invalid_argument(
                "truncated or malformed schedule row " +
                std::to_string(i));
        if (!out.empty() && !arrivalOrderBefore(out.back(), r))
            throw std::invalid_argument(
                "schedule rows out of arrival order at row " +
                std::to_string(i));
        out.push_back(r);
    }
    return out;
}

} // namespace pointacc
