/**
 * @file
 * ProbeExecutor implementation. See executor.hpp for the contract;
 * the load-bearing choices here are:
 *
 *  - per-worker mutex-protected deques instead of one global queue:
 *    submission deals tasks round-robin (task id % workers), owners
 *    pop the front, thieves take the back — the classic Chase-Lev
 *    shape, with plain mutexes because probe tasks are milliseconds
 *    of simulation, not nanoseconds of arithmetic, so lock traffic
 *    is noise (measured in docs/PERFORMANCE.md);
 *  - completion signalling is per-task (doneMutex/doneCv) so a
 *    waiter that ran out of work to help with sleeps on exactly its
 *    task, not on a global "something finished" channel;
 *  - the destructor first drains every queued task (running them on
 *    the destructing thread if the workers are gone or busy), then
 *    joins — a dropped Future still has its side effects run, and no
 *    task is ever silently discarded.
 */

#include "runtime/executor.hpp"

#include <algorithm>
#include <chrono>

namespace pointacc {

ProbeExecutor::ProbeExecutor(std::size_t thread_count)
{
    workers.reserve(thread_count);
    for (std::size_t i = 0; i < thread_count; ++i)
        workers.push_back(std::make_unique<Worker>());
    threads.reserve(thread_count);
    for (std::size_t i = 0; i < thread_count; ++i)
        threads.emplace_back([this, i] { workerLoop(i); });
}

ProbeExecutor::~ProbeExecutor()
{
    // Drain: run every still-queued task on this thread so no
    // submitted work is dropped, then wake and join the workers.
    while (tryRunOne(workers.size())) {
    }
    {
        std::lock_guard<std::mutex> lock(sleepMutex);
        stopping = true;
    }
    sleepCv.notify_all();
    for (auto &t : threads)
        t.join();
}

std::size_t
ProbeExecutor::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t
ProbeExecutor::resolveThreads(std::size_t requested)
{
    const std::size_t n = requested == 0 ? defaultThreads() : requested;
    // One thread of parallelism is just the caller: inline mode.
    return n <= 1 ? 0 : n;
}

std::shared_ptr<ProbeExecutor::Task>
ProbeExecutor::enqueue(std::function<void()> run)
{
    auto task = std::make_shared<Task>();
    task->run = std::move(run);
    if (workers.empty()) {
        // Inline mode: execute on the caller, before submit returns.
        task->id = nextId++;
        runTask(*task, 0);
        return task;
    }
    {
        std::lock_guard<std::mutex> lock(sleepMutex);
        task->id = nextId++;
        task->home = static_cast<std::size_t>(task->id % workers.size());
        Worker &w = *workers[task->home];
        std::lock_guard<std::mutex> qlock(w.mutex);
        w.deque.push_back(task);
    }
    sleepCv.notify_all();
    return task;
}

void
ProbeExecutor::runTask(Task &task, std::size_t runner)
{
    task.run();
    task.run = nullptr; // release captures eagerly
    numExecuted.fetch_add(1);
    if (!workers.empty() && runner != task.home)
        numStolen.fetch_add(1);
    {
        std::lock_guard<std::mutex> lock(task.doneMutex);
        task.done = true;
    }
    task.doneCv.notify_all();
}

bool
ProbeExecutor::tryRunOne(std::size_t self)
{
    const std::size_t n = workers.size();
    if (n == 0)
        return false;
    // Own deque first (front = submission order), then sweep victims
    // from the back — oldest queued work, the steal that unblocks a
    // backlog soonest.
    if (self < n) {
        Worker &own = *workers[self];
        std::shared_ptr<Task> task;
        {
            std::lock_guard<std::mutex> lock(own.mutex);
            if (!own.deque.empty()) {
                task = own.deque.front();
                own.deque.pop_front();
            }
        }
        if (task) {
            runTask(*task, self);
            return true;
        }
    }
    for (std::size_t offset = 1; offset <= n; ++offset) {
        const std::size_t victim = (self + offset) % n;
        if (victim == self)
            continue;
        Worker &w = *workers[victim];
        std::shared_ptr<Task> task;
        {
            std::lock_guard<std::mutex> lock(w.mutex);
            if (!w.deque.empty()) {
                task = w.deque.back();
                w.deque.pop_back();
            }
        }
        if (task) {
            runTask(*task, self);
            return true;
        }
    }
    return false;
}

void
ProbeExecutor::workerLoop(std::size_t index)
{
    for (;;) {
        if (tryRunOne(index))
            continue;
        std::unique_lock<std::mutex> lock(sleepMutex);
        if (stopping)
            return;
        // Re-check under the lock: enqueue holds sleepMutex while
        // publishing, so a task made visible before we slept will be
        // found by the next tryRunOne after wait() returns.
        sleepCv.wait(lock);
    }
}

void
ProbeExecutor::waitFor(Task &task)
{
    // Help while waiting: run pending tasks (possibly the awaited one)
    // instead of blocking, so nested get() calls cannot deadlock the
    // pool. Helper threads use index workers.size(): no home deque,
    // every execution counts as a steal.
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(task.doneMutex);
            if (task.done)
                return;
        }
        if (tryRunOne(workers.size()))
            continue;
        std::unique_lock<std::mutex> lock(task.doneMutex);
        // Short timeout: a task we could help with may be enqueued
        // while we sleep on this task's latch.
        task.doneCv.wait_for(lock, std::chrono::milliseconds(1),
                             [&task] { return task.done; });
        if (task.done)
            return;
    }
}

} // namespace pointacc
