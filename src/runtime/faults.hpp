/**
 * @file
 * Fault injection and failure-aware serving for the fleet scheduler.
 *
 * Every layer below this one assumes perfect hardware: instances never
 * crash or straggle and requests never time out. Real deployments —
 * the paper's Jetson-class edge parts especially — fail routinely, so
 * the serving simulator needs a first-class fault axis before any
 * availability claim (N+1 sizing, retry budgets, hedging policies) can
 * be trusted. This header defines that axis:
 *
 *  - FaultProgram: a deterministic schedule of instance crash/recover
 *    events and transient straggler slowdowns on the ns event axis,
 *    plus an optional stochastic MTBF/MTTR process (exponential draws
 *    through the repository's portable Rng — equal seeds give
 *    byte-identical fault traces). materializeFaultEvents() expands a
 *    program against a concrete fleet into a sorted event list the
 *    scheduler pushes into its heap alongside ScaleEval/SpinUp.
 *  - RetryPolicy: what happens to the requests a crash kills mid
 *    flight — bounded retries with exponential backoff priced in ns, a
 *    per-request timeout, and optional hedged re-dispatch after a
 *    fixed (typically p99-derived) delay. Exhausted retries land in
 *    the report's `failed` terminal state, extending the conservation
 *    identity to admitted = completed + failed + leftover.
 *  - FaultStats: the fault_* / retry_* counter block ServingReport
 *    carries upward (crashes, recoveries, straggler windows, retries,
 *    hedges won/lost, failovers).
 *
 * Byte-identity contract: a disabled program — or an enabled one that
 * materializes no events with retries off — injects nothing, consults
 * nothing, and leaves the scheduler's event stream and serialized
 * report byte-identical to a fault-free run (the `--sweep faults`
 * gate pins this against the frozen reference engine; the property
 * suite fuzzes it). Validation follows validateWorkloadSpec /
 * readSchedule: malformed inputs throw std::invalid_argument at
 * construction, never mid-simulation.
 */

#ifndef POINTACC_RUNTIME_FAULTS_HPP
#define POINTACC_RUNTIME_FAULTS_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pointacc {

/** One scheduled instance outage on the ns event axis. */
struct CrashWindow
{
    /** Fleet index of the instance that crashes. Windows naming an
     *  instance outside the concrete fleet materialize to nothing, so
     *  one program can drive capacity-planner probes of any size. */
    std::uint32_t instance = 0;
    std::uint64_t atNs = 0; ///< crash instant
    /** Outage length; 0 = the instance never recovers. */
    std::uint64_t downForNs = 0;
};

/** One transient slowdown window: the instance keeps serving, but its
 *  effective clock drops (service times stretch by `slowdown`). */
struct StragglerWindow
{
    std::uint32_t instance = 0;
    std::uint64_t atNs = 0;
    std::uint64_t durationNs = 0;
    /** Service-time stretch factor (> 1; 3.0 = a 3x-slower instance —
     *  thermal throttling, a noisy neighbour, a failing DIMM). */
    double slowdown = 2.0;
};

/**
 * Deterministic fault schedule for one simulation. Scheduled windows
 * and the stochastic MTBF/MTTR process compose; everything is on the
 * ns event axis. Disabled (the default) injects nothing.
 */
struct FaultProgram
{
    bool enabled = false;

    std::vector<CrashWindow> crashes;
    std::vector<StragglerWindow> stragglers;

    /** Stochastic outages: per-instance mean time between failures in
     *  ns (exponential inter-failure gaps). 0 = scheduled windows
     *  only. Requires mttrNs > 0 and horizonNs > 0 when set. */
    std::uint64_t mtbfNs = 0;
    /** Mean time to recover in ns (exponential outage lengths). */
    std::uint64_t mttrNs = 0;
    /** Seed of the stochastic process; equal seeds materialize
     *  byte-identical fault traces for a given fleet size. */
    std::uint64_t seed = 1;
    /** Generation window for the stochastic process, and the bound
     *  scheduled windows are validated against (a crash scheduled
     *  beyond the horizon can never fire; validation rejects it as a
     *  program bug rather than silently ignoring it). 0 = no bound,
     *  scheduled windows only. */
    std::uint64_t horizonNs = 0;
};

/** What happens to requests a crash kills in flight. Disabled (the
 *  default): crash victims fail terminally with no second chance. */
struct RetryPolicy
{
    bool enabled = false;
    /** Re-admissions allowed per request after its first dispatch;
     *  a request crashing on attempt maxRetries fails terminally. */
    std::uint32_t maxRetries = 2;
    /** Backoff before retry k is backoffBaseNs * backoffMult^k,
     *  capped at maxBackoffNs. Must be >= 1 ns when enabled. */
    std::uint64_t backoffBaseNs = 1000;
    double backoffMult = 2.0; ///< exponential backoff base (>= 1)
    std::uint64_t maxBackoffNs = 0; ///< backoff cap; 0 = uncapped
    /** Hedged re-dispatch: this long after a request's first dispatch,
     *  if it has not completed, an uncounted duplicate re-enters
     *  admission and the first copy to complete wins (the loser's
     *  capacity is the hedge's price — duplicates are never
     *  cancelled). Callers typically derive this from a measured p99.
     *  0 = no hedging. */
    std::uint64_t hedgeDelayNs = 0;
    /** Per-request budget from arrival: a retry that cannot be
     *  scheduled before arrival + timeoutNs fails terminally instead
     *  (counted under retry_timeouts). 0 = no timeout. */
    std::uint64_t timeoutNs = 0;
};

/**
 * Validate a FaultProgram, throwing std::invalid_argument with a
 * descriptive message on the first violation: nonpositive MTBF/MTTR
 * pairing (either without the other), stochastic faults without a
 * horizon, scheduled windows beyond the horizon, straggler slowdowns
 * <= 1 or non-finite, zero-length straggler windows, or overlapping
 * straggler windows on one instance (the per-instance slowdown factor
 * would be ambiguous). Disabled programs validate vacuously.
 */
void validateFaultProgram(const FaultProgram &program);

/**
 * Validate a RetryPolicy, throwing std::invalid_argument on the first
 * violation: backoff base < 1 ns, backoff multiplier < 1 or
 * non-finite, or a backoff cap below the base. Disabled policies
 * validate vacuously.
 */
void validateRetryPolicy(const RetryPolicy &policy);

/** Backoff before retry `attempt` (0-based: the wait scheduled after
 *  a request's first crash uses attempt 0), in ns — base * mult^k,
 *  capped. Saturates instead of overflowing. */
std::uint64_t retryBackoffNs(const RetryPolicy &policy,
                             std::uint32_t attempt);

/** Materialized fault-event kinds, in the order a window expands. */
enum class FaultEventKind : std::uint8_t
{
    Crash,          ///< instance goes down; in-flight batches fail
    Recover,        ///< instance comes back (empty, accepting work)
    StragglerStart, ///< slowdown factor applies to new dispatches
    StragglerEnd,   ///< slowdown factor lifts
};

/** One concrete fault event against a concrete fleet. */
struct FaultEvent
{
    std::uint64_t atNs = 0;
    FaultEventKind kind = FaultEventKind::Crash;
    std::uint32_t instance = 0;
    /** Slowdown factor (StragglerStart only). */
    double factor = 1.0;
};

/**
 * Expand `program` against a fleet of `fleet_size` instances into a
 * list sorted by time (ties keep expansion order, so the result is a
 * pure function of its inputs). Scheduled windows naming instances
 * outside the fleet are skipped; the stochastic process draws one
 * independent, seed-derived crash/recover sequence per instance over
 * [0, horizonNs). A disabled program returns an empty list.
 */
std::vector<FaultEvent> materializeFaultEvents(const FaultProgram &program,
                                               std::size_t fleet_size);

/** Fault/retry counters a faulted run reports (the fault_* / retry_*
 *  JSON block; omitted when `enabled` is false so fault-free reports
 *  stay byte-identical to pre-fault builds). */
struct FaultStats
{
    /** True when the run materialized >= 1 fault event or had retries
     *  enabled — exactly the condition under which the block prints. */
    bool enabled = false;

    std::uint64_t crashes = 0;          ///< crash events applied
    std::uint64_t recoveries = 0;       ///< recover events applied
    std::uint64_t stragglerWindows = 0; ///< slowdown windows applied
    /** Requests killed mid-flight by crashes (retried or failed). */
    std::uint64_t inflightFailed = 0;
    std::uint64_t failedBatches = 0; ///< dispatches killed by crashes
    /** Crash victims that completed on a different instance than the
     *  one they crashed on — successful failovers. */
    std::uint64_t failovers = 0;

    std::uint64_t retryAttempts = 0; ///< re-admissions scheduled
    /** Retries shed because the admission queue was full at re-entry
     *  (terminal: counted in `failed`, never in `dropped`). */
    std::uint64_t retryShed = 0;
    /** Requests that ran out of retry budget (terminal). */
    std::uint64_t retryExhausted = 0;
    /** Retries abandoned because the backoff landed past the
     *  per-request timeout (terminal). */
    std::uint64_t retryTimeouts = 0;
    std::uint64_t retryBackoffNsTotal = 0; ///< summed backoff waits
    std::uint64_t hedges = 0;     ///< hedged duplicates issued
    std::uint64_t hedgesWon = 0;  ///< completions won by the hedge copy
    /** Hedge copies that lost the race, died in a crash, or were shed
     *  at re-admission — the capacity the hedging policy wasted. */
    std::uint64_t hedgesLost = 0;
};

} // namespace pointacc

#endif // POINTACC_RUNTIME_FAULTS_HPP
